"""Tests for the scenario runner and offline decision-parameter sweeps."""

import numpy as np
import pytest

from repro.attacks.catalog import khepera_scenarios
from repro.core.decision import DecisionConfig, DecisionMaker
from repro.eval.runner import monte_carlo, run_scenario
from repro.eval.sweeps import f1_sweep, redecide, roc_sweep


@pytest.fixture(scope="module")
def clean_run(khepera_module):
    return run_scenario(khepera_module, None, seed=9, duration=8.0)


@pytest.fixture(scope="module")
def khepera_module():
    from repro.robots.khepera import khepera_rig

    rig = khepera_rig()
    rig.plan_path(0)
    return rig


@pytest.fixture(scope="module")
def attacked_run(khepera_module):
    scenario = khepera_scenarios()[2]  # IPS logic bomb at 4 s
    return run_scenario(khepera_module, scenario, seed=9, duration=8.0)


class TestRunScenario:
    def test_clean_run_structure(self, clean_run):
        assert clean_run.scenario_name == "clean"
        assert len(clean_run.trace) > 50
        assert clean_run.reports, "detector reports recorded"
        assert clean_run.sensor_confusion.total == len(clean_run.trace)

    def test_detects_scenario(self, attacked_run):
        assert attacked_run.sensor_confusion.tp > 0
        delays = attacked_run.delays_for("sensor")
        assert delays and delays[0].delay is not None
        assert attacked_run.mean_delay("sensor") < 0.5

    def test_summary_text(self, clean_run):
        text = clean_run.summary()
        assert "khepera" in text and "FPR" in text

    def test_monte_carlo_distinct_seeds(self, khepera_module):
        results = monte_carlo(khepera_module, None, 2, base_seed=20, duration=4.0)
        assert results[0].seed == 20 and results[1].seed == 21
        assert not np.allclose(
            results[0].trace.states_array(), results[1].trace.states_array()
        )

    def test_duration_override(self, khepera_module):
        result = run_scenario(khepera_module, None, seed=1, duration=2.0, stop_at_goal=False)
        assert len(result.trace) == int(round(2.0 / khepera_module.model.dt))

    def test_same_seed_reproducible(self, khepera_module):
        a = run_scenario(khepera_module, None, seed=33, duration=3.0)
        b = run_scenario(khepera_module, None, seed=33, duration=3.0)
        assert np.allclose(a.trace.states_array(), b.trace.states_array())


class TestRedecide:
    def test_offline_matches_online(self, attacked_run):
        """Replaying recorded statistics reproduces online decisions exactly."""
        config = DecisionConfig()
        stats = [r.statistics for r in attacked_run.reports]
        offline = redecide(stats, config)
        for report, outcome in zip(attacked_run.reports, offline):
            assert outcome.flagged_sensors == report.outcome.flagged_sensors
            assert outcome.actuator_alarm == report.outcome.actuator_alarm

    def test_different_config_changes_outcomes(self, attacked_run):
        stats = [r.statistics for r in attacked_run.reports]
        strict = redecide(stats, DecisionConfig(sensor_alpha=1e-6))
        lax = redecide(stats, DecisionConfig(sensor_alpha=0.5))
        strict_flags = sum(bool(o.flagged_sensors) for o in strict)
        lax_flags = sum(bool(o.flagged_sensors) for o in lax)
        assert lax_flags >= strict_flags


class TestSweeps:
    def test_roc_fpr_monotone_in_alpha(self, clean_run, attacked_run):
        points = roc_sweep([clean_run, attacked_run], alphas=[0.001, 0.05, 0.5, 0.99], window=1, criteria=1)
        fprs = [p.sensor.false_positive_rate for p in points]
        assert fprs == sorted(fprs)

    def test_roc_high_alpha_high_fpr(self, clean_run):
        points = roc_sweep([clean_run], alphas=[0.99], window=1, criteria=1)
        assert points[0].sensor.false_positive_rate > 0.5

    def test_f1_sweep_grid_complete(self, clean_run, attacked_run):
        points = f1_sweep([clean_run, attacked_run], windows=[1, 2, 3])
        configs = {(p.config.sensor_window, p.config.sensor_criteria) for p in points}
        assert configs == {(1, 1), (2, 1), (2, 2), (3, 1), (3, 2), (3, 3)}

    def test_f1_reasonable_at_paper_config(self, clean_run, attacked_run):
        points = f1_sweep([clean_run, attacked_run], windows=[2])
        by_config = {
            (p.config.sensor_window, p.config.sensor_criteria): p.sensor.f1 for p in points
        }
        assert by_config[(2, 2)] > 0.9
