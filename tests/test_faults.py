"""Tests for the sensor-delivery fault layer (sim/faults.py)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.faults import (
    BernoulliDropout,
    BurstDropout,
    DuplicateFault,
    FaultSchedule,
    LatencyFault,
    OutOfOrderFault,
    PayloadCorruption,
    TimestampJitter,
    uniform_dropout_schedule,
)

pytestmark = pytest.mark.faults


def deliver_series(schedule, values, sensor="s"):
    """Run a sequence of scalar readings through one sensor's channel."""
    out = []
    for k, v in enumerate(values, start=1):
        delivery = schedule.deliver({sensor: np.array([float(v)])}, k, k * 0.05)
        out.append(delivery.readings[sensor])
    return out


class TestPassthrough:
    def test_no_faults_always_available(self):
        schedule = FaultSchedule()
        delivered = deliver_series(schedule, [1.0, 2.0, 3.0])
        assert all(r.available for r in delivered)
        assert [float(r.value[0]) for r in delivered] == [1.0, 2.0, 3.0]
        assert all(r.age == 0 for r in delivered)

    def test_zero_intensity_faults_are_passthrough(self):
        schedule = FaultSchedule(
            [
                BernoulliDropout("s", 0.0),
                DuplicateFault("s", 0.0),
                OutOfOrderFault("s", 0.0),
                PayloadCorruption("s", 0.0),
                TimestampJitter("s", 0.0),
            ],
            seed=7,
        )
        delivered = deliver_series(schedule, [1.0, 2.0, 3.0])
        assert all(r.available for r in delivered)
        assert [float(r.value[0]) for r in delivered] == [1.0, 2.0, 3.0]
        assert all(r.events == () for r in delivered)

    def test_unfaulted_sensor_untouched_next_to_faulted(self):
        schedule = FaultSchedule([BernoulliDropout("a", 1.0)], seed=0)
        delivery = schedule.deliver(
            {"a": np.array([1.0]), "b": np.array([2.0])}, 1, 0.05
        )
        assert not delivery.readings["a"].available
        assert delivery.readings["b"].available
        assert delivery.available_sensors == frozenset({"b"})
        assert delivery.degraded


class TestDropout:
    def test_certain_dropout_holds_last_value(self):
        schedule = FaultSchedule([BernoulliDropout("s", 1.0, start=0.11)], seed=0)
        delivered = deliver_series(schedule, [1.0, 2.0, 3.0])
        # k=1,2 arrive (t=0.05, 0.10 < start), k=3 dropped -> hold k=2's value.
        assert delivered[1].available
        assert not delivered[2].available
        assert float(delivered[2].value[0]) == 2.0
        assert delivered[2].age == 1
        assert "dropout" in delivered[2].events

    def test_dropout_before_any_delivery_yields_none(self):
        schedule = FaultSchedule([BernoulliDropout("s", 1.0)], seed=0)
        delivered = deliver_series(schedule, [1.0])
        assert not delivered[0].available
        assert delivered[0].value is None

    def test_rate_roughly_matches_probability(self):
        schedule = FaultSchedule([BernoulliDropout("s", 0.3)], seed=42)
        delivered = deliver_series(schedule, np.arange(2000))
        rate = sum(not r.available for r in delivered) / len(delivered)
        assert 0.25 < rate < 0.35

    def test_reset_reproduces_realization(self):
        schedule = FaultSchedule([BernoulliDropout("s", 0.5)], seed=9)
        first = [r.available for r in deliver_series(schedule, np.arange(50))]
        schedule.reset()
        second = [r.available for r in deliver_series(schedule, np.arange(50))]
        assert first == second

    def test_window_gating(self):
        schedule = FaultSchedule([BernoulliDropout("s", 1.0, start=0.1, stop=0.2)], seed=0)
        delivered = deliver_series(schedule, np.arange(1, 7))
        availability = [r.available for r in delivered]
        # t = 0.05 .. 0.30; active window [0.1, 0.2) covers t=0.10, 0.15.
        assert availability == [True, False, False, True, True, True]

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            BernoulliDropout("s", 1.5)


class TestBurstDropout:
    def test_losses_cluster(self):
        schedule = FaultSchedule([BurstDropout("s", p_enter=0.05, p_exit=0.2)], seed=3)
        delivered = deliver_series(schedule, np.arange(3000))
        losses = [not r.available for r in delivered]
        loss_rate = sum(losses) / len(losses)
        assert loss_rate > 0.05  # bursts amplify the entry rate
        # Mean run length of consecutive losses must exceed 1 (clustering).
        runs, current = [], 0
        for lost in losses:
            if lost:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert np.mean(runs) > 1.5

    def test_reset_leaves_burst_state(self):
        fault = BurstDropout("s", p_enter=1.0, p_exit=1e-9)
        schedule = FaultSchedule([fault], seed=0)
        deliver_series(schedule, np.arange(10))
        assert fault._in_burst
        schedule.reset()
        assert not fault._in_burst


class TestLatency:
    def test_constant_delay_shifts_arrivals(self):
        schedule = FaultSchedule([LatencyFault("s", delay=2)], seed=0)
        delivered = deliver_series(schedule, [10.0, 20.0, 30.0, 40.0])
        # Nothing arrives at k=1,2; k=3 receives k=1's packet, k=4 k=2's.
        assert not delivered[0].available and delivered[0].value is None
        assert not delivered[1].available
        assert delivered[2].available
        assert float(delivered[2].value[0]) == 10.0
        assert delivered[2].age == 2
        assert delivered[3].available
        assert float(delivered[3].value[0]) == 20.0
        assert "latency" in delivered[2].events


class TestDuplicate:
    def test_duplicate_regresses_to_stale_value(self):
        schedule = FaultSchedule([DuplicateFault("s", 1.0)], seed=0)
        delivered = deliver_series(schedule, [1.0, 2.0, 3.0])
        # k=2: fresh 2.0 arrives, then the re-sent k=1 packet arrives after
        # it — the consumer's latest value is the stale duplicate.
        assert delivered[1].available
        assert float(delivered[1].value[0]) == 1.0
        assert delivered[1].age == 1
        assert "duplicate" in delivered[1].events


class TestOutOfOrder:
    def test_reordered_packet_wins_next_iteration(self):
        schedule = FaultSchedule([OutOfOrderFault("s", 1.0, stop=0.07)], seed=0)
        delivered = deliver_series(schedule, [1.0, 2.0, 3.0])
        # k=1's packet is held to k=2 and delivered after k=2's fresh one:
        # the consumer's latest regresses to the older measurement.
        assert not delivered[0].available
        assert delivered[1].available
        assert float(delivered[1].value[0]) == 1.0
        assert delivered[1].age == 1
        assert "reorder" in delivered[1].events


class TestPayloadCorruption:
    def test_nan_payload(self):
        schedule = FaultSchedule([PayloadCorruption("s", 1.0)], seed=0)
        delivered = deliver_series(schedule, [1.0])
        assert delivered[0].available
        assert np.isnan(delivered[0].value[0])
        assert "corruption" in delivered[0].events

    def test_component_subset(self):
        schedule = FaultSchedule(
            [PayloadCorruption("s", 1.0, value=np.inf, components=(1,))], seed=0
        )
        delivery = schedule.deliver({"s": np.array([1.0, 2.0, 3.0])}, 1, 0.05)
        value = delivery.readings["s"].value
        assert value[0] == 1.0 and np.isinf(value[1]) and value[2] == 3.0

    def test_source_reading_never_mutated(self):
        schedule = FaultSchedule([PayloadCorruption("s", 1.0)], seed=0)
        original = np.array([1.0, 2.0])
        schedule.deliver({"s": original}, 1, 0.05)
        assert np.array_equal(original, [1.0, 2.0])


class TestTimestampJitter:
    def test_jitter_marks_event_but_keeps_payload(self):
        schedule = FaultSchedule([TimestampJitter("s", skew=0.01)], seed=0)
        delivered = deliver_series(schedule, [5.0])
        assert delivered[0].available
        assert float(delivered[0].value[0]) == 5.0
        assert "jitter" in delivered[0].events


class TestSchedule:
    def test_stacked_with_fallback(self):
        from repro.sensors.pose_sensors import IPS
        from repro.sensors.suite import SensorSuite

        suite = SensorSuite([IPS()])
        schedule = FaultSchedule([BernoulliDropout("ips", 1.0)], seed=0)
        fallback = np.array([9.0, 9.0, 9.0])
        delivery = schedule.deliver({"ips": np.array([1.0, 2.0, 3.0])}, 1, 0.05)
        stacked = delivery.stacked(suite, fallback)
        # Never delivered: the stacked vector falls back.
        assert np.array_equal(stacked, fallback)
        delivery2 = schedule.deliver({"ips": np.array([4.0, 5.0, 6.0])}, 2, 0.10)
        stacked2 = delivery2.stacked(suite, fallback)
        # Still dropped, but nothing ever arrived, so fallback persists.
        assert np.array_equal(stacked2, fallback)

    def test_uniform_dropout_schedule(self):
        schedule = uniform_dropout_schedule(["a", "b"], 0.25, seed=1)
        assert schedule.sensors == frozenset({"a", "b"})
        assert all(isinstance(f, BernoulliDropout) for f in schedule)
        assert all(f.probability == 0.25 for f in schedule)

    def test_unbound_fault_rejected(self):
        fault = BernoulliDropout("s", 0.5)
        with pytest.raises(ConfigurationError):
            fault.reset()

    def test_independent_streams_per_fault(self):
        # Removing one fault must not change another's realization.
        both = FaultSchedule(
            [BernoulliDropout("a", 0.5), BernoulliDropout("b", 0.5)], seed=5
        )
        only_a = FaultSchedule([BernoulliDropout("a", 0.5)], seed=5)
        pattern_both = [
            both.deliver({"a": np.array([0.0]), "b": np.array([0.0])}, k, k * 0.05)
            .readings["a"]
            .available
            for k in range(1, 40)
        ]
        pattern_alone = [
            only_a.deliver({"a": np.array([0.0])}, k, k * 0.05).readings["a"].available
            for k in range(1, 40)
        ]
        assert pattern_both == pattern_alone

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            BernoulliDropout("s", 0.5, start=2.0, stop=1.0)
