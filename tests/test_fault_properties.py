"""Property-based invariants the fault layer must preserve (hypothesis).

Three families, matching the robustness contract in ``docs/ROBUSTNESS.md``:

1. Mode probabilities stay a distribution (sum 1, every entry positive and
   at least the normalized floor) for *any* per-iteration availability mask.
2. Chi-square statistics stay non-negative and finite for any mask,
   including total blackout and NaN-corrupted payloads.
3. Offline replay — sequential or batched — of a fault-degraded mission
   reproduces the online reports exactly.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.batch import replay_batch
from repro.core.detector import RoboADS
from repro.dynamics.unicycle import UnicycleModel
from repro.sensors.pose_sensors import IPS, InertialNavSensor, OdometryPoseSensor
from repro.sensors.suite import SensorSuite

pytestmark = pytest.mark.faults

Q = np.diag([1e-6, 1e-6, 4e-6])
SENSOR_NAMES = ("ips", "wheel_encoder", "imu")
X0 = np.array([0.5, 0.5, 0.2])
U = np.array([0.2, 0.15])


def make_detector() -> tuple[UnicycleModel, SensorSuite, RoboADS]:
    model = UnicycleModel(dt=0.1)
    suite = SensorSuite(
        [
            IPS(sigma_xy=0.002, sigma_theta=0.004),
            OdometryPoseSensor(sigma_xy=0.003, sigma_theta=0.006),
            InertialNavSensor(sigma_xy=0.004, sigma_theta=0.008),
        ]
    )
    detector = RoboADS(model, suite, Q, initial_state=X0, nominal_control=U)
    return model, suite, detector


# One detector for the whole module: construction dominates, and reset()
# restores it exactly (pinned by the replay test below).
MODEL, SUITE, DETECTOR = make_detector()


def synthesize(n_steps: int, seed: int) -> tuple[list[np.ndarray], list[np.ndarray]]:
    rng = np.random.default_rng(seed)
    x = X0.copy()
    controls, readings = [], []
    for _ in range(n_steps):
        x = MODEL.normalize_state(
            MODEL.f(x, U) + np.sqrt(np.diag(Q)) * rng.standard_normal(3)
        )
        controls.append(U.copy())
        readings.append(SUITE.measure(x, rng))
    return controls, readings


masks = st.lists(
    st.sets(st.sampled_from(SENSOR_NAMES)).map(
        lambda s: tuple(n for n in SENSOR_NAMES if n in s)
    ),
    min_size=5,
    max_size=25,
)


class TestDegradedInvariants:
    @given(mask_seq=masks, seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_probabilities_and_statistics(self, mask_seq, seed):
        DETECTOR.reset()
        epsilon = DETECTOR.engine._epsilon
        controls, readings = synthesize(len(mask_seq), seed)
        floor = epsilon / (epsilon * len(DETECTOR.engine.modes) + 1.0)
        for u, z, mask in zip(controls, readings, mask_seq):
            report = DETECTOR.step(u, z, available=mask)
            stats = report.statistics
            probs = stats.mode_probabilities
            assert abs(sum(probs.values()) - 1.0) < 1e-9
            assert all(p >= floor for p in probs.values())
            assert np.isfinite(stats.sensor_statistic) and stats.sensor_statistic >= 0.0
            assert np.isfinite(stats.actuator_statistic) and stats.actuator_statistic >= 0.0
            assert np.all(np.isfinite(stats.state_estimate))
            for sensor_stat in stats.sensor_stats.values():
                assert np.isfinite(sensor_stat.statistic) and sensor_stat.statistic >= 0.0
            if len(mask) < len(SENSOR_NAMES):
                assert stats.degraded
                assert stats.available_sensors == mask
            else:
                assert not stats.degraded

    @given(seed=st.integers(0, 2**16), corrupt=st.sampled_from(SENSOR_NAMES))
    @settings(max_examples=10, deadline=None)
    def test_nan_payload_never_poisons_statistics(self, seed, corrupt):
        DETECTOR.reset()
        controls, readings = synthesize(12, seed)
        for k, (u, z) in enumerate(zip(controls, readings)):
            z = z.copy()
            if k % 3 == 0:
                z[SUITE.slice_of(corrupt)] = np.nan
            report = DETECTOR.step(u, z)
            stats = report.statistics
            assert np.isfinite(stats.sensor_statistic)
            assert np.isfinite(stats.actuator_statistic)
            assert np.all(np.isfinite(stats.state_estimate))
            if k % 3 == 0:
                assert stats.degraded
                assert corrupt not in (stats.available_sensors or ())


class TestReplayEquivalence:
    @given(mask_seq=masks, seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_batched_equals_sequential_under_faults(self, mask_seq, seed):
        controls, readings = synthesize(len(mask_seq), seed)
        availability = [m if len(m) < len(SENSOR_NAMES) else None for m in mask_seq]

        DETECTOR.reset()
        online = [
            DETECTOR.step(u, z, available=a)
            for u, z, a in zip(controls, readings, availability)
        ]
        sequential = DETECTOR.replay(controls, readings, availability=availability)

        trace = type(
            "T",
            (),
            {
                "planned_controls": controls,
                "readings": readings,
                "availability": availability,
            },
        )()
        batch = replay_batch(DETECTOR, [trace], keep_reports=True)
        batched = batch.trace_reports(0)

        assert len(online) == len(sequential) == len(batched)
        for a, b, c in zip(online, sequential, batched):
            assert np.array_equal(a.statistics.state_estimate, b.statistics.state_estimate)
            assert np.array_equal(b.statistics.state_estimate, c.statistics.state_estimate)
            assert a.statistics.sensor_statistic == b.statistics.sensor_statistic
            assert b.statistics.sensor_statistic == c.statistics.sensor_statistic
            assert a.outcome == b.outcome == c.outcome
