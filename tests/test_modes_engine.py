"""Tests for mode construction and the multi-mode estimation engine."""

import numpy as np
import pytest

from repro.core.engine import MultiModeEstimationEngine
from repro.core.modes import Mode, complete_modes, single_reference_modes
from repro.dynamics.unicycle import UnicycleModel
from repro.errors import ConfigurationError
from repro.sensors.pose_sensors import IPS, InertialNavSensor, OdometryPoseSensor
from repro.sensors.suite import SensorSuite


def make_suite():
    return SensorSuite(
        [
            IPS(sigma_xy=0.002, sigma_theta=0.004),
            OdometryPoseSensor(sigma_xy=0.003, sigma_theta=0.006),
            InertialNavSensor(sigma_xy=0.004, sigma_theta=0.008),
        ]
    )


class TestModes:
    def test_for_suite_orders_by_suite(self):
        suite = make_suite()
        mode = Mode.for_suite(suite, ("imu", "ips"))
        assert mode.reference == ("ips", "imu")
        assert mode.testing == ("wheel_encoder",)

    def test_default_name(self):
        suite = make_suite()
        assert Mode.for_suite(suite, ("ips",)).name == "ref:ips"

    def test_unknown_sensor(self):
        suite = make_suite()
        with pytest.raises(ConfigurationError):
            Mode.for_suite(suite, ("sonar",))

    def test_reference_required(self):
        with pytest.raises(ConfigurationError):
            Mode("m", (), ("a",))

    def test_overlap_rejected(self):
        with pytest.raises(ConfigurationError):
            Mode("m", ("a",), ("a", "b"))

    def test_single_reference_modes(self):
        modes = single_reference_modes(make_suite())
        assert len(modes) == 3
        assert all(len(m.reference) == 1 for m in modes)
        # Each mode tests every other sensor.
        assert all(len(m.testing) == 2 for m in modes)

    def test_complete_modes(self):
        modes = complete_modes(make_suite())
        assert len(modes) == 7  # 2^3 - 1 nonempty reference subsets

    def test_complete_modes_with_cap(self):
        modes = complete_modes(make_suite(), max_corrupted=1)
        # testing-set size <= 1: reference sets of size 2 or 3.
        assert len(modes) == 4


def make_engine(**kwargs):
    model = UnicycleModel(dt=0.1)
    suite = make_suite()
    defaults = dict(
        initial_state=np.array([0.5, 0.5, 0.2]),
        nominal_control=np.array([0.2, 0.1]),
    )
    defaults.update(kwargs)
    engine = MultiModeEstimationEngine(model, suite, np.diag([1e-6, 1e-6, 4e-6]), **defaults)
    return model, suite, engine


def run_engine(engine, model, suite, n_steps, corrupt=None, seed=0, control=(0.2, 0.15)):
    rng = np.random.default_rng(seed)
    x_true = np.array([0.5, 0.5, 0.2])
    control = np.asarray(control, dtype=float)
    outputs = []
    for k in range(n_steps):
        x_true = model.normalize_state(
            model.f(x_true, control) + np.sqrt([1e-6, 1e-6, 4e-6]) * rng.standard_normal(3)
        )
        z = suite.measure(x_true, rng)
        if corrupt is not None:
            corrupt(k, z, suite)
        outputs.append(engine.step(control, z))
    return outputs


class TestEngine:
    def test_probabilities_normalized(self):
        model, suite, engine = make_engine()
        outputs = run_engine(engine, model, suite, 10)
        for out in outputs:
            assert sum(out.probabilities.values()) == pytest.approx(1.0)
            assert all(p >= 0.0 for p in out.probabilities.values())

    def test_selected_mode_consistent_when_clean(self):
        model, suite, engine = make_engine()
        outputs = run_engine(engine, model, suite, 60)
        # After burn-in the selection should be stable on one mode.
        selected = {out.selected_mode for out in outputs[20:]}
        assert len(selected) == 1

    def test_switches_away_from_corrupted_reference(self):
        model, suite, engine = make_engine()
        clean = run_engine(engine, model, suite, 50)
        stable_mode = clean[-1].selected_mode
        stable_ref = stable_mode.split(":", 1)[1]

        def corrupt(k, z, suite_):
            z[suite_.slice_of(stable_ref)] += np.array([0.2, 0.2, 0.0])

        attacked = run_engine(engine, model, suite, 10, corrupt=corrupt, seed=1)
        assert attacked[-1].selected_mode != stable_mode

    def test_statistics_extraction(self):
        model, suite, engine = make_engine()
        out = run_engine(engine, model, suite, 5)[-1]
        stats = engine.statistics(out)
        assert stats.selected_mode == out.selected_mode
        assert stats.sensor_dof > 0
        assert stats.actuator_dof == 2
        assert set(stats.sensor_stats) == set(
            next(m.testing for m in engine.modes if m.name == out.selected_mode)
        )
        assert stats.actuator_estimate.shape == (2,)

    def test_reset_restores_uniform(self):
        model, suite, engine = make_engine()
        run_engine(engine, model, suite, 10)
        engine.reset()
        probs = engine.probabilities
        assert all(p == pytest.approx(1.0 / 3.0) for p in probs.values())
        assert np.allclose(engine.state_estimate, [0.5, 0.5, 0.2])

    def test_reset_with_new_state(self):
        model, suite, engine = make_engine()
        engine.reset(np.array([1.0, 1.0, 0.0]))
        assert np.allclose(engine.state_estimate, [1.0, 1.0, 0.0])

    def test_custom_modes(self):
        suite = make_suite()
        modes = [Mode.for_suite(suite, ("ips", "imu"))]
        model, suite2, engine = make_engine(modes=[Mode.for_suite(make_suite(), ("ips", "imu"))])
        outputs = run_engine(engine, model, suite2, 5)
        assert outputs[-1].selected_mode == "ref:ips+imu"

    def test_duplicate_mode_names_rejected(self):
        suite = make_suite()
        duplicated = [Mode.for_suite(suite, ("ips",)), Mode.for_suite(suite, ("ips",))]
        with pytest.raises(ConfigurationError):
            make_engine(modes=duplicated)

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError):
            make_engine(epsilon=0.0)

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            make_engine(consistency_window=0)

    def test_empty_modes_rejected(self):
        with pytest.raises(ConfigurationError):
            make_engine(modes=[])

    def test_defeated_mode_revives_after_attack_stops(self):
        model, suite, engine = make_engine(consistency_window=20)
        clean = run_engine(engine, model, suite, 40)
        stable_mode = clean[-1].selected_mode
        stable_ref = stable_mode.split(":", 1)[1]

        def corrupt(k, z, suite_):
            z[suite_.slice_of(stable_ref)] += np.array([0.3, 0.3, 0.0])

        run_engine(engine, model, suite, 25, corrupt=corrupt, seed=1)
        recovered = run_engine(engine, model, suite, 40, seed=2)
        assert recovered[-1].selected_mode == stable_mode
