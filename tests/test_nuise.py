"""Statistical correctness tests for the NUISE filter (Algorithm 2).

These tests simulate the exact generative model the filter assumes (so the
filter's optimality claims are checkable): a unicycle with Gaussian process
noise, pose sensors with Gaussian measurement noise, and known injected
anomaly vectors. They verify the estimator is unbiased, that its reported
covariances are consistent (NEES), that likelihoods rank hypotheses
correctly, and that degenerate configurations fail loudly.
"""

import numpy as np
import pytest

from repro.core.linearization import FixedPointLinearization
from repro.core.modes import Mode
from repro.core.nuise import NuiseFilter
from repro.dynamics.unicycle import UnicycleModel
from repro.errors import ConfigurationError, ObservabilityError
from repro.linalg import is_psd
from repro.sensors.magnetometer import Magnetometer
from repro.sensors.pose_sensors import IPS, OdometryPoseSensor
from repro.sensors.suite import SensorSuite

Q_DIAG = np.array([1e-6, 1e-6, 4e-6])


def make_suite():
    return SensorSuite(
        [
            IPS(sigma_xy=0.002, sigma_theta=0.004),
            OdometryPoseSensor(sigma_xy=0.003, sigma_theta=0.006),
        ]
    )


def simulate_and_filter(
    n_steps=300,
    actuator_anomaly=None,
    sensor_anomaly=None,
    reference=("ips",),
    seed=1,
    control=None,
):
    """Closed-form test harness: truth simulation + one NUISE instance."""
    rng = np.random.default_rng(seed)
    model = UnicycleModel(dt=0.1)
    suite = make_suite()
    mode = Mode.for_suite(suite, reference)
    filt = NuiseFilter(model, suite, mode, np.diag(Q_DIAG), nominal_control=np.array([0.2, 0.1]))

    x_true = np.array([0.5, 0.5, 0.2])
    x_hat = x_true.copy()
    P = 1e-6 * np.eye(3)
    control = np.array([0.2, 0.15]) if control is None else np.asarray(control, dtype=float)
    d_a = np.zeros(2) if actuator_anomaly is None else np.asarray(actuator_anomaly, dtype=float)
    d_s = np.zeros(suite.total_dim)
    if sensor_anomaly is not None:
        name, vector = sensor_anomaly
        d_s[suite.slice_of(name)] = vector

    results = []
    for _ in range(n_steps):
        noise = np.sqrt(Q_DIAG) * rng.standard_normal(3)
        x_true = model.normalize_state(model.f(x_true, control + d_a) + noise)
        z = suite.measure(x_true, rng) + d_s
        result = filt.step(control, x_hat, P, z)
        x_hat, P = result.state, result.state_covariance
        results.append((x_true.copy(), result))
    return model, suite, results


class TestStateEstimation:
    def test_tracks_true_state(self):
        _, _, results = simulate_and_filter()
        errors = np.array([truth - res.state for truth, res in results[50:]])
        rms = np.sqrt((errors[:, :2] ** 2).mean())
        assert rms < 0.005

    def test_state_covariance_psd_and_bounded(self):
        _, _, results = simulate_and_filter()
        for _, res in results:
            assert is_psd(res.state_covariance)
        final_P = results[-1][1].state_covariance
        assert np.all(np.diag(final_P) < 1e-3)

    def test_nees_consistency(self):
        """Normalized estimation error squared should average ~state_dim."""
        _, _, results = simulate_and_filter(n_steps=400)
        nees = []
        for truth, res in results[100:]:
            err = truth - res.state
            err[2] = np.arctan2(np.sin(err[2]), np.cos(err[2]))
            nees.append(err @ np.linalg.inv(res.state_covariance) @ err)
        avg = float(np.mean(nees))
        # Filter-consistency band: a badly inconsistent filter lands far
        # outside [1, 9] for dof=3.
        assert 1.0 < avg < 9.0


class TestActuatorAnomalyEstimation:
    def test_zero_anomaly_estimates_near_zero(self):
        _, _, results = simulate_and_filter()
        estimates = np.array([res.actuator_anomaly for _, res in results[50:]])
        assert np.allclose(estimates.mean(axis=0), 0.0, atol=0.01)

    def test_recovers_injected_anomaly(self):
        d_a = np.array([0.05, -0.08])
        _, _, results = simulate_and_filter(actuator_anomaly=d_a, n_steps=400)
        estimates = np.array([res.actuator_anomaly for _, res in results[50:]])
        assert np.allclose(estimates.mean(axis=0), d_a, atol=0.02)

    def test_anomaly_nees(self):
        d_a = np.array([0.05, -0.08])
        _, _, results = simulate_and_filter(actuator_anomaly=d_a, n_steps=400)
        nees = []
        for _, res in results[50:]:
            err = res.actuator_anomaly - d_a
            nees.append(err @ np.linalg.inv(res.actuator_covariance) @ err)
        assert 0.5 < float(np.mean(nees)) < 6.0

    def test_covariance_psd(self):
        _, _, results = simulate_and_filter(n_steps=50)
        for _, res in results:
            assert is_psd(res.actuator_covariance)


class TestSensorAnomalyEstimation:
    def test_recovers_testing_sensor_bias(self):
        bias = np.array([0.05, -0.03, 0.1])
        _, suite, results = simulate_and_filter(
            sensor_anomaly=("wheel_encoder", bias), n_steps=300
        )
        estimates = np.array([res.sensor_anomaly for _, res in results[50:]])
        assert np.allclose(estimates.mean(axis=0), bias, atol=0.01)

    def test_clean_testing_sensor_near_zero(self):
        _, _, results = simulate_and_filter()
        estimates = np.array([res.sensor_anomaly for _, res in results[50:]])
        assert np.allclose(estimates.mean(axis=0), 0.0, atol=0.01)

    def test_sensor_covariance_psd(self):
        _, _, results = simulate_and_filter(n_steps=50)
        for _, res in results:
            assert is_psd(res.sensor_covariance)

    def test_empty_testing_set(self):
        _, _, results = simulate_and_filter(reference=("ips", "wheel_encoder"), n_steps=30)
        for _, res in results:
            assert res.sensor_anomaly.shape == (0,)
            assert res.sensor_covariance.shape == (0, 0)


class TestLikelihood:
    def test_clean_reference_higher_than_corrupted(self):
        # Corrupt the IPS; the mode using IPS as reference must be less
        # likely than the mode using the odometry.
        bias = ("ips", np.array([0.08, 0.0, 0.0]))
        _, _, results_bad = simulate_and_filter(sensor_anomaly=bias, reference=("ips",), n_steps=40)
        _, _, results_good = simulate_and_filter(
            sensor_anomaly=bias, reference=("wheel_encoder",), n_steps=40
        )
        # After the attack the corrupted-reference mode's likelihood collapses
        # at least at onset (later it absorbs the bias, but the early window
        # decides selection).
        first_bad = results_bad[0][1].likelihood
        first_good = results_good[0][1].likelihood
        assert first_good > first_bad

    def test_likelihood_positive_and_finite(self):
        _, _, results = simulate_and_filter(n_steps=50)
        for _, res in results:
            assert np.isfinite(res.likelihood)
            assert res.likelihood >= 0.0


class TestHeadingWrap:
    def test_no_jump_across_pi(self):
        # Drive the unicycle so the heading crosses +/-pi repeatedly; the
        # estimate must follow without 2*pi innovations blowing the filter.
        _, _, results = simulate_and_filter(
            n_steps=500, control=np.array([0.2, 0.4]), seed=3
        )
        errors = []
        for truth, res in results[50:]:
            err = truth[2] - res.state[2]
            errors.append(abs(np.arctan2(np.sin(err), np.cos(err))))
        assert max(errors) < 0.1


class TestConfiguration:
    def test_observability_error_for_weak_reference(self):
        model = UnicycleModel()
        suite = SensorSuite([IPS(), Magnetometer()])
        with pytest.raises(ObservabilityError):
            NuiseFilter(
                model,
                suite,
                Mode.for_suite(suite, ("magnetometer",)),
                process_noise=1e-6,
                nominal_control=np.array([0.2, 0.1]),
            )

    def test_observability_check_can_be_skipped(self):
        model = UnicycleModel()
        suite = SensorSuite([IPS(), Magnetometer()])
        NuiseFilter(
            model,
            suite,
            Mode.for_suite(suite, ("magnetometer",)),
            process_noise=1e-6,
            check_observability=False,
        )

    def test_state_dim_mismatch(self):
        model = UnicycleModel()
        suite = SensorSuite([IPS(state_dim=4, pose_indices=(0, 1, 2))])
        with pytest.raises(ConfigurationError):
            NuiseFilter(model, suite, Mode.for_suite(suite, ("ips",)), 1e-6)

    def test_split_reading(self):
        model = UnicycleModel()
        suite = make_suite()
        filt = NuiseFilter(
            model,
            suite,
            Mode.for_suite(suite, ("wheel_encoder",)),
            1e-6,
            nominal_control=np.array([0.2, 0.1]),
        )
        stacked = np.arange(6.0)
        z1, z2 = filt.split_reading(stacked)
        assert np.allclose(z1, [0.0, 1.0, 2.0])  # testing = ips (suite order)
        assert np.allclose(z2, [3.0, 4.0, 5.0])  # reference = wheel_encoder

    def test_testing_slices(self):
        model = UnicycleModel()
        suite = make_suite()
        filt = NuiseFilter(
            model, suite, Mode.for_suite(suite, ("ips",)), 1e-6,
            nominal_control=np.array([0.2, 0.1]),
        )
        slices = filt.testing_slices()
        assert slices == {"wheel_encoder": slice(0, 3)}


class TestFixedPointPolicyFilter:
    def test_fixed_policy_degrades_after_turning(self):
        """The linearize-once filter mistracks once the heading changes."""
        rng = np.random.default_rng(7)
        model = UnicycleModel(dt=0.1)
        suite = make_suite()
        mode = Mode.for_suite(suite, ("ips",))
        x0 = np.array([0.5, 0.5, 0.0])
        fixed = NuiseFilter(
            model,
            suite,
            mode,
            np.diag(Q_DIAG),
            policy=FixedPointLinearization(x0, np.array([0.2, 0.0])),
            nominal_control=np.array([0.2, 0.1]),
        )
        adaptive = NuiseFilter(
            model, suite, mode, np.diag(Q_DIAG), nominal_control=np.array([0.2, 0.1])
        )

        control = np.array([0.2, 0.3])  # constant turn
        x_true = x0.copy()
        xf, Pf = x0.copy(), 1e-6 * np.eye(3)
        xa, Pa = x0.copy(), 1e-6 * np.eye(3)
        fixed_err, adaptive_err = [], []
        for _ in range(150):
            x_true = model.normalize_state(
                model.f(x_true, control) + np.sqrt(Q_DIAG) * rng.standard_normal(3)
            )
            z = suite.measure(x_true, rng)
            rf = fixed.step(control, xf, Pf, z)
            ra = adaptive.step(control, xa, Pa, z)
            xf, Pf = rf.state, rf.state_covariance
            xa, Pa = ra.state, ra.state_covariance
            fixed_err.append(np.linalg.norm(rf.sensor_anomaly))
            adaptive_err.append(np.linalg.norm(ra.sensor_anomaly))
        # The frozen model misattributes motion, inflating the testing-sensor
        # residuals (the Section V-G false-positive mechanism).
        assert np.mean(fixed_err[50:]) > 3.0 * np.mean(adaptive_err[50:])
