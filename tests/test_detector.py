"""Integration tests for the composed RoboADS detector on synthetic data."""

import numpy as np
import pytest

from repro.core.decision import DecisionConfig
from repro.core.detector import RoboADS
from repro.core.baseline import build_linearized_once_detector
from repro.core.modes import Mode
from repro.dynamics.unicycle import UnicycleModel
from repro.sensors.pose_sensors import IPS, InertialNavSensor, OdometryPoseSensor
from repro.sensors.suite import SensorSuite

Q = np.diag([1e-6, 1e-6, 4e-6])


def make_detector(**kwargs):
    model = UnicycleModel(dt=0.1)
    suite = SensorSuite(
        [
            IPS(sigma_xy=0.002, sigma_theta=0.004),
            OdometryPoseSensor(sigma_xy=0.003, sigma_theta=0.006),
            InertialNavSensor(sigma_xy=0.004, sigma_theta=0.008),
        ]
    )
    defaults = dict(
        initial_state=np.array([0.5, 0.5, 0.2]),
        nominal_control=np.array([0.2, 0.1]),
    )
    defaults.update(kwargs)
    detector = RoboADS(model, suite, Q, **defaults)
    return model, suite, detector


def drive(
    detector,
    model,
    suite,
    n_steps,
    sensor_bias=None,
    actuator_anomaly=None,
    trigger=20,
    seed=0,
):
    """Feed the detector synthetic (u, z) streams with optional corruption."""
    rng = np.random.default_rng(seed)
    x_true = np.array([0.5, 0.5, 0.2])
    control = np.array([0.2, 0.15])
    d_a = np.zeros(2) if actuator_anomaly is None else np.asarray(actuator_anomaly)
    reports = []
    for k in range(n_steps):
        executed = control + (d_a if k >= trigger else 0.0)
        x_true = model.normalize_state(
            model.f(x_true, executed) + np.sqrt(np.diag(Q)) * rng.standard_normal(3)
        )
        z = suite.measure(x_true, rng)
        if sensor_bias is not None and k >= trigger:
            name, vector = sensor_bias
            z[suite.slice_of(name)] += vector
        reports.append(detector.step(control, z))
    return reports


class TestRoboADS:
    def test_clean_run_no_alarms(self):
        model, suite, detector = make_detector()
        reports = drive(detector, model, suite, 80)
        flagged = [r for r in reports if r.flagged_sensors]
        actuator = [r for r in reports if r.actuator_alarm]
        assert len(flagged) <= 2
        assert len(actuator) <= 4

    def test_detects_and_identifies_sensor_bias(self):
        model, suite, detector = make_detector()
        reports = drive(
            detector, model, suite, 60, sensor_bias=("imu", np.array([0.1, 0.0, 0.0]))
        )
        post = reports[25:]
        hits = sum(1 for r in post if r.flagged_sensors == frozenset({"imu"}))
        assert hits / len(post) > 0.9

    def test_detects_actuator_anomaly(self):
        model, suite, detector = make_detector()
        reports = drive(detector, model, suite, 60, actuator_anomaly=np.array([0.08, 0.0]))
        post = reports[30:]
        assert sum(1 for r in post if r.actuator_alarm) / len(post) > 0.9

    def test_actuator_anomaly_quantified(self):
        model, suite, detector = make_detector()
        reports = drive(detector, model, suite, 80, actuator_anomaly=np.array([0.08, -0.05]))
        estimates = np.array([r.actuator_anomaly for r in reports[40:]])
        assert np.allclose(estimates.mean(axis=0), [0.08, -0.05], atol=0.03)

    def test_sensor_anomaly_quantified(self):
        model, suite, detector = make_detector()
        bias = np.array([0.07, 0.0, 0.0])
        reports = drive(detector, model, suite, 80, sensor_bias=("ips", bias))
        estimates = [r.sensor_anomaly("ips") for r in reports[40:]]
        estimates = np.array([e for e in estimates if e is not None])
        assert estimates.shape[0] > 20
        assert np.allclose(estimates.mean(axis=0), bias, atol=0.02)

    def test_report_fields(self):
        model, suite, detector = make_detector()
        report = drive(detector, model, suite, 1)[0]
        assert report.iteration == 1
        assert report.time == pytest.approx(model.dt)
        assert report.selected_mode in {"ref:ips", "ref:wheel_encoder", "ref:imu"}
        assert report.state_estimate.shape == (3,)
        # The reference sensor of the selected mode has no anomaly estimate.
        reference = report.selected_mode.split(":", 1)[1]
        assert report.sensor_anomaly(reference) is None

    def test_reset(self):
        model, suite, detector = make_detector()
        drive(detector, model, suite, 10)
        detector.reset()
        report = drive(detector, model, suite, 1)[0]
        assert report.iteration == 1

    def test_custom_decision_config(self):
        config = DecisionConfig(sensor_window=4, sensor_criteria=4)
        model, suite, detector = make_detector(decision=config)
        assert detector.decision_config.sensor_window == 4

    def test_mode_probabilities_exposed(self):
        model, suite, detector = make_detector()
        drive(detector, model, suite, 5)
        probs = detector.mode_probabilities
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_custom_modes(self):
        model0, suite0, _ = make_detector()
        modes = [Mode.for_suite(suite0, ("ips", "wheel_encoder"))]
        model, suite, detector = make_detector(modes=modes)
        report = drive(detector, model, suite, 3)[-1]
        assert report.selected_mode == "ref:ips+wheel_encoder"


class TestBaselineDetector:
    def test_builds_and_runs(self):
        model = UnicycleModel(dt=0.1)
        suite = SensorSuite(
            [IPS(sigma_xy=0.002, sigma_theta=0.004), OdometryPoseSensor(sigma_xy=0.003, sigma_theta=0.006)]
        )
        detector = build_linearized_once_detector(
            model, suite, Q, initial_state=np.array([0.5, 0.5, 0.2])
        )
        report = detector.step(np.array([0.2, 0.0]), suite.h(np.array([0.52, 0.5, 0.2])))
        assert report.iteration == 1

    def test_baseline_false_positives_on_turns(self):
        """The frozen linearization false-alarms once the robot turns."""
        model = UnicycleModel(dt=0.1)
        suite = SensorSuite(
            [IPS(sigma_xy=0.002, sigma_theta=0.004), OdometryPoseSensor(sigma_xy=0.003, sigma_theta=0.006)]
        )
        x0 = np.array([0.5, 0.5, 0.2])
        baseline = build_linearized_once_detector(model, suite, Q, initial_state=x0)
        adaptive = RoboADS(
            model, suite, Q, initial_state=x0, nominal_control=np.array([0.2, 0.1])
        )
        rng = np.random.default_rng(5)
        x_true = x0.copy()
        control = np.array([0.2, 0.3])
        base_flags = ours_flags = 0
        for _ in range(120):
            x_true = model.normalize_state(
                model.f(x_true, control) + np.sqrt(np.diag(Q)) * rng.standard_normal(3)
            )
            z = suite.measure(x_true, rng)
            if baseline.step(control, z).flagged_sensors:
                base_flags += 1
            if adaptive.step(control, z).flagged_sensors:
                ours_flags += 1
        assert base_flags > 30
        assert ours_flags <= 3
