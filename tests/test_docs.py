"""Docs gate: run ``scripts/check_docs.py`` as part of tier-1.

The script owns the logic (markdown link validity + public-API docstring
coverage); these tests wire it into the default pytest run and pin its
failure-detection behavior so a broken checker can't silently pass.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def check_docs():
    """Import ``scripts/check_docs.py`` as a module (scripts/ is not a package)."""
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "scripts" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_gate_passes(check_docs, capsys):
    """The repository's docs must be clean: exit status 0, OK report."""
    assert check_docs.main([]) == 0
    assert "check_docs: OK" in capsys.readouterr().out


def test_link_checker_detects_broken_link(check_docs, tmp_path):
    (tmp_path / "docs").mkdir()
    for rel in check_docs.MARKDOWN_FILES:
        path = tmp_path / rel
        path.parent.mkdir(exist_ok=True)
        path.write_text("[ok](../README.md)\n" if "/" in rel else "fine\n")
    (tmp_path / "README.md").write_text(
        "[gone](docs/NOPE.md) [web](https://example.com) [anchor](#here)\n"
        "```\n[inside a fence](docs/ALSO_NOPE.md)\n```\n"
    )
    findings = check_docs.check_markdown_links(tmp_path)
    assert findings == ["README.md:1: broken link -> docs/NOPE.md"]


def test_docstring_checker_detects_gaps(check_docs, tmp_path, monkeypatch):
    module = tmp_path / "mod.py"
    module.write_text(
        '"""Module docstring."""\n'
        "class Public:\n"
        '    """Documented."""\n'
        "    def bare(self):\n"
        "        return 1\n"
        "    def _private(self):\n"
        "        return 2\n"
        "class _Hidden:\n"
        "    def also_bare(self):\n"
        "        return 3\n"
        "def naked():\n"
        "    return 4\n"
    )
    monkeypatch.setattr(check_docs, "DOCSTRING_MODULES", ("mod.py",))
    findings = check_docs.check_docstrings(tmp_path)
    assert findings == [
        "mod.py:4: D102 missing docstring on method Public.bare",
        "mod.py:11: D103 missing docstring on function naked",
    ]
