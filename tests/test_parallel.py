"""Process-pool evaluation: parallel results must be bit-identical to serial.

The contract under test (see ``docs/PERFORMANCE.md``): for any worker
count, ``monte_carlo(..., parallel=...)`` and
``run_fault_campaign(..., parallel=...)`` produce exactly the serial
results — same reports, same metrics, same delays, same telemetry event
sequence — because workers derive every random stream with the serial
loop's seed arithmetic and replay through detectors that reset per trace.
"""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest

from repro.attacks.catalog import khepera_scenarios
from repro.errors import ConfigurationError, ParallelExecutionError
from repro.eval.fault_campaign import run_fault_campaign
from repro.eval.parallel import (
    ParallelConfig,
    as_parallel_config,
    map_trials,
)
from repro.eval.runner import monte_carlo
from repro.obs.telemetry import NullTelemetry, RecordingTelemetry
from repro.obs.timing import StageTimer
from repro.sim.faults import uniform_dropout_schedule

pytestmark = pytest.mark.parallel

DURATION = 4.0


def _assert_results_equal(serial, parallel):
    assert len(serial) == len(parallel)
    for s, p in zip(serial, parallel):
        assert s.seed == p.seed
        assert s.scenario_name == p.scenario_name
        assert len(s.trace) == len(p.trace)
        np.testing.assert_array_equal(
            np.asarray(s.trace.true_states), np.asarray(p.trace.true_states)
        )
        np.testing.assert_array_equal(
            np.asarray(s.trace.readings), np.asarray(p.trace.readings)
        )
        for rs, rp in zip(s.reports, p.reports):
            assert rs.selected_mode == rp.selected_mode
            np.testing.assert_array_equal(rs.state_estimate, rp.state_estimate)
            assert rs.statistics.sensor_statistic == rp.statistics.sensor_statistic
            assert rs.statistics.actuator_statistic == rp.statistics.actuator_statistic
            assert rs.flagged_sensors == rp.flagged_sensors
            assert rs.actuator_alarm == rp.actuator_alarm
        assert s.sensor_confusion.__dict__ == p.sensor_confusion.__dict__
        assert s.actuator_confusion.__dict__ == p.actuator_confusion.__dict__
        assert [(e.channel, e.delay) for e in s.delays] == [
            (e.channel, e.delay) for e in p.delays
        ]


def _dropout_factory(seed: int):
    """Module-level fault factory: picklable under any start method."""
    return uniform_dropout_schedule(("ips", "lidar"), 0.1, seed=seed)


# ----------------------------------------------------------------------
# monte_carlo equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [2, 4])
def test_monte_carlo_parallel_equals_serial(khepera, workers):
    scenario = khepera_scenarios()[0]
    serial = monte_carlo(khepera, scenario, 4, base_seed=7, duration=DURATION)
    parallel = monte_carlo(
        khepera,
        scenario,
        4,
        base_seed=7,
        duration=DURATION,
        parallel=ParallelConfig(workers=workers),
    )
    _assert_results_equal(serial, parallel)


def test_monte_carlo_parallel_chunk_size_irrelevant(khepera):
    """Chunk boundaries cannot influence results (detector resets per trace)."""
    scenario = khepera_scenarios()[1]
    serial = monte_carlo(khepera, scenario, 3, base_seed=21, duration=DURATION)
    parallel = monte_carlo(
        khepera,
        scenario,
        3,
        base_seed=21,
        duration=DURATION,
        parallel=ParallelConfig(workers=2, chunk_size=1),
    )
    _assert_results_equal(serial, parallel)


def test_monte_carlo_parallel_with_fault_factory(khepera):
    scenario = khepera_scenarios()[0]
    kwargs = dict(
        base_seed=3, duration=DURATION, stop_at_goal=False, faults=_dropout_factory
    )
    serial = monte_carlo(khepera, scenario, 3, **kwargs)
    parallel = monte_carlo(khepera, scenario, 3, parallel=2, **kwargs)
    _assert_results_equal(serial, parallel)
    assert any(a is not None for r in parallel for a in r.trace.availability)


def test_monte_carlo_parallel_telemetry_matches_serial(khepera):
    scenario = khepera_scenarios()[0]
    serial_sink, parallel_sink = RecordingTelemetry(), RecordingTelemetry()
    serial = monte_carlo(
        khepera, scenario, 3, base_seed=5, duration=DURATION, telemetry=serial_sink
    )
    parallel = monte_carlo(
        khepera,
        scenario,
        3,
        base_seed=5,
        duration=DURATION,
        telemetry=parallel_sink,
        parallel=2,
    )
    _assert_results_equal(serial, parallel)
    assert len(parallel_sink.events) == len(serial_sink.events)
    assert [e.kind for e in parallel_sink.events] == [e.kind for e in serial_sink.events]
    assert [e.iteration for e in parallel_sink.events] == [
        e.iteration for e in serial_sink.events
    ]


def test_monte_carlo_parallel_rejects_non_mergeable_telemetry(khepera):
    with pytest.raises(ConfigurationError, match="RecordingTelemetry"):
        monte_carlo(
            khepera,
            khepera_scenarios()[0],
            2,
            duration=DURATION,
            telemetry=NullTelemetry(),
            parallel=2,
        )


def test_monte_carlo_responder_falls_back_to_serial(khepera):
    """A responder closes the loop: parallel must quietly run serial."""
    from repro.core.response import NavigationFailover

    results = monte_carlo(
        khepera,
        khepera_scenarios()[0],
        2,
        base_seed=5,
        duration=DURATION,
        responder=NavigationFailover((khepera.nav_sensor,)),
        parallel=2,
    )
    assert len(results) == 2


def test_monte_carlo_parallel_rejects_unknown_kwargs(khepera):
    with pytest.raises(ConfigurationError, match="path_sed"):
        monte_carlo(
            khepera, khepera_scenarios()[0], 2, duration=DURATION, parallel=2, path_sed=1
        )


# ----------------------------------------------------------------------
# Fault campaign equivalence (incl. telemetry_factory merging)
# ----------------------------------------------------------------------
def _campaign_kwargs():
    return dict(
        intensities=(0.0, 0.1),
        n_trials=2,
        base_seed=11,
        duration=DURATION,
        stop_at_goal=False,
    )


def _assert_cells_equal(a, b):
    assert len(a.cells) == len(b.cells)
    for ca, cb in zip(a.cells, b.cells):
        assert (ca.scenario_number, ca.intensity) == (cb.scenario_number, cb.intensity)
        assert ca.sensor_confusion.__dict__ == cb.sensor_confusion.__dict__
        assert ca.actuator_confusion.__dict__ == cb.actuator_confusion.__dict__
        assert ca.mean_sensor_delay == cb.mean_sensor_delay
        assert ca.mean_actuator_delay == cb.mean_actuator_delay
        assert ca.degraded_fraction == cb.degraded_fraction
        assert ca.finite == cb.finite


@pytest.mark.parametrize("workers", [2, 4])
def test_fault_campaign_parallel_equals_serial(khepera, workers):
    scenarios = [s for s in khepera_scenarios() if s.number in (1, 4)]
    serial = run_fault_campaign(khepera, scenarios, **_campaign_kwargs())
    parallel = run_fault_campaign(
        khepera, scenarios, parallel=ParallelConfig(workers=workers), **_campaign_kwargs()
    )
    _assert_cells_equal(serial, parallel)


def test_fault_campaign_parallel_telemetry_factory(khepera):
    """One RecordingTelemetry per cell trial, merged parent-side.

    The parallel campaign must end with the caller's sinks holding exactly
    the event sequences a serial campaign records into them.
    """
    scenarios = [s for s in khepera_scenarios() if s.number in (1,)]

    def make_factory(store):
        def factory(scenario, intensity, trial):
            key = (scenario.number, intensity, trial)
            if key not in store:
                store[key] = RecordingTelemetry()
            return store[key]

        return factory

    serial_sinks, parallel_sinks = {}, {}
    serial = run_fault_campaign(
        khepera, scenarios, telemetry_factory=make_factory(serial_sinks), **_campaign_kwargs()
    )
    parallel = run_fault_campaign(
        khepera,
        scenarios,
        telemetry_factory=make_factory(parallel_sinks),
        parallel=2,
        **_campaign_kwargs(),
    )
    _assert_cells_equal(serial, parallel)
    assert set(serial_sinks) == set(parallel_sinks)
    assert serial_sinks, "factory should have been invoked"
    for key, serial_sink in serial_sinks.items():
        parallel_sink = parallel_sinks[key]
        assert len(parallel_sink.events) == len(serial_sink.events), key
        assert [e.kind for e in parallel_sink.events] == [
            e.kind for e in serial_sink.events
        ]
        assert parallel_sink.timing_summary().keys() == serial_sink.timing_summary().keys()


def test_fault_campaign_parallel_rejects_reserved_kwargs(khepera):
    scenarios = khepera_scenarios()[:1]
    with pytest.raises(ConfigurationError, match="faults"):
        run_fault_campaign(khepera, scenarios, faults=None, parallel=2)


# ----------------------------------------------------------------------
# Crash handling and pickling constraints
# ----------------------------------------------------------------------
def _exploding_factory(seed: int):
    raise RuntimeError(f"boom at seed {seed}")


def test_worker_crash_surfaces_traceback_and_trials(khepera):
    scenario = khepera_scenarios()[0]
    with pytest.raises(ParallelExecutionError) as excinfo:
        monte_carlo(
            khepera,
            scenario,
            3,
            base_seed=40,
            duration=DURATION,
            faults=_exploding_factory,
            parallel=2,
        )
    message = str(excinfo.value)
    assert "boom at seed 40" in message
    assert "RuntimeError" in message
    assert "40" in message  # the chunk's trial descriptors name the seeds


def test_unpicklable_shared_fault_schedule_rejected(khepera):
    schedule = uniform_dropout_schedule(("ips",), 0.1, seed=1)
    schedule.unpicklable = lambda: None
    with pytest.raises(ConfigurationError, match="picklable"):
        monte_carlo(
            khepera,
            khepera_scenarios()[0],
            2,
            duration=DURATION,
            faults=schedule,
            parallel=2,
        )


def test_map_trials_chunk_length_mismatch_raises():
    with pytest.raises(ParallelExecutionError, match="one result per trial"):
        map_trials(_short_chunk, [1, 2, 3], parallel=1)


def _short_chunk(payload, items):
    return items[:-1]  # drops one result: must be caught, not silently shifted


# ----------------------------------------------------------------------
# map_trials mechanics
# ----------------------------------------------------------------------
def _square_chunk(payload, items):
    return [payload + item * item for item in items]


@pytest.mark.parametrize("workers,chunk_size", [(1, 0), (2, 1), (2, 3), (4, 2)])
def test_map_trials_order_and_chunking(workers, chunk_size):
    items = list(range(11))
    out = map_trials(
        _square_chunk,
        items,
        parallel=ParallelConfig(workers=workers, chunk_size=chunk_size),
        payload=100,
    )
    assert out == [100 + i * i for i in items]


def test_map_trials_empty_items():
    assert map_trials(_square_chunk, [], parallel=2, payload=0) == []


# ----------------------------------------------------------------------
# ParallelConfig / spec normalization
# ----------------------------------------------------------------------
def test_parallel_config_validation():
    with pytest.raises(ConfigurationError, match="start_method"):
        ParallelConfig(start_method="not-a-method")
    with pytest.raises(ConfigurationError):
        ParallelConfig(workers=1.5)
    config = ParallelConfig()
    assert config.resolved_workers() >= 1
    assert config.resolved_chunk_size(100) >= 1
    assert ParallelConfig(workers=3).resolved_workers() == 3
    assert ParallelConfig(chunk_size=7).resolved_chunk_size(100) == 7
    assert ParallelConfig().resolved_start_method() in ("fork", "spawn")


def test_as_parallel_config_normalization():
    assert as_parallel_config(None) is None
    assert as_parallel_config(4).workers == 4
    config = ParallelConfig(workers=2)
    assert as_parallel_config(config) is config
    with pytest.raises(ConfigurationError):
        as_parallel_config(True)
    with pytest.raises(ConfigurationError):
        as_parallel_config("four")


# ----------------------------------------------------------------------
# Merge primitives
# ----------------------------------------------------------------------
def test_stage_timer_merge_is_exact():
    samples_a = [0.001, 0.003, 0.0006, 0.02]
    samples_b = [0.005, 0.0001, 0.008]
    whole, part_a, part_b = StageTimer("s"), StageTimer("s"), StageTimer("s")
    for s in samples_a + samples_b:
        whole.add(s)
    for s in samples_a:
        part_a.add(s)
    for s in samples_b:
        part_b.add(s)
    part_a.merge(part_b)
    assert part_a.count == whole.count
    assert math.isclose(part_a.total, whole.total)
    assert math.isclose(part_a.mean, whole.mean)
    assert math.isclose(part_a.stddev, whole.stddev)
    assert part_a.min == whole.min and part_a.max == whole.max
    assert part_a.buckets == whole.buckets


def test_stage_timer_merge_empty_sides():
    empty, full = StageTimer("s"), StageTimer("s")
    full.add(0.002)
    full.merge(StageTimer("s"))  # merging empty is a no-op
    assert full.count == 1
    empty.merge(full)
    assert empty.count == 1 and empty.mean == full.mean


def test_recording_telemetry_merge_and_pickle_roundtrip():
    from repro.obs.telemetry import AvailabilityEvent

    a, b = RecordingTelemetry(), RecordingTelemetry()
    a.emit(AvailabilityEvent(iteration=1, available=("ips",), missing=("lidar",)))
    a.record_duration("engine", 0.001)
    b.emit(AvailabilityEvent(iteration=2, available=("lidar",), missing=("ips",)))
    b.record_duration("engine", 0.003)
    b.record_duration("decision", 0.0005)

    restored = pickle.loads(pickle.dumps(b))
    a.merge(restored)
    assert [e.iteration for e in a.events] == [1, 2]
    assert a.timers["engine"].count == 2
    assert math.isclose(a.timers["engine"].total, 0.004)
    assert a.timers["decision"].count == 1
