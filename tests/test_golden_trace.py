"""Golden-trace regression: canonical missions pinned to 1e-10.

Two fault-free missions (200-step Khepera and Tamiya, fixed seeds) are
frozen under ``tests/golden/``. These tests re-run the exact missions and
compare every per-iteration statistic against the archive — any numerical
drift from a refactor fails here before it skews Table II/III numbers.

The zero-intensity tests additionally pin the ISSUE acceptance criterion:
a fault schedule whose every model has zero intensity must leave the
mission *identical* to the no-fault path (fault RNG streams are spawned
independently of the simulation noise stream, so the realization cannot
shift).

Regenerate archives only for an intentional change:
``PYTHONPATH=src python scripts/make_golden_traces.py``.
"""

from pathlib import Path

import pytest

from repro.eval.golden import GOLDEN_MISSIONS, compare_golden, golden_mission, load_golden
from repro.sim.faults import (
    BernoulliDropout,
    DuplicateFault,
    FaultSchedule,
    LatencyFault,
    OutOfOrderFault,
    PayloadCorruption,
    TimestampJitter,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def fresh_clean():
    """Fresh no-fault mission runs, cached per mission for this module."""
    cache: dict[str, dict] = {}

    def get(mission: str) -> dict:
        if mission not in cache:
            cache[mission] = golden_mission(mission)
        return cache[mission]

    return get


def zero_intensity_schedule(sensor_names) -> FaultSchedule:
    """Every fault model, on every sensor, at zero intensity."""
    faults = []
    for name in sensor_names:
        faults.extend(
            [
                BernoulliDropout(name, 0.0),
                LatencyFault(name, delay=1, probability=0.0),
                DuplicateFault(name, 0.0),
                OutOfOrderFault(name, 0.0),
                PayloadCorruption(name, 0.0),
                TimestampJitter(name, skew=0.01, probability=0.0),
            ]
        )
    return FaultSchedule(faults, seed=123)


@pytest.mark.parametrize("mission", sorted(GOLDEN_MISSIONS))
class TestGoldenTrace:
    def test_clean_mission_matches_archive(self, mission, fresh_clean):
        stored = load_golden(GOLDEN_DIR / f"{mission}_200.npz")
        drifted = compare_golden(fresh_clean(mission), stored, atol=1e-10)
        assert not drifted, f"golden drift beyond 1e-10 in: {drifted}"

    def test_zero_intensity_faults_identical_to_clean(self, mission, fresh_clean):
        stored = load_golden(GOLDEN_DIR / f"{mission}_200.npz")
        sensors = tuple(str(n) for n in stored["sensor_names"])
        fresh = golden_mission(mission, faults=zero_intensity_schedule(sensors))
        # Exact identity, not tolerance: zero-intensity faults must leave
        # the delivered readings and every downstream statistic untouched
        # relative to the no-fault path (fault RNG streams are spawned
        # independently of the simulation noise stream).
        drifted = compare_golden(fresh, fresh_clean(mission), atol=0.0)
        assert not drifted, f"zero-intensity faults perturbed: {drifted}"
        # And the faulted run stays pinned to the archive like the clean one.
        drifted = compare_golden(fresh, stored, atol=1e-10)
        assert not drifted, f"golden drift beyond 1e-10 in: {drifted}"
