"""End-to-end detection tests: full closed loop, attack to identification.

These are the load-bearing reproduction tests: each asserts that a Table II
style misbehavior launched mid-mission is detected, correctly identified and
quantified by the full pipeline (simulator -> workflows -> RoboADS).
"""

import numpy as np
import pytest

from repro.attacks.catalog import khepera_scenarios, tamiya_scenarios
from repro.eval.runner import run_scenario


def scenario_by_number(scenarios, number):
    return next(s for s in scenarios if s.number == number)


@pytest.fixture(scope="module")
def khepera_rig_():
    from repro.robots.khepera import khepera_rig

    rig = khepera_rig()
    rig.plan_path(0)
    return rig


@pytest.fixture(scope="module")
def tamiya_rig_():
    from repro.robots.tamiya import tamiya_rig

    rig = tamiya_rig()
    rig.plan_path(0)
    return rig


class TestKheperaScenarios:
    def test_wheel_logic_bomb_detected(self, khepera_rig_):
        result = run_scenario(khepera_rig_, scenario_by_number(khepera_scenarios(), 1), seed=7)
        assert result.actuator_confusion.false_negative_rate < 0.15
        assert result.sensor_confusion.false_positive_rate < 0.05
        assert result.mean_delay("actuator") < 1.0

    def test_wheel_jamming_detected(self, khepera_rig_):
        result = run_scenario(khepera_rig_, scenario_by_number(khepera_scenarios(), 2), seed=7)
        assert result.actuator_confusion.false_negative_rate < 0.15

    def test_ips_spoofing_identified(self, khepera_rig_):
        result = run_scenario(khepera_rig_, scenario_by_number(khepera_scenarios(), 4), seed=7)
        assert result.sensor_confusion.false_negative_rate < 0.05
        # The identified set must be exactly {ips} once confirmed.
        post = [
            r.flagged_sensors
            for k, r in enumerate(result.trace.reports)
            if result.trace.truth_sensors[k]
        ]
        exact = sum(1 for f in post if f == frozenset({"ips"}))
        assert exact / len(post) > 0.9

    def test_anomaly_quantification_matches_injection(self, khepera_rig_):
        result = run_scenario(khepera_rig_, scenario_by_number(khepera_scenarios(), 3), seed=7)
        estimates = []
        for k, r in enumerate(result.trace.reports):
            if result.trace.truth_sensors[k] and r.sensor_anomaly("ips") is not None:
                estimates.append(r.sensor_anomaly("ips")[0])
        assert np.mean(estimates[10:]) == pytest.approx(0.07, abs=0.01)

    def test_lidar_dos_from_start(self, khepera_rig_):
        result = run_scenario(khepera_rig_, scenario_by_number(khepera_scenarios(), 6), seed=7)
        assert result.sensor_confusion.false_negative_rate < 0.05

    def test_two_corrupted_sensors_identified_without_voting(self, khepera_rig_):
        """Scenarios with 2/3 sensors corrupted: no majority voting needed."""
        result = run_scenario(khepera_rig_, scenario_by_number(khepera_scenarios(), 11), seed=7)
        # After the second trigger, condition is {ips, wheel_encoder}.
        idx = result.trace.first_index_at(8.5)
        post = [
            r.flagged_sensors for r in result.trace.reports[idx:]
        ]
        exact = sum(1 for f in post if f == frozenset({"ips", "wheel_encoder"}))
        assert exact / len(post) > 0.85

    def test_lidar_recovery_clears_flag(self, khepera_rig_):
        """Scenario 10: after the DoS window ends the LiDAR flag must clear."""
        result = run_scenario(khepera_rig_, scenario_by_number(khepera_scenarios(), 10), seed=7)
        idx = result.trace.first_index_at(10.0)
        post = [r.flagged_sensors for r in result.trace.reports[idx:]]
        assert sum(1 for f in post if "lidar" in f) / len(post) < 0.1
        assert sum(1 for f in post if f == frozenset({"ips"})) / len(post) > 0.85

    def test_combined_sensor_actuator(self, khepera_rig_):
        result = run_scenario(khepera_rig_, scenario_by_number(khepera_scenarios(), 8), seed=7)
        assert result.sensor_confusion.false_negative_rate < 0.05
        assert result.actuator_confusion.false_negative_rate < 0.15


class TestKheperaRawPipelines:
    """The raw LiDAR pipeline must support the same detection story."""

    def test_lidar_raw_clean_no_false_alarms(self):
        from repro.robots.khepera import khepera_rig

        rig = khepera_rig(lidar_mode="raw")
        rig.plan_path(0)
        result = run_scenario(rig, None, seed=3, duration=8.0)
        assert result.sensor_confusion.false_positive_rate < 0.10

    def test_lidar_raw_dos_detected(self):
        from repro.robots.khepera import khepera_rig

        rig = khepera_rig(lidar_mode="raw")
        rig.plan_path(0)
        scenario = scenario_by_number(khepera_scenarios(), 6)
        result = run_scenario(rig, scenario, seed=3, duration=8.0)
        assert result.sensor_confusion.false_negative_rate < 0.10


class TestTamiyaScenarios:
    def test_throttle_bomb(self, tamiya_rig_):
        result = run_scenario(tamiya_rig_, scenario_by_number(tamiya_scenarios(), 1), seed=5)
        assert result.actuator_confusion.false_negative_rate < 0.20

    def test_imu_bomb_identified(self, tamiya_rig_):
        result = run_scenario(tamiya_rig_, scenario_by_number(tamiya_scenarios(), 5), seed=5)
        assert result.sensor_confusion.false_negative_rate < 0.05
        post = [
            r.flagged_sensors
            for k, r in enumerate(result.trace.reports)
            if result.trace.truth_sensors[k]
        ]
        exact = sum(1 for f in post if f == frozenset({"imu"}))
        assert exact / len(post) > 0.9

    def test_clean_mission_quiet(self, tamiya_rig_):
        result = run_scenario(tamiya_rig_, None, seed=5)
        assert result.sensor_confusion.false_positive_rate < 0.03
        assert result.actuator_confusion.false_positive_rate < 0.05
