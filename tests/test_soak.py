"""Long-horizon soak tests: numerical stability over thousands of iterations.

A detector deployed on a real robot runs for hours, not 20-second missions.
These tests drive a patrol circuit for thousands of control iterations and
assert the properties that silently rot in unstable filters: bounded
covariances, normalized mode probabilities, a flat false-alarm rate, and
intact detection sensitivity at the end of the soak.

The opt-in ``soak``-marked fleet test extends the idea to the streaming
layer: ≥1000 concurrent :class:`~repro.serve.service.FleetService` sessions
under randomized producer interleaving, small bounded queues (so
backpressure actually engages) and dirty per-robot delivery, with every
robot's reports required to be bit-identical across schedules and to a
serial reference. Run it with ``pytest -m soak``.
"""

import asyncio

import numpy as np
import pytest

from repro.core.detector import RoboADS
from repro.dynamics.differential_drive import DifferentialDriveModel
from repro.eval.session_replay import report_drift
from repro.planning.path import Path
from repro.planning.tracking import DifferentialDriveTracker
from repro.sensors.lidar import WallDistanceSensor
from repro.sensors.pose_sensors import IPS, OdometryPoseSensor
from repro.sensors.suite import SensorSuite
from repro.serve import DetectorSession, FleetService, SessionMessage
from repro.world.map import WorldMap

PROCESS = np.diag([0.0005**2, 0.0005**2, 0.0015**2])


def patrol_setup():
    world = WorldMap.rectangle(3.0, 3.0)
    model = DifferentialDriveModel(dt=0.05)
    suite = SensorSuite([IPS(), OdometryPoseSensor(), WallDistanceSensor(world)])
    circuit = Path(
        [(0.7, 0.7), (2.3, 0.7), (2.3, 2.3), (0.7, 2.3), (0.7, 0.75)]
    )
    tracker = DifferentialDriveTracker(model, circuit, cruise_speed=0.2, loop=True)
    detector = RoboADS(
        model, suite, PROCESS,
        initial_state=np.array([0.7, 0.7, 0.0]),
        nominal_control=np.array([0.1, 0.12]),
    )
    return world, model, suite, tracker, detector


class TestPatrolLoop:
    def test_tracker_laps_the_circuit(self):
        _, model, _, tracker, _ = patrol_setup()
        pose = np.array([0.7, 0.7, 0.0])
        for _ in range(4000):
            command = tracker.command(pose, model.dt)
            pose = model.f(pose, command)
        assert tracker.laps >= 2
        assert not tracker.goal_reached


@pytest.mark.slow
class TestSoak:
    N_STEPS = 5000  # 250 s of 20 Hz patrol

    def run_soak(self):
        _, model, suite, tracker, detector = patrol_setup()
        rng = np.random.default_rng(77)
        x_true = np.array([0.7, 0.7, 0.0])
        q_sqrt = np.sqrt(np.diag(PROCESS))
        nav = x_true.copy()
        false_alarm_iters = 0
        max_cov_trace = 0.0
        for k in range(self.N_STEPS):
            command = tracker.command(nav, model.dt)
            x_true = model.normalize_state(
                model.f(x_true, command) + q_sqrt * rng.standard_normal(3)
            )
            z = suite.measure(x_true, rng)
            report = detector.step(command, z)
            nav = z[suite.slice_of("ips")][:3]
            if report.flagged_sensors or report.actuator_alarm:
                false_alarm_iters += 1
            probs = report.statistics.mode_probabilities
            assert abs(sum(probs.values()) - 1.0) < 1e-9
            max_cov_trace = max(
                max_cov_trace, float(np.trace(detector.engine.state_covariance))
            )
        return detector, tracker, false_alarm_iters, max_cov_trace, x_true, rng, model, suite

    def test_soak_stability_and_sensitivity(self):
        (
            detector,
            tracker,
            false_alarms,
            max_cov_trace,
            x_true,
            rng,
            model,
            suite,
        ) = self.run_soak()
        # Multiple laps actually driven.
        assert tracker.laps >= 3
        # Flat false-alarm rate over the whole soak (actuator channel's
        # alpha=0.05 with 3/6 windows leaves a small background duty).
        assert false_alarms / self.N_STEPS < 0.05
        # Covariances bounded (no filter divergence or collapse).
        assert max_cov_trace < 1e-2
        final_P = detector.engine.state_covariance
        assert np.all(np.diag(final_P) > 0.0)

        # Sensitivity intact after the soak: inject an IPS bias now and it
        # must still be confirmed within a few iterations.
        command = np.array([0.15, 0.15])
        detected = 0
        for _ in range(20):
            x_true = model.normalize_state(model.f(x_true, command))
            z = suite.measure(x_true, rng)
            z[suite.slice_of("ips")][0] += 0.07
            report = detector.step(command, z)
            if report.flagged_sensors == frozenset({"ips"}):
                detected += 1
        assert detected >= 15


def fleet_detector() -> RoboADS:
    """A cheap three-sensor detector, one per fleet robot."""
    world = WorldMap.rectangle(3.0, 3.0)
    suite = SensorSuite([IPS(), OdometryPoseSensor(), WallDistanceSensor(world)])
    return RoboADS(
        DifferentialDriveModel(dt=0.05),
        suite,
        PROCESS,
        initial_state=np.array([1.5, 1.5, 0.0]),
        nominal_control=np.array([0.1, 0.12]),
    )


def fleet_messages(robot_index: int, n_steps: int) -> list[SessionMessage]:
    """One robot's message stream; a third of the fleet gets dirty delivery.

    Robots cycle through three delivery personas: clean, degraded (a sensor
    missing on every third iteration), and redelivering (stale duplicates of
    earlier messages injected mid-stream — suppressed by the default
    ``drop_stale`` ingest policy).
    """
    model = DifferentialDriveModel(dt=0.05)
    world = WorldMap.rectangle(3.0, 3.0)
    suite = SensorSuite([IPS(), OdometryPoseSensor(), WallDistanceSensor(world)])
    rng = np.random.default_rng(1_000_003 * (robot_index + 1))
    x = np.array([1.5, 1.5, 0.0])
    q_sqrt = np.sqrt(np.diag(PROCESS))
    persona = robot_index % 3
    messages: list[SessionMessage] = []
    for k in range(n_steps):
        u = np.array([0.1, 0.12]) + 0.05 * rng.standard_normal(2)
        x = model.normalize_state(model.f(x, u) + q_sqrt * rng.standard_normal(3))
        z = suite.measure(x, rng)
        available = None
        if persona == 1 and k % 3 == 2:
            available = ("ips", "wheel_encoder")
        messages.append(
            SessionMessage(seq=k, t=k * model.dt, control=u, reading=z, available=available)
        )
        if persona == 2 and k >= 2 and k % 4 == 2:
            messages.append(messages[k - 2])  # stale redelivery
    return messages


@pytest.mark.soak
class TestFleetSoak:
    """≥1000 concurrent sessions; reports independent of scheduling."""

    N_ROBOTS = 1000
    N_STEPS = 12
    QUEUE_CAPACITY = 4  # small on purpose: producers must hit backpressure

    def robot_ids(self):
        return [f"robot-{i:04d}" for i in range(self.N_ROBOTS)]

    def streams(self):
        return {
            robot_id: fleet_messages(i, self.N_STEPS)
            for i, robot_id in enumerate(self.robot_ids())
        }

    async def run_fleet(self, streams, schedule_seed: int):
        """Drive the whole fleet concurrently under one randomized schedule.

        Each robot has its own producer coroutine; a per-producer RNG decides
        after every submit whether to yield the event loop, so different
        seeds interleave the robots differently. Correctness must not care.
        """
        service = FleetService(queue_capacity=self.QUEUE_CAPACITY)
        for robot_id in streams:
            await service.open_session(robot_id, fleet_detector())

        async def produce(robot_id, messages, seed):
            rng = np.random.default_rng(seed)
            for message in messages:
                await service.submit(robot_id, message)
                if rng.random() < 0.5:
                    await asyncio.sleep(0)

        await asyncio.gather(
            *(
                produce(robot_id, messages, schedule_seed * self.N_ROBOTS + i)
                for i, (robot_id, messages) in enumerate(streams.items())
            )
        )
        return await service.close_all()

    def test_thousand_sessions_schedule_independent(self):
        streams = self.streams()
        first = asyncio.run(self.run_fleet(streams, schedule_seed=1))
        second = asyncio.run(self.run_fleet(streams, schedule_seed=2))
        assert len(first) == self.N_ROBOTS

        # Bounded queues really engaged: with capacity 4 and 12+ messages per
        # robot, producers must have filled a queue somewhere in the fleet.
        assert max(r.max_queue_depth for r in first.values()) == self.QUEUE_CAPACITY
        assert all(
            r.max_queue_depth <= self.QUEUE_CAPACITY for r in first.values()
        )

        # Dirty delivery personas actually exercised their paths.
        suppressed = sum(
            r.ingest.duplicates + r.ingest.dropped_stale for r in first.values()
        )
        assert suppressed > 0
        assert all(r.ingest.processed == self.N_STEPS for r in first.values())

        # The core claim: per-robot reports are independent of scheduling.
        for robot_id in streams:
            assert (
                report_drift(second[robot_id].reports, first[robot_id].reports, atol=0.0)
                == []
            ), f"{robot_id} drifted between schedules"

        # And a sample of robots (every 97th, all three personas) matches a
        # serial single-session reference bit-for-bit.
        for robot_id in list(streams)[:: 97]:
            session = DetectorSession(fleet_detector(), robot_id=robot_id)
            serial = [
                r for m in streams[robot_id] if (r := session.process(m)) is not None
            ]
            assert (
                report_drift(first[robot_id].reports, serial, atol=0.0) == []
            ), f"{robot_id} drifted from the serial reference"
