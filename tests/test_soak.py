"""Long-horizon soak tests: numerical stability over thousands of iterations.

A detector deployed on a real robot runs for hours, not 20-second missions.
These tests drive a patrol circuit for thousands of control iterations and
assert the properties that silently rot in unstable filters: bounded
covariances, normalized mode probabilities, a flat false-alarm rate, and
intact detection sensitivity at the end of the soak.
"""

import numpy as np
import pytest

from repro.core.detector import RoboADS
from repro.dynamics.differential_drive import DifferentialDriveModel
from repro.planning.path import Path
from repro.planning.tracking import DifferentialDriveTracker
from repro.sensors.lidar import WallDistanceSensor
from repro.sensors.pose_sensors import IPS, OdometryPoseSensor
from repro.sensors.suite import SensorSuite
from repro.world.map import WorldMap

PROCESS = np.diag([0.0005**2, 0.0005**2, 0.0015**2])


def patrol_setup():
    world = WorldMap.rectangle(3.0, 3.0)
    model = DifferentialDriveModel(dt=0.05)
    suite = SensorSuite([IPS(), OdometryPoseSensor(), WallDistanceSensor(world)])
    circuit = Path(
        [(0.7, 0.7), (2.3, 0.7), (2.3, 2.3), (0.7, 2.3), (0.7, 0.75)]
    )
    tracker = DifferentialDriveTracker(model, circuit, cruise_speed=0.2, loop=True)
    detector = RoboADS(
        model, suite, PROCESS,
        initial_state=np.array([0.7, 0.7, 0.0]),
        nominal_control=np.array([0.1, 0.12]),
    )
    return world, model, suite, tracker, detector


class TestPatrolLoop:
    def test_tracker_laps_the_circuit(self):
        _, model, _, tracker, _ = patrol_setup()
        pose = np.array([0.7, 0.7, 0.0])
        for _ in range(4000):
            command = tracker.command(pose, model.dt)
            pose = model.f(pose, command)
        assert tracker.laps >= 2
        assert not tracker.goal_reached


@pytest.mark.slow
class TestSoak:
    N_STEPS = 5000  # 250 s of 20 Hz patrol

    def run_soak(self):
        _, model, suite, tracker, detector = patrol_setup()
        rng = np.random.default_rng(77)
        x_true = np.array([0.7, 0.7, 0.0])
        q_sqrt = np.sqrt(np.diag(PROCESS))
        nav = x_true.copy()
        false_alarm_iters = 0
        max_cov_trace = 0.0
        for k in range(self.N_STEPS):
            command = tracker.command(nav, model.dt)
            x_true = model.normalize_state(
                model.f(x_true, command) + q_sqrt * rng.standard_normal(3)
            )
            z = suite.measure(x_true, rng)
            report = detector.step(command, z)
            nav = z[suite.slice_of("ips")][:3]
            if report.flagged_sensors or report.actuator_alarm:
                false_alarm_iters += 1
            probs = report.statistics.mode_probabilities
            assert abs(sum(probs.values()) - 1.0) < 1e-9
            max_cov_trace = max(
                max_cov_trace, float(np.trace(detector.engine.state_covariance))
            )
        return detector, tracker, false_alarm_iters, max_cov_trace, x_true, rng, model, suite

    def test_soak_stability_and_sensitivity(self):
        (
            detector,
            tracker,
            false_alarms,
            max_cov_trace,
            x_true,
            rng,
            model,
            suite,
        ) = self.run_soak()
        # Multiple laps actually driven.
        assert tracker.laps >= 3
        # Flat false-alarm rate over the whole soak (actuator channel's
        # alpha=0.05 with 3/6 windows leaves a small background duty).
        assert false_alarms / self.N_STEPS < 0.05
        # Covariances bounded (no filter divergence or collapse).
        assert max_cov_trace < 1e-2
        final_P = detector.engine.state_covariance
        assert np.all(np.diag(final_P) > 0.0)

        # Sensitivity intact after the soak: inject an IPS bias now and it
        # must still be confirmed within a few iterations.
        command = np.array([0.15, 0.15])
        detected = 0
        for _ in range(20):
            x_true = model.normalize_state(model.f(x_true, command))
            z = suite.measure(x_true, rng)
            z[suite.slice_of("ips")][0] += 0.07
            report = detector.step(command, z)
            if report.flagged_sensors == frozenset({"ips"}):
                detected += 1
        assert detected >= 15
