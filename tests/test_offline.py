"""Tests for the offline-analysis story: replay, persistence, extended scenarios."""

import numpy as np
import pytest

from repro.attacks.catalog import extended_khepera_scenarios, khepera_scenarios
from repro.errors import DimensionError
from repro.eval.runner import run_scenario
from repro.sim.trace import SimulationTrace


class TestDetectorReplay:
    def test_replay_reproduces_online_reports(self, khepera):
        scenario = next(s for s in khepera_scenarios() if s.number == 3)
        online = run_scenario(khepera, scenario, seed=21, duration=8.0)
        trace = online.trace

        detector = khepera.detector()
        offline = detector.replay(trace.planned_controls, trace.readings)
        assert len(offline) == len(trace)
        for online_report, offline_report in zip(trace.reports, offline):
            assert offline_report.flagged_sensors == online_report.flagged_sensors
            assert offline_report.actuator_alarm == online_report.actuator_alarm
            assert offline_report.selected_mode == online_report.selected_mode
            assert np.allclose(
                offline_report.state_estimate, online_report.state_estimate
            )

    def test_replay_length_mismatch(self, khepera):
        detector = khepera.detector()
        with pytest.raises(DimensionError):
            detector.replay([np.zeros(2)], [])

    def test_step_validates_reading_shape(self, khepera):
        detector = khepera.detector()
        with pytest.raises(DimensionError):
            detector.step(np.zeros(2), np.zeros(5))

    def test_step_validates_control_shape(self, khepera):
        detector = khepera.detector()
        with pytest.raises(DimensionError):
            detector.step(np.zeros(3), np.zeros(khepera.suite.total_dim))


class TestTracePersistence:
    def test_roundtrip(self, khepera, tmp_path):
        scenario = next(s for s in khepera_scenarios() if s.number == 4)
        result = run_scenario(khepera, scenario, seed=5, duration=6.0)
        path = tmp_path / "trace.npz"
        result.trace.save(path)
        loaded = SimulationTrace.load(path)
        assert loaded.dt == result.trace.dt
        assert loaded.sensor_names == result.trace.sensor_names
        assert len(loaded) == len(result.trace)
        assert np.allclose(loaded.states_array(), result.trace.states_array())
        assert np.allclose(loaded.readings_array(), result.trace.readings_array())
        assert np.allclose(
            loaded.clean_readings_array(), result.trace.clean_readings_array()
        )
        assert loaded.truth_sensors == result.trace.truth_sensors
        assert loaded.truth_actuator == result.trace.truth_actuator
        assert all(r is None for r in loaded.reports)

    def test_saved_log_supports_replay(self, khepera, tmp_path):
        """End-to-end forensics: save log, reload, replay detector."""
        scenario = next(s for s in khepera_scenarios() if s.number == 3)
        result = run_scenario(khepera, scenario, seed=5, duration=6.0)
        path = tmp_path / "incident.npz"
        result.trace.save(path)

        loaded = SimulationTrace.load(path)
        reports = khepera.detector().replay(loaded.planned_controls, loaded.readings)
        flagged = [r for r in reports if "ips" in r.flagged_sensors]
        assert flagged, "replayed log must re-confirm the IPS misbehavior"


class TestExtendedScenarios:
    @pytest.fixture(scope="class")
    def rig(self, khepera):
        return khepera

    def test_catalog_contents(self):
        scenarios = extended_khepera_scenarios()
        assert [s.number for s in scenarios] == [101, 102, 103, 104]

    def test_replay_attack_detected(self, rig):
        result = run_scenario(rig, extended_khepera_scenarios()[0], seed=13)
        assert result.sensor_confusion.false_negative_rate < 0.05
        assert result.mean_delay("sensor") < 0.5

    def test_noise_jamming_detected(self, rig):
        result = run_scenario(rig, extended_khepera_scenarios()[1], seed=13)
        assert result.sensor_confusion.false_negative_rate < 0.05

    def test_tire_blowout_detected(self, rig):
        result = run_scenario(rig, extended_khepera_scenarios()[2], seed=13)
        assert result.actuator_confusion.false_negative_rate < 0.1
        assert result.mean_delay("actuator") < 0.5

    def test_runaway_detected_after_crossing_noise_floor(self, rig):
        """A slow ramp is stealthy until it exceeds the Sec V-H bound;
        detection must land once the drift crosses it and hold after."""
        result = run_scenario(rig, extended_khepera_scenarios()[3], seed=13)
        delay = result.mean_delay("actuator")
        assert delay is not None and delay < 6.0
        # The alarm flickers while the drift sits at the noise floor, then
        # holds once the ramp is clearly past it: assert the final stretch.
        trace = result.trace
        tail = [r.actuator_alarm for r in trace.reports[-40:] if r is not None]
        assert sum(tail) / len(tail) > 0.9
