"""Tests for the evaluation metrics (paper Section V definitions)."""

import numpy as np
import pytest

from repro.eval.metrics import ConfusionCounts, DelayEvent, confusion_from_run, detection_delays
from repro.eval.tables import format_table
from repro.sim.trace import SimulationTrace


class FakeReport:
    def __init__(self, flagged=frozenset(), actuator=False):
        self.flagged_sensors = frozenset(flagged)
        self.actuator_alarm = actuator


def make_trace(truth_sensors, truth_actuator, detected_sensors, detected_actuator, dt=0.1):
    trace = SimulationTrace(dt=dt, sensor_names=("a", "b"))
    for k, (ts, ta, ds, da) in enumerate(
        zip(truth_sensors, truth_actuator, detected_sensors, detected_actuator)
    ):
        trace.append(
            t=(k + 1) * dt,
            true_state=np.zeros(3),
            planned=np.zeros(2),
            executed=np.zeros(2),
            reading=np.zeros(6),
            nav_pose=np.zeros(3),
            corrupted_sensors=frozenset(ts),
            actuator_corrupted=ta,
            report=FakeReport(ds, da),
        )
    return trace


class TestConfusionCounts:
    def test_classify_tp(self):
        counts = ConfusionCounts()
        counts.classify(detected_positive=True, correct=True, truth_positive=True)
        assert counts.tp == 1

    def test_classify_fp_on_misidentification(self):
        """Paper: a positive that misidentifies the condition is a FP."""
        counts = ConfusionCounts()
        counts.classify(detected_positive=True, correct=False, truth_positive=True)
        assert counts.fp == 1
        assert counts.tp == 0

    def test_classify_fn_and_tn(self):
        counts = ConfusionCounts()
        counts.classify(False, False, True)
        counts.classify(False, True, False)
        assert counts.fn == 1 and counts.tn == 1

    def test_rates(self):
        counts = ConfusionCounts(tp=8, fp=2, fn=2, tn=88)
        assert counts.false_positive_rate == pytest.approx(2 / 90)
        assert counts.false_negative_rate == pytest.approx(2 / 10)
        assert counts.true_positive_rate == pytest.approx(0.8)
        assert counts.precision == pytest.approx(0.8)
        assert counts.f1 == pytest.approx(0.8)

    def test_rates_zero_denominators(self):
        counts = ConfusionCounts()
        assert counts.false_positive_rate == 0.0
        assert counts.false_negative_rate == 0.0
        assert counts.f1 == 0.0

    def test_add(self):
        a = ConfusionCounts(tp=1, fp=2, fn=3, tn=4)
        b = ConfusionCounts(tp=10, fp=20, fn=30, tn=40)
        a.add(b)
        assert (a.tp, a.fp, a.fn, a.tn) == (11, 22, 33, 44)
        assert a.total == 110


class TestConfusionFromRun:
    def test_all_correct(self):
        trace = make_trace(
            truth_sensors=[set(), {"a"}, {"a"}],
            truth_actuator=[False, False, True],
            detected_sensors=[set(), {"a"}, {"a"}],
            detected_actuator=[False, False, True],
        )
        sensor, actuator = confusion_from_run(trace)
        assert (sensor.tp, sensor.fp, sensor.fn, sensor.tn) == (2, 0, 0, 1)
        assert (actuator.tp, actuator.fp, actuator.fn, actuator.tn) == (1, 0, 0, 2)

    def test_misidentified_sensor_is_fp(self):
        trace = make_trace(
            truth_sensors=[{"a"}],
            truth_actuator=[False],
            detected_sensors=[{"b"}],
            detected_actuator=[False],
        )
        sensor, _ = confusion_from_run(trace)
        assert sensor.fp == 1

    def test_partial_set_is_fp(self):
        trace = make_trace(
            truth_sensors=[{"a", "b"}],
            truth_actuator=[False],
            detected_sensors=[{"a"}],
            detected_actuator=[False],
        )
        sensor, _ = confusion_from_run(trace)
        assert sensor.fp == 1 and sensor.tp == 0

    def test_none_reports_count_negative(self):
        trace = make_trace([{"a"}], [True], [set()], [False])
        trace.reports[0] = None
        sensor, actuator = confusion_from_run(trace)
        assert sensor.fn == 1
        assert actuator.fn == 1


class TestDetectionDelays:
    def test_single_transition(self):
        trace = make_trace(
            truth_sensors=[set(), {"a"}, {"a"}, {"a"}],
            truth_actuator=[False] * 4,
            detected_sensors=[set(), set(), {"a"}, {"a"}],
            detected_actuator=[False] * 4,
        )
        events = detection_delays(trace)
        sensor_events = [e for e in events if e.channel == "sensor"]
        assert len(sensor_events) == 1
        assert sensor_events[0].trigger_time == pytest.approx(0.2)
        assert sensor_events[0].delay == pytest.approx(0.1)

    def test_initial_corruption_counts(self):
        trace = make_trace(
            truth_sensors=[{"a"}, {"a"}],
            truth_actuator=[False, False],
            detected_sensors=[{"a"}, {"a"}],
            detected_actuator=[False, False],
        )
        events = [e for e in detection_delays(trace) if e.channel == "sensor"]
        assert len(events) == 1
        assert events[0].delay == pytest.approx(0.0)

    def test_never_detected(self):
        trace = make_trace(
            truth_sensors=[set(), {"a"}, {"a"}],
            truth_actuator=[False] * 3,
            detected_sensors=[set()] * 3,
            detected_actuator=[False] * 3,
        )
        events = [e for e in detection_delays(trace) if e.channel == "sensor"]
        assert events[0].detected_time is None
        assert events[0].delay is None

    def test_recovery_transition_counts(self):
        trace = make_trace(
            truth_sensors=[{"a"}, {"a"}, set(), set()],
            truth_actuator=[False] * 4,
            detected_sensors=[{"a"}, {"a"}, {"a"}, set()],
            detected_actuator=[False] * 4,
        )
        events = [e for e in detection_delays(trace) if e.channel == "sensor"]
        assert len(events) == 2  # initial corruption + recovery to clean
        recovery = events[1]
        assert recovery.truth == frozenset()
        assert recovery.delay == pytest.approx(0.1)

    def test_actuator_channel(self):
        trace = make_trace(
            truth_sensors=[set()] * 4,
            truth_actuator=[False, True, True, True],
            detected_sensors=[set()] * 4,
            detected_actuator=[False, False, False, True],
        )
        events = [e for e in detection_delays(trace) if e.channel == "actuator"]
        assert events[0].delay == pytest.approx(0.2)

    def test_condition_changes_before_detection(self):
        # Truth changes again before the first condition is detected: the
        # first event is recorded as undetected.
        trace = make_trace(
            truth_sensors=[set(), {"a"}, {"a", "b"}, {"a", "b"}],
            truth_actuator=[False] * 4,
            detected_sensors=[set(), set(), {"a", "b"}, {"a", "b"}],
            detected_actuator=[False] * 4,
        )
        events = [e for e in detection_delays(trace) if e.channel == "sensor"]
        assert events[0].delay is None
        assert events[1].delay == pytest.approx(0.0)


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert all("|" in line for line in lines[1:] if "-" not in line)

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text
