"""Equivalence: shared-workspace/Cholesky fast paths vs the seed reference.

The shared-workspace restructuring and the Cholesky fast paths are pure
performance work — Algorithm 2's outputs must not move. These tests pin the
pre-change filter math as a literal reference implementation (the seed
revision's ``NuiseFilter.step`` and selection loop, pseudo-inverse
everywhere) and run it side by side with the production bank over full
missions on both rigs, each recursion carrying its own committed estimate so
any divergence would compound. Agreement is required to 1e-8 on every
detection output: selected mode, state estimates, anomaly estimates and
chi-square statistics.

A rank-deficient ``C2 G`` case (Ackermann steering at standstill: the
steering column of ``G`` vanishes at ``v = 0``) proves the pseudo-inverse
fallback still carries the minimum-norm semantics the Cholesky path cannot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.scheduler import AttackSchedule
from repro.core.chi2 import anomaly_statistic
from repro.core.modes import Mode
from repro.core.nuise import NuiseFilter
from repro.linalg import (
    chol_psd,
    pinv_and_pdet,
    project_psd,
    pseudo_inverse,
    symmetrize,
    wrap_residual,
)
from repro.sim.simulator import ClosedLoopSimulator

N_STEPS = 200
TOL = 1e-8


# ----------------------------------------------------------------------
# Reference implementation: the seed revision's NUISE step, verbatim math
# ----------------------------------------------------------------------
def _reference_gaussian_likelihood(residual: np.ndarray, covariance: np.ndarray) -> float:
    """Seed likelihood: relative-tolerance pseudo-inverse/pseudo-determinant."""
    pinv, pdet, rank = pinv_and_pdet(covariance)
    if rank == 0:
        return 1.0
    quad = float(residual @ pinv @ residual)
    norm = (2.0 * np.pi) ** (rank / 2.0) * np.sqrt(max(pdet, np.finfo(float).tiny))
    return float(np.exp(-0.5 * quad) / norm)


def _reference_step(filt: NuiseFilter, control, prev_state, prev_covariance, stacked_reading):
    """The pre-change ``NuiseFilter.step``: per-mode linearization, pinv only.

    Reads the filter's static configuration (model, suite, mode blocks,
    noise) but none of its new fast-path machinery; every matrix product
    below is the seed revision's line, in the seed revision's order.
    """
    model, suite, policy = filt._model, filt._suite, filt._policy
    u = model.validate_control(control)
    x_prev = model.validate_state(prev_state)
    P_prev = symmetrize(np.asarray(prev_covariance, dtype=float))
    z1, z2 = filt.split_reading(stacked_reading)

    A, G = policy.jacobians(model, x_prev, u)
    Q = filt._Q
    R2 = filt._R2

    # Step 1: actuator anomaly estimation.
    x_check = policy.f(model, x_prev, u)
    C2 = policy.measurement_jacobian(suite, filt._ref_names, x_check)
    P_tilde = A @ P_prev @ A.T + Q
    R_star = symmetrize(C2 @ P_tilde @ C2.T + R2)
    R_star_inv = pseudo_inverse(R_star)
    F = C2 @ G
    FtRi = F.T @ R_star_inv
    M2 = pseudo_inverse(FtRi @ F) @ FtRi
    innovation0 = wrap_residual(z2 - policy.h(suite, filt._ref_names, x_check), filt._ref_angular)
    d_a = M2 @ innovation0
    P_a = project_psd(M2 @ R_star @ M2.T)

    # Step 2: compensated state prediction.
    x_pred = policy.f(model, x_prev, u) + G @ d_a
    I_n = np.eye(model.state_dim)
    K = I_n - G @ M2 @ C2
    A_bar = K @ A
    Q_bar = K @ Q @ K.T + G @ M2 @ R2 @ M2.T @ G.T
    P_pred = project_psd(A_bar @ P_prev @ A_bar.T + Q_bar)
    S = -G @ M2 @ R2

    # Step 3: state estimation.
    C2p = policy.measurement_jacobian(suite, filt._ref_names, x_pred)
    innovation = wrap_residual(z2 - policy.h(suite, filt._ref_names, x_pred), filt._ref_angular)
    R2_tilde = symmetrize(C2p @ P_pred @ C2p.T + R2 + C2p @ S + S.T @ C2p.T)
    L = (P_pred @ C2p.T + S) @ pseudo_inverse(R2_tilde)
    x_new = model.normalize_state(x_pred + L @ innovation)
    I_LC = I_n - L @ C2p
    P_new = project_psd(
        I_LC @ P_pred @ I_LC.T + L @ R2 @ L.T - I_LC @ S @ L.T - L @ S.T @ I_LC.T
    )

    # Step 4: sensor anomaly estimation.
    if filt._test_names:
        C1 = policy.measurement_jacobian(suite, filt._test_names, x_new)
        d_s = wrap_residual(z1 - policy.h(suite, filt._test_names, x_new), filt._test_angular)
        P_s = project_psd(C1 @ P_new @ C1.T + filt._R1)
    else:
        d_s = np.zeros(0)
        P_s = np.zeros((0, 0))

    likelihood = _reference_gaussian_likelihood(innovation, R2_tilde)
    return {
        "state": x_new,
        "state_covariance": P_new,
        "actuator_anomaly": d_a,
        "actuator_covariance": P_a,
        "sensor_anomaly": d_s,
        "sensor_covariance": P_s,
        "likelihood": likelihood,
    }


def _mission_logs(rig, n_steps=N_STEPS, seed=3):
    """Record a clean closed-loop mission's ``(u_{k-1}, z_k)`` logs."""
    rng = np.random.default_rng(seed)
    simulator = ClosedLoopSimulator(
        rig.make_platform(),
        rig.make_controller(rig.plan_path(0)),
        schedule=AttackSchedule(),
        nav_sensor=rig.nav_sensor,
    )
    trace = simulator.run(n_steps, rng)
    return trace.planned_controls, trace.readings


def _assert_mission_equivalence(rig):
    detector = rig.detector()
    engine = detector.engine
    filters = engine._filters
    window = engine._window
    controls, readings = _mission_logs(rig)

    # The reference bank carries its own recursion (selection included), so
    # a single step's divergence would compound over the mission.
    x_ref = engine.state_estimate
    P_ref = engine.state_covariance
    log_hist = {name: [] for name in filters}

    for k, (u, z) in enumerate(zip(controls, readings)):
        output = engine.step(u, z)

        ref_results = {
            name: _reference_step(filt, u, x_ref, P_ref, z)
            for name, filt in filters.items()
        }
        for name, ref in ref_results.items():
            new = output.results[name]
            np.testing.assert_allclose(
                new.state, ref["state"], rtol=TOL, atol=TOL,
                err_msg=f"step {k}, mode {name}: state",
            )
            np.testing.assert_allclose(
                new.actuator_anomaly, ref["actuator_anomaly"], rtol=TOL, atol=TOL,
                err_msg=f"step {k}, mode {name}: d_a",
            )
            np.testing.assert_allclose(
                new.sensor_anomaly, ref["sensor_anomaly"], rtol=TOL, atol=TOL,
                err_msg=f"step {k}, mode {name}: d_s",
            )
            if ref["likelihood"] > 0.0:
                assert new.likelihood == pytest.approx(ref["likelihood"], rel=1e-6), (
                    f"step {k}, mode {name}: likelihood"
                )

        # Seed selection rule: finite-window log-likelihood sum.
        for name, ref in ref_results.items():
            log_n = np.log(ref["likelihood"]) if ref["likelihood"] > 0.0 else -300.0
            log_hist[name].append(max(float(log_n), -300.0))
            log_hist[name] = log_hist[name][-window:]
        scores = {name: sum(hist) for name, hist in log_hist.items()}
        ref_selected = max(scores, key=lambda name: scores[name])
        assert output.selected_mode == ref_selected, f"step {k}: selected mode"

        ref_sel = ref_results[ref_selected]
        stat_new = engine.statistics(output)
        ref_sensor_stat, _ = anomaly_statistic(
            ref_sel["sensor_anomaly"], ref_sel["sensor_covariance"]
        )
        ref_actuator_stat, _ = anomaly_statistic(
            ref_sel["actuator_anomaly"], ref_sel["actuator_covariance"]
        )
        assert stat_new.sensor_statistic == pytest.approx(ref_sensor_stat, rel=1e-6, abs=TOL)
        assert stat_new.actuator_statistic == pytest.approx(ref_actuator_stat, rel=1e-6, abs=TOL)

        x_ref = ref_sel["state"].copy()
        P_ref = ref_sel["state_covariance"].copy()


@pytest.mark.slow
def test_khepera_mission_matches_reference(khepera):
    _assert_mission_equivalence(khepera)


@pytest.mark.slow
def test_tamiya_mission_matches_reference(tamiya):
    _assert_mission_equivalence(tamiya)


# ----------------------------------------------------------------------
# Rank-deficient C2 G: steering at standstill
# ----------------------------------------------------------------------
def test_standstill_steering_uses_pinv_fallback(tamiya):
    """At v = 0 an Ackermann ``G``'s steering column vanishes: ``C2 G`` is
    rank deficient, the Cholesky fast path must decline, and the minimum-norm
    pseudo-inverse estimate must match the reference exactly."""
    suite = tamiya.suite
    mode = Mode.for_suite(suite, suite.names)  # all-reference: richest C2
    filt = NuiseFilter(
        tamiya.model,
        suite,
        mode,
        tamiya.process_noise,
        check_observability=False,
    )
    x0 = tamiya.model.zero_state()
    P0 = 1e-4 * np.eye(tamiya.model.state_dim)
    u = np.array([0.0, 0.3])  # parked, steering hard
    rng = np.random.default_rng(11)
    z = suite.measure(x0, rng)

    # The setup really is rank deficient.
    A, G = filt._policy.jacobians(tamiya.model, x0, u)
    x_check = filt._policy.f(tamiya.model, x0, u)
    C2 = filt._policy.measurement_jacobian(suite, filt._ref_names, x_check)
    F = C2 @ G
    assert np.linalg.matrix_rank(F, tol=1e-10) < tamiya.model.control_dim

    # ... so the normal-equations matrix is singular and Cholesky declines
    # (this is the exact matrix solve_psd factorizes inside step()).
    P_tilde = A @ P0 @ A.T + filt._Q
    R_star = symmetrize(C2 @ P_tilde @ C2.T + filt._R2)
    W = symmetrize(F.T @ pseudo_inverse(R_star) @ F)
    assert chol_psd(W) is None

    new = filt.step(u, x0, P0, z)
    ref = _reference_step(filt, u, x0, P0, z)
    assert np.all(np.isfinite(new.actuator_anomaly))
    np.testing.assert_allclose(new.actuator_anomaly, ref["actuator_anomaly"], rtol=0, atol=1e-10)
    np.testing.assert_allclose(new.state, ref["state"], rtol=0, atol=1e-10)
    assert new.likelihood == pytest.approx(ref["likelihood"], rel=1e-8)

    # Minimum-norm semantics: the unexcitable steering direction gets no
    # anomaly mass (any nonzero steering estimate at standstill would be
    # pure gauge freedom).
    null_space = np.array([0.0, 1.0])  # steering direction of the control space
    assert abs(float(null_space @ new.actuator_anomaly)) < 1e-8


def test_moving_rig_takes_cholesky_path(tamiya):
    """Sanity inversion of the standstill case: once the car moves, the
    normal-equations matrix is PD and the fast path engages."""
    suite = tamiya.suite
    mode = Mode.for_suite(suite, suite.names)
    filt = NuiseFilter(
        tamiya.model, suite, mode, tamiya.process_noise, check_observability=False
    )
    x0 = tamiya.model.zero_state()
    P0 = 1e-4 * np.eye(tamiya.model.state_dim)
    u = np.array([0.3, 0.1])

    A, G = filt._policy.jacobians(tamiya.model, x0, u)
    x_check = filt._policy.f(tamiya.model, x0, u)
    C2 = filt._policy.measurement_jacobian(suite, filt._ref_names, x_check)
    F = C2 @ G
    P_tilde = A @ P0 @ A.T + filt._Q
    R_star = symmetrize(C2 @ P_tilde @ C2.T + filt._R2)
    assert chol_psd(R_star) is not None
    W = symmetrize(F.T @ pseudo_inverse(R_star) @ F)
    assert chol_psd(W) is not None
