"""Unit tests for the streaming layer: messages, ingest, sessions, fleet.

The parity/property suites prove the equivalence claims; these tests pin the
component contracts — message coercion, the three ingest orderings, explicit
trace sequence numbers (including the duplicated/reordered-trace replay
regression), session bookkeeping and telemetry cursors, and the fleet
service's lifecycle, backpressure accounting and failure propagation.
"""

import asyncio

import numpy as np
import pytest

from repro.core.detector import RoboADS
from repro.dynamics.differential_drive import DifferentialDriveModel
from repro.errors import ConfigurationError, FleetClosureError, IngestSequenceError
from repro.eval.session_replay import report_drift, stream_trace
from repro.obs import RecordingTelemetry
from repro.sensors.lidar import WallDistanceSensor
from repro.sensors.pose_sensors import IPS, OdometryPoseSensor
from repro.sensors.suite import SensorSuite
from repro.serve import (
    DetectorSession,
    FleetService,
    IngestPolicy,
    SequenceTracker,
    SessionMessage,
    trace_messages,
)
from repro.sim.trace import SimulationTrace
from repro.world.map import WorldMap

pytestmark = [pytest.mark.serve]

PROCESS = np.diag([0.0005**2, 0.0005**2, 0.0015**2])
WORLD = WorldMap.rectangle(3.0, 3.0)


def build_detector() -> RoboADS:
    suite = SensorSuite([IPS(), OdometryPoseSensor(), WallDistanceSensor(WORLD)])
    return RoboADS(
        DifferentialDriveModel(dt=0.05),
        suite,
        PROCESS,
        initial_state=np.array([1.5, 1.5, 0.0]),
        nominal_control=np.array([0.1, 0.12]),
    )


def mission_steps(n: int, seed: int = 5):
    """n raw (t, u, z) steps of a short randomized mission."""
    model = DifferentialDriveModel(dt=0.05)
    suite = SensorSuite([IPS(), OdometryPoseSensor(), WallDistanceSensor(WORLD)])
    rng = np.random.default_rng(seed)
    x = np.array([1.5, 1.5, 0.0])
    q_sqrt = np.sqrt(np.diag(PROCESS))
    steps = []
    for k in range(n):
        u = np.array([0.1, 0.12]) + 0.05 * rng.standard_normal(2)
        x = model.normalize_state(model.f(x, u) + q_sqrt * rng.standard_normal(3))
        steps.append((k * model.dt, u, suite.measure(x, rng), x.copy()))
    return steps


def mission_messages(n: int, seed: int = 5):
    return [
        SessionMessage(seq=k, t=t, control=u, reading=z)
        for k, (t, u, z, _) in enumerate(mission_steps(n, seed))
    ]


def trace_from_steps(steps, sequences=None) -> SimulationTrace:
    """Assemble a trace from raw steps, optionally with explicit sequences."""
    suite = SensorSuite([IPS(), OdometryPoseSensor(), WallDistanceSensor(WORLD)])
    trace = SimulationTrace(dt=0.05, sensor_names=tuple(suite.names))
    for k, (t, u, z, x) in enumerate(steps):
        trace.append(
            t=t,
            true_state=x,
            planned=u,
            executed=u,
            reading=z,
            nav_pose=x,
            corrupted_sensors=frozenset(),
            actuator_corrupted=False,
            sequence=None if sequences is None else sequences[k],
        )
    return trace


class TestSessionMessage:
    def test_payload_is_coerced_and_copied(self):
        u = np.array([1, 2], dtype=int)
        z = [1.0, 2.0, 3.0]
        msg = SessionMessage(seq=np.int64(3), t=1, control=u, reading=z, available=["ips"])
        assert isinstance(msg.seq, int) and isinstance(msg.t, float)
        assert msg.control.dtype == float and msg.reading.dtype == float
        assert msg.available == ("ips",)
        u[0] = 99
        assert msg.control[0] == 1.0  # defensive copy


class TestIngest:
    def test_unknown_ordering_rejected(self):
        with pytest.raises(ConfigurationError):
            IngestPolicy(ordering="fifo")

    def msg(self, seq):
        return SessionMessage(seq=seq, t=0.0, control=[0.0], reading=[0.0])

    def test_drop_stale_processes_monotone_subsequence(self):
        tracker = SequenceTracker()
        decisions = [tracker.admit(self.msg(s)) for s in [0, 1, 1, 0, 3, 2, 5]]
        assert decisions == [True, True, False, False, True, False, True]
        stats = tracker.stats
        assert stats.received == 7
        assert stats.processed == 4
        assert stats.duplicates == 1  # the repeated 1
        assert stats.dropped_stale == 2  # the late 0 and 2
        assert tracker.last_seq == 5

    def test_gaps_are_never_an_error(self):
        tracker = SequenceTracker(IngestPolicy("strict"))
        assert tracker.admit(self.msg(0))
        assert tracker.admit(self.msg(10))  # a gap is upstream loss, not a bug
        assert tracker.stats.processed == 2

    def test_accept_processes_everything_and_counts_reorders(self):
        tracker = SequenceTracker(IngestPolicy("accept"))
        decisions = [tracker.admit(self.msg(s)) for s in [0, 2, 1, 2]]
        assert decisions == [True, True, True, True]
        assert tracker.stats.processed == 4
        assert tracker.stats.reordered == 2

    def test_strict_raises_before_any_counter_moves(self):
        tracker = SequenceTracker(IngestPolicy("strict"))
        tracker.admit(self.msg(4))
        with pytest.raises(IngestSequenceError):
            tracker.admit(self.msg(4))
        assert tracker.stats.received == 1
        assert tracker.stats.processed == 1

    def test_snapshot_restore_resumes_sequencing(self):
        tracker = SequenceTracker()
        for s in [0, 1, 5]:
            tracker.admit(self.msg(s))
        state = tracker.snapshot_state()
        restored = SequenceTracker()
        restored.restore_state(state)
        assert restored.last_seq == 5
        assert not restored.admit(self.msg(3))  # still stale after restore
        assert restored.stats.received == 4

    def test_restore_rejects_mismatched_ordering(self):
        state = SequenceTracker(IngestPolicy("accept")).snapshot_state()
        with pytest.raises(ConfigurationError):
            SequenceTracker(IngestPolicy("strict")).restore_state(state)


class TestTraceSequences:
    def test_sequences_default_to_step_index(self):
        trace = trace_from_steps(mission_steps(4))
        assert trace.sequences == [0, 1, 2, 3]

    def test_explicit_sequences_round_trip_through_npz(self, tmp_path):
        trace = trace_from_steps(mission_steps(3), sequences=[7, 9, 30])
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = SimulationTrace.load(path)
        assert loaded.sequences == [7, 9, 30]
        assert [m.seq for m in trace_messages(loaded)] == [7, 9, 30]

    def test_archives_without_sequences_still_load(self, tmp_path):
        trace = trace_from_steps(mission_steps(3))
        saved = tmp_path / "old.npz"
        trace.save(saved)
        with np.load(saved) as data:
            stripped = {k: data[k] for k in data.files if k != "sequences"}
        legacy = tmp_path / "legacy.npz"
        np.savez_compressed(legacy, **stripped)
        loaded = SimulationTrace.load(legacy)
        assert loaded.sequences == [0, 1, 2]  # implied by step order

    def test_duplicated_and_reordered_trace_replays_clean(self):
        """Regression: a trace recording dirty delivery replays unperturbed.

        The dirty trace carries the clean mission's steps plus duplicated
        and out-of-order re-recordings (explicit stale sequence numbers).
        Streaming it under the default ``drop_stale`` policy must produce
        bit-identical reports to the clean trace.
        """
        steps = mission_steps(8)
        clean = trace_from_steps(steps)
        dirty_steps = (
            steps[:3]
            + [steps[2]]  # duplicate of the newest step
            + steps[3:6]
            + [steps[1], steps[4]]  # late re-deliveries, out of order
            + steps[6:]
        )
        dirty_sequences = [0, 1, 2, 2, 3, 4, 5, 1, 4, 6, 7]
        dirty = trace_from_steps(dirty_steps, sequences=dirty_sequences)

        clean_reports = stream_trace(build_detector, clean)
        dirty_reports = stream_trace(build_detector, dirty)
        assert len(dirty_reports) == len(steps)
        assert report_drift(dirty_reports, clean_reports, atol=0.0) == []

    def test_strict_replay_of_dirty_trace_raises(self):
        steps = mission_steps(4)
        dirty = trace_from_steps(steps + [steps[1]], sequences=[0, 1, 2, 3, 1])
        with pytest.raises(IngestSequenceError):
            stream_trace(build_detector, dirty, policy=IngestPolicy("strict"))


class TestDetectorSession:
    def test_suppressed_messages_produce_no_report(self):
        session = DetectorSession(build_detector())
        messages = mission_messages(3)
        assert session.process(messages[0]) is not None
        assert session.process(messages[0]) is None  # duplicate
        assert session.messages_processed == 1
        assert session.last_report is not None
        assert session.last_report.iteration == 1

    def test_checkpoint_is_read_only(self):
        session = DetectorSession(build_detector())
        messages = mission_messages(6)
        for m in messages[:3]:
            session.process(m)
        first = session.checkpoint().to_bytes()
        assert session.checkpoint().to_bytes() == first  # no self-perturbation
        for m in messages[3:]:
            assert session.process(m) is not None

    def test_telemetry_cursor_survives_migration(self, tmp_path):
        session = DetectorSession(
            build_detector(), robot_id="r1", telemetry=RecordingTelemetry()
        )
        messages = mission_messages(6)
        for m in messages[:3]:
            session.process(m)
        path = tmp_path / "r1.jsonl"
        flushed = session.export_telemetry(path)
        assert flushed > 0
        exported_lines = path.read_text().count("\n")
        assert exported_lines == flushed

        snapshot = session.checkpoint()
        migrated = DetectorSession.resume(
            build_detector(), snapshot, telemetry=RecordingTelemetry()
        )
        for m in messages[3:]:
            migrated.process(m)
        # The migrated session flushes only events after the old cursor:
        # nothing that was already exported appears twice.
        migrated.export_telemetry(path)
        total_lines = path.read_text().count("\n")
        assert total_lines > exported_lines
        reference = DetectorSession(
            build_detector(), robot_id="ref", telemetry=RecordingTelemetry()
        )
        for m in messages:
            reference.process(m)
        assert total_lines == len(reference.detector.telemetry.events)


class TestFleetService:
    def run(self, coro):
        return asyncio.run(coro)

    def test_duplicate_robot_rejected(self):
        async def scenario():
            service = FleetService()
            await service.open_session("r1", build_detector())
            with pytest.raises(ConfigurationError):
                await service.open_session("r1", build_detector())
            await service.close_all()

        self.run(scenario())

    def test_unknown_robot_rejected(self):
        async def scenario():
            service = FleetService()
            with pytest.raises(ConfigurationError):
                await service.submit("ghost", mission_messages(1)[0])
            with pytest.raises(ConfigurationError):
                await service.close_session("ghost")

        self.run(scenario())

    def test_processing_failure_propagates_at_close(self):
        async def scenario():
            service = FleetService()
            await service.open_session("r1", build_detector())
            bad = SessionMessage(seq=0, t=0.0, control=[0.1, 0.12], reading=[1.0])
            await service.submit("r1", bad)  # wrong reading shape: worker dies
            with pytest.raises(Exception):
                await service.close_session("r1")
            assert service.active_sessions == ()

        self.run(scenario())

    def test_close_all_aggregates_failures_instead_of_stopping(self):
        """One poisoned session must not orphan the rest of the fleet.

        ``close_all`` attempts *every* session; the healthy sessions' results
        ride on the raised :class:`FleetClosureError` alongside the per-robot
        failures.
        """

        async def scenario():
            service = FleetService()
            await service.open_session("bad", build_detector())
            await service.open_session("good", build_detector())
            poison = SessionMessage(seq=0, t=0.0, control=[0.1, 0.12], reading=[1.0])
            await service.submit("bad", poison)  # wrong reading shape
            messages = mission_messages(5)
            for m in messages:
                await service.submit("good", m)
            with pytest.raises(FleetClosureError) as excinfo:
                await service.close_all()
            error = excinfo.value
            assert set(error.failures) == {"bad"}
            assert set(error.results) == {"good"}
            assert len(error.results["good"].reports) == len(messages)
            assert "bad" in str(error)
            assert service.active_sessions == ()

        self.run(scenario())

    def test_checkpoint_session_then_resume_elsewhere(self):
        async def scenario():
            messages = mission_messages(10)
            service = FleetService()
            await service.open_session("r1", build_detector())
            for m in messages[:4]:
                await service.submit("r1", m)
            snapshot = await service.checkpoint_session("r1")
            await service.close_session("r1")

            other = FleetService()
            await other.open_session("r1", build_detector(), snapshot=snapshot)
            for m in messages[4:]:
                await other.submit("r1", m)
            resumed = (await other.close_all())["r1"]

            reference = DetectorSession(build_detector())
            ref_reports = [
                r for m in messages if (r := reference.process(m)) is not None
            ]
            assert report_drift(resumed.reports, ref_reports[4:], atol=0.0) == []

        self.run(scenario())

    def test_fleet_telemetry_export(self, tmp_path):
        async def scenario():
            service = FleetService(queue_capacity=2, export_dir=tmp_path)
            await service.open_session(
                "r1", build_detector(), telemetry=RecordingTelemetry()
            )
            await service.open_session("r2", build_detector())  # no telemetry
            for m in mission_messages(5):
                await service.submit("r1", m)
                await service.submit("r2", m)
            results = await service.close_all()
            assert results["r1"].telemetry_path == tmp_path / "r1.jsonl"
            assert results["r1"].telemetry_path.exists()
            assert results["r2"].telemetry_path is None
            assert results["r1"].max_queue_depth <= 2

        self.run(scenario())
