"""Tests for the experiment helpers and fast experiment smoke runs.

The full experiments live in ``benchmarks/``; here the label machinery gets
unit coverage and the cheapest experiments run once to validate structure
and the paper's qualitative claims.
"""

import numpy as np
import pytest

from repro.experiments.common import (
    KHEPERA_SENSOR_ORDER,
    condition_label,
    condition_sequence,
    detected_sequence,
    sensor_mode_table,
    truth_sequence,
)


class TestModeTable:
    def test_matches_paper_table3(self):
        table = sensor_mode_table(KHEPERA_SENSOR_ORDER)
        assert table[frozenset()] == "S0"
        assert table[frozenset({"ips"})] == "S1"
        assert table[frozenset({"wheel_encoder"})] == "S2"
        assert table[frozenset({"lidar"})] == "S3"
        assert table[frozenset({"wheel_encoder", "lidar"})] == "S4"
        assert table[frozenset({"ips", "lidar"})] == "S5"
        assert table[frozenset({"ips", "wheel_encoder"})] == "S6"

    def test_condition_label_unknown(self):
        assert condition_label({"radar"}, KHEPERA_SENSOR_ORDER).startswith("S?")

    def test_condition_sequence_compression(self):
        labels = ["S0", "S0", "S1", "S1", "S1", "S0"]
        assert condition_sequence(labels) == "S0→1→0"

    def test_condition_sequence_min_run_suppresses_flicker(self):
        labels = ["S0"] * 10 + ["S2"] + ["S0"] * 10 + ["S1"] * 10
        assert condition_sequence(labels, min_run=3) == "S0→1"

    def test_sequence_from_trace(self):
        from repro.sim.trace import SimulationTrace

        class FakeReport:
            def __init__(self, flagged):
                self.flagged_sensors = frozenset(flagged)
                self.actuator_alarm = False

        trace = SimulationTrace(dt=0.1, sensor_names=KHEPERA_SENSOR_ORDER)
        sequence = [set()] * 5 + [{"wheel_encoder"}] * 8 + [{"wheel_encoder", "lidar"}] * 8
        for k, corrupted in enumerate(sequence):
            trace.append(
                t=(k + 1) * 0.1,
                true_state=np.zeros(3),
                planned=np.zeros(2),
                executed=np.zeros(2),
                reading=np.zeros(10),
                nav_pose=np.zeros(3),
                corrupted_sensors=frozenset(corrupted),
                actuator_corrupted=False,
                report=FakeReport(corrupted),
            )
        assert truth_sequence(trace, KHEPERA_SENSOR_ORDER) == "S0→2→4"
        assert detected_sequence(trace, KHEPERA_SENSOR_ORDER) == "S0→2→4"


@pytest.mark.slow
class TestExperimentRuns:
    def test_table4_ordering(self):
        from repro.experiments.table4 import run_table4

        result = run_table4(duration=10.0)
        assert result.ordering_holds()
        text = result.format()
        assert "IPS" in text and "LiDAR" in text

    def test_fig6_checkpoints(self):
        from repro.experiments.fig6 import run_fig6

        result = run_fig6(seed=42)
        cp = result.checkpoints()
        assert cp["ips_x_after"] == pytest.approx(0.07, abs=0.01)
        assert abs(cp["ips_x_before"]) < 0.01
        assert cp["actuator_diff_after"] == pytest.approx(0.08, abs=0.02)
        assert cp["sensor_mode_after_ips"] == 1.0  # S1
        assert cp["actuator_mode_after_wheel"] > 0.9
        assert "Fig 6" in result.format()

    def test_linear_benchmark_gap(self):
        from repro.experiments.linear_benchmark import run_linear_benchmark

        result = run_linear_benchmark(scenario_numbers=(4,))
        assert result.baseline_sensor_fpr > 0.3
        assert result.roboads_sensor_fpr < 0.05
        assert result.gap > 0.25
        assert "61.68%" in result.format()

    def test_evasive_bounds(self):
        from repro.experiments.evasive import run_evasive

        result = run_evasive(
            ips_magnitudes=(0.002, 0.070),
            wheel_units=(150.0, 6000.0),
        )
        # The Table II magnitudes are detected; the tiny ones are stealthy.
        assert result.ips_detected == [False, True]
        assert result.wheel_detected == [False, True]

    def test_ablation_grouping_lines(self):
        from repro.experiments.ablation import _grouping_study

        lines = _grouping_study()
        assert any("rejected" in line for line in lines)
        assert any("accepted" in line for line in lines)


@pytest.mark.slow
class TestFig6Export:
    def test_csv_roundtrip(self, tmp_path):
        import csv

        from repro.experiments.fig6 import run_fig6

        result = run_fig6(seed=42)
        path = tmp_path / "fig6.csv"
        result.to_csv(path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "t"
        assert len(rows) - 1 == len(result.times)
        assert len(rows[1]) == 19


class TestAngledWalls:
    def test_wall_distance_sensor_with_diamond_arena(self, rng):
        """Non-axis-aligned walls: the sensor's analytic Jacobian and the
        detection stack must work with arbitrary wall normals."""
        import numpy as np

        from repro.linalg import numerical_jacobian
        from repro.sensors.lidar import WallDistanceSensor
        from repro.world.geometry import Segment
        from repro.world.map import Wall, WorldMap

        # A diamond (square rotated 45 degrees), wound counter-clockwise.
        diamond = WorldMap(
            [
                Wall("se", Segment((2.0, 0.0), (4.0, 2.0))),
                Wall("ne", Segment((4.0, 2.0), (2.0, 4.0))),
                Wall("nw", Segment((2.0, 4.0), (0.0, 2.0))),
                Wall("sw", Segment((0.0, 2.0), (2.0, 0.0))),
            ]
        )
        sensor = WallDistanceSensor(diamond, wall_names=("se", "nw", "sw"))
        state = np.array([2.0, 2.0, 0.3])
        z = sensor.h(state)
        # Centre of the diamond: perpendicular distance to every wall is
        # half the diagonal spacing = sqrt(2).
        assert np.allclose(z[:3], np.sqrt(2.0), atol=1e-9)
        assert np.allclose(
            sensor.jacobian(state), numerical_jacobian(sensor.h, state), atol=1e-6
        )

    def test_detection_in_diamond_arena(self, rng):
        import numpy as np

        from repro.core.detector import RoboADS
        from repro.dynamics.unicycle import UnicycleModel
        from repro.sensors.lidar import WallDistanceSensor
        from repro.sensors.pose_sensors import IPS
        from repro.sensors.suite import SensorSuite
        from repro.world.geometry import Segment
        from repro.world.map import Wall, WorldMap

        diamond = WorldMap(
            [
                Wall("se", Segment((2.0, 0.0), (4.0, 2.0))),
                Wall("ne", Segment((4.0, 2.0), (2.0, 4.0))),
                Wall("nw", Segment((2.0, 4.0), (0.0, 2.0))),
                Wall("sw", Segment((0.0, 2.0), (2.0, 0.0))),
            ]
        )
        model = UnicycleModel(dt=0.1)
        suite = SensorSuite(
            [
                IPS(sigma_xy=0.002, sigma_theta=0.004),
                WallDistanceSensor(diamond, wall_names=("se", "nw", "sw")),
            ]
        )
        q = np.diag([1e-6, 1e-6, 4e-6])
        detector = RoboADS(
            model, suite, q, initial_state=np.array([2.0, 2.0, 0.0]),
            nominal_control=np.array([0.2, 0.1]),
        )
        x_true = np.array([2.0, 2.0, 0.0])
        control = np.array([0.15, 0.2])
        hits = 0
        for k in range(60):
            x_true = model.normalize_state(
                model.f(x_true, control) + np.sqrt(np.diag(q)) * rng.standard_normal(3)
            )
            z = suite.measure(x_true, rng)
            if k >= 20:
                z[suite.slice_of("lidar")][0] -= 0.3  # blocked SE direction
            report = detector.step(control, z)
            if k >= 25 and report.flagged_sensors == frozenset({"lidar"}):
                hits += 1
        assert hits >= 30
