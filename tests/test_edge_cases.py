"""Edge-case coverage across the detection pipeline."""

import numpy as np
import pytest

from repro.core.decision import DecisionConfig
from repro.core.detector import RoboADS
from repro.core.modes import Mode
from repro.dynamics.unicycle import UnicycleModel
from repro.sensors.pose_sensors import IPS, OdometryPoseSensor
from repro.sensors.suite import SensorSuite

Q = np.diag([1e-6, 1e-6, 4e-6])


def make_suite():
    return SensorSuite(
        [
            IPS(sigma_xy=0.002, sigma_theta=0.004),
            OdometryPoseSensor(sigma_xy=0.003, sigma_theta=0.006),
        ]
    )


class TestAllReferenceMode:
    """A mode with every sensor as reference (Table IV's 'all 3' row)."""

    def test_detector_runs_with_empty_testing_set(self, rng):
        model = UnicycleModel(dt=0.1)
        suite = make_suite()
        mode = Mode.for_suite(suite, ("ips", "wheel_encoder"))
        detector = RoboADS(
            model, suite, Q,
            initial_state=np.zeros(3),
            modes=[mode],
            nominal_control=np.array([0.2, 0.1]),
        )
        x_true = np.zeros(3)
        control = np.array([0.2, 0.1])
        for _ in range(20):
            x_true = model.normalize_state(
                model.f(x_true, control) + np.sqrt(np.diag(Q)) * rng.standard_normal(3)
            )
            report = detector.step(control, suite.measure(x_true, rng))
        # No testing sensors: the sensor channel has no statistic and never
        # alarms; the actuator channel still works.
        assert report.statistics.sensor_dof == 0
        assert report.flagged_sensors == frozenset()
        assert report.statistics.actuator_dof == 2


class TestHeadingWrapEndToEnd:
    def test_mission_across_pi_boundary(self, rng):
        """A robot spinning through +/-pi must not trip false alarms."""
        model = UnicycleModel(dt=0.1)
        suite = make_suite()
        detector = RoboADS(
            model, suite, Q, initial_state=np.array([0.0, 0.0, 3.0]),
            nominal_control=np.array([0.2, 0.1]),
        )
        x_true = np.array([0.0, 0.0, 3.0])
        control = np.array([0.1, 0.5])  # fast spin: crosses pi repeatedly
        false_alarms = 0
        for _ in range(150):
            x_true = model.normalize_state(
                model.f(x_true, control) + np.sqrt(np.diag(Q)) * rng.standard_normal(3)
            )
            report = detector.step(control, suite.measure(x_true, rng))
            if report.flagged_sensors or report.actuator_alarm:
                false_alarms += 1
        assert false_alarms <= 3


class TestStationaryRobot:
    def test_parked_robot_is_quiet(self, rng):
        """Zero control: degenerate excitation must not produce alarms."""
        model = UnicycleModel(dt=0.1)
        suite = make_suite()
        detector = RoboADS(
            model, suite, Q, initial_state=np.zeros(3),
            nominal_control=np.array([0.2, 0.1]),
        )
        x_true = np.zeros(3)
        control = np.zeros(2)
        for _ in range(50):
            x_true = model.normalize_state(
                model.f(x_true, control) + np.sqrt(np.diag(Q)) * rng.standard_normal(3)
            )
            report = detector.step(control, suite.measure(x_true, rng))
            assert not report.actuator_alarm
            assert not report.flagged_sensors


class TestDetectorReconfiguration:
    def test_decision_window_longer_than_mission(self, rng):
        """A window larger than the run cannot crash or alarm spuriously."""
        model = UnicycleModel(dt=0.1)
        suite = make_suite()
        config = DecisionConfig(sensor_window=6, sensor_criteria=6,
                                actuator_window=6, actuator_criteria=6)
        detector = RoboADS(
            model, suite, Q, initial_state=np.zeros(3), decision=config,
            nominal_control=np.array([0.2, 0.1]),
        )
        x_true = np.zeros(3)
        control = np.array([0.2, 0.0])
        for _ in range(4):
            x_true = model.f(x_true, control)
            report = detector.step(control, suite.measure(x_true, rng))
        assert not report.flagged_sensors

    def test_reset_to_new_start_pose(self, rng):
        model = UnicycleModel(dt=0.1)
        suite = make_suite()
        detector = RoboADS(
            model, suite, Q, initial_state=np.zeros(3),
            nominal_control=np.array([0.2, 0.1]),
        )
        detector.reset(np.array([5.0, 5.0, 1.0]))
        x_true = np.array([5.0, 5.0, 1.0])
        report = detector.step(np.array([0.1, 0.0]), suite.measure(
            model.f(x_true, np.array([0.1, 0.0])), rng))
        # No spurious alarm from the relocated start.
        assert not report.flagged_sensors

    def test_huge_initial_uncertainty_converges(self, rng):
        """Unknown start pose: large P0 must converge without alarms after
        a short burn-in."""
        model = UnicycleModel(dt=0.1)
        suite = make_suite()
        detector = RoboADS(
            model, suite, Q,
            initial_state=np.zeros(3),
            initial_covariance=1.0,
            nominal_control=np.array([0.2, 0.1]),
        )
        x_true = np.array([0.4, -0.3, 0.5])  # far from the assumed start
        control = np.array([0.2, 0.1])
        flagged_late = 0
        for k in range(60):
            x_true = model.normalize_state(
                model.f(x_true, control) + np.sqrt(np.diag(Q)) * rng.standard_normal(3)
            )
            report = detector.step(control, suite.measure(x_true, rng))
            if k >= 20 and report.flagged_sensors:
                flagged_late += 1
        assert flagged_late <= 2
        assert np.linalg.norm(report.state_estimate[:2] - x_true[:2]) < 0.02
