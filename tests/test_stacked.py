"""Stacked (mission, mode) lattice vs the serial replay path.

The stacked kernels (:mod:`repro.core.stacked`) replace the per-mode
Python loop and back-to-back mission replay with one vectorized lattice.
They intentionally reassociate a handful of matmuls on the ``fast_gain``
path, so agreement with the serial filter is pinned at 1e-8 (solver
round-off), not bit-for-bit — while every *decision* (selected mode,
flagged sensors, actuator alarms) must match exactly.
"""

from __future__ import annotations

from collections import deque

import numpy as np
import pytest

from repro.attacks.catalog import khepera_scenarios, tamiya_scenarios
from repro.core.batch import replay_batch
from repro.core.chi2 import anomaly_statistic, anomaly_statistic_stacked
from repro.core.stacked import _window_met
from repro.eval.runner import run_scenario
from repro.linalg import _chol_recurrence, stacked_chol_mask
from repro.obs.telemetry import RecordingTelemetry
from repro.sim.faults import uniform_dropout_schedule

ATOL = 1e-8


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _standstill_traces(rig, control, n_traces, n_steps, seed=0):
    """Parked-robot logs replayed against *control*. With a parked Ackermann
    rig steering hard, ``C2 G`` is rank deficient at every iteration, so
    each one exercises the batched pseudo-inverse fallback."""
    rng = np.random.default_rng(seed)
    state = np.array(rig.mission.start_pose, dtype=float)
    control = np.asarray(control, dtype=float)
    return [
        (
            [control.copy() for _ in range(n_steps)],
            [rig.suite.measure(state, rng) for _ in range(n_steps)],
        )
        for _ in range(n_traces)
    ]


def _assert_batches_agree(stacked, serial, atol=ATOL):
    """Stacked lattice vs serial replay: decisions exact, floats to *atol*."""
    np.testing.assert_array_equal(stacked.lengths, serial.lengths)
    np.testing.assert_array_equal(stacked.selected_mode, serial.selected_mode)
    np.testing.assert_array_equal(stacked.flagged, serial.flagged)
    np.testing.assert_array_equal(stacked.actuator_alarm, serial.actuator_alarm)
    for field in ("state_estimate", "actuator_estimate", "sensor_statistic", "actuator_statistic"):
        np.testing.assert_allclose(
            getattr(stacked, field),
            getattr(serial, field),
            rtol=0.0,
            atol=atol,
            equal_nan=True,
            err_msg=field,
        )


def _replay_both(rig, traces):
    stacked = replay_batch(rig.detector(), traces, keep_reports=False, stacked=True)
    serial = replay_batch(rig.detector(), traces, keep_reports=False, stacked=False)
    return stacked, serial


# ----------------------------------------------------------------------
# 200-step mission equivalence (khepera and tamiya)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def khepera_missions(khepera):
    """Three 200-step khepera missions: clean, attacked, attacked."""
    scenarios = khepera_scenarios()
    duration = 200 * khepera.model.dt
    return [
        run_scenario(
            khepera, sc, seed=seed, duration=duration, stop_at_goal=False
        ).trace
        for sc, seed in ((None, 3), (scenarios[0], 4), (scenarios[1], 5))
    ]


def test_stacked_matches_serial_khepera_200_steps(khepera, khepera_missions):
    assert all(len(t) >= 200 for t in khepera_missions)
    stacked, serial = _replay_both(khepera, khepera_missions)
    _assert_batches_agree(stacked, serial)


def test_stacked_matches_serial_tamiya_200_steps(tamiya):
    duration = 200 * tamiya.model.dt
    traces = [
        run_scenario(
            tamiya, sc, seed=seed, duration=duration, stop_at_goal=False
        ).trace
        for sc, seed in ((None, 3), (tamiya_scenarios()[0], 4))
    ]
    assert all(len(t) >= 200 for t in traces)
    stacked, serial = _replay_both(tamiya, traces)
    _assert_batches_agree(stacked, serial)


# ----------------------------------------------------------------------
# Degraded availability masks
# ----------------------------------------------------------------------
def test_stacked_matches_serial_with_degraded_masks(khepera, khepera_missions):
    """Iterations with restricted sensor availability take the serial
    per-mission path inside the lattice; mixing them with healthy missions
    must not perturb either side."""
    faults = uniform_dropout_schedule(tuple(khepera.suite.names), 0.35, seed=11)
    degraded = run_scenario(
        khepera,
        None,
        seed=6,
        duration=200 * khepera.model.dt,
        stop_at_goal=False,
        faults=faults,
    ).trace
    full_set = set(khepera.suite.names)
    restricted = [
        a
        for a in (degraded.availability or [])
        if a is not None and set(a) != full_set
    ]
    assert restricted, "fixture should actually restrict availability"
    traces = [khepera_missions[0], degraded, khepera_missions[1]]
    stacked, serial = _replay_both(khepera, traces)
    _assert_batches_agree(stacked, serial)


# ----------------------------------------------------------------------
# Rank-deficient standstill fallback
# ----------------------------------------------------------------------
def test_stacked_standstill_rank_deficient_fallback(tamiya):
    """A parked Ackermann rig steering hard is rank deficient at every step
    (the serial bank's telemetry confirms pseudo-inverse fallbacks fire);
    the stacked bank's batched fallback must reproduce the serial
    minimum-norm results."""
    traces = _standstill_traces(tamiya, [0.0, 0.3], 4, 30, seed=2)

    # Establish the regime on the serial path: solver fallbacks every step.
    telemetry = RecordingTelemetry()
    detector = tamiya.detector()
    detector.attach_telemetry(telemetry)
    serial = replay_batch(detector, traces[:1], keep_reports=False, stacked=False)
    bank_events = telemetry.events_of("mode_bank")
    assert bank_events, "telemetry should record mode-bank events"
    assert all(any(e.solver_fallbacks.values()) for e in bank_events)

    stacked = replay_batch(tamiya.detector(), traces[:1], keep_reports=False, stacked=True)
    _assert_batches_agree(stacked, serial)

    # And across a whole standstill batch (each mission hits the fallback).
    stacked, serial = _replay_both(tamiya, traces)
    _assert_batches_agree(stacked, serial)


# ----------------------------------------------------------------------
# Skewed-length mission batches
# ----------------------------------------------------------------------
def test_stacked_skewed_lengths_zero_and_10x(khepera, khepera_missions):
    """A zero-length raw pair, a 20-step stub, and a 200-step mission (10x
    skew) replay together: missions drop out of the active lattice as they
    end, and padding semantics match the serial path exactly."""
    full = khepera_missions[1]
    stub = (full.planned_controls[:20], full.readings[:20])
    empty = ([], [])
    traces = [empty, stub, full]
    stacked, serial = _replay_both(khepera, traces)
    _assert_batches_agree(stacked, serial)

    assert stacked.lengths.tolist() == [0, 20, len(full)]
    assert stacked.max_length == len(full)
    assert np.all(stacked.selected_mode[0] == -1)
    assert np.all(np.isnan(stacked.state_estimate[0]))
    assert np.all(stacked.selected_mode[1, 20:] == -1)
    assert np.all(np.isnan(stacked.sensor_statistic[1, 20:]))
    assert not stacked.flagged[1, 20:].any()
    assert np.all(stacked.selected_mode[2] >= 0)


# ----------------------------------------------------------------------
# Kernel unit tests
# ----------------------------------------------------------------------
def test_window_met_matches_deque_reference(rng):
    """`_window_met`'s two-cumsum trick equals the serial ring buffer."""
    for window, criteria in ((1, 1), (4, 2), (5, 5), (6, 3)):
        values = rng.random((7, 40)) < 0.5
        pushed = rng.random((7, 40)) < 0.7
        got = _window_met(values, pushed, window, criteria)
        for row in range(values.shape[0]):
            ring: deque = deque(maxlen=window)
            for k in range(values.shape[1]):
                if pushed[row, k]:
                    ring.append(bool(values[row, k]))
                assert got[row, k] == (sum(ring) >= criteria), (
                    f"window={window} criteria={criteria} row={row} step={k}"
                )


def test_window_met_empty_axes():
    assert _window_met(np.zeros((0, 5)), np.zeros((0, 5), dtype=bool), 3, 1).shape == (0, 5)
    assert _window_met(np.zeros((2, 0)), np.zeros((2, 0), dtype=bool), 3, 1).shape == (2, 0)


def test_chol_recurrence_mixed_batch(rng):
    """The masking recurrence factors PSD cells exactly and flags the
    indefinite ones instead of raising like LAPACK."""
    n = 4
    a = rng.standard_normal((6, n, n))
    spd = a @ a.swapaxes(-1, -2) + n * np.eye(n)
    bad = spd.copy()
    bad[1] = np.eye(n)
    bad[1, 2, 2] = -1.0  # negative pivot
    bad[4] = np.ones((n, n))  # rank one: zero pivot in column 1
    lower, ok = _chol_recurrence(bad)
    assert ok.tolist() == [True, False, True, True, False, True]
    np.testing.assert_allclose(lower[ok], np.linalg.cholesky(bad[ok]), rtol=0, atol=1e-12)
    assert np.all(np.isfinite(lower))  # failed cells poisoned, not NaN


def test_stacked_chol_mask_certificate(rng):
    """Well-conditioned cells pass; singular cells are masked out so the
    caller's pseudo-inverse fallback (not an exception) handles them."""
    n = 3
    a = rng.standard_normal((5, n, n))
    mats = a @ a.swapaxes(-1, -2) + n * np.eye(n)
    v = rng.standard_normal(n)
    mats[2] = np.outer(v, v)  # exactly singular
    lower, ok = stacked_chol_mask(mats)
    assert ok.tolist() == [True, True, False, True, True]
    recon = lower[ok] @ lower[ok].swapaxes(-1, -2)
    np.testing.assert_allclose(recon, mats[ok], rtol=0, atol=1e-10)


def test_anomaly_statistic_stacked_matches_serial(rng):
    """Padded heterogeneous cells (dims 0..d_max, incl. a rank-deficient
    one) reproduce the per-cell serial statistic and dof."""
    d_max = 4
    dims = np.array([4, 2, 0, 1, 3, 2])
    count = dims.size
    estimates = np.zeros((count, d_max))
    covariances = np.broadcast_to(np.eye(d_max), (count, d_max, d_max)).copy()
    serial = []
    for i, d in enumerate(dims):
        est = rng.standard_normal(d)
        a = rng.standard_normal((d, d))
        cov = a @ a.T + 0.1 * np.eye(d)
        if i == 4:  # rank-deficient cell: serial pinv semantics must survive
            cov[-1] = cov[0]
            cov[:, -1] = cov[:, 0]
            cov[-1, -1] = cov[0, 0]
        estimates[i, :d] = est
        covariances[i, :d, :d] = cov
        serial.append(anomaly_statistic(est, cov) if d else (0.0, 0))
    stats, dofs = anomaly_statistic_stacked(estimates, covariances, dims)
    for i, (stat, dof) in enumerate(serial):
        assert dofs[i] == dof
        assert stats[i] == pytest.approx(stat, rel=1e-10, abs=1e-12)


# ----------------------------------------------------------------------
# Shared-linearization building blocks
# ----------------------------------------------------------------------
def test_constant_jacobian_sensors_match_pointwise(khepera, rng):
    """Every sensor advertising a constant Jacobian must return exactly the
    pointwise Jacobian at arbitrary states (the suite's broadcast cache
    depends on it)."""
    states = rng.standard_normal((8, khepera.model.state_dim))
    advertised = 0
    for sensor in khepera.suite.sensors:
        const = sensor.constant_jacobian
        if const is None:
            continue
        advertised += 1
        for x in states:
            np.testing.assert_array_equal(const, sensor.jacobian(x))
    assert advertised > 0, "khepera's affine sensors should advertise constants"

    batched = khepera.suite.jacobian_batch(states)
    pointwise = np.stack([khepera.suite.jacobian(x) for x in states])
    np.testing.assert_array_equal(batched, pointwise)


def test_fused_dynamics_bit_exact(khepera, tamiya, rng):
    """`f_and_jacobians_batch` shares subexpressions but every output must be
    bit-identical to the standalone batch methods (the lattice's goldens
    depend on it), including near-zero turn rates."""
    for rig in (khepera, tamiya):
        model = rig.model
        states = rng.standard_normal((10, model.state_dim))
        controls = 0.3 * rng.standard_normal((10, model.control_dim))
        controls[3] = 0.0  # standstill
        controls[4, -1] = 1e-13  # straight-line small-omega branch
        f, A, G = model.f_and_jacobians_batch(states, controls)
        np.testing.assert_array_equal(f, model.f_batch(states, controls))
        np.testing.assert_array_equal(A, model.jacobian_state_batch(states, controls))
        np.testing.assert_array_equal(G, model.jacobian_control_batch(states, controls))
