"""Tests for the LiDAR stack: feature sensor, ray caster, extractor."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DimensionError
from repro.linalg import numerical_jacobian
from repro.sensors.lidar import LidarScan, RayCastLidar, ScanFeatureExtractor, WallDistanceSensor
from repro.world.map import WorldMap
from repro.world.obstacles import RectangleObstacle
from repro.world.presets import paper_arena


@pytest.fixture
def world():
    return WorldMap.rectangle(3.0, 3.0)


class TestWallDistanceSensor:
    def test_h_values(self, world):
        sensor = WallDistanceSensor(world)
        state = np.array([1.0, 0.5, 0.3])
        z = sensor.h(state)
        # Default walls: west, south, east + heading.
        assert np.allclose(z, [1.0, 0.5, 2.0, 0.3])

    def test_jacobian_matches_numeric(self, world):
        sensor = WallDistanceSensor(world)
        state = np.array([1.2, 0.7, -0.4])
        assert np.allclose(sensor.jacobian(state), numerical_jacobian(sensor.h, state), atol=1e-6)

    def test_labels_and_angular(self, world):
        sensor = WallDistanceSensor(world)
        assert sensor.labels == ("lidar.d_west", "lidar.d_south", "lidar.d_east", "lidar.theta")
        assert sensor.angular_components == (3,)

    def test_custom_walls(self, world):
        sensor = WallDistanceSensor(world, wall_names=("north",))
        z = sensor.h(np.array([1.0, 1.0, 0.0]))
        assert np.allclose(z, [2.0, 0.0])

    def test_unknown_wall_rejected(self, world):
        with pytest.raises(ConfigurationError):
            WallDistanceSensor(world, wall_names=("ceiling",))

    def test_empty_walls_rejected(self, world):
        with pytest.raises(ConfigurationError):
            WallDistanceSensor(world, wall_names=())


class TestRayCastLidar:
    def test_ranges_match_geometry(self, world):
        lidar = RayCastLidar(world, fov=np.pi, n_beams=3, sigma_range=0.0)
        scan = lidar.scan(np.array([1.5, 1.5, 0.0]))
        ranges, rel = scan.as_arrays()
        # Beams at -90, 0, +90 degrees from the centre of a 3x3 arena.
        assert np.allclose(ranges, [1.5, 1.5, 1.5], atol=1e-9)
        assert np.allclose(rel, [-np.pi / 2, 0.0, np.pi / 2])

    def test_noise_applied_with_rng(self, world, rng):
        lidar = RayCastLidar(world, n_beams=30, sigma_range=0.01)
        scan = lidar.scan(np.array([1.5, 1.5, 0.0]), rng)
        clean = lidar.scan(np.array([1.5, 1.5, 0.0]))
        diff = np.asarray(scan.ranges) - np.asarray(clean.ranges)
        assert diff.std() == pytest.approx(0.01, rel=0.5)

    def test_obstacle_shortens_beam(self):
        world = WorldMap.rectangle(5.0, 5.0, obstacles=[RectangleObstacle((3.0, 2.0), (4.0, 3.0))])
        lidar = RayCastLidar(world, fov=np.pi / 2, n_beams=3, sigma_range=0.0)
        scan = lidar.scan(np.array([1.0, 2.5, 0.0]))
        assert min(scan.ranges) <= 2.0 + 1e-6

    def test_config_validation(self, world):
        with pytest.raises(ConfigurationError):
            RayCastLidar(world, n_beams=1)
        with pytest.raises(ConfigurationError):
            RayCastLidar(world, fov=7.0)

    def test_scan_dataclass_validation(self):
        with pytest.raises(DimensionError):
            LidarScan((1.0, 2.0), (0.0,), 10.0)


class TestScanFeatureExtractor:
    @pytest.mark.parametrize("theta", [0.0, 0.4, -0.9, 2.5])
    def test_recovers_features_from_clean_scan(self, world, theta):
        pose = np.array([1.2, 0.9, theta])
        lidar = RayCastLidar(world, n_beams=120, sigma_range=0.0)
        extractor = ScanFeatureExtractor(world)
        sensor = WallDistanceSensor(world)
        scan = lidar.scan(pose)
        # Prior is slightly off, as a planner estimate would be.
        prior = pose + np.array([0.01, -0.01, 0.02])
        features = extractor.extract(scan, prior)
        expected = sensor.h(pose)
        # Distances to walls actually visible should be centimetre-accurate.
        for i in range(3):
            if features[i] != 0.0:
                assert features[i] == pytest.approx(expected[i], abs=0.03)
        # Heading estimate from wall orientations.
        assert features[3] == pytest.approx(theta, abs=0.03)

    def test_dos_scan_yields_degenerate_features(self, world):
        lidar = RayCastLidar(world, n_beams=60, sigma_range=0.0)
        extractor = ScanFeatureExtractor(world)
        pose = np.array([1.5, 1.5, 0.0])
        scan = lidar.scan(pose)
        dead = LidarScan(tuple(0.0 for _ in scan.ranges), scan.relative_angles, scan.max_range)
        features = extractor.extract(dead, pose)
        assert np.allclose(features[:3], 0.0)

    def test_dead_scan_declared_by_valid_fraction(self, world):
        extractor = ScanFeatureExtractor(world)
        scan = LidarScan((0.0, 0.0, 0.0), (-0.5, 0.0, 0.5), 10.0)
        features = extractor.extract(scan, np.array([1.0, 1.0, 0.77]))
        assert np.allclose(features, 0.0)

    def test_occluded_wall_falls_back_to_prior(self, world):
        # Heading east with a narrow FOV: the west wall is behind the robot,
        # so its feature comes from the localization prior.
        pose = np.array([1.0, 1.5, 0.0])
        lidar = RayCastLidar(world, fov=np.deg2rad(90.0), n_beams=30, sigma_range=0.0)
        extractor = ScanFeatureExtractor(world)
        prior = pose + np.array([0.02, 0.0, 0.0])
        features = extractor.extract(lidar.scan(pose), prior)
        assert features[0] == pytest.approx(prior[0], abs=1e-6)

    def test_with_noise_still_reasonable(self, world, rng):
        pose = np.array([2.0, 1.0, 0.5])
        lidar = RayCastLidar(world, n_beams=120, sigma_range=0.004)
        extractor = ScanFeatureExtractor(world)
        sensor = WallDistanceSensor(world)
        features = extractor.extract(lidar.scan(pose, rng), pose)
        expected = sensor.h(pose)
        mask = features[:3] != 0.0
        assert np.allclose(features[:3][mask], expected[:3][mask], atol=0.05)

    def test_extractor_in_cluttered_arena(self, rng):
        world = paper_arena()
        pose = np.array([0.5, 0.5, np.pi / 4])
        lidar = RayCastLidar(world, n_beams=120, sigma_range=0.0)
        extractor = ScanFeatureExtractor(world)
        features = extractor.extract(lidar.scan(pose), pose)
        # West and south walls are visible from the start corner.
        assert features[0] == pytest.approx(0.5, abs=0.05)
        assert features[1] == pytest.approx(0.5, abs=0.05)
