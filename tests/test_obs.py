"""Observability layer: bit-identity, event schema round-trip, timing.

Three guarantees pin the telemetry subsystem (``docs/OBSERVABILITY.md``):

1. **Bit-identity** — an attached sink must never perturb the detector's
   math. An explicit ``NullTelemetry`` *and* a ``RecordingTelemetry`` both
   reproduce the golden 200-step archives to the same 1e-10 pins as the
   default un-instrumented path.
2. **Schema round-trip** — every recorded event survives JSONL export and
   re-import with its fields intact, and the event stream carries the
   quantities the paper names (``mu^m_k``, ``N^m_k``, ``d_hat^a_{k-1}``,
   ``d_hat^s_k``, Chi-square statistics vs. thresholds).
3. **Timing aggregation** — ``StageTimer`` streaming statistics match a
   batch recomputation, and summaries are ``BENCH_perf.json``-shaped.
"""

from pathlib import Path

import json
import math

import numpy as np
import pytest

from repro.core.decision import SlidingWindow
from repro.eval.golden import GOLDEN_MISSIONS, compare_golden, golden_mission, load_golden
from repro.eval.runner import run_scenario
from repro.obs.export import export_run, read_jsonl, render_timeline, write_jsonl
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    AvailabilityEvent,
    DecisionEvent,
    ModeBankEvent,
    NullTelemetry,
    RecordingTelemetry,
    Telemetry,
)
from repro.obs.timing import HISTOGRAM_EDGES_S, StageTimer
from repro.sim.faults import uniform_dropout_schedule

GOLDEN_DIR = Path(__file__).parent / "golden"


# ----------------------------------------------------------------------
# 1. Bit-identity with the golden archives
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("mission", sorted(GOLDEN_MISSIONS))
def test_null_telemetry_bit_identical_to_golden(mission):
    stored = load_golden(GOLDEN_DIR / f"{mission}_200.npz")
    fresh = golden_mission(mission, telemetry=NullTelemetry())
    drifted = compare_golden(fresh, stored, atol=1e-10)
    assert not drifted, f"NullTelemetry perturbed golden {mission}: {drifted}"


@pytest.mark.slow
def test_recording_telemetry_bit_identical_to_golden():
    # The instrumented path eagerly forces the shared workspace products and
    # wraps stages in perf_counter calls; none of that may move a single
    # bit of the statistics.
    telemetry = RecordingTelemetry()
    stored = load_golden(GOLDEN_DIR / "khepera_200.npz")
    fresh = golden_mission("khepera", telemetry=telemetry)
    drifted = compare_golden(fresh, stored, atol=1e-10)
    assert not drifted, f"RecordingTelemetry perturbed golden khepera: {drifted}"
    # And the recording actually happened: one mode-bank + one decision
    # event per control iteration, all four stages timed.
    assert len(telemetry.events_of("mode_bank")) == 200
    assert len(telemetry.events_of("decision")) == 200
    assert set(telemetry.timers) == {"linearize", "mode_bank", "select", "decide"}
    assert all(t.count == 200 for t in telemetry.timers.values())


# ----------------------------------------------------------------------
# 2. Event schema round-trip through the JSONL exporter
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def recorded_run(request):
    """A short degraded khepera mission with full telemetry recorded."""
    khepera = request.getfixturevalue("khepera")
    telemetry = RecordingTelemetry()
    run_scenario(
        khepera,
        None,
        seed=5,
        duration=2.0,
        stop_at_goal=False,
        faults=uniform_dropout_schedule(tuple(khepera.suite.names), 0.3, seed=3),
        telemetry=telemetry,
    )
    return telemetry


class TestEventSchema:
    def test_all_kinds_emitted(self, recorded_run):
        kinds = {e.kind for e in recorded_run.events}
        assert kinds == {"mode_bank", "decision", "availability"}

    def test_mode_bank_event_carries_paper_quantities(self, recorded_run):
        event = recorded_run.events_of("mode_bank")[0]
        assert isinstance(event, ModeBankEvent)
        modes = set(event.probabilities)
        assert modes == set(event.likelihoods) == set(event.consistency_scores)
        assert event.selected_mode in modes
        assert abs(sum(event.probabilities.values()) - 1.0) < 1e-9
        # d_hat^a_{k-1} per mode: one entry per control dimension.
        assert set(event.actuator_estimates) == modes
        assert set(event.sensor_estimates) == modes

    def test_decision_event_thresholds_and_windows(self, recorded_run):
        events = recorded_run.events_of("decision")
        assert events, "no decision events recorded"
        for event in events:
            assert isinstance(event, DecisionEvent)
            if event.sensor_dof > 0:
                assert event.sensor_threshold is not None
                assert event.sensor_positive == (
                    event.sensor_statistic > event.sensor_threshold
                )
            positives, filled, window, criteria = event.sensor_window
            assert 0 <= positives <= filled <= window
            assert 1 <= criteria <= window
            for record in event.per_sensor.values():
                p, f, w, c = record["window"]
                assert 0 <= p <= f <= w

    def test_availability_events_match_degraded_iterations(self, recorded_run):
        for event in recorded_run.events_of("availability"):
            assert isinstance(event, AvailabilityEvent)
            assert event.missing, "availability event without missing sensors"
            assert not set(event.available) & set(event.missing)

    def test_jsonl_round_trip(self, recorded_run, tmp_path):
        path = tmp_path / "events.jsonl"
        n = write_jsonl(recorded_run, path)
        assert n == len(recorded_run.events)
        records = read_jsonl(path)
        assert len(records) == n
        for event, record in zip(recorded_run.events, records):
            assert record == event.to_record()
            # JSON round-trip must be loss-free for every field asdict
            # produces (numpy already converted to plain lists/floats).
            assert json.loads(json.dumps(record)) == record

    def test_export_run_writes_all_artifacts(self, recorded_run, tmp_path):
        paths = export_run(recorded_run, tmp_path, prefix="diag", dt=0.05)
        assert sorted(paths) == ["events", "timeline", "timing"]
        assert all(p.exists() for p in paths.values())
        timing = json.loads(paths["timing"].read_text())
        assert set(timing["results"]) == {"linearize", "mode_bank", "select", "decide"}
        for summary in timing["results"].values():
            assert summary["group"] == "obs"
            assert summary["rounds"] > 0
            assert summary["mean_s"] > 0.0
        timeline = paths["timeline"].read_text()
        assert "degraded delivery" in timeline

    def test_timeline_renders_edges_in_order(self):
        telemetry = RecordingTelemetry()
        base = dict(
            sensor_statistic=30.0,
            sensor_threshold=10.0,
            sensor_dof=2,
            sensor_positive=True,
            actuator_statistic=1.0,
            actuator_threshold=5.0,
            actuator_dof=2,
            actuator_positive=False,
            actuator_alarm=False,
            sensor_window=(2, 2, 2, 2),
            actuator_window=(0, 2, 6, 3),
        )
        telemetry.emit(
            ModeBankEvent(
                iteration=1,
                probabilities={"a": 0.9, "b": 0.1},
                likelihoods={"a": 1.0, "b": 0.5},
                consistency_scores={"a": 0.0, "b": -1.0},
                selected_mode="a",
                actuator_estimates={"a": [0.0], "b": [0.0]},
                sensor_estimates={"a": [], "b": []},
            )
        )
        telemetry.emit(
            ModeBankEvent(
                iteration=5,
                probabilities={"a": 0.2, "b": 0.8},
                likelihoods={"a": 0.1, "b": 1.0},
                consistency_scores={"a": -2.0, "b": 0.0},
                selected_mode="b",
                actuator_estimates={"a": [0.0], "b": [0.0]},
                sensor_estimates={"a": [], "b": []},
            )
        )
        telemetry.emit(
            DecisionEvent(iteration=6, sensor_alarm=True, flagged_sensors=("ips",), **base)
        )
        telemetry.emit(AvailabilityEvent(iteration=3, available=("ips",), missing=("lidar",)))
        telemetry.emit(AvailabilityEvent(iteration=4, available=("ips",), missing=("lidar",)))
        text = render_timeline(telemetry, dt=0.1)
        lines = text.strip().splitlines()
        assert "initial mode a" in lines[0]
        assert "degraded delivery .. k=4" in lines[1]
        assert "missing: lidar" in lines[1]
        assert "mode switch a -> b" in lines[2]
        assert "SENSOR ALARM on [ips]" in lines[3]
        assert "stat 30.00 > thr 10.00" in lines[3]


# ----------------------------------------------------------------------
# 3. Timer aggregation
# ----------------------------------------------------------------------
class TestStageTimer:
    def test_streaming_aggregates_match_batch(self, rng):
        samples = rng.uniform(1e-5, 5e-3, size=257)
        timer = StageTimer("mode_bank")
        for s in samples:
            timer.add(float(s))
        assert timer.count == len(samples)
        assert timer.total == pytest.approx(float(samples.sum()))
        assert timer.min == pytest.approx(float(samples.min()))
        assert timer.max == pytest.approx(float(samples.max()))
        assert timer.mean == pytest.approx(float(samples.mean()))
        assert timer.stddev == pytest.approx(float(samples.std(ddof=1)), rel=1e-9)

    def test_histogram_buckets_partition_samples(self):
        timer = StageTimer("x")
        values = [5e-7, 1e-6, 3e-4, 2e-3, 0.5, 10.0]
        for v in values:
            timer.add(v)
        rows = timer.histogram()
        assert sum(n for _, _, n in rows) == len(values)
        for lo, hi, _ in rows:
            assert lo < hi
        # Below the first edge and above the last edge both land somewhere.
        assert rows[0][0] == 0.0
        assert math.isinf(rows[-1][1])
        for v in values:
            assert any(lo <= v < hi for lo, hi, _ in rows)

    def test_bucket_index_agrees_with_searchsorted(self):
        probe = [1e-7, *HISTOGRAM_EDGES_S, 2.5e-4, 1.0, 7.3]
        for v in probe:
            assert StageTimer._bucket(v) == int(
                np.searchsorted(HISTOGRAM_EDGES_S, v, side="right")
            )

    def test_summary_is_bench_perf_shaped(self):
        timer = StageTimer("select")
        timer.add(1e-3)
        timer.add(2e-3)
        summary = timer.summary()
        assert summary["group"] == "obs"
        assert summary["rounds"] == 2
        assert summary["mean_s"] == pytest.approx(1.5e-3)
        assert summary["stddev_s"] > 0.0
        assert json.loads(json.dumps(summary)) == summary

    def test_empty_timer_summary(self):
        summary = StageTimer("idle").summary()
        assert summary["rounds"] == 0
        assert summary["min_s"] == 0.0
        assert summary["histogram"] == []


# ----------------------------------------------------------------------
# Sink plumbing
# ----------------------------------------------------------------------
class TestSinks:
    def test_null_telemetry_is_disabled_protocol_member(self):
        assert isinstance(NULL_TELEMETRY, Telemetry)
        assert isinstance(RecordingTelemetry(), Telemetry)
        assert not NULL_TELEMETRY.enabled
        # No-ops must really be no-ops.
        NULL_TELEMETRY.record_duration("x", 1.0)
        NULL_TELEMETRY.emit(AvailabilityEvent(iteration=1, available=(), missing=("a",)))

    def test_attach_telemetry_reaches_engine_and_decision(self, khepera):
        detector = khepera.detector()
        assert detector.telemetry is detector.engine.telemetry
        assert not detector.telemetry.enabled
        sink = RecordingTelemetry()
        detector.attach_telemetry(sink)
        assert detector.telemetry is sink
        assert detector.engine.telemetry is sink
        detector.attach_telemetry(None)
        assert detector.telemetry is NULL_TELEMETRY

    def test_sliding_window_occupancy(self):
        window = SlidingWindow(window=3, criteria=2)
        assert window.occupancy == (0, 0, 3, 2)
        window.push(True)
        window.push(False)
        assert window.occupancy == (1, 2, 3, 2)
        window.push(True)
        window.push(True)  # evicts the first True
        assert window.occupancy == (2, 3, 3, 2)
        assert window.met
        window.reset()
        assert window.occupancy == (0, 0, 3, 2)

    def test_recording_clear(self):
        sink = RecordingTelemetry()
        sink.emit(AvailabilityEvent(iteration=1, available=(), missing=("a",)))
        sink.record_duration("s", 0.1)
        sink.clear()
        assert sink.events == []
        assert sink.timing_summary() == {}
