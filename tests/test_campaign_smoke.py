"""Tier-1 campaign smoke: real cells end-to-end, then the dashboard.

A 4-cell mini-campaign (two Khepera detection cells, short missions, at
two dropout intensities) runs cold against a throwaway store, then again
warm — the warm run must perform **zero** cell executions and zero
detector iterations (the ISSUE acceptance criterion), enforced two ways:
the executor invocation counter stays flat, and a poisoned
``run_scenario`` proves no detection code path is entered. Finally
``scripts/make_dashboard.py`` renders the store and the HTML must contain
every cell id.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

from repro.campaign import (
    CampaignManifest,
    ResultStore,
    campaign_status,
    run_campaign,
)
from repro.campaign import cells as cells_mod
from repro.campaign.manifest import detection_grid

REPO = pathlib.Path(__file__).resolve().parents[1]
DURATION = 3.0  # seconds of simulated mission per cell: enough to detect


@pytest.fixture(scope="module")
def mini_campaign():
    return CampaignManifest(
        "mini",
        cells=detection_grid(
            "khepera",
            [1, 4],
            intensities=(0.0, 0.2),
            n_trials=1,
            duration=DURATION,
        ),
        description="tier-1 smoke grid",
    )


@pytest.fixture(scope="module")
def populated_store(tmp_path_factory, mini_campaign):
    store = ResultStore(tmp_path_factory.mktemp("artifacts"))
    report = run_campaign(mini_campaign, store)
    assert report.computed == 4 and report.cached == 0
    return store


def test_cold_run_produces_finite_results(mini_campaign, populated_store):
    for cell in mini_campaign.cells:
        envelope = populated_store.get(cell.address())
        assert envelope is not None
        result = envelope["result"]
        assert result["finite"], f"{cell.cell_id} produced non-finite statistics"
        assert result["iterations"] > 0
        if result["intensity"] > 0:
            assert result["degraded_fraction"] > 0


def test_warm_rerun_executes_nothing(mini_campaign, populated_store, monkeypatch):
    # Belt: the executor counter must not move. Braces: if any detection
    # cell ran anyway, the poisoned run_scenario would blow up the run.
    import repro.eval.runner as runner_mod

    def poisoned(*args, **kwargs):  # pragma: no cover - must never run
        raise AssertionError("warm campaign re-run executed a detector mission")

    monkeypatch.setattr(runner_mod, "run_scenario", poisoned)
    before = cells_mod.EXECUTION_COUNT
    report = run_campaign(mini_campaign, populated_store)
    assert cells_mod.EXECUTION_COUNT == before
    assert report.computed == 0
    assert report.cached == report.total == 4
    assert report.cache_hit_rate == 1.0


def test_status_reflects_population(mini_campaign, populated_store, tmp_path):
    warm = campaign_status(mini_campaign, populated_store)
    assert (warm.cached, warm.pending) == (4, 0)
    cold = campaign_status(mini_campaign, ResultStore(tmp_path))
    assert (cold.cached, cold.pending) == (0, 4)


def test_dashboard_contains_every_cell(mini_campaign, populated_store, tmp_path):
    out = tmp_path / "dashboard.html"
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO / "scripts" / "make_dashboard.py"),
            "--store",
            str(populated_store.root),
            "--out",
            str(out),
        ],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert proc.returncode == 0, proc.stderr
    html = out.read_text()
    for cell in mini_campaign.cells:
        assert cell.cell_id in html, f"dashboard is missing {cell.cell_id}"
    # The mini-grid sweeps two intensities, so the fault-campaign section
    # (heat grid + SVG degradation curves) must have rendered.
    assert "Degradation curves" in html
    assert "<svg" in html
    assert "Cell index" in html
