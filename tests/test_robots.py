"""Tests for the Khepera and Tamiya prototype rigs."""

import numpy as np
import pytest

from repro.core.detector import RoboADS
from repro.core.modes import complete_modes
from repro.errors import ConfigurationError
from repro.robots.khepera import KHEPERA_WHEEL_BASE, khepera_rig
from repro.robots.tamiya import TAMIYA_WHEELBASE, tamiya_rig
from repro.sim.workflows import FeatureSensingWorkflow, LidarRawWorkflow, OdometryWorkflow


class TestKheperaRig:
    def test_structure(self, khepera):
        assert khepera.name == "khepera"
        assert khepera.suite.names == ("ips", "wheel_encoder", "lidar")
        assert khepera.model.control_labels == ("v_l", "v_r")
        assert khepera.nav_sensor == "ips"
        assert khepera.model.dt == pytest.approx(0.05)

    def test_geometry_matches_catalog(self, khepera):
        from repro.attacks.catalog import KHEPERA_WHEEL_BASE as CATALOG_BASE

        assert KHEPERA_WHEEL_BASE == CATALOG_BASE
        assert khepera.model.wheel_base == KHEPERA_WHEEL_BASE

    def test_platform_factory_fresh_objects(self, khepera):
        p1, p2 = khepera.make_platform(), khepera.make_platform()
        assert p1 is not p2

    def test_detector_factory(self, khepera):
        detector = khepera.detector()
        assert isinstance(detector, RoboADS)
        assert {m.name for m in detector.engine.modes} == {
            "ref:ips",
            "ref:wheel_encoder",
            "ref:lidar",
        }

    def test_detector_with_custom_modes(self, khepera):
        modes = complete_modes(khepera.suite, max_corrupted=1)
        detector = khepera.detector(modes=modes)
        assert len(detector.engine.modes) == len(modes)

    def test_path_cache(self, khepera):
        p1 = khepera.plan_path(0)
        p2 = khepera.plan_path(0)
        assert p1 is p2

    def test_invalid_modes_rejected(self):
        with pytest.raises(ConfigurationError):
            khepera_rig(lidar_mode="sonar")
        with pytest.raises(ConfigurationError):
            khepera_rig(odometry_mode="banana")

    def test_raw_workflow_variants(self):
        rig = khepera_rig(lidar_mode="raw", odometry_mode="raw")
        platform = rig.make_platform()
        workflows = platform._workflows  # test-only peek
        assert isinstance(workflows["lidar"], LidarRawWorkflow)
        assert isinstance(workflows["wheel_encoder"], OdometryWorkflow)
        assert isinstance(workflows["ips"], FeatureSensingWorkflow)

    def test_controller_factory(self, khepera):
        controller = khepera.make_controller(khepera.plan_path(0))
        command = controller.command(np.array(khepera.mission.start_pose), khepera.model.dt)
        assert command.shape == (2,)


class TestTamiyaRig:
    def test_structure(self, tamiya):
        assert tamiya.name == "tamiya"
        assert tamiya.suite.names == ("ips", "imu", "lidar")
        assert tamiya.model.control_labels == ("v", "delta")
        assert tamiya.model.wheelbase == TAMIYA_WHEELBASE
        assert tamiya.model.dt == pytest.approx(0.1)

    def test_detector_builds(self, tamiya):
        detector = tamiya.detector()
        assert len(detector.engine.modes) == 3

    def test_mission_differs_from_khepera(self, khepera, tamiya):
        assert tamiya.mission.world.bounds != khepera.mission.world.bounds

    def test_invalid_lidar_mode(self):
        with pytest.raises(ConfigurationError):
            tamiya_rig(lidar_mode="x")


class TestClosedLoopBehaviour:
    def test_khepera_reaches_goal_on_clean_run(self, khepera):
        from repro.eval.runner import run_scenario

        result = run_scenario(khepera, None, seed=2)
        final = result.trace.true_states[-1][:2]
        goal = np.array(khepera.mission.goal)
        assert np.linalg.norm(final - goal) < 0.25

    def test_tamiya_reaches_goal_on_clean_run(self, tamiya):
        from repro.eval.runner import run_scenario

        result = run_scenario(tamiya, None, seed=2)
        final = result.trace.true_states[-1][:2]
        goal = np.array(tamiya.mission.goal)
        assert np.linalg.norm(final - goal) < 0.3
