"""Tests for the robot kinematic models and noise utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics.base import RobotModel
from repro.dynamics.bicycle import BicycleModel
from repro.dynamics.differential_drive import DifferentialDriveModel
from repro.dynamics.noise import GaussianNoise, validate_covariance
from repro.dynamics.unicycle import UnicycleModel
from repro.errors import ConfigurationError, DimensionError
from repro.linalg import numerical_jacobian

state_floats = st.floats(min_value=-3.0, max_value=3.0)
speed_floats = st.floats(min_value=-0.5, max_value=0.5)


def numeric_A(model, x, u):
    return numerical_jacobian(lambda s: model.f(s, u), x)


def numeric_G(model, x, u):
    return numerical_jacobian(lambda c: model.f(x, c), u)


class TestValidateCovariance:
    def test_scalar(self):
        assert np.allclose(validate_covariance(2.0, 3), 2.0 * np.eye(3))

    def test_diagonal(self):
        assert np.allclose(validate_covariance([1.0, 4.0], 2), np.diag([1.0, 4.0]))

    def test_full_matrix(self):
        m = np.array([[2.0, 0.5], [0.5, 1.0]])
        assert np.allclose(validate_covariance(m, 2), m)

    def test_rejects_wrong_length(self):
        with pytest.raises(DimensionError):
            validate_covariance([1.0, 2.0, 3.0], 2)

    def test_rejects_indefinite(self):
        with pytest.raises(ConfigurationError):
            validate_covariance(np.array([[1.0, 2.0], [2.0, 1.0]]), 2)


class TestGaussianNoise:
    def test_sample_statistics(self, rng):
        cov = np.array([[0.04, 0.01], [0.01, 0.09]])
        noise = GaussianNoise(cov, 2)
        samples = noise.sample(rng, size=20000)
        assert np.allclose(samples.mean(axis=0), 0.0, atol=0.01)
        assert np.allclose(np.cov(samples.T), cov, atol=0.01)

    def test_semidefinite_allowed(self, rng):
        noise = GaussianNoise(np.diag([1.0, 0.0]), 2)
        samples = noise.sample(rng, size=100)
        assert np.allclose(samples[:, 1], 0.0)

    def test_from_sigmas(self):
        noise = GaussianNoise.from_sigmas([0.1, 0.2])
        assert np.allclose(noise.covariance, np.diag([0.01, 0.04]))


class TestDifferentialDrive:
    @pytest.fixture
    def model(self):
        return DifferentialDriveModel(wheel_base=0.0888, dt=0.05)

    def test_straight_line(self, model):
        x = model.f(np.array([0.0, 0.0, 0.0]), np.array([0.2, 0.2]))
        assert np.allclose(x, [0.01, 0.0, 0.0])

    def test_pure_rotation(self, model):
        x = model.f(np.zeros(3), np.array([-0.1, 0.1]))
        expected_dtheta = 0.2 / 0.0888 * 0.05
        assert np.allclose(x[:2], 0.0, atol=1e-12)
        assert x[2] == pytest.approx(expected_dtheta)

    def test_arc_exact_integration(self, model):
        # Quarter-turn circle: the chord matches the closed-form arc.
        v, omega = 0.1, 0.5
        u = model.wheel_speeds(v, omega)
        x = np.zeros(3)
        for _ in range(int(np.pi / 2 / (omega * model.dt))):
            x = model.f(x, u)
        radius = v / omega
        assert x[0] == pytest.approx(radius * np.sin(x[2]), abs=1e-6)
        assert x[1] == pytest.approx(radius * (1 - np.cos(x[2])), abs=1e-6)

    def test_twist_roundtrip(self, model):
        u = np.array([0.12, 0.2])
        v, omega = model.body_twist(u)
        assert np.allclose(model.wheel_speeds(v, omega), u)

    @given(state_floats, state_floats, st.floats(-3.0, 3.0), speed_floats, speed_floats)
    @settings(max_examples=50, deadline=None)
    def test_jacobians_match_numeric(self, x, y, theta, vl, vr):
        model = DifferentialDriveModel()
        state = np.array([x, y, theta])
        control = np.array([vl, vr])
        assert np.allclose(
            model.jacobian_state(state, control), numeric_A(model, state, control), atol=1e-5
        )
        assert np.allclose(
            model.jacobian_control(state, control), numeric_G(model, state, control), atol=1e-5
        )

    def test_jacobian_continuous_across_zero_omega(self):
        model = DifferentialDriveModel()
        state = np.array([0.1, -0.2, 0.7])
        g_straight = model.jacobian_control(state, np.array([0.2, 0.2]))
        g_near = model.jacobian_control(state, np.array([0.2, 0.2 + 1e-7]))
        assert np.allclose(g_straight, g_near, atol=1e-5)

    def test_invalid_wheel_base(self):
        with pytest.raises(ConfigurationError):
            DifferentialDriveModel(wheel_base=0.0)


class TestBicycle:
    @pytest.fixture
    def model(self):
        return BicycleModel(wheelbase=0.257, dt=0.1)

    def test_straight(self, model):
        x = model.f(np.zeros(3), np.array([1.0, 0.0]))
        assert np.allclose(x, [0.1, 0.0, 0.0])

    def test_turning_direction(self, model):
        x = model.f(np.zeros(3), np.array([1.0, 0.3]))
        assert x[2] > 0.0  # left steer turns left

    def test_clip_control(self, model):
        clipped = model.clip_control(np.array([1.0, 2.0]))
        assert clipped[1] == pytest.approx(model.max_steer)

    @given(state_floats, state_floats, st.floats(-3.0, 3.0),
           st.floats(0.0, 1.5), st.floats(-0.5, 0.5))
    @settings(max_examples=50, deadline=None)
    def test_jacobians_match_numeric(self, x, y, theta, v, delta):
        model = BicycleModel()
        state = np.array([x, y, theta])
        control = np.array([v, delta])
        assert np.allclose(
            model.jacobian_state(state, control), numeric_A(model, state, control), atol=1e-5
        )
        assert np.allclose(
            model.jacobian_control(state, control), numeric_G(model, state, control), atol=1e-4
        )

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            BicycleModel(wheelbase=-1.0)
        with pytest.raises(ConfigurationError):
            BicycleModel(max_steer=2.0)


class TestUnicycle:
    def test_f_and_jacobians(self):
        model = UnicycleModel(dt=0.1)
        state = np.array([1.0, 2.0, np.pi / 3])
        control = np.array([0.5, 0.2])
        assert np.allclose(
            model.jacobian_state(state, control), numeric_A(model, state, control), atol=1e-6
        )
        assert np.allclose(
            model.jacobian_control(state, control), numeric_G(model, state, control), atol=1e-6
        )

    def test_heading_wraps(self):
        model = UnicycleModel(dt=1.0)
        x = model.f(np.array([0.0, 0.0, 3.0]), np.array([0.0, 1.0]))
        assert -np.pi < x[2] <= np.pi


class TestRobotModelBase:
    def test_validation(self):
        model = UnicycleModel()
        with pytest.raises(DimensionError):
            model.validate_state(np.zeros(4))
        with pytest.raises(DimensionError):
            model.validate_control(np.zeros(3))

    def test_normalize_state(self):
        model = UnicycleModel()
        state = model.normalize_state(np.array([0.0, 0.0, 5.0]))
        assert -np.pi < state[2] <= np.pi

    def test_metadata(self):
        model = DifferentialDriveModel()
        assert model.state_labels == ("x", "y", "theta")
        assert model.control_labels == ("v_l", "v_r")
        assert model.angular_states == (2,)
        assert model.zero_state().shape == (3,)
        assert model.zero_control().shape == (2,)

    def test_invalid_dt(self):
        with pytest.raises(ConfigurationError):
            UnicycleModel(dt=0.0)

    def test_numerical_jacobian_fallback(self):
        class Fallback(RobotModel):
            def __init__(self):
                super().__init__(2, 1, 0.1, ("a", "b"), ("u",))

            def f(self, state, control):
                state = self.validate_state(state)
                control = self.validate_control(control)
                return np.array([state[0] + control[0] * self.dt, state[1] * 0.9])

        model = Fallback()
        A = model.jacobian_state(np.array([1.0, 2.0]), np.array([0.5]))
        G = model.jacobian_control(np.array([1.0, 2.0]), np.array([0.5]))
        assert np.allclose(A, [[1.0, 0.0], [0.0, 0.9]], atol=1e-6)
        assert np.allclose(G, [[0.1], [0.0]], atol=1e-6)
