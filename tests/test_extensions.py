"""Tests for forensics, switching attacks, sensor quality, mecanum, CLI."""

import numpy as np
import pytest

from repro.dynamics.omnidirectional import OmnidirectionalModel
from repro.linalg import numerical_jacobian


class TestOmnidirectionalModel:
    def test_body_frame_translation(self):
        model = OmnidirectionalModel(dt=0.1)
        # Heading 90 degrees: body +x is world +y.
        state = np.array([0.0, 0.0, np.pi / 2])
        out = model.f(state, np.array([1.0, 0.0, 0.0]))
        assert np.allclose(out, [0.0, 0.1, np.pi / 2], atol=1e-12)

    def test_lateral_translation(self):
        model = OmnidirectionalModel(dt=0.1)
        out = model.f(np.zeros(3), np.array([0.0, 1.0, 0.0]))
        assert np.allclose(out, [0.0, 0.1, 0.0])

    def test_jacobians_match_numeric(self):
        model = OmnidirectionalModel()
        state = np.array([0.3, -0.2, 0.8])
        control = np.array([0.2, -0.1, 0.4])
        assert np.allclose(
            model.jacobian_state(state, control),
            numerical_jacobian(lambda x: model.f(x, control), state),
            atol=1e-6,
        )
        assert np.allclose(
            model.jacobian_control(state, control),
            numerical_jacobian(lambda u: model.f(state, u), control),
            atol=1e-6,
        )

    def test_three_dim_unknown_input_needs_full_pose_reference(self):
        from repro.core.modes import Mode
        from repro.core.nuise import NuiseFilter
        from repro.errors import ObservabilityError
        from repro.sensors.gps import GPS
        from repro.sensors.pose_sensors import IPS
        from repro.sensors.suite import SensorSuite

        model = OmnidirectionalModel()
        suite = SensorSuite([IPS(), GPS()])
        # Full pose: rank(C2 G) = 3 — accepted.
        NuiseFilter(model, suite, Mode.for_suite(suite, ("ips",)), 1e-6,
                    nominal_control=np.array([0.1, 0.1, 0.1]))
        # Position-only: rank 2 < 3 — rejected.
        with pytest.raises(ObservabilityError):
            NuiseFilter(model, suite, Mode.for_suite(suite, ("gps",)), 1e-6,
                        nominal_control=np.array([0.1, 0.1, 0.1]))

    def test_detects_lateral_actuator_anomaly(self):
        """A mecanum-specific attack: lateral creep no diff-drive could make."""
        from repro.core.detector import RoboADS
        from repro.sensors.pose_sensors import IPS, OdometryPoseSensor
        from repro.sensors.suite import SensorSuite

        model = OmnidirectionalModel(dt=0.1)
        suite = SensorSuite([IPS(sigma_xy=0.002, sigma_theta=0.004), OdometryPoseSensor()])
        detector = RoboADS(
            model,
            suite,
            process_noise=np.diag([1e-6, 1e-6, 4e-6]),
            initial_state=np.zeros(3),
            nominal_control=np.array([0.1, 0.1, 0.1]),
        )
        rng = np.random.default_rng(2)
        x_true = np.zeros(3)
        control = np.array([0.2, 0.0, 0.1])
        alarms = 0
        for k in range(60):
            executed = control + (np.array([0.0, 0.15, 0.0]) if k >= 20 else 0.0)
            x_true = model.normalize_state(
                model.f(x_true, executed) + np.sqrt([1e-6, 1e-6, 4e-6]) * rng.standard_normal(3)
            )
            report = detector.step(control, suite.measure(x_true, rng))
            if k >= 30 and report.actuator_alarm:
                alarms += 1
        assert alarms >= 25


class TestForensics:
    def test_quantifies_known_bias(self, khepera):
        from repro.attacks.catalog import khepera_scenarios
        from repro.eval.forensics import quantify_run
        from repro.eval.runner import run_scenario

        scenario = next(s for s in khepera_scenarios() if s.number == 3)
        result = run_scenario(khepera, scenario, seed=42)
        report = quantify_run(result.trace, khepera.suite)
        ips = next(c for c in report.sensors if c.name == "ips")
        assert ips.mean_true_magnitude == pytest.approx(0.07, abs=0.005)
        assert ips.normalized_bias < 0.05
        assert "forensics" in report.format()

    def test_actuator_quantification(self, khepera):
        from repro.attacks.catalog import khepera_scenarios
        from repro.eval.forensics import quantify_run
        from repro.eval.runner import run_scenario

        scenario = next(s for s in khepera_scenarios() if s.number == 1)
        result = run_scenario(khepera, scenario, seed=42)
        report = quantify_run(result.trace, khepera.suite)
        assert report.actuator is not None
        assert report.actuator.normalized_bias < 0.2

    def test_clean_run_reports_nothing(self, khepera):
        from repro.eval.forensics import quantify_run
        from repro.eval.runner import run_scenario

        result = run_scenario(khepera, None, seed=1, duration=4.0)
        report = quantify_run(result.trace, khepera.suite)
        assert report.sensors == []
        assert report.actuator is None

    def test_trace_ground_truth_corruption(self, khepera):
        from repro.attacks.catalog import khepera_scenarios
        from repro.eval.runner import run_scenario

        scenario = next(s for s in khepera_scenarios() if s.number == 3)
        result = run_scenario(khepera, scenario, seed=42)
        trace = result.trace
        sl = khepera.suite.slice_of("ips")
        ds = trace.actual_sensor_anomaly()
        attacked = [k for k in range(len(trace)) if "ips" in trace.truth_sensors[k]]
        clean = [k for k in range(len(trace)) if not trace.truth_sensors[k]]
        assert np.allclose(ds[attacked][:, sl.start], 0.07, atol=1e-9)
        assert np.allclose(ds[clean], 0.0, atol=1e-9)


@pytest.mark.slow
class TestSwitchingExperiment:
    def test_degradation_shape(self):
        from repro.experiments.switching import run_switching

        result = run_switching(periods=(0.5, 4.0), seed=900)
        assert result.monotone_degradation()
        assert result.identification_accuracy[-1] > 0.9
        assert result.alarm_recall[-1] > 0.9
        assert "switching" in result.format().lower()


@pytest.mark.slow
class TestSensorQualityExperiment:
    def test_monotonicity(self):
        from repro.experiments.sensor_quality import run_sensor_quality

        result = run_sensor_quality(sigmas=(0.001, 0.004), seed=1000)
        assert result.quality_monotone()
        assert result.quantity_monotone()
        assert "quality" in result.format()


class TestCli:
    def test_cli_runs_an_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table4"]) == 0
        captured = capsys.readouterr()
        assert "Table IV" in captured.out

    def test_cli_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["does-not-exist"])
