"""Streaming smoke gate: run ``scripts/serve_smoke.py`` as part of tier-1.

The script owns the logic (streaming == batch == resumed, fleet
backpressure, the 60 s budget); this test wires a scaled-down variant into
the default pytest run so the gate cannot rot unnoticed between CI setups
that only run pytest.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]

pytestmark = [pytest.mark.serve, pytest.mark.slow]


@pytest.fixture(scope="module")
def serve_smoke():
    """Import ``scripts/serve_smoke.py`` as a module (scripts/ is not a package)."""
    spec = importlib.util.spec_from_file_location(
        "serve_smoke", REPO / "scripts" / "serve_smoke.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_serve_smoke_passes(serve_smoke, capsys):
    """A scaled-down smoke (short mission, small fleet) must be bit-exact."""
    assert serve_smoke.main(["--duration", "2.0", "--robots", "3"]) == 0
    assert "OK: streaming smoke passed" in capsys.readouterr().out
