"""Property tests: NUISE on *linear* systems, where theory is exact.

On a linear-Gaussian system the linearization is exact, so the filter's
minimum-variance claims hold in closed form: the unknown-input estimate is
exactly unbiased whatever the (even adversarial, time-varying) anomaly
sequence, and estimation errors match the reported covariances. Hypothesis
draws random stable systems to check this is structural, not an artifact of
one robot model.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.modes import Mode
from repro.core.nuise import NuiseFilter
from repro.dynamics.base import RobotModel
from repro.sensors.base import Sensor
from repro.sensors.suite import SensorSuite


class LinearRobot(RobotModel):
    """x_{k+1} = A x_k + B u_k — a linear 'robot' with 2-dim control."""

    def __init__(self, A: np.ndarray, B: np.ndarray, dt: float = 0.1) -> None:
        super().__init__(
            state_dim=A.shape[0],
            control_dim=B.shape[1],
            dt=dt,
            state_labels=tuple(f"x{i}" for i in range(A.shape[0])),
            control_labels=tuple(f"u{i}" for i in range(B.shape[1])),
        )
        self.A = A
        self.B = B

    def f(self, state, control):
        return self.A @ self.validate_state(state) + self.B @ self.validate_control(control)

    def jacobian_state(self, state, control):
        return self.A.copy()

    def jacobian_control(self, state, control):
        return self.B.copy()


class LinearSensor(Sensor):
    """z = C x + noise."""

    def __init__(self, name: str, C: np.ndarray, sigma: float) -> None:
        super().__init__(
            name=name,
            dim=C.shape[0],
            state_dim=C.shape[1],
            covariance=sigma**2 * np.eye(C.shape[0]),
        )
        self.C = C

    def h(self, state):
        return self.C @ np.asarray(state, dtype=float)

    def jacobian(self, state):
        return self.C.copy()


def random_system(rng: np.random.Generator, n: int):
    """A random stable (A, B) pair with full-rank B."""
    A = rng.standard_normal((n, n))
    A *= 0.9 / max(np.abs(np.linalg.eigvals(A)).max(), 1e-6)
    while True:
        B = rng.standard_normal((n, 2))
        if np.linalg.matrix_rank(B) == 2:
            return A, B


def build(rng: np.random.Generator, n: int, sigma: float = 0.01):
    A, B = random_system(rng, n)
    model = LinearRobot(A, B)
    reference = LinearSensor("ref", np.eye(n), sigma)
    testing = LinearSensor("test", np.eye(n), sigma)
    suite = SensorSuite([reference, testing])
    mode = Mode.for_suite(suite, ("ref",))
    filt = NuiseFilter(model, suite, mode, process_noise=1e-6, nominal_control=np.ones(2))
    return model, suite, filt


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=5))
@settings(max_examples=15, deadline=None)
def test_unknown_input_unbiased_on_linear_system(seed, n):
    """Mean d^a estimation error ~0 for a random constant anomaly."""
    rng = np.random.default_rng(seed)
    model, suite, filt = build(rng, n)
    d_a = rng.uniform(-0.5, 0.5, size=2)
    control = rng.uniform(-0.3, 0.3, size=2)

    x_true = rng.standard_normal(n) * 0.1
    x_hat, P = x_true.copy(), 1e-6 * np.eye(n)
    errors = []
    for _ in range(150):
        x_true = model.f(x_true, control + d_a) + 1e-3 * rng.standard_normal(n)
        z = suite.measure(x_true, rng)
        result = filt.step(control, x_hat, P, z)
        x_hat, P = result.state, result.state_covariance
        errors.append(result.actuator_anomaly - d_a)
    mean_error = np.mean(errors[10:], axis=0)
    # Unbiased: the time-averaged estimation error is a small fraction of
    # the per-step estimate noise.
    per_step_sigma = np.sqrt(np.diag(result.actuator_covariance))
    assert np.all(np.abs(mean_error) < 0.5 * per_step_sigma + 5e-3)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_time_varying_anomaly_tracked(seed):
    """The WLS estimate tracks an arbitrary per-step anomaly sequence."""
    rng = np.random.default_rng(seed)
    model, suite, filt = build(rng, 3, sigma=0.005)
    control = np.array([0.1, -0.2])

    x_true = np.zeros(3)
    x_hat, P = x_true.copy(), 1e-6 * np.eye(3)
    errors = []
    for k in range(100):
        d_a = np.array([0.3 * np.sin(0.2 * k), 0.2 * np.cos(0.13 * k)])
        x_true = model.f(x_true, control + d_a) + 1e-4 * rng.standard_normal(3)
        z = suite.measure(x_true, rng)
        result = filt.step(control, x_hat, P, z)
        x_hat, P = result.state, result.state_covariance
        errors.append(np.linalg.norm(result.actuator_anomaly - d_a))
    # Per-step tracking error bounded by a few estimate sigmas.
    sigma = float(np.sqrt(np.trace(result.actuator_covariance)))
    assert np.median(errors[5:]) < 4.0 * sigma


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_sensor_anomaly_exact_on_linear_system(seed):
    """d^s estimation is unbiased for the testing sensor."""
    rng = np.random.default_rng(seed)
    model, suite, filt = build(rng, 3, sigma=0.005)
    control = np.array([0.1, 0.1])
    bias = rng.uniform(-0.3, 0.3, size=3)

    x_true = np.zeros(3)
    x_hat, P = x_true.copy(), 1e-6 * np.eye(3)
    estimates = []
    for _ in range(120):
        x_true = model.f(x_true, control) + 1e-4 * rng.standard_normal(3)
        z = suite.measure(x_true, rng)
        z[suite.slice_of("test")] += bias
        result = filt.step(control, x_hat, P, z)
        x_hat, P = result.state, result.state_covariance
        estimates.append(result.sensor_anomaly)
    mean_estimate = np.mean(estimates[20:], axis=0)
    assert np.allclose(mean_estimate, bias, atol=0.01)
