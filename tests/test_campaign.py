"""Campaign layer unit tests: hashing, manifests, store, status, CLI.

The heavier end-to-end behavior (real detector cells, the zero-execution
warm-run guarantee, the dashboard) lives in ``test_campaign_smoke.py``;
this module covers the identity and persistence machinery with cheap
synthetic cells.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.campaign import (
    CampaignManifest,
    CellSpec,
    ResultStore,
    campaign_status,
    canonical_json,
    config_hash,
    register_cell_kind,
    run_campaign,
)
from repro.campaign.cells import cell_kinds
from repro.campaign.manifest import detection_cell, detection_grid, experiment_cell
from repro.campaign.report import campaign_report, format_campaign
from repro.errors import ConfigurationError


def synthetic_manifest(values=(1, 2, 3), name="synthetic") -> CampaignManifest:
    return CampaignManifest(
        name,
        cells=[
            CellSpec(f"cell/{v}", "synthetic", {"value": v, "scale": 2.0})
            for v in values
        ],
    )


@pytest.fixture(autouse=True)
def synthetic_kind():
    if "synthetic" not in cell_kinds():
        register_cell_kind(
            "synthetic",
            lambda config: ({"kind": "synthetic", "out": config["value"] * config["scale"]}, None),
        )
    yield


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})

    def test_int_valued_floats_fold_to_int(self):
        # A JSON round-trip cannot tell 1.0 from 1, so neither may the hash.
        assert config_hash({"x": 1.0}) == config_hash({"x": 1})

    def test_negative_zero_folds(self):
        assert config_hash({"x": -0.0}) == config_hash({"x": 0.0})

    def test_tuples_hash_as_lists(self):
        assert config_hash({"x": (1, 2)}) == config_hash({"x": [1, 2]})

    def test_non_finite_rejected(self):
        with pytest.raises(ConfigurationError):
            config_hash({"x": float("nan")})
        with pytest.raises(ConfigurationError):
            config_hash({"x": float("inf")})

    def test_non_string_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            config_hash({1: "x"})

    def test_non_json_values_rejected(self):
        with pytest.raises(ConfigurationError):
            config_hash({"x": object()})


class TestHashStability:
    def test_identical_manifests_hash_identically(self):
        a = synthetic_manifest().addresses()
        b = synthetic_manifest().addresses()
        assert a == b

    def test_round_trip_preserves_addresses(self, tmp_path):
        manifest = synthetic_manifest()
        path = manifest.save(tmp_path / "m.json")
        assert CampaignManifest.load(path).addresses() == manifest.addresses()

    def test_addresses_stable_across_processes(self, tmp_path):
        # The whole point of content addressing: a fresh interpreter (fresh
        # PYTHONHASHSEED, fresh import order) derives the same addresses.
        manifest = synthetic_manifest()
        path = manifest.save(tmp_path / "m.json")
        script = (
            "import json, sys\n"
            "from repro.campaign import CampaignManifest\n"
            "m = CampaignManifest.load(sys.argv[1])\n"
            "print(json.dumps(m.addresses()))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(path)],
            capture_output=True,
            text=True,
            check=True,
        )
        assert json.loads(proc.stdout) == manifest.addresses()

    def test_cell_id_not_part_of_identity(self):
        a = CellSpec("one-name", "synthetic", {"value": 1})
        b = CellSpec("another-name", "synthetic", {"value": 1})
        assert a.address() == b.address()

    def test_kind_is_part_of_identity(self):
        a = CellSpec("c", "synthetic", {"value": 1})
        b = CellSpec("c", "other", {"value": 1})
        assert a.address() != b.address()

    def test_changed_seed_invalidates_only_affected_cells(self):
        base = detection_grid("khepera", [1, 4], intensities=(0.0, 0.1), n_trials=2)
        bumped = detection_grid(
            "khepera", [1, 4], intensities=(0.0, 0.1), n_trials=2, fault_seed=8
        )
        changed = [
            old.cell_id
            for old, new in zip(base, bumped)
            if old.address() != new.address()
        ]
        # fault_seed feeds the fault schedules, which only exist at
        # intensity > 0 — but it is part of every cell's config, so all
        # cells change; the *intensity* axis is the selective one:
        assert changed == [c.cell_id for c in base]

    def test_changed_intensity_invalidates_only_that_intensity(self):
        base = detection_grid("khepera", [1, 4], intensities=(0.0, 0.1))
        edited = detection_grid("khepera", [1, 4], intensities=(0.0, 0.2))
        base_addr, edited_addr = (
            {c.cell_id: c.address() for c in cells} for cells in (base, edited)
        )
        # Zero-intensity cells share ids across the two grids and keep
        # their addresses; only the edited intensity's cells differ.
        for cell_id, address in base_addr.items():
            if cell_id.endswith("drop000"):
                assert edited_addr[cell_id] == address
            else:
                assert cell_id not in edited_addr

    def test_trial_count_change_invalidates(self):
        a = detection_cell("khepera", 1, n_trials=2)
        b = detection_cell("khepera", 1, n_trials=3)
        assert a.address() != b.address()


class TestManifest:
    def test_duplicate_cell_ids_rejected(self):
        cells = [
            CellSpec("same", "synthetic", {"value": 1}),
            CellSpec("same", "synthetic", {"value": 2}),
        ]
        with pytest.raises(ConfigurationError):
            CampaignManifest("dup", cells=cells)

    def test_malformed_dict_raises(self):
        with pytest.raises(ConfigurationError):
            CampaignManifest.from_dict({"name": "x"})

    def test_experiment_cell_defaults(self):
        cell = experiment_cell("fig6", seed=42)
        assert cell.cell_id == "experiment/fig6"
        assert cell.config == {"experiment": "fig6", "args": {"seed": 42}}


class TestStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        cell = CellSpec("c", "synthetic", {"value": 5})
        envelope = store.put(cell, {"kind": "synthetic", "out": 10.0}, elapsed_s=0.5)
        assert store.has(cell.address())
        loaded = store.get(cell.address())
        assert loaded["result"] == {"kind": "synthetic", "out": 10.0}
        assert loaded["cell_id"] == "c"
        assert loaded["elapsed_s"] == 0.5
        assert envelope["address"] == cell.address()

    def test_get_missing_returns_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("0" * 64) is None
        assert not store.has("0" * 64)

    def test_telemetry_persisted_as_jsonl(self, tmp_path):
        store = ResultStore(tmp_path)
        cell = CellSpec("c", "synthetic", {"value": 5})
        records = [{"event": "a", "k": 0}, {"event": "b", "k": 1}]
        store.put(cell, {"kind": "synthetic"}, telemetry=records)
        assert store.read_telemetry(cell.address()) == records

    def test_report_pointer_tracks_latest(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_report("table2", "old text")
        store.put_report("table2", "new text")
        assert store.get_report("table2") == "new text"
        assert store.report_names() == ["table2"]

    def test_gc_keeps_live_drops_orphans(self, tmp_path):
        store = ResultStore(tmp_path)
        manifest = synthetic_manifest(values=(1, 2))
        run_campaign(manifest, store)
        orphan = CellSpec("orphan", "synthetic", {"value": 99})
        store.put(orphan, {"kind": "synthetic", "out": 0})
        deleted = store.gc()
        assert deleted == [orphan.address()]
        assert all(store.has(a) for a in manifest.addresses().values())
        assert not store.has(orphan.address())


class TestRunnerAndStatus:
    def test_status_counts_cached_vs_pending(self, tmp_path):
        store = ResultStore(tmp_path)
        manifest = synthetic_manifest(values=(1, 2, 3))
        before = campaign_status(manifest, store)
        assert (before.total, before.cached, before.pending) == (3, 0, 3)
        assert before.pending_cells == ("cell/1", "cell/2", "cell/3")

        # Pre-populate one cell: status must see exactly it as cached.
        store.put(manifest.cells[1], {"kind": "synthetic", "out": 4.0})
        mid = campaign_status(manifest, store)
        assert (mid.cached, mid.pending) == (1, 2)
        assert "cell/2" not in mid.pending_cells

        run_campaign(manifest, store)
        after = campaign_status(manifest, store)
        assert (after.cached, after.pending) == (3, 0)

    def test_rerun_is_all_cache_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        manifest = synthetic_manifest()
        cold = run_campaign(manifest, store)
        warm = run_campaign(manifest, store)
        assert cold.computed == 3 and cold.cache_hit_rate == 0.0
        assert warm.computed == 0 and warm.cache_hit_rate == 1.0

    def test_edited_cell_recomputes_alone(self, tmp_path):
        store = ResultStore(tmp_path)
        run_campaign(synthetic_manifest(values=(1, 2, 3)), store)
        edited = synthetic_manifest(values=(1, 2, 4))
        report = run_campaign(edited, store)
        assert report.cached == 2 and report.computed == 1

    def test_unknown_kind_is_configuration_error(self, tmp_path):
        manifest = CampaignManifest(
            "bad", cells=[CellSpec("c", "no-such-kind", {})]
        )
        with pytest.raises(ConfigurationError):
            run_campaign(manifest, ResultStore(tmp_path))

    def test_report_lists_every_cell(self, tmp_path):
        store = ResultStore(tmp_path)
        manifest = synthetic_manifest()
        run_campaign(manifest, store)
        report = campaign_report(manifest, store)
        assert [c["cell_id"] for c in report["cells"]] == [
            c.cell_id for c in manifest.cells
        ]
        assert report["cached"] == report["total"] == 3
        text = format_campaign(manifest, store)
        for cell in manifest.cells:
            assert cell.cell_id in text

    def test_store_records_manifest_for_discovery(self, tmp_path):
        store = ResultStore(tmp_path)
        run_campaign(synthetic_manifest(), store)
        names = [m.name for m in store.manifests()]
        assert names == ["synthetic"]


class TestCli:
    def test_status_run_report_gc(self, tmp_path, capsys):
        from repro.campaign.__main__ import main

        manifest_path = synthetic_manifest(values=(1, 2)).save(tmp_path / "m.json")
        store = str(tmp_path / "store")
        args = ["--store", store, "--manifest", str(manifest_path)]

        assert main(["status", *args]) == 0
        assert "2 pending" in capsys.readouterr().out

        assert main(["run", *args]) == 0
        assert "2 computed" in capsys.readouterr().out

        assert main(["status", *args]) == 0
        assert "2 cached, 0 pending" in capsys.readouterr().out

        assert main(["report", *args]) == 0
        assert "cell/1" in capsys.readouterr().out

        assert main(["gc", "--store", store]) == 0
        assert "deleted 0 artifact(s)" in capsys.readouterr().out
