"""Unit tests for the snapshot spool: atomicity, retention, gc, encoding.

The crash-recovery parity suites prove the spool's blobs restore exactly;
these tests pin the storage contract itself — atomic staging (no partial
files ever visible), generation-numbered retention, reachability gc against
a live-session set, percent-encoded robot ids, and the self-ignoring
directory layout shared with ``campaign/store.py``.
"""

import os

import pytest

from repro.errors import ConfigurationError
from repro.serve import SnapshotSpool

pytestmark = [pytest.mark.serve]


class TestSpoolBasics:
    def test_put_load_latest_roundtrip(self, tmp_path):
        spool = SnapshotSpool(tmp_path / "spool")
        spool.put("r1", 9, b"nine")
        spool.put("r1", 19, b"nineteen")
        assert spool.load("r1", 9) == b"nine"
        assert spool.latest("r1") == (19, b"nineteen")
        assert spool.generations("r1") == [9, 19]
        assert spool.sessions() == ["r1"]

    def test_empty_spool_reads_cleanly(self, tmp_path):
        spool = SnapshotSpool(tmp_path / "missing")
        assert spool.sessions() == []
        assert spool.generations("ghost") == []
        assert spool.latest("ghost") is None
        with pytest.raises(ConfigurationError):
            spool.load("ghost", 0)

    def test_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SnapshotSpool(tmp_path, keep=0)
        spool = SnapshotSpool(tmp_path)
        with pytest.raises(ConfigurationError):
            spool.put("r1", -1, b"x")
        with pytest.raises(ConfigurationError):
            spool.gc(keep=0)

    def test_robot_ids_are_percent_encoded(self, tmp_path):
        """Any id the session layer accepts spools safely, even separators."""
        spool = SnapshotSpool(tmp_path / "spool")
        weird = "fleet/robot 7:α"
        spool.put(weird, 3, b"blob")
        assert spool.sessions() == [weird]
        assert spool.latest(weird) == (3, b"blob")
        # the encoded directory stays inside the spool root
        children = [p for p in (tmp_path / "spool").iterdir() if p.is_dir()]
        assert len(children) == 1
        assert "/" not in children[0].name

    def test_directory_is_self_ignoring(self, tmp_path):
        spool = SnapshotSpool(tmp_path / "spool")
        spool.put("r1", 0, b"x")
        assert (tmp_path / "spool" / ".gitignore").read_text() == "*\n"

    def test_writes_leave_no_staging_tmp_behind(self, tmp_path):
        spool = SnapshotSpool(tmp_path / "spool")
        for generation in range(5):
            spool.put("r1", generation, os.urandom(64))
        leftovers = [
            p
            for p in (tmp_path / "spool").rglob("*")
            if p.is_file() and p.suffix == ".tmp"
        ]
        assert leftovers == []


class TestRetentionAndGc:
    def test_put_prunes_beyond_keep(self, tmp_path):
        spool = SnapshotSpool(tmp_path / "spool", keep=2)
        for generation in (4, 9, 14, 19):
            spool.put("r1", generation, b"g%d" % generation)
        assert spool.generations("r1") == [14, 19]
        assert spool.latest("r1") == (19, b"g19")

    def test_gc_prunes_stale_generations(self, tmp_path):
        spool = SnapshotSpool(tmp_path / "spool", keep=10)
        for generation in range(5):
            spool.put("r1", generation, b"x")
        deleted = spool.gc(keep=1)
        assert len(deleted) == 4
        assert spool.generations("r1") == [4]

    def test_gc_with_live_set_reclaims_dead_sessions(self, tmp_path):
        """The reachability rule: sessions not in *live* vanish entirely."""
        spool = SnapshotSpool(tmp_path / "spool")
        spool.put("alive", 1, b"a")
        spool.put("dead", 1, b"d")
        spool.gc(live={"alive"})
        assert spool.sessions() == ["alive"]
        assert spool.latest("dead") is None
        assert spool.latest("alive") == (1, b"a")

    def test_gc_on_missing_root_is_a_noop(self, tmp_path):
        assert SnapshotSpool(tmp_path / "never-created").gc() == []
