"""Tests for paths, RRT*, PID and tracking controllers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics.bicycle import BicycleModel
from repro.dynamics.differential_drive import DifferentialDriveModel
from repro.errors import ConfigurationError, PlanningError
from repro.planning.mission import Mission
from repro.planning.path import Path
from repro.planning.pid import PID
from repro.planning.rrt_star import RRTStar, RRTStarConfig
from repro.planning.tracking import BicycleTracker, DifferentialDriveTracker
from repro.world.map import WorldMap
from repro.world.obstacles import RectangleObstacle
from repro.world.presets import paper_arena


class TestPath:
    @pytest.fixture
    def path(self):
        return Path([(0.0, 0.0), (2.0, 0.0), (2.0, 2.0)])

    def test_length(self, path):
        assert path.length == pytest.approx(4.0)

    def test_point_at(self, path):
        assert np.allclose(path.point_at(1.0), [1.0, 0.0])
        assert np.allclose(path.point_at(3.0), [2.0, 1.0])
        assert np.allclose(path.point_at(-1.0), [0.0, 0.0])
        assert np.allclose(path.point_at(99.0), [2.0, 2.0])

    def test_heading_at(self, path):
        assert path.heading_at(1.0) == pytest.approx(0.0)
        assert path.heading_at(3.0) == pytest.approx(np.pi / 2)

    def test_project(self, path):
        s = path.project((1.0, 0.5))
        assert s == pytest.approx(1.0)
        s = path.project((2.4, 1.0))
        assert s == pytest.approx(3.0)

    def test_project_with_hint_window(self, path):
        # Point equidistant-ish from two path branches; the hint confines the
        # search to the second leg.
        s = path.project((2.0, 0.1), s_hint=2.5, window=1.0)
        assert s >= 2.0

    def test_lookahead(self, path):
        target, s = path.lookahead((1.0, 0.0), lookahead=0.5)
        assert s == pytest.approx(1.0)
        assert np.allclose(target, [1.5, 0.0])

    def test_cross_track_error(self, path):
        assert path.cross_track_error((1.0, 0.3)) == pytest.approx(0.3)

    def test_requires_two_waypoints(self):
        with pytest.raises(ConfigurationError):
            Path([(0.0, 0.0)])

    @given(st.floats(min_value=0.0, max_value=4.0))
    @settings(max_examples=50, deadline=None)
    def test_point_at_on_polyline(self, s):
        path = Path([(0.0, 0.0), (2.0, 0.0), (2.0, 2.0)])
        p = path.point_at(s)
        # Every arc-length point lies on one of the two legs.
        on_leg1 = abs(p[1]) < 1e-9 and -1e-9 <= p[0] <= 2.0 + 1e-9
        on_leg2 = abs(p[0] - 2.0) < 1e-9 and -1e-9 <= p[1] <= 2.0 + 1e-9
        assert on_leg1 or on_leg2

    @given(st.floats(-1.0, 3.0), st.floats(-1.0, 3.0))
    @settings(max_examples=50, deadline=None)
    def test_projection_minimizes_distance(self, x, y):
        path = Path([(0.0, 0.0), (2.0, 0.0), (2.0, 2.0)])
        s = path.project((x, y))
        best = min(
            np.linalg.norm(np.array([x, y]) - path.point_at(t))
            for t in np.linspace(0.0, path.length, 200)
        )
        actual = np.linalg.norm(np.array([x, y]) - path.point_at(s))
        assert actual <= best + 1e-6


class TestPID:
    def test_proportional(self):
        pid = PID(kp=2.0)
        assert pid.step(1.5, dt=0.1) == pytest.approx(3.0)

    def test_integral_accumulates(self):
        pid = PID(kp=0.0, ki=1.0)
        pid.step(1.0, dt=0.5)
        out = pid.step(1.0, dt=0.5)
        assert out == pytest.approx(1.0)

    def test_derivative(self):
        pid = PID(kp=0.0, kd=1.0)
        pid.step(0.0, dt=0.1)
        assert pid.step(1.0, dt=0.1) == pytest.approx(10.0)

    def test_saturation(self):
        pid = PID(kp=10.0, output_limit=1.0)
        assert pid.step(5.0, dt=0.1) == pytest.approx(1.0)
        assert pid.step(-5.0, dt=0.1) == pytest.approx(-1.0)

    def test_anti_windup_freezes_integral(self):
        pid = PID(kp=0.0, ki=1.0, output_limit=0.5)
        for _ in range(100):
            pid.step(10.0, dt=0.1)
        # Integral must not have grown unboundedly past the saturation point.
        assert pid.integral <= 0.6 / 1.0 + 10.0 * 0.1 + 1e-9

    def test_reset(self):
        pid = PID(kp=0.0, ki=1.0, kd=1.0)
        pid.step(1.0, dt=0.1)
        pid.reset()
        assert pid.integral == 0.0
        # Derivative history cleared: first step has zero derivative.
        assert pid.step(1.0, dt=0.1) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PID(1.0, output_limit=0.0)
        with pytest.raises(ConfigurationError):
            PID(1.0).step(0.0, dt=0.0)

    def test_closed_loop_converges(self):
        # First-order plant x' = u; PID drives x to the setpoint.
        pid = PID(kp=2.0, ki=0.5)
        x, dt = 0.0, 0.05
        for _ in range(400):
            x += pid.step(1.0 - x, dt) * dt
        assert x == pytest.approx(1.0, abs=0.02)


class TestRRTStar:
    def test_finds_straight_path_in_empty_map(self, rng):
        world = WorldMap.rectangle(3.0, 3.0)
        planner = RRTStar(world, RRTStarConfig(max_iterations=600))
        path = planner.plan((0.3, 0.3), (2.7, 2.7), rng)
        assert np.allclose(path.start, [0.3, 0.3])
        assert np.allclose(path.goal, [2.7, 2.7])
        # Smoothing should leave a near-optimal path.
        assert path.length <= np.hypot(2.4, 2.4) * 1.3

    def test_path_avoids_obstacles(self, rng):
        world = paper_arena()
        planner = RRTStar(world)
        path = planner.plan((0.4, 0.4), (2.5, 2.5), rng)
        from repro.world.geometry import Segment

        pts = path.waypoints
        for i in range(len(pts) - 1):
            assert world.segment_free(Segment(tuple(pts[i]), tuple(pts[i + 1])), margin=0.0)

    def test_start_in_collision_raises(self, rng):
        world = paper_arena()
        with pytest.raises(PlanningError):
            RRTStar(world).plan((1.5, 1.5), (2.5, 2.5), rng)

    def test_unreachable_goal_raises(self, rng):
        world = WorldMap.rectangle(
            3.0, 3.0, obstacles=[RectangleObstacle((1.4, 0.0), (1.6, 3.0))]
        )
        planner = RRTStar(world, RRTStarConfig(max_iterations=150))
        with pytest.raises(PlanningError):
            planner.plan((0.3, 1.5), (2.7, 1.5), rng)

    def test_deterministic_given_seed(self):
        world = paper_arena()
        planner = RRTStar(world)
        p1 = planner.plan((0.4, 0.4), (2.5, 2.5), np.random.default_rng(7))
        p2 = planner.plan((0.4, 0.4), (2.5, 2.5), np.random.default_rng(7))
        assert np.allclose(p1.waypoints, p2.waypoints)


class TestTrackers:
    def test_differential_tracker_reaches_goal(self):
        model = DifferentialDriveModel(dt=0.05)
        path = Path([(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)])
        tracker = DifferentialDriveTracker(model, path, cruise_speed=0.2)
        pose = np.array([0.0, 0.0, 0.0])
        for _ in range(800):
            command = tracker.command(pose, model.dt)
            pose = model.f(pose, command)
            if tracker.goal_reached:
                break
        assert tracker.goal_reached
        assert np.linalg.norm(pose[:2] - [1.0, 1.0]) < 0.1

    def test_bicycle_tracker_reaches_goal(self):
        model = BicycleModel(dt=0.1)
        path = Path([(0.0, 0.0), (2.0, 0.0), (3.5, 1.0)])
        tracker = BicycleTracker(model, path, cruise_speed=0.5)
        pose = np.array([0.0, 0.0, 0.0])
        for _ in range(600):
            command = tracker.command(pose, model.dt)
            pose = model.f(pose, model.clip_control(command))
            if tracker.goal_reached:
                break
        assert tracker.goal_reached

    def test_tracker_stops_at_goal(self):
        model = DifferentialDriveModel()
        path = Path([(0.0, 0.0), (1.0, 0.0)])
        tracker = DifferentialDriveTracker(model, path)
        command = tracker.command(np.array([1.0, 0.0, 0.0]), model.dt)
        assert np.allclose(command, 0.0)
        assert tracker.goal_reached

    def test_reset(self):
        model = DifferentialDriveModel()
        path = Path([(0.0, 0.0), (1.0, 0.0)])
        tracker = DifferentialDriveTracker(model, path)
        tracker.command(np.array([1.0, 0.0, 0.0]), model.dt)
        tracker.reset()
        assert not tracker.goal_reached

    def test_bicycle_steering_saturates(self):
        model = BicycleModel(max_steer=0.4)
        path = Path([(0.0, 0.0), (0.0, 2.0)])  # 90 degrees off current heading
        tracker = BicycleTracker(model, path, cruise_speed=0.5)
        command = tracker.command(np.array([0.2, 0.0, 0.0]), model.dt)
        assert abs(command[1]) <= 0.4 + 1e-9

    def test_validation(self):
        model = DifferentialDriveModel()
        path = Path([(0.0, 0.0), (1.0, 0.0)])
        with pytest.raises(ConfigurationError):
            DifferentialDriveTracker(model, path, cruise_speed=0.0)
        with pytest.raises(ConfigurationError):
            DifferentialDriveTracker(model, path, lookahead=0.0)


class TestMission:
    def test_plan_produces_path(self, rng):
        mission = Mission(paper_arena(), (0.4, 0.4, 0.0), (2.5, 2.5), duration=10.0)
        path = mission.plan(rng)
        assert np.allclose(path.goal, [2.5, 2.5])

    def test_n_steps(self):
        mission = Mission(paper_arena(), (0.4, 0.4, 0.0), (2.5, 2.5), duration=10.0)
        assert mission.n_steps(0.05) == 200
        with pytest.raises(ConfigurationError):
            mission.n_steps(0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Mission(paper_arena(), (1.5, 1.5, 0.0), (2.5, 2.5))  # start inside obstacle
        with pytest.raises(ConfigurationError):
            Mission(paper_arena(), (0.4, 0.4, 0.0), (1.5, 1.5))  # goal inside obstacle
        with pytest.raises(ConfigurationError):
            Mission(paper_arena(), (0.4, 0.4, 0.0), (2.5, 2.5), duration=0.0)
