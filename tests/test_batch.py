"""Batched offline replay: stacked outputs must equal sequential replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.catalog import khepera_scenarios
from repro.core.batch import replay_batch
from repro.errors import ConfigurationError, DimensionError
from repro.eval.runner import monte_carlo, run_scenario


@pytest.fixture(scope="module")
def short_traces(khepera):
    """Two short recorded missions of different lengths (no online detector)."""
    scenario = khepera_scenarios()[0]
    long = run_scenario(khepera, scenario, seed=5, duration=4.0).trace
    short = run_scenario(khepera, scenario, seed=6, duration=3.0).trace
    return [long, short]


def test_batch_matches_sequential_replay(khepera, short_traces):
    detector = khepera.detector()
    batch = replay_batch(detector, short_traces)

    for i, trace in enumerate(short_traces):
        sequential = khepera.detector().replay(trace.planned_controls, trace.readings)
        assert batch.lengths[i] == len(sequential)
        for k, report in enumerate(sequential):
            assert batch.mode_name_at(i, k) == report.selected_mode
            np.testing.assert_array_equal(batch.state_estimate[i, k], report.state_estimate)
            np.testing.assert_array_equal(
                batch.actuator_estimate[i, k], report.statistics.actuator_estimate
            )
            assert batch.sensor_statistic[i, k] == report.statistics.sensor_statistic
            assert batch.actuator_statistic[i, k] == report.statistics.actuator_statistic
            assert batch.flagged_sensors_at(i, k) == report.flagged_sensors
            assert bool(batch.actuator_alarm[i, k]) == report.actuator_alarm
        # Retained report objects are the replay's own.
        retained = batch.trace_reports(i)
        assert len(retained) == len(sequential)
        assert retained[-1].selected_mode == sequential[-1].selected_mode


def test_batch_padding_semantics(khepera, short_traces):
    batch = replay_batch(khepera.detector(), short_traces)
    lengths = batch.lengths
    assert lengths[0] > lengths[1], "fixture should produce unequal lengths"
    assert batch.max_length == lengths.max()
    pad = slice(int(lengths[1]), None)
    assert np.all(batch.selected_mode[1, pad] == -1)
    assert np.all(np.isnan(batch.state_estimate[1, pad]))
    assert np.all(np.isnan(batch.sensor_statistic[1, pad]))
    assert not batch.flagged[1, pad].any()
    assert not batch.actuator_alarm[1, pad].any()
    assert batch.mode_name_at(1, batch.max_length - 1) is None
    # Real iterations are fully populated.
    assert np.all(batch.selected_mode[0] >= 0)
    assert np.all(np.isfinite(batch.state_estimate[0]))


def test_batch_without_reports(khepera, short_traces):
    batch = replay_batch(khepera.detector(), short_traces[:1], keep_reports=False)
    assert batch.reports is None
    with pytest.raises(ConfigurationError):
        batch.trace_reports(0)


def test_batch_accepts_raw_pairs(khepera, short_traces):
    trace = short_traces[1]
    from_trace = replay_batch(khepera.detector(), [trace], keep_reports=False)
    from_pair = replay_batch(
        khepera.detector(),
        [(trace.planned_controls, trace.readings)],
        keep_reports=False,
    )
    np.testing.assert_array_equal(from_trace.selected_mode, from_pair.selected_mode)
    np.testing.assert_array_equal(from_trace.state_estimate, from_pair.state_estimate)


def test_batch_input_validation(khepera, short_traces):
    detector = khepera.detector()
    with pytest.raises(ConfigurationError):
        replay_batch(detector, [])
    with pytest.raises(ConfigurationError):
        replay_batch(detector, [object()])
    trace = short_traces[1]
    with pytest.raises(DimensionError):
        replay_batch(detector, [(trace.planned_controls[:-1], trace.readings)])


def test_monte_carlo_batched_equals_sequential(khepera):
    scenario = khepera_scenarios()[0]
    sequential = monte_carlo(khepera, scenario, 2, base_seed=9, duration=4.0)
    batched = monte_carlo(khepera, scenario, 2, base_seed=9, duration=4.0, batched=True)
    for a, b in zip(sequential, batched):
        assert len(a.trace) == len(b.trace)
        assert a.trace.has_reports and b.trace.has_reports
        for ra, rb in zip(a.reports, b.reports):
            assert ra.selected_mode == rb.selected_mode
            np.testing.assert_array_equal(ra.state_estimate, rb.state_estimate)
            assert ra.flagged_sensors == rb.flagged_sensors
            assert ra.actuator_alarm == rb.actuator_alarm
        assert a.sensor_confusion.false_positive_rate == b.sensor_confusion.false_positive_rate
        assert a.actuator_confusion.false_negative_rate == b.actuator_confusion.false_negative_rate
        assert [(e.channel, e.delay) for e in a.delays] == [
            (e.channel, e.delay) for e in b.delays
        ]


def test_monte_carlo_batched_rejects_responder(khepera):
    from repro.core.response import NavigationFailover

    with pytest.raises(ConfigurationError):
        monte_carlo(
            khepera,
            None,
            1,
            batched=True,
            responder=NavigationFailover((khepera.nav_sensor,)),
        )


def test_attach_reports_length_check(khepera, short_traces):
    from repro.errors import SimulationError

    trace = short_traces[1]
    with pytest.raises(SimulationError):
        trace.attach_reports([None] * (len(trace) + 1))


def test_batch_single_zero_length_trace(khepera):
    """A raw pair with no iterations: one all-padding row, no crash."""
    batch = replay_batch(khepera.detector(), [([], [])], keep_reports=True)
    assert batch.lengths.tolist() == [0]
    assert batch.max_length == 0
    assert batch.selected_mode.shape == (1, 0)
    assert len(batch.trace_reports(0)) == 0


def test_batch_zero_length_next_to_real_trace(khepera, short_traces):
    """An empty trace padded against a real one keeps the real row intact."""
    trace = short_traces[1]
    batch = replay_batch(
        khepera.detector(),
        [([], []), (trace.planned_controls, trace.readings)],
        keep_reports=True,
    )
    assert batch.lengths.tolist() == [0, len(trace)]
    assert np.all(batch.selected_mode[0] == -1)
    assert np.all(np.isnan(batch.state_estimate[0]))
    assert len(batch.trace_reports(0)) == 0
    alone = replay_batch(khepera.detector(), [trace], keep_reports=False)
    np.testing.assert_array_equal(batch.selected_mode[1], alone.selected_mode[0])
    # keep_reports=False engages the lattice, which agrees with the serial
    # path to solver round-off (documented in replay_batch), not bit-for-bit.
    np.testing.assert_allclose(
        batch.state_estimate[1], alone.state_estimate[0], rtol=0.0, atol=1e-8
    )


def test_batch_wildly_different_lengths(khepera, short_traces):
    """Padding stays correct when one trace dwarfs the other (~10x)."""
    long_trace = short_traces[0]
    stub = (long_trace.planned_controls[:5], long_trace.readings[:5])
    batch = replay_batch(khepera.detector(), [stub, long_trace])
    assert batch.lengths.tolist() == [5, len(long_trace)]
    assert batch.max_length == len(long_trace)
    assert np.all(batch.selected_mode[0, 5:] == -1)
    assert np.all(np.isnan(batch.state_estimate[0, 5:]))
    assert np.all(batch.selected_mode[0, :5] >= 0)
    assert np.all(batch.selected_mode[1] >= 0)


def test_batch_mode_name_at_out_of_range(khepera, short_traces):
    batch = replay_batch(khepera.detector(), short_traces[1:])
    with pytest.raises(IndexError):
        batch.mode_name_at(0, batch.max_length)
    with pytest.raises(IndexError):
        batch.mode_name_at(len(batch.lengths), 0)


@pytest.mark.parametrize("batched", [False, True])
def test_monte_carlo_rejects_unknown_kwargs(khepera, batched):
    """Both paths must reject unknown kwargs before running any trial.

    Regression: the batched path used to consume kwargs via ``.get`` and
    silently drop anything it did not recognize (e.g. a misspelled
    ``path_sed=``), while the sequential path raised a TypeError.
    """
    scenario = khepera_scenarios()[0]
    with pytest.raises(ConfigurationError, match="path_sed"):
        monte_carlo(
            khepera, scenario, 1, base_seed=9, duration=4.0, batched=batched, path_sed=3
        )
