"""Tests for obstacles, world maps, ray casting and arena presets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.world.geometry import Ray, Segment
from repro.world.map import WorldMap
from repro.world.obstacles import CircleObstacle, PolygonObstacle, RectangleObstacle
from repro.world.presets import cluttered_arena, corridor_arena, paper_arena


class TestCircleObstacle:
    def test_contains(self):
        obs = CircleObstacle((1.0, 1.0), 0.5)
        assert obs.contains((1.2, 1.2))
        assert not obs.contains((2.0, 2.0))
        assert obs.contains((1.6, 1.0), margin=0.2)

    def test_segment_intersection(self):
        obs = CircleObstacle((0.0, 0.0), 1.0)
        assert obs.intersects_segment(Segment((-2.0, 0.0), (2.0, 0.0)))
        assert not obs.intersects_segment(Segment((-2.0, 2.0), (2.0, 2.0)))
        assert obs.intersects_segment(Segment((-2.0, 1.2), (2.0, 1.2)), margin=0.3)

    def test_boundary_segments_close_loop(self):
        obs = CircleObstacle((0.0, 0.0), 1.0, boundary_vertices=8)
        segs = obs.boundary_segments()
        assert len(segs) == 8
        assert np.allclose(segs[0].p0, segs[-1].p1, atol=1e-9)

    def test_invalid_radius(self):
        with pytest.raises(ConfigurationError):
            CircleObstacle((0, 0), -1.0)


class TestPolygonObstacle:
    def test_requires_three_vertices(self):
        with pytest.raises(ConfigurationError):
            PolygonObstacle(((0, 0), (1, 0)))

    def test_contains_even_odd(self):
        tri = PolygonObstacle(((0, 0), (2, 0), (1, 2)))
        assert tri.contains((1.0, 0.5))
        assert not tri.contains((0.1, 1.5))

    def test_margin_contains_near_edge(self):
        tri = PolygonObstacle(((0, 0), (2, 0), (1, 2)))
        assert not tri.contains((1.0, -0.05))
        assert tri.contains((1.0, -0.05), margin=0.1)

    def test_rectangle_factory(self):
        rect = RectangleObstacle((0.0, 0.0), (2.0, 1.0))
        assert rect.contains((1.0, 0.5))
        assert not rect.contains((3.0, 0.5))
        with pytest.raises(ConfigurationError):
            RectangleObstacle((1.0, 1.0), (0.0, 0.0))

    def test_segment_through(self):
        rect = RectangleObstacle((0.0, 0.0), (1.0, 1.0))
        assert rect.intersects_segment(Segment((-1.0, 0.5), (2.0, 0.5)))
        assert not rect.intersects_segment(Segment((-1.0, 2.0), (2.0, 2.0)))
        # Fully inside: no edge crossings, but contained endpoints.
        assert rect.intersects_segment(Segment((0.2, 0.2), (0.8, 0.8)))


class TestWorldMap:
    def test_rectangle_wall_names_and_distances(self):
        world = WorldMap.rectangle(3.0, 2.0)
        assert world.wall_names() == ["south", "east", "north", "west"]
        point = (1.0, 0.5)
        assert world.wall("south").distance_from(point) == pytest.approx(0.5)
        assert world.wall("west").distance_from(point) == pytest.approx(1.0)
        assert world.wall("east").distance_from(point) == pytest.approx(2.0)
        assert world.wall("north").distance_from(point) == pytest.approx(1.5)

    def test_unknown_wall(self):
        world = WorldMap.rectangle(1.0, 1.0)
        with pytest.raises(ConfigurationError):
            world.wall("ceiling")

    def test_bounds_and_in_bounds(self):
        world = WorldMap.rectangle(3.0, 2.0)
        assert world.bounds == (0.0, 0.0, 3.0, 2.0)
        assert world.in_bounds((1.5, 1.0))
        assert not world.in_bounds((3.5, 1.0))
        assert not world.in_bounds((0.05, 1.0), margin=0.1)

    def test_point_free_with_obstacle(self):
        world = WorldMap.rectangle(3.0, 3.0, obstacles=[RectangleObstacle((1, 1), (2, 2))])
        assert world.point_free((0.5, 0.5))
        assert not world.point_free((1.5, 1.5))

    def test_segment_free(self):
        world = WorldMap.rectangle(3.0, 3.0, obstacles=[RectangleObstacle((1, 1), (2, 2))])
        assert world.segment_free(Segment((0.5, 0.5), (0.5, 2.5)))
        assert not world.segment_free(Segment((0.5, 1.5), (2.5, 1.5)))

    def test_wall_distances_vector(self):
        world = WorldMap.rectangle(3.0, 3.0)
        d = world.wall_distances((1.0, 1.0), ["west", "south", "east"])
        assert np.allclose(d, [1.0, 1.0, 2.0])

    def test_cast_ray_hits_wall(self):
        world = WorldMap.rectangle(3.0, 3.0)
        assert world.cast_ray(Ray((1.0, 1.0), 0.0)) == pytest.approx(2.0)
        assert world.cast_ray(Ray((1.0, 1.0), np.pi)) == pytest.approx(1.0)

    def test_cast_ray_hits_obstacle_first(self):
        world = WorldMap.rectangle(5.0, 5.0, obstacles=[RectangleObstacle((2, 0.5), (3, 1.5))])
        assert world.cast_ray(Ray((1.0, 1.0), 0.0)) == pytest.approx(1.0)

    def test_cast_ray_max_range(self):
        world = WorldMap.rectangle(10.0, 10.0)
        assert world.cast_ray(Ray((1.0, 1.0), 0.0), max_range=2.0) == pytest.approx(2.0)

    def test_scan_shape_and_symmetry(self):
        world = WorldMap.rectangle(4.0, 4.0)
        scan = world.scan((2.0, 2.0), 0.0, fov=np.pi, n_beams=5, max_range=10.0)
        assert scan.shape == (5,)
        # Centre beam straight ahead, symmetric arena: first and last beams
        # point +/-90 degrees and hit walls at equal distance.
        assert scan[0] == pytest.approx(scan[-1])
        assert scan[2] == pytest.approx(2.0)

    def test_scan_single_beam(self):
        world = WorldMap.rectangle(4.0, 4.0)
        scan = world.scan((2.0, 2.0), 0.0, fov=np.pi, n_beams=1, max_range=10.0)
        assert scan.shape == (1,)
        assert scan[0] == pytest.approx(2.0)

    def test_sample_free_respects_obstacles(self, rng):
        world = WorldMap.rectangle(2.0, 2.0, obstacles=[RectangleObstacle((0.5, 0.5), (1.5, 1.5))])
        for _ in range(20):
            point = world.sample_free(rng, margin=0.05)
            assert world.point_free(point, margin=0.05)

    def test_duplicate_wall_names_rejected(self):
        from repro.world.map import Wall

        wall = Wall("a", Segment((0, 0), (1, 0)))
        with pytest.raises(ConfigurationError):
            WorldMap([wall, Wall("a", Segment((1, 0), (1, 1)))])

    def test_empty_walls_rejected(self):
        with pytest.raises(ConfigurationError):
            WorldMap([])


class TestPresets:
    @pytest.mark.parametrize("factory", [paper_arena, corridor_arena, cluttered_arena])
    def test_presets_build_and_have_free_space(self, factory, rng):
        world = factory()
        assert len(world.walls) == 4
        point = world.sample_free(rng, margin=0.05)
        assert world.point_free(point)

    def test_paper_arena_blocks_centre(self):
        world = paper_arena()
        assert not world.point_free((1.5, 1.5))
