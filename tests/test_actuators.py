"""Tests for actuation hardware models."""

import numpy as np
import pytest

from repro.actuators.ackermann import AckermannActuator
from repro.actuators.differential import SPEED_UNIT_M_PER_S, WheelPairActuator
from repro.errors import ConfigurationError, DimensionError


class TestWheelPairActuator:
    def test_unit_calibration_matches_paper(self):
        # Section V-H: 900 speed units = 0.006 m/s.
        assert 900.0 * SPEED_UNIT_M_PER_S == pytest.approx(0.006)

    def test_quantization(self):
        actuator = WheelPairActuator(speed_unit=0.001)
        executed = actuator.execute(np.array([0.01042, -0.00051]))
        assert np.allclose(executed, [0.010, -0.001])

    def test_quantization_disabled(self):
        actuator = WheelPairActuator(speed_unit=0.0)
        command = np.array([0.123456, -0.07891])
        assert np.allclose(actuator.execute(command), command)

    def test_saturation(self):
        actuator = WheelPairActuator(max_speed=0.5)
        executed = actuator.execute(np.array([0.9, -0.9]))
        assert np.allclose(executed, [0.5, -0.5])

    def test_unit_conversions_roundtrip(self):
        actuator = WheelPairActuator()
        speeds = np.array([0.04, -0.02])
        units = actuator.to_units(speeds)
        assert np.allclose(actuator.from_units(units), speeds)

    def test_to_units_requires_quantization(self):
        actuator = WheelPairActuator(speed_unit=0.0)
        with pytest.raises(ConfigurationError):
            actuator.to_units(np.array([0.1, 0.1]))

    def test_validation(self):
        actuator = WheelPairActuator()
        with pytest.raises(DimensionError):
            actuator.execute(np.zeros(3))
        with pytest.raises(ConfigurationError):
            WheelPairActuator(max_speed=0.0)
        with pytest.raises(ConfigurationError):
            WheelPairActuator(speed_unit=-1.0)

    def test_metadata(self):
        actuator = WheelPairActuator()
        assert actuator.dim == 2
        assert actuator.labels == ("v_l", "v_r")
        assert actuator.name == "wheels"


class TestAckermannActuator:
    def test_limits(self):
        actuator = AckermannActuator(max_speed=2.0, max_reverse=0.5, max_steer=0.55)
        executed = actuator.execute(np.array([5.0, 1.0]))
        assert np.allclose(executed, [2.0, 0.55])
        executed = actuator.execute(np.array([-5.0, -1.0]))
        assert np.allclose(executed, [-0.5, -0.55])

    def test_passthrough_within_limits(self):
        actuator = AckermannActuator()
        command = np.array([0.7, 0.2])
        assert np.allclose(actuator.execute(command), command)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AckermannActuator(max_speed=-1.0)
        with pytest.raises(ConfigurationError):
            AckermannActuator(max_steer=3.0)
