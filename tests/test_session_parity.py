"""Golden parity: streaming == batch == resume-after-checkpoint, at 1e-10.

The streaming layer's product is an equivalence claim. These tests pin it on
the canonical 200-step Khepera/Tamiya golden missions:

* a :class:`~repro.serve.session.DetectorSession` fed the mission
  message-by-message reproduces the archived per-iteration statistics to
  1e-10 (the same bar the batch golden tests hold),
* streaming is *bit-identical* to :meth:`RoboADS.replay` on the same trace,
* interrupting the stream with checkpoint → pickle → restore every k
  messages — restoring into a freshly built detector, i.e. worker migration
  — changes nothing, for several k including k=1 (a checkpoint at every
  single message boundary).
"""

from pathlib import Path

import pytest

from repro.eval.golden import GOLDEN_MISSIONS, compare_golden, load_golden
from repro.eval.runner import run_scenario
from repro.eval.session_replay import report_drift, stream_trace

GOLDEN_DIR = Path(__file__).parent / "golden"

pytestmark = [pytest.mark.serve, pytest.mark.slow]


@pytest.fixture(scope="module")
def golden_run(khepera, tamiya):
    """The canonical missions re-run once: (rig, trace, replay reports)."""
    rigs = {"khepera": khepera, "tamiya": tamiya}
    cache: dict[str, tuple] = {}

    def get(mission: str):
        if mission not in cache:
            factory, seed, n_steps = GOLDEN_MISSIONS[mission]
            rig = rigs[mission]
            result = run_scenario(
                rig,
                None,
                seed=seed,
                duration=n_steps * rig.model.dt,
                stop_at_goal=False,
            )
            cache[mission] = (rig, result.trace, result.reports)
        return cache[mission]

    return get


def reports_as_golden(trace, reports) -> dict:
    """Reduce streamed reports to the golden-archive array layout."""
    import numpy as np

    mode_names = tuple(sorted(reports[0].statistics.mode_probabilities))
    sensor_names = tuple(trace.sensor_names)
    return {
        "mode_names": np.array(mode_names, dtype=np.str_),
        "sensor_names": np.array(sensor_names, dtype=np.str_),
        "readings": trace.readings_array(),
        "planned": trace.planned_array(),
        "true_states": trace.states_array(),
        "state_estimate": np.array([r.statistics.state_estimate for r in reports]),
        "actuator_estimate": np.array([r.statistics.actuator_estimate for r in reports]),
        "sensor_statistic": np.array([r.statistics.sensor_statistic for r in reports]),
        "actuator_statistic": np.array([r.statistics.actuator_statistic for r in reports]),
        "mode_probabilities": np.array(
            [[r.statistics.mode_probabilities[m] for m in mode_names] for r in reports]
        ),
        "selected_mode": np.array(
            [mode_names.index(r.statistics.selected_mode) for r in reports], dtype=int
        ),
        "flagged": np.array(
            [[s in r.flagged_sensors for s in sensor_names] for r in reports], dtype=bool
        ),
        "actuator_alarm": np.array([r.actuator_alarm for r in reports], dtype=bool),
    }


@pytest.mark.parametrize("mission", sorted(GOLDEN_MISSIONS))
class TestStreamingGoldenParity:
    def test_streaming_matches_archive(self, mission, golden_run):
        """Message-by-message streaming reproduces the archive at 1e-10."""
        rig, trace, _ = golden_run(mission)
        streamed = stream_trace(lambda: rig.detector(), trace)
        stored = load_golden(GOLDEN_DIR / f"{mission}_200.npz")
        drifted = compare_golden(reports_as_golden(trace, streamed), stored, atol=1e-10)
        assert not drifted, f"streaming drifted beyond 1e-10 in: {drifted}"

    def test_streaming_bit_identical_to_replay(self, mission, golden_run):
        """Streaming equals the batch replay path exactly, not just to 1e-10."""
        rig, trace, reports = golden_run(mission)
        streamed = stream_trace(lambda: rig.detector(), trace)
        assert report_drift(streamed, reports, atol=0.0) == []

    @pytest.mark.parametrize("every", [1, 7, 50])
    def test_checkpoint_restore_continue(self, mission, every, golden_run):
        """Checkpoint → pickle → restore into a fresh detector every k steps.

        k=1 checkpoints at every message boundary; k=7 lands mid
        c-of-w-window on both decision channels (sensor w=2, actuator w=6);
        k=50 exercises long uninterrupted stretches. All must be
        bit-identical to the uninterrupted replay, and therefore within
        1e-10 of the archive.
        """
        rig, trace, reports = golden_run(mission)
        streamed = stream_trace(lambda: rig.detector(), trace, checkpoint_every=every)
        assert report_drift(streamed, reports, atol=0.0) == []
        stored = load_golden(GOLDEN_DIR / f"{mission}_200.npz")
        drifted = compare_golden(reports_as_golden(trace, streamed), stored, atol=1e-10)
        assert not drifted, f"checkpointed stream drifted beyond 1e-10 in: {drifted}"
