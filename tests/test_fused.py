"""Fused streaming parity: batched session stepping is *bit-identical*.

:class:`~repro.serve.fused.FusedSessionBank` promises that coalescing a
drain tick's messages into one stacked kernel call changes throughput and
nothing else. These tests pin that claim from several directions:

* golden 200-step Khepera/Tamiya fleets streamed through the fused path
  match per-session serial :class:`~repro.serve.session.DetectorSession`
  stepping exactly — snapshot byte equality and report drift at
  ``atol=0`` — with every step actually batched,
* a hypothesis property holds the same bar over randomized fleets:
  arbitrary session counts, per-tick arrival orders, multi-message ticks
  (waves), degraded availability masks, and a checkpoint cut where every
  fused session round-trips through the pickled wire form into a freshly
  built detector before the fused fleet resumes,
* the serial-fallback taxonomy (telemetry-attached sessions, degraded
  iterations, under-filled fuse groups, heterogeneous rigs) degrades
  throughput only — outcomes stay identical and occupancy counters say
  which path ran,
* a poisoned message errors only its own session's outcome,
* :class:`~repro.serve.service.FleetService` in fused mode reproduces the
  serial service's reports, ingest stats and checkpoints,
* the snapshot wire format stays pinned to pickle protocol 5
  (``SNAPSHOT_PICKLE_PROTOCOL``), so fused and serial workers on different
  interpreter builds keep exchanging byte-identical checkpoints.
"""

import asyncio
import itertools
import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.detector import RoboADS
from repro.dynamics.differential_drive import DifferentialDriveModel
from repro.eval.golden import GOLDEN_MISSIONS
from repro.eval.runner import run_scenario
from repro.eval.session_replay import report_drift
from repro.obs.telemetry import RecordingTelemetry
from repro.sensors.lidar import WallDistanceSensor
from repro.sensors.pose_sensors import IPS, OdometryPoseSensor
from repro.sensors.suite import SensorSuite
from repro.serve import (
    SNAPSHOT_PICKLE_PROTOCOL,
    DetectorSession,
    FleetService,
    FusedSessionBank,
    SessionMessage,
    SessionSnapshot,
)
from repro.serve.adapter import trace_messages
from repro.world.map import WorldMap

pytestmark = [pytest.mark.serve]

PROCESS = np.diag([0.0005**2, 0.0005**2, 0.0015**2])
WORLD = WorldMap.rectangle(3.0, 3.0)

SUITES = {
    "full": lambda: [IPS(), OdometryPoseSensor(), WallDistanceSensor(WORLD)],
    "dual": lambda: [IPS(), OdometryPoseSensor()],
}
SUITE_NAMES = {
    "full": ("ips", "wheel_encoder", "lidar"),
    "dual": ("ips", "wheel_encoder"),
}


def build_detector(suite_key: str = "full") -> RoboADS:
    return RoboADS(
        DifferentialDriveModel(dt=0.05),
        SensorSuite(SUITES[suite_key]()),
        PROCESS,
        initial_state=np.array([1.5, 1.5, 0.0]),
        nominal_control=np.array([0.1, 0.12]),
    )


def random_messages(suite_key, seed, masks):
    """A short randomized mission as a message stream, seq = step index."""
    model = DifferentialDriveModel(dt=0.05)
    suite = SensorSuite(SUITES[suite_key]())
    rng = np.random.default_rng(seed)
    x = np.array([1.5, 1.5, 0.0])
    q_sqrt = np.sqrt(np.diag(PROCESS))
    messages = []
    for k, mask in enumerate(masks):
        u = np.array([0.1, 0.12]) + 0.05 * rng.standard_normal(2)
        x = model.normalize_state(model.f(x, u) + q_sqrt * rng.standard_normal(3))
        z = suite.measure(x, rng)
        messages.append(
            SessionMessage(seq=k, t=k * model.dt, control=u, reading=z, available=mask)
        )
    return messages


def assert_fleet_identical(fused_sessions, serial_sessions, fused_reports, serial_reports):
    """The whole parity bar: reports at atol=0, snapshots byte-for-byte."""
    for fused, serial in zip(fused_reports, serial_reports):
        assert report_drift(fused, serial, atol=0.0) == []
    for fused, serial in zip(fused_sessions, serial_sessions):
        assert fused.checkpoint().to_bytes() == serial.checkpoint().to_bytes()


# ----------------------------------------------------------------------
# Golden-mission parity
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("mission", sorted(GOLDEN_MISSIONS))
def test_golden_fused_fleet_matches_serial_bit_identically(
    mission, khepera, tamiya
):
    """The acceptance bar: golden 200-step fleets, fused == serial exactly.

    Four co-rigged sessions stream the canonical mission through one
    :class:`FusedSessionBank`; four more step the identical messages
    serially. Every fused step must actually take the batched path (the
    occupancy counters prove the test exercised the kernel, not the
    fallback), and the end state must be indistinguishable: per-report
    drift at ``atol=0`` and checkpoint bytes equal.
    """
    rig = {"khepera": khepera, "tamiya": tamiya}[mission]
    _, seed, n_steps = GOLDEN_MISSIONS[mission]
    result = run_scenario(
        rig, None, seed=seed, duration=n_steps * rig.model.dt, stop_at_goal=False
    )
    messages = list(trace_messages(result.trace))
    n = 4

    serial_sessions = [DetectorSession(rig.detector()) for _ in range(n)]
    serial_reports = [
        [r for m in messages if (r := s.process(m)) is not None]
        for s in serial_sessions
    ]

    bank = FusedSessionBank()
    fused_sessions = [DetectorSession(rig.detector()) for _ in range(n)]
    fused_reports = [[] for _ in range(n)]
    for message in messages:
        outcomes = bank.process([(s, message) for s in fused_sessions])
        for i, outcome in enumerate(outcomes):
            assert outcome.error is None
            assert outcome.batched
            fused_reports[i].append(outcome.report)

    occupancy = bank.occupancy()
    assert occupancy["sessions_serial"] == 0
    assert occupancy["sessions_batched"] == n * len(messages)
    assert occupancy["mean_batch_size"] == n
    assert_fleet_identical(
        fused_sessions, serial_sessions, fused_reports, serial_reports
    )


# ----------------------------------------------------------------------
# Hypothesis property: randomized fleets, interleavings, checkpoint cuts
# ----------------------------------------------------------------------
def _mask_strategy(suite_key):
    names = SUITE_NAMES[suite_key]
    subsets = [
        combo
        for r in range(1, len(names) + 1)
        for combo in itertools.combinations(names, r)
    ]
    return st.one_of(st.none(), st.sampled_from(subsets))


@st.composite
def fused_fleet_cases(draw):
    """A randomized fleet mission with a mid-stream checkpoint cut.

    Returns ``(suite_key, seeds, masks, ticks, cut, order_seed)``: one rig
    shape, per-session noise seeds, a shared availability-mask schedule
    (``None`` = nominal, a proper subset = degraded → serial fallback), the
    step indices grouped into drain ticks (tick width 2 produces waves —
    two messages for one session in a single ``process`` call), the tick
    index where every fused session checkpoints and migrates, and the seed
    of the per-tick arrival-order shuffle.
    """
    suite_key = draw(st.sampled_from(sorted(SUITES)))
    n_sessions = draw(st.integers(min_value=2, max_value=5))
    n_steps = draw(st.integers(min_value=3, max_value=14))
    seeds = draw(
        st.lists(
            st.integers(min_value=0, max_value=2**31 - 1),
            min_size=n_sessions,
            max_size=n_sessions,
        )
    )
    masks = draw(st.lists(_mask_strategy(suite_key), min_size=n_steps, max_size=n_steps))
    tick_width = draw(st.integers(min_value=1, max_value=2))
    ticks = [
        list(range(k, min(k + tick_width, n_steps)))
        for k in range(0, n_steps, tick_width)
    ]
    cut = draw(st.integers(min_value=1, max_value=len(ticks) - 1))
    order_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return suite_key, seeds, masks, ticks, cut, order_seed


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=fused_fleet_cases())
def test_fused_serial_parity_property(case):
    """Fused == serial over random fleets, orders, masks and a migration.

    Each session streams its own randomized mission. The fused fleet
    processes the steps in drain ticks whose per-tick arrival order is
    shuffled; at the cut every fused session checkpoints through the
    pickled wire form and resumes into a *freshly built* detector (the
    fused-checkpoint → serial-restore → fused-resume round trip). The
    serial fleet just steps message by message. End-of-run snapshots must
    be byte-identical and reports drift-free at ``atol=0``.
    """
    suite_key, seeds, masks, ticks, cut, order_seed = case
    streams = [random_messages(suite_key, seed, masks) for seed in seeds]
    n = len(streams)

    serial_sessions = [DetectorSession(build_detector(suite_key)) for _ in range(n)]
    serial_reports = [
        [r for m in streams[i] if (r := serial_sessions[i].process(m)) is not None]
        for i in range(n)
    ]

    order_rng = np.random.default_rng(order_seed)
    bank = FusedSessionBank()
    fused_sessions = [DetectorSession(build_detector(suite_key)) for _ in range(n)]
    fused_reports = [[] for _ in range(n)]

    def run_ticks(tick_range):
        for tick in tick_range:
            pairs = []
            for step in tick:
                for i in order_rng.permutation(n):
                    pairs.append((int(i), streams[i][step]))
            outcomes = bank.process(
                [(fused_sessions[i], message) for i, message in pairs]
            )
            for (i, _), outcome in zip(pairs, outcomes):
                assert outcome.error is None
                if outcome.report is not None:
                    fused_reports[i].append(outcome.report)

    run_ticks(ticks[:cut])
    blobs = [s.checkpoint().to_bytes() for s in fused_sessions]
    fused_sessions = [
        DetectorSession.resume(
            build_detector(suite_key), SessionSnapshot.from_bytes(blob)
        )
        for blob in blobs
    ]
    run_ticks(ticks[cut:])

    assert_fleet_identical(
        fused_sessions, serial_sessions, fused_reports, serial_reports
    )


# ----------------------------------------------------------------------
# Serial-fallback taxonomy and occupancy accounting
# ----------------------------------------------------------------------
class TestSerialFallbacks:
    """Ineligible sessions fall back serially — same outcomes, counted."""

    def test_underfilled_group_takes_the_serial_path(self):
        session = DetectorSession(build_detector("dual"))
        bank = FusedSessionBank()
        [outcome] = bank.process(
            [(session, random_messages("dual", 3, [None])[0])]
        )
        assert outcome.report is not None and not outcome.batched
        assert bank.occupancy()["sessions_serial"] == 1
        assert bank.occupancy()["kernel_calls"] == 0

    def test_min_batch_is_tunable(self):
        sessions = [DetectorSession(build_detector("dual")) for _ in range(2)]
        message = random_messages("dual", 3, [None])[0]
        bank = FusedSessionBank(min_batch=3)
        outcomes = bank.process([(s, message) for s in sessions])
        assert all(o.report is not None and not o.batched for o in outcomes)
        assert bank.occupancy()["sessions_serial"] == 2

    def test_telemetry_attached_sessions_never_fuse(self):
        detector = build_detector("dual")
        detector.attach_telemetry(RecordingTelemetry())
        watched = DetectorSession(detector)
        plain = [DetectorSession(build_detector("dual")) for _ in range(2)]
        message = random_messages("dual", 5, [None])[0]
        bank = FusedSessionBank()
        outcomes = bank.process([(s, message) for s in (watched, *plain)])
        assert [o.batched for o in outcomes] == [False, True, True]
        assert detector.telemetry.events_of("mode_bank")  # serial emitted

    def test_degraded_iterations_fall_back_and_stay_identical(self):
        masks = [None, ("ips",), None, ("ips", "wheel_encoder"), None]
        messages = random_messages("full", 11, masks)
        serial = [DetectorSession(build_detector("full")) for _ in range(3)]
        for s in serial:
            for m in messages:
                s.process(m)
        bank = FusedSessionBank()
        fused = [DetectorSession(build_detector("full")) for _ in range(3)]
        batched_flags = []
        for m in messages:
            outcomes = bank.process([(s, m) for s in fused])
            batched_flags.append([o.batched for o in outcomes])
        # full-delivery ticks batch; degraded ticks (proper subsets) do not
        assert [all(row) for row in batched_flags] == [
            True, False, True, False, True
        ]
        for f, s in zip(fused, serial):
            assert f.checkpoint().to_bytes() == s.checkpoint().to_bytes()

    def test_heterogeneous_rigs_fuse_only_within_their_group(self):
        full = [DetectorSession(build_detector("full")) for _ in range(2)]
        dual = [DetectorSession(build_detector("dual")) for _ in range(2)]
        full_msg = random_messages("full", 7, [None])[0]
        dual_msg = random_messages("dual", 7, [None])[0]
        bank = FusedSessionBank()
        pairs = [(full[0], full_msg), (dual[0], dual_msg),
                 (full[1], full_msg), (dual[1], dual_msg)]
        outcomes = bank.process(pairs)
        assert all(o.batched for o in outcomes)
        occupancy = bank.occupancy()
        assert occupancy["kernel_calls"] == 2  # one per co-rigged group
        assert occupancy["mean_batch_size"] == 2


def test_poisoned_message_errors_only_its_own_session():
    """A malformed reading is captured per item, neighbours keep stepping."""
    sessions = [DetectorSession(build_detector("dual")) for _ in range(3)]
    message = random_messages("dual", 13, [None])[0]
    bad = SessionMessage(
        seq=0, t=0.0, control=message.control, reading=np.zeros(99)
    )
    bank = FusedSessionBank()
    outcomes = bank.process(
        [(sessions[0], message), (sessions[1], bad), (sessions[2], message)]
    )
    assert outcomes[0].report is not None and outcomes[0].error is None
    assert outcomes[1].report is None and outcomes[1].error is not None
    assert outcomes[2].report is not None and outcomes[2].error is None


def test_fused_batch_event_emission():
    """One FusedBatchEvent per tick, carrying the occupancy split."""
    telemetry = RecordingTelemetry()
    bank = FusedSessionBank(telemetry=telemetry)
    sessions = [DetectorSession(build_detector("dual")) for _ in range(3)]
    messages = random_messages("dual", 17, [None, None])
    stale = messages[0]  # redelivered below: suppressed by the ingest policy
    for m in messages:
        bank.process([(s, m) for s in sessions])
    bank.process([(sessions[0], stale)])
    events = telemetry.events_of("fused_batch")
    assert len(events) == 3
    for event in events[:2]:
        assert event.batched == 3
        assert event.serial_fallbacks == 0
        assert event.groups == 1
        assert event.group_sizes == (3,)
        assert event.suppressed == 0
    assert events[2].suppressed == 1 and events[2].batched == 0
    assert bank.occupancy()["messages_suppressed"] == 1


# ----------------------------------------------------------------------
# FleetService fused mode
# ----------------------------------------------------------------------
def test_fleet_service_fused_matches_serial():
    """The asyncio service in fused mode: same reports, ingest, snapshots."""
    masks = [None] * 12
    streams = {f"r{i}": random_messages("full", 100 + i, masks) for i in range(3)}

    async def drive(fused):
        service = FleetService(fused=fused)
        for robot_id in streams:
            await service.open_session(robot_id, build_detector("full"))
        for step in range(len(masks)):
            for robot_id, stream in streams.items():
                await service.submit(robot_id, stream[step])
        snapshots = {
            robot_id: (await service.checkpoint_session(robot_id)).to_bytes()
            for robot_id in streams
        }
        results = await service.close_all()
        return results, snapshots

    serial_results, serial_snaps = asyncio.run(drive(False))
    fused_results, fused_snaps = asyncio.run(drive(True))
    assert fused_snaps == serial_snaps
    for robot_id in streams:
        fused, serial = fused_results[robot_id], serial_results[robot_id]
        assert report_drift(fused.reports, serial.reports, atol=0.0) == []
        assert fused.ingest.as_dict() == serial.ingest.as_dict()


# ----------------------------------------------------------------------
# Wire-format pin (satellite of the fused work: cross-worker checkpoints)
# ----------------------------------------------------------------------
class TestSnapshotWireFormat:
    """``to_bytes`` is pinned to pickle protocol 5, not the interpreter's."""

    def test_protocol_constant_is_five(self):
        assert SNAPSHOT_PICKLE_PROTOCOL == 5

    def test_to_bytes_uses_the_pinned_protocol(self):
        session = DetectorSession(build_detector("dual"))
        for message in random_messages("dual", 19, [None] * 3):
            session.process(message)
        snapshot = session.checkpoint()
        blob = snapshot.to_bytes()
        assert blob == pickle.dumps(snapshot, protocol=SNAPSHOT_PICKLE_PROTOCOL)
        # The first opcode is PROTO with the pinned version byte — the
        # serialized form itself, not just this interpreter's default,
        # carries the pin.
        assert blob[0] == 0x80 and blob[1] == SNAPSHOT_PICKLE_PROTOCOL
