"""Tests for the attack framework: signals, attacks, schedules, catalog."""

import numpy as np
import pytest

from repro.attacks.base import Attack, AttackChannel, AttackTarget
from repro.attacks.catalog import ENCODER_TICK_M, khepera_scenarios, tamiya_scenarios
from repro.attacks.scheduler import AttackSchedule
from repro.attacks.sensor_attacks import (
    sensor_bias,
    sensor_dos,
    sensor_noise_jamming,
    sensor_replay,
    sensor_spoof_ramp,
)
from repro.attacks.actuator_attacks import (
    actuator_offset,
    actuator_runaway,
    tire_blowout,
    wheel_jamming,
)
from repro.attacks.signals import (
    BiasSignal,
    NoiseSignal,
    OdometryTickInjection,
    OverrideSignal,
    RampSignal,
    ReplaySignal,
    ScaleSignal,
    StuckSignal,
    ZeroSignal,
)
from repro.errors import ConfigurationError


@pytest.fixture
def gen():
    return np.random.default_rng(0)


class TestSignals:
    def test_bias(self, gen):
        signal = BiasSignal([1.0, -2.0])
        assert np.allclose(signal.apply(np.array([0.5, 0.5]), 0.0, gen), [1.5, -1.5])

    def test_ramp(self, gen):
        signal = RampSignal(0.1)
        assert np.allclose(signal.apply(np.zeros(1), 5.0, gen), [0.5])

    def test_ramp_capped(self, gen):
        signal = RampSignal(0.1, max_offset=0.2)
        assert np.allclose(signal.apply(np.zeros(1), 50.0, gen), [0.2])

    def test_ramp_negative_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            RampSignal(0.1, max_offset=-1.0)

    def test_zero(self, gen):
        signal = ZeroSignal()
        assert np.allclose(signal.apply(np.array([3.0, -1.0]), 1.0, gen), 0.0)

    def test_override_broadcast(self, gen):
        signal = OverrideSignal(7.0)
        assert np.allclose(signal.apply(np.zeros(3), 0.0, gen), 7.0)

    def test_override_vector(self, gen):
        signal = OverrideSignal([1.0, 2.0])
        assert np.allclose(signal.apply(np.zeros(2), 0.0, gen), [1.0, 2.0])

    def test_stuck_holds_first_value(self, gen):
        signal = StuckSignal()
        first = signal.apply(np.array([3.0]), 0.0, gen)
        later = signal.apply(np.array([9.0]), 1.0, gen)
        assert np.allclose(first, later)
        signal.reset()
        assert np.allclose(signal.apply(np.array([5.0]), 0.0, gen), [5.0])

    def test_scale(self, gen):
        signal = ScaleSignal(0.5)
        assert np.allclose(signal.apply(np.array([2.0]), 0.0, gen), [1.0])

    def test_noise_changes_value(self, gen):
        signal = NoiseSignal(1.0)
        out = signal.apply(np.zeros(4), 0.0, gen)
        assert np.any(out != 0.0)

    def test_noise_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            NoiseSignal(-1.0)

    def test_replay_delays(self, gen):
        signal = ReplaySignal(delay_steps=2)
        v1 = signal.apply(np.array([1.0]), 0.0, gen)
        v2 = signal.apply(np.array([2.0]), 0.1, gen)
        v3 = signal.apply(np.array([3.0]), 0.2, gen)
        # While the buffer fills the first capture is replayed; afterwards
        # values lag by exactly two steps.
        assert v1[0] == 1.0 and v2[0] == 1.0 and v3[0] == 1.0
        v4 = signal.apply(np.array([4.0]), 0.3, gen)
        assert v4[0] == 2.0

    def test_replay_requires_positive_delay(self):
        with pytest.raises(ConfigurationError):
            ReplaySignal(0)

    def test_tick_injection_geometry(self, gen):
        signal = OdometryTickInjection(ticks=100, tick_length=1e-4, wheel_base=0.1, wheel="left")
        pose = np.array([1.0, 2.0, 0.0])
        out = signal.apply(pose, 0.0, gen)
        # Arc = 0.01 m: forward 5 mm along heading, heading -0.1 rad (left).
        assert out[0] == pytest.approx(1.005)
        assert out[1] == pytest.approx(2.0)
        assert out[2] == pytest.approx(-0.1)

    def test_tick_injection_right_wheel_sign(self, gen):
        signal = OdometryTickInjection(ticks=100, tick_length=1e-4, wheel_base=0.1, wheel="right")
        out = signal.apply(np.zeros(3), 0.0, gen)
        assert out[2] == pytest.approx(+0.1)

    def test_tick_injection_validation(self):
        with pytest.raises(ConfigurationError):
            OdometryTickInjection(10, tick_length=0.0, wheel_base=0.1)
        with pytest.raises(ConfigurationError):
            OdometryTickInjection(10, tick_length=1e-4, wheel_base=0.1, wheel="middle")


class TestAttack:
    def test_window_semantics(self, gen):
        attack = sensor_bias("ips", offset=(1.0,), start=2.0, stop=5.0, components=(0,))
        assert not attack.active(1.9)
        assert attack.active(2.0)
        assert attack.active(4.999)
        assert not attack.active(5.0)

    def test_apply_outside_window_is_noop(self, gen):
        attack = sensor_bias("ips", offset=(1.0,), start=2.0, components=(0,))
        clean = np.array([0.0, 0.0, 0.0])
        assert np.allclose(attack.apply(clean, 1.0, gen), clean)

    def test_apply_components(self, gen):
        attack = sensor_bias("ips", offset=(1.0,), start=0.0, components=(1,))
        out = attack.apply(np.zeros(3), 0.5, gen)
        assert np.allclose(out, [0.0, 1.0, 0.0])

    def test_apply_whole_vector(self, gen):
        attack = sensor_dos("lidar", start=0.0)
        out = attack.apply(np.array([1.0, 2.0]), 0.5, gen)
        assert np.allclose(out, 0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sensor_bias("ips", offset=(1.0,), start=-1.0)
        with pytest.raises(ConfigurationError):
            sensor_bias("ips", offset=(1.0,), start=5.0, stop=4.0)

    def test_constructors_set_channels(self):
        assert sensor_spoof_ramp("gps", 0.01, 1.0).channel is AttackChannel.PHYSICAL
        assert sensor_replay("ips", 5, 1.0).channel is AttackChannel.CYBER
        assert sensor_noise_jamming("sonar", 1.0, 1.0).channel is AttackChannel.PHYSICAL
        assert wheel_jamming("wheels", 0, 1.0).channel is AttackChannel.PHYSICAL
        assert actuator_offset("wheels", (0.1, 0.1), 1.0).channel is AttackChannel.CYBER
        assert tire_blowout("wheels", 0).channel is AttackChannel.PHYSICAL
        assert actuator_runaway("throttle", 0.1, 1.0).channel is AttackChannel.CYBER

    def test_targets(self):
        assert sensor_dos("lidar", 0.0).target is AttackTarget.SENSOR
        assert wheel_jamming("wheels", 0, 0.0).target is AttackTarget.ACTUATOR


class TestAttackSchedule:
    def test_corrupt_sensor_applies_matching_only(self, gen):
        schedule = AttackSchedule(
            [
                sensor_bias("ips", offset=(1.0,), start=0.0, components=(0,)),
                sensor_bias("lidar", offset=(9.0,), start=0.0, components=(0,)),
            ]
        )
        out = schedule.corrupt_sensor("ips", np.zeros(3), 1.0, gen)
        assert np.allclose(out, [1.0, 0.0, 0.0])

    def test_corrupt_actuator(self, gen):
        schedule = AttackSchedule([actuator_offset("wheels", (0.1, -0.1), start=0.0)])
        out = schedule.corrupt_actuator("wheels", np.zeros(2), 1.0, gen)
        assert np.allclose(out, [0.1, -0.1])

    def test_stacked_attacks_compose(self, gen):
        schedule = AttackSchedule(
            [
                sensor_bias("ips", offset=(1.0,), start=0.0, components=(0,)),
                sensor_bias("ips", offset=(2.0,), start=0.0, components=(0,)),
            ]
        )
        out = schedule.corrupt_sensor("ips", np.zeros(3), 1.0, gen)
        assert out[0] == pytest.approx(3.0)

    def test_ground_truth(self):
        schedule = AttackSchedule(
            [
                sensor_dos("lidar", start=3.0, stop=9.0),
                sensor_bias("ips", offset=(0.1,), start=6.0),
                wheel_jamming("wheels", 0, start=4.0),
            ]
        )
        assert schedule.corrupted_sensors(2.0) == frozenset()
        assert schedule.corrupted_sensors(4.0) == frozenset({"lidar"})
        assert schedule.corrupted_sensors(7.0) == frozenset({"lidar", "ips"})
        assert schedule.corrupted_sensors(10.0) == frozenset({"ips"})
        assert not schedule.actuator_corrupted(3.0)
        assert schedule.actuator_corrupted(4.5)
        assert schedule.event_times() == [3.0, 4.0, 6.0, 9.0]

    def test_reset_resets_signals(self, gen):
        attack = Attack(
            "stuck", AttackTarget.SENSOR, "ips", AttackChannel.CYBER, StuckSignal(), 0.0
        )
        schedule = AttackSchedule([attack])
        schedule.corrupt_sensor("ips", np.array([1.0]), 0.0, gen)
        schedule.reset()
        out = schedule.corrupt_sensor("ips", np.array([2.0]), 0.0, gen)
        assert out[0] == pytest.approx(2.0)

    def test_len_and_iter(self):
        schedule = AttackSchedule([sensor_dos("a", 0.0)])
        assert len(schedule) == 1
        assert [a.workflow for a in schedule] == ["a"]

    def test_add(self):
        schedule = AttackSchedule()
        schedule.add(sensor_dos("a", 0.0))
        assert len(schedule) == 1


class TestCatalog:
    def test_khepera_has_eleven_scenarios(self):
        scenarios = khepera_scenarios()
        assert [s.number for s in scenarios] == list(range(1, 12))

    def test_tamiya_has_eight_scenarios(self):
        assert len(tamiya_scenarios()) == 8

    def test_scenarios_build_fresh_schedules(self):
        scenario = khepera_scenarios()[0]
        s1, s2 = scenario.build_schedule(), scenario.build_schedule()
        assert s1.attacks[0] is not s2.attacks[0]

    def test_scenario_metadata(self):
        scenario = khepera_scenarios()[0]
        assert scenario.channels == ("cyber",)
        assert scenario.targets == ("actuator",)
        combo = khepera_scenarios()[8]  # LiDAR DoS & WE logic bomb
        assert set(combo.channels) == {"cyber", "physical"}

    def test_wheel_bomb_magnitude_is_6000_units(self):
        from repro.actuators.differential import SPEED_UNIT_M_PER_S

        scenario = khepera_scenarios()[0]
        attack = scenario.build_attacks()[0]
        offset = attack.signal.offset
        assert np.allclose(np.abs(offset), 6000.0 * SPEED_UNIT_M_PER_S)

    def test_scenario10_lidar_recovers(self):
        scenario = khepera_scenarios()[9]
        schedule = scenario.build_schedule()
        assert "lidar" in schedule.corrupted_sensors(5.0)
        assert "lidar" not in schedule.corrupted_sensors(9.5)

    def test_encoder_tick_constant_positive(self):
        assert ENCODER_TICK_M > 0
