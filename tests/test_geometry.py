"""Tests for planar geometry primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionError
from repro.world.geometry import (
    Ray,
    Segment,
    as_point,
    distance_point_to_line,
    distance_point_to_segment,
    project_point_to_segment,
    ray_segment_intersection,
    segments_intersect,
)

finite_coord = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


class TestSegment:
    def test_length_and_direction(self):
        seg = Segment((0.0, 0.0), (3.0, 4.0))
        assert seg.length == pytest.approx(5.0)
        assert np.allclose(seg.direction, [0.6, 0.8])

    def test_normal_is_left_perpendicular(self):
        seg = Segment((0.0, 0.0), (1.0, 0.0))
        assert np.allclose(seg.normal, [0.0, 1.0])

    def test_angle(self):
        assert Segment((0, 0), (1, 1)).angle == pytest.approx(np.pi / 4)

    def test_midpoint(self):
        assert np.allclose(Segment((0, 0), (2, 4)).midpoint(), [1.0, 2.0])

    def test_degenerate_direction_zero(self):
        seg = Segment((1.0, 1.0), (1.0, 1.0))
        assert np.allclose(seg.direction, [0.0, 0.0])


class TestAsPoint:
    def test_rejects_wrong_shape(self):
        with pytest.raises(DimensionError):
            as_point([1.0, 2.0, 3.0])


class TestSegmentsIntersect:
    def test_crossing(self):
        a = Segment((0, 0), (2, 2))
        b = Segment((0, 2), (2, 0))
        assert segments_intersect(a, b)

    def test_parallel_non_overlapping(self):
        a = Segment((0, 0), (1, 0))
        b = Segment((0, 1), (1, 1))
        assert not segments_intersect(a, b)

    def test_collinear_overlapping(self):
        a = Segment((0, 0), (2, 0))
        b = Segment((1, 0), (3, 0))
        assert segments_intersect(a, b)

    def test_collinear_disjoint(self):
        a = Segment((0, 0), (1, 0))
        b = Segment((2, 0), (3, 0))
        assert not segments_intersect(a, b)

    def test_touching_endpoint(self):
        a = Segment((0, 0), (1, 1))
        b = Segment((1, 1), (2, 0))
        assert segments_intersect(a, b)

    def test_near_miss(self):
        a = Segment((0, 0), (1, 0))
        b = Segment((0.5, 0.01), (0.5, 1.0))
        assert not segments_intersect(a, b)

    @given(finite_coord, finite_coord, finite_coord, finite_coord)
    @settings(max_examples=50, deadline=None)
    def test_symmetric(self, x0, y0, x1, y1):
        a = Segment((x0, y0), (x1, y1))
        b = Segment((y0, x1), (x0, y1))
        assert segments_intersect(a, b) == segments_intersect(b, a)


class TestRaySegment:
    def test_perpendicular_hit(self):
        ray = Ray((0.0, 0.0), 0.0)
        seg = Segment((2.0, -1.0), (2.0, 1.0))
        assert ray_segment_intersection(ray, seg) == pytest.approx(2.0)

    def test_miss_behind(self):
        ray = Ray((0.0, 0.0), 0.0)
        seg = Segment((-2.0, -1.0), (-2.0, 1.0))
        assert ray_segment_intersection(ray, seg) is None

    def test_miss_beside(self):
        ray = Ray((0.0, 0.0), 0.0)
        seg = Segment((2.0, 1.0), (2.0, 3.0))
        assert ray_segment_intersection(ray, seg) is None

    def test_angled_hit(self):
        ray = Ray((0.0, 0.0), np.pi / 4)
        seg = Segment((0.0, 2.0), (2.0, 0.0))
        assert ray_segment_intersection(ray, seg) == pytest.approx(np.sqrt(2.0))

    def test_collinear_ray(self):
        ray = Ray((0.0, 0.0), 0.0)
        seg = Segment((1.0, 0.0), (3.0, 0.0))
        assert ray_segment_intersection(ray, seg) == pytest.approx(1.0)

    def test_origin_on_segment(self):
        ray = Ray((2.0, 0.0), np.pi / 2)
        seg = Segment((0.0, 0.0), (4.0, 0.0))
        assert ray_segment_intersection(ray, seg) == pytest.approx(0.0)

    @given(
        st.floats(min_value=-np.pi, max_value=np.pi),
        st.floats(min_value=0.5, max_value=20.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_hit_point_lies_on_segment_line(self, angle, offset):
        # A long vertical wall at x=offset is hit by any ray with positive
        # x-direction; the hit distance must place the point on the wall.
        # The wall must out-span the guard: cos(angle) just above 1e-6
        # crosses x=offset at |y| up to ~2e7, so ±1000 was too short.
        ray = Ray((0.0, 0.0), angle)
        seg = Segment((offset, -1e9), (offset, 1e9))
        hit = ray_segment_intersection(ray, seg)
        if np.cos(angle) > 1e-6:
            assert hit is not None
            point = ray.point_at(hit)
            assert point[0] == pytest.approx(offset, abs=1e-6)
        elif np.cos(angle) < -1e-6:
            assert hit is None


class TestDistances:
    def test_projection_interior(self):
        seg = Segment((0.0, 0.0), (10.0, 0.0))
        closest, t = project_point_to_segment((3.0, 4.0), seg)
        assert np.allclose(closest, [3.0, 0.0])
        assert t == pytest.approx(0.3)

    def test_projection_clamps(self):
        seg = Segment((0.0, 0.0), (1.0, 0.0))
        closest, t = project_point_to_segment((5.0, 1.0), seg)
        assert np.allclose(closest, [1.0, 0.0])
        assert t == 1.0

    def test_distance_point_to_segment(self):
        seg = Segment((0.0, 0.0), (10.0, 0.0))
        assert distance_point_to_segment((3.0, 4.0), seg) == pytest.approx(4.0)
        assert distance_point_to_segment((-3.0, 4.0), seg) == pytest.approx(5.0)

    def test_signed_line_distance(self):
        seg = Segment((0.0, 0.0), (1.0, 0.0))
        assert distance_point_to_line((0.5, 2.0), seg) == pytest.approx(2.0)
        assert distance_point_to_line((0.5, -2.0), seg) == pytest.approx(-2.0)

    def test_line_distance_degenerate_segment(self):
        seg = Segment((1.0, 1.0), (1.0, 1.0))
        assert distance_point_to_line((4.0, 5.0), seg) == pytest.approx(5.0)

    @given(finite_coord, finite_coord)
    @settings(max_examples=50, deadline=None)
    def test_segment_distance_nonnegative(self, x, y):
        seg = Segment((-1.0, 0.0), (1.0, 0.0))
        assert distance_point_to_segment((x, y), seg) >= 0.0
