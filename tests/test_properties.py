"""Cross-cutting property-based tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.base import AttackChannel
from repro.attacks.scheduler import AttackSchedule
from repro.attacks.sensor_attacks import sensor_bias
from repro.eval.metrics import ConfusionCounts
from repro.linalg import wrap_angle


class TestAttackProperties:
    @given(
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.0, max_value=30.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_apply_is_identity_outside_window(self, start, width, t):
        attack = sensor_bias("s", offset=(1.0, 1.0), start=start, stop=start + width)
        clean = np.array([3.0, -2.0])
        out = attack.apply(clean, t, np.random.default_rng(0))
        inside = start <= t < start + width
        if inside:
            assert np.allclose(out, clean + 1.0)
        else:
            assert np.allclose(out, clean)

    @given(st.lists(st.tuples(st.floats(0.0, 10.0), st.floats(0.1, 5.0)), min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_ground_truth_matches_windows(self, windows):
        attacks = [
            sensor_bias("s", offset=(1.0,), start=s, stop=s + w, components=(0,))
            for s, w in windows
        ]
        schedule = AttackSchedule(attacks)
        for t in np.linspace(0.0, 16.0, 33):
            expected = any(s <= t < s + w for s, w in windows)
            assert (("s" in schedule.corrupted_sensors(t)) == expected)

    @given(st.floats(0.0, 20.0), st.floats(0.0, 20.0))
    @settings(max_examples=40, deadline=None)
    def test_bias_attacks_commute(self, t, start):
        a = sensor_bias("s", offset=(1.0,), start=start, components=(0,))
        b = sensor_bias("s", offset=(2.0,), start=start, components=(0,))
        rng = np.random.default_rng(0)
        clean = np.array([0.5, 0.5])
        ab = b.apply(a.apply(clean, t, rng), t, rng)
        ba = a.apply(b.apply(clean, t, rng), t, rng)
        assert np.allclose(ab, ba)


class TestConfusionProperties:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.booleans(), st.booleans()),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_counts_partition_iterations(self, events):
        counts = ConfusionCounts()
        for detected, correct, truth in events:
            counts.classify(detected, correct, truth)
        assert counts.total == len(events)
        assert 0.0 <= counts.false_positive_rate <= 1.0
        assert 0.0 <= counts.false_negative_rate <= 1.0
        assert 0.0 <= counts.f1 <= 1.0

    @given(st.integers(0, 50), st.integers(0, 50), st.integers(0, 50), st.integers(0, 50))
    @settings(max_examples=50, deadline=None)
    def test_f1_harmonic_mean(self, tp, fp, fn, tn):
        counts = ConfusionCounts(tp=tp, fp=fp, fn=fn, tn=tn)
        p, r = counts.precision, counts.recall
        if p + r > 0:
            assert counts.f1 == pytest.approx(2 * p * r / (p + r))
        else:
            assert counts.f1 == 0.0


class TestAngleProperties:
    @given(st.floats(-1000.0, 1000.0), st.floats(-1000.0, 1000.0))
    @settings(max_examples=80, deadline=None)
    def test_wrap_is_additive_mod_2pi(self, a, b):
        lhs = wrap_angle(wrap_angle(a) + wrap_angle(b))
        rhs = wrap_angle(a + b)
        assert np.isclose(np.sin(lhs), np.sin(rhs), atol=1e-6)
        assert np.isclose(np.cos(lhs), np.cos(rhs), atol=1e-6)

    @given(st.floats(-np.pi + 1e-9, np.pi))
    @settings(max_examples=50, deadline=None)
    def test_wrap_is_identity_in_range(self, angle):
        assert wrap_angle(angle) == pytest.approx(angle, abs=1e-12)
