"""Opt-in CI perf regression gate (``pytest -m perf_gate``).

Runs ``scripts/check_perf.py``: the ``perf`` benchmark group is measured
fresh and each mean compared against the committed ``BENCH_perf.json``; a
>25% regression fails. Excluded from default runs (like ``bench_smoke``)
because it re-runs the benchmarks — wire it into CI as a separate job.
"""

import pathlib
import subprocess
import sys

import pytest

pytestmark = pytest.mark.perf_gate

REPO = pathlib.Path(__file__).resolve().parents[1]


def test_perf_regression_gate():
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "check_perf.py")],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, (
        f"perf gate failed:\n{proc.stdout}\n{proc.stderr}"
    )
