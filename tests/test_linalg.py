"""Unit and property tests for the numerical helpers in repro.linalg."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import DimensionError
from repro.linalg import (
    as_matrix,
    as_vector,
    block_diag,
    gaussian_likelihood,
    is_psd,
    mahalanobis_squared,
    numerical_jacobian,
    pinv_and_pdet,
    project_psd,
    pseudo_determinant,
    pseudo_inverse,
    symmetrize,
    wrap_angle,
    wrap_residual,
)


def random_psd(rng: np.random.Generator, n: int, rank: int | None = None) -> np.ndarray:
    rank = n if rank is None else rank
    basis = rng.standard_normal((n, rank))
    return basis @ basis.T


class TestVectorsAndMatrices:
    def test_as_vector_accepts_scalar(self):
        assert as_vector(3.0).tolist() == [3.0]

    def test_as_vector_checks_length(self):
        with pytest.raises(DimensionError):
            as_vector([1.0, 2.0], dim=3)

    def test_as_matrix_checks_shape(self):
        with pytest.raises(DimensionError):
            as_matrix(np.eye(2), shape=(3, 3))

    def test_symmetrize(self):
        m = np.array([[1.0, 2.0], [0.0, 1.0]])
        sym = symmetrize(m)
        assert np.allclose(sym, sym.T)
        assert sym[0, 1] == pytest.approx(1.0)


class TestPsd:
    def test_is_psd_identity(self):
        assert is_psd(np.eye(3))

    def test_is_psd_rejects_negative(self):
        assert not is_psd(np.diag([1.0, -0.5]))

    def test_project_psd_clips_negative_eigenvalues(self):
        m = np.diag([2.0, -1.0])
        projected = project_psd(m)
        eigvals = np.linalg.eigvalsh(projected)
        assert np.all(eigvals >= 0.0)
        assert eigvals.max() == pytest.approx(2.0)

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_project_psd_idempotent(self, n, seed):
        rng = np.random.default_rng(seed)
        m = rng.standard_normal((n, n))
        projected = project_psd(m)
        assert is_psd(projected)
        assert np.allclose(project_psd(projected), projected, atol=1e-9)


class TestPseudoInverse:
    def test_full_rank_matches_inverse(self, rng):
        m = random_psd(rng, 4) + 0.5 * np.eye(4)
        assert np.allclose(pseudo_inverse(m), np.linalg.inv(m), atol=1e-8)

    def test_singular_matrix(self, rng):
        m = random_psd(rng, 4, rank=2)
        pinv = pseudo_inverse(m)
        # Moore-Penrose identities for symmetric matrices.
        assert np.allclose(m @ pinv @ m, m, atol=1e-8)
        assert np.allclose(pinv @ m @ pinv, pinv, atol=1e-8)

    def test_pseudo_determinant_full_rank(self, rng):
        m = random_psd(rng, 3) + np.eye(3)
        pdet, rank = pseudo_determinant(m)
        assert rank == 3
        assert pdet == pytest.approx(np.linalg.det(m), rel=1e-8)

    def test_pseudo_determinant_rank_deficient(self, rng):
        m = random_psd(rng, 4, rank=2)
        pdet, rank = pseudo_determinant(m)
        assert rank == 2
        eigvals = np.sort(np.linalg.eigvalsh(m))[-2:]
        assert pdet == pytest.approx(np.prod(eigvals), rel=1e-6)

    def test_zero_matrix(self):
        pdet, rank = pseudo_determinant(np.zeros((3, 3)))
        assert rank == 0
        assert pdet == 1.0
        assert np.allclose(pseudo_inverse(np.zeros((3, 3))), 0.0)

    def test_pinv_and_pdet_consistent(self, rng):
        m = random_psd(rng, 5, rank=3)
        pinv, pdet, rank = pinv_and_pdet(m)
        assert np.allclose(pinv, pseudo_inverse(m), atol=1e-9)
        pdet2, rank2 = pseudo_determinant(m)
        assert rank == rank2
        assert pdet == pytest.approx(pdet2, rel=1e-9)


class TestGaussianLikelihood:
    def test_matches_scipy_full_rank(self, rng):
        from scipy import stats

        cov = random_psd(rng, 3) + np.eye(3)
        x = rng.standard_normal(3)
        ours = gaussian_likelihood(x, cov)
        ref = stats.multivariate_normal(mean=np.zeros(3), cov=cov).pdf(x)
        assert ours == pytest.approx(ref, rel=1e-8)

    def test_zero_rank_returns_one(self):
        assert gaussian_likelihood(np.zeros(2), np.zeros((2, 2))) == 1.0

    def test_larger_residual_less_likely(self, rng):
        cov = np.eye(2)
        assert gaussian_likelihood(np.array([0.1, 0.0]), cov) > gaussian_likelihood(
            np.array([2.0, 0.0]), cov
        )

    def test_mahalanobis(self):
        cov = np.diag([4.0, 1.0])
        d2 = mahalanobis_squared(np.array([2.0, 1.0]), cov)
        assert d2 == pytest.approx(1.0 + 1.0)


class TestJacobian:
    def test_linear_function_exact(self):
        A = np.array([[1.0, 2.0], [3.0, -1.0], [0.5, 0.0]])
        jac = numerical_jacobian(lambda x: A @ x, np.array([0.3, -0.7]))
        assert np.allclose(jac, A, atol=1e-7)

    def test_nonlinear_function(self):
        def f(x):
            return np.array([np.sin(x[0]), x[0] * x[1]])

        point = np.array([0.4, 2.0])
        jac = numerical_jacobian(f, point)
        expected = np.array([[np.cos(0.4), 0.0], [2.0, 0.4]])
        assert np.allclose(jac, expected, atol=1e-6)


class TestAngles:
    @given(st.floats(min_value=-100.0, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_wrap_angle_range(self, angle):
        wrapped = wrap_angle(angle)
        assert -np.pi < wrapped <= np.pi
        # The wrap preserves the angle modulo 2*pi.
        assert np.isclose(np.sin(wrapped), np.sin(angle), atol=1e-9)
        assert np.isclose(np.cos(wrapped), np.cos(angle), atol=1e-9)

    def test_wrap_angle_vector(self):
        wrapped = wrap_angle(np.array([0.0, 3.0 * np.pi, -3.0 * np.pi]))
        assert np.allclose(wrapped, [0.0, np.pi, np.pi])

    def test_wrap_residual_masks(self):
        residual = np.array([5.0, 2.0 * np.pi - 0.01])
        wrapped = wrap_residual(residual, [False, True])
        assert wrapped[0] == pytest.approx(5.0)
        assert wrapped[1] == pytest.approx(-0.01)

    def test_wrap_residual_none_mask(self):
        residual = np.array([7.0])
        assert np.allclose(wrap_residual(residual, None), residual)

    def test_wrap_residual_bad_mask(self):
        with pytest.raises(DimensionError):
            wrap_residual(np.zeros(3), [True])


class TestBlockDiag:
    def test_empty(self):
        assert block_diag([]).shape == (0, 0)

    def test_two_blocks(self):
        out = block_diag([np.eye(2), 3.0 * np.eye(1)])
        expected = np.diag([1.0, 1.0, 3.0])
        assert np.allclose(out, expected)

    def test_rectangular_blocks(self):
        out = block_diag([np.ones((1, 2)), np.ones((2, 1))])
        assert out.shape == (3, 3)
        assert out[0, :2].tolist() == [1.0, 1.0]
        assert out[1:, 2].tolist() == [1.0, 1.0]
