"""Tests for the simulation layer: bus, workflows, platform, simulator."""

import numpy as np
import pytest

from repro.actuators.differential import WheelPairActuator
from repro.attacks.base import Attack, AttackChannel, AttackTarget
from repro.attacks.scheduler import AttackSchedule
from repro.attacks.sensor_attacks import sensor_bias, sensor_dos
from repro.attacks.actuator_attacks import actuator_offset, wheel_jamming
from repro.attacks.signals import BiasSignal
from repro.dynamics.differential_drive import DifferentialDriveModel
from repro.errors import ConfigurationError, SimulationError
from repro.sensors.lidar import RayCastLidar, WallDistanceSensor
from repro.sensors.pose_sensors import IPS, OdometryPoseSensor
from repro.sensors.suite import SensorSuite
from repro.sim.bus import CommunicationBus, Packet
from repro.sim.platform import RobotPlatform
from repro.sim.simulator import ClosedLoopSimulator
from repro.sim.trace import SimulationTrace
from repro.sim.workflows import (
    ActuationWorkflow,
    FeatureSensingWorkflow,
    LidarRawWorkflow,
    OdometryWorkflow,
    WorkflowContext,
)
from repro.world.map import WorldMap


@pytest.fixture
def world():
    return WorldMap.rectangle(3.0, 3.0)


@pytest.fixture
def model():
    return DifferentialDriveModel(dt=0.05)


def make_ctx(state, t=1.0, schedule=None, control=None, rng=None, prior=None):
    return WorkflowContext(
        true_state=np.asarray(state, dtype=float),
        executed_control=np.zeros(2) if control is None else np.asarray(control, dtype=float),
        t=t,
        rng=rng or np.random.default_rng(0),
        schedule=schedule or AttackSchedule(),
        pose_prior=np.asarray(state, dtype=float)[:3] if prior is None else prior,
    )


class TestBus:
    def test_publish_subscribe(self):
        bus = CommunicationBus()
        received = []
        bus.subscribe("sensors/ips", received.append)
        packet = bus.send("sensors/ips", iteration=1, t=0.05, payload=[1.0], source="ips")
        assert received == [packet]

    def test_history_filtering(self):
        bus = CommunicationBus()
        bus.send("a", 1, 0.0, None, "x")
        bus.send("b", 1, 0.0, None, "y")
        assert len(bus.history()) == 2
        assert len(bus.history("a")) == 1

    def test_log_bounded(self):
        bus = CommunicationBus(log_size=3)
        for i in range(10):
            bus.send("a", i, 0.0, None, "x")
        assert len(bus.history()) == 3
        assert bus.history()[0].iteration == 7

    def test_clear(self):
        bus = CommunicationBus()
        bus.send("a", 1, 0.0, None, "x")
        bus.clear()
        assert bus.history() == []

    def test_clear_keeps_subscribers_by_default(self):
        bus = CommunicationBus()
        received = []
        bus.subscribe("a", received.append)
        bus.clear()
        assert bus.subscriber_count("a") == 1
        bus.send("a", 1, 0.0, None, "x")
        assert len(received) == 1  # subscription survived the log clear

    def test_reset_drops_subscribers(self):
        bus = CommunicationBus()
        received = []
        bus.subscribe("a", received.append)
        bus.send("a", 1, 0.0, None, "x")
        bus.reset()
        assert bus.history() == []
        assert bus.subscriber_count() == 0
        bus.send("a", 2, 0.0, None, "x")
        assert len(received) == 1  # only the pre-reset packet was delivered

    def test_clear_with_subscribers_flag(self):
        bus = CommunicationBus()
        bus.subscribe("a", lambda p: None)
        bus.subscribe("b", lambda p: None)
        bus.clear(subscribers=True)
        assert bus.subscriber_count() == 0


class TestFeatureSensingWorkflow:
    def test_clean_reading_near_truth(self, rng):
        workflow = FeatureSensingWorkflow(IPS(sigma_xy=0.001, sigma_theta=0.001))
        ctx = make_ctx([1.0, 2.0, 0.3], rng=rng)
        reading = workflow.produce(ctx)
        assert np.allclose(reading, [1.0, 2.0, 0.3], atol=0.01)

    def test_cyber_attack_applied(self, rng):
        schedule = AttackSchedule([sensor_bias("ips", offset=(0.5,), start=0.0, components=(0,))])
        workflow = FeatureSensingWorkflow(IPS(sigma_xy=1e-6, sigma_theta=1e-6))
        reading = workflow.produce(make_ctx([1.0, 2.0, 0.3], schedule=schedule, rng=rng))
        assert reading[0] == pytest.approx(1.5, abs=0.01)

    def test_physical_applied_before_cyber(self, rng):
        # Physical zeroing then cyber bias: order matters.
        physical = sensor_dos("ips", start=0.0)
        cyber = sensor_bias("ips", offset=(0.5, 0.5, 0.5), start=0.0)
        schedule = AttackSchedule([cyber, physical])
        workflow = FeatureSensingWorkflow(IPS(sigma_xy=1e-9, sigma_theta=1e-9))
        reading = workflow.produce(make_ctx([1.0, 2.0, 0.3], schedule=schedule, rng=rng))
        assert np.allclose(reading, [0.5, 0.5, 0.5], atol=1e-6)


class TestLidarRawWorkflow:
    def test_clean_features(self, world, rng):
        sensor = WallDistanceSensor(world, sigma_distance=1e-9, sigma_theta=1e-9)
        workflow = LidarRawWorkflow(sensor, RayCastLidar(world, n_beams=120, sigma_range=0.0))
        state = np.array([1.0, 0.8, 0.2])
        reading = workflow.produce(make_ctx(state, rng=rng))
        assert np.allclose(reading, sensor.h(state), atol=0.05)

    def test_dos_zeroes_scan_and_features(self, world, rng):
        sensor = WallDistanceSensor(world)
        workflow = LidarRawWorkflow(sensor, RayCastLidar(world, n_beams=60, sigma_range=0.0))
        schedule = AttackSchedule([sensor_dos("lidar", start=0.0)])
        reading = workflow.produce(make_ctx([1.5, 1.5, 0.0], schedule=schedule, rng=rng))
        assert np.allclose(reading[:3], 0.0)

    def test_component_attack_hits_features(self, world, rng):
        sensor = WallDistanceSensor(world, sigma_distance=1e-9, sigma_theta=1e-9)
        workflow = LidarRawWorkflow(sensor, RayCastLidar(world, n_beams=120, sigma_range=0.0))
        schedule = AttackSchedule(
            [
                sensor_bias(
                    "lidar",
                    offset=(-0.25,),
                    start=0.0,
                    components=(0,),
                    channel=AttackChannel.PHYSICAL,
                )
            ]
        )
        state = np.array([1.0, 0.8, 0.2])
        reading = workflow.produce(make_ctx(state, schedule=schedule, rng=rng))
        assert reading[0] == pytest.approx(sensor.h(state)[0] - 0.25, abs=0.05)

    def test_mismatched_extractor_rejected(self, world):
        from repro.sensors.lidar import ScanFeatureExtractor

        sensor = WallDistanceSensor(world)
        extractor = ScanFeatureExtractor(world, wall_names=("north",))
        with pytest.raises(ConfigurationError):
            LidarRawWorkflow(sensor, RayCastLidar(world), extractor)


class TestOdometryWorkflow:
    def test_integrates_executed_speeds(self, model, rng):
        workflow = OdometryWorkflow(OdometryPoseSensor(), model, tick_sigma=0.0)
        workflow.reset(np.zeros(3))
        pose = None
        for k in range(10):
            ctx = make_ctx(np.zeros(3), t=k * model.dt, control=[0.2, 0.2], rng=rng)
            pose = workflow.produce(ctx)
        assert pose[0] == pytest.approx(0.2 * model.dt * 10, abs=1e-9)
        assert pose[1] == pytest.approx(0.0)

    def test_reset_restores_initial_pose(self, model, rng):
        workflow = OdometryWorkflow(OdometryPoseSensor(), model, tick_sigma=0.0)
        workflow.reset(np.array([1.0, 1.0, 0.0]))
        workflow.produce(make_ctx(np.zeros(3), control=[0.5, 0.5], rng=rng))
        workflow.reset(np.array([1.0, 1.0, 0.0]))
        pose = workflow.produce(make_ctx(np.zeros(3), control=[0.0, 0.0], rng=rng))
        assert np.allclose(pose, [1.0, 1.0, 0.0])

    def test_turning_integration(self, model, rng):
        workflow = OdometryWorkflow(OdometryPoseSensor(), model, tick_sigma=0.0)
        workflow.reset(np.zeros(3))
        pose = workflow.produce(make_ctx(np.zeros(3), control=[-0.1, 0.1], rng=rng))
        expected_dtheta = 0.2 * model.dt / model.wheel_base
        assert pose[2] == pytest.approx(expected_dtheta)


class TestActuationWorkflow:
    def test_clean_execution_applies_hardware_limits(self, rng):
        workflow = ActuationWorkflow(WheelPairActuator(max_speed=0.5, speed_unit=0.0))
        out = workflow.execute(np.array([0.9, 0.1]), 0.0, rng, AttackSchedule())
        assert np.allclose(out, [0.5, 0.1])

    def test_cyber_attack_before_limits(self, rng):
        # A cyber offset that pushes past saturation is clipped by hardware.
        schedule = AttackSchedule([actuator_offset("wheels", (1.0, 0.0), start=0.0)])
        workflow = ActuationWorkflow(WheelPairActuator(max_speed=0.5, speed_unit=0.0))
        out = workflow.execute(np.array([0.1, 0.1]), 1.0, rng, schedule)
        assert out[0] == pytest.approx(0.5)

    def test_physical_jam_overrides_hardware(self, rng):
        schedule = AttackSchedule([wheel_jamming("wheels", 0, start=0.0)])
        workflow = ActuationWorkflow(WheelPairActuator())
        out = workflow.execute(np.array([0.2, 0.2]), 1.0, rng, schedule)
        assert out[0] == 0.0
        assert out[1] == pytest.approx(0.2, abs=1e-5)


def build_platform(world, model):
    ips = IPS()
    wheel_encoder = OdometryPoseSensor()
    lidar = WallDistanceSensor(world)
    suite = SensorSuite([ips, wheel_encoder, lidar])
    workflows = {
        "ips": FeatureSensingWorkflow(ips),
        "wheel_encoder": FeatureSensingWorkflow(wheel_encoder),
        "lidar": FeatureSensingWorkflow(lidar),
    }
    return RobotPlatform(
        model=model,
        suite=suite,
        workflows=workflows,
        actuation=ActuationWorkflow(WheelPairActuator(speed_unit=0.0)),
        process_noise=1e-8,
        initial_state=[1.0, 1.0, 0.0],
    )


class TestRobotPlatform:
    def test_step_advances_state(self, world, model, rng):
        platform = build_platform(world, model)
        step = platform.step(np.array([0.2, 0.2]), 0.0, rng, AttackSchedule())
        assert step.state[0] > 1.0
        assert step.stacked_reading.shape == (platform.suite.total_dim,)
        assert set(step.readings) == {"ips", "wheel_encoder", "lidar"}

    def test_reset(self, world, model, rng):
        platform = build_platform(world, model)
        platform.step(np.array([0.2, 0.2]), 0.0, rng, AttackSchedule())
        platform.reset()
        assert np.allclose(platform.state, [1.0, 1.0, 0.0])

    def test_sense_without_step(self, world, model, rng):
        platform = build_platform(world, model)
        readings, stacked, clean = platform.sense(0.0, rng, AttackSchedule())
        assert np.allclose(readings["ips"], [1.0, 1.0, 0.0], atol=0.02)

    def test_workflow_suite_mismatch_rejected(self, world, model):
        ips = IPS()
        suite = SensorSuite([ips])
        with pytest.raises(ConfigurationError):
            RobotPlatform(
                model=model,
                suite=suite,
                workflows={},
                actuation=ActuationWorkflow(WheelPairActuator()),
                process_noise=1e-8,
                initial_state=[0.0, 0.0, 0.0],
            )


class _StraightController:
    def __init__(self):
        self.calls = 0

    def command(self, pose, dt):
        self.calls += 1
        return np.array([0.2, 0.2])

    def reset(self):
        self.calls = 0


class TestClosedLoopSimulator:
    def test_run_records_trace(self, world, model, rng):
        platform = build_platform(world, model)
        sim = ClosedLoopSimulator(platform, _StraightController())
        trace = sim.run(20, rng)
        assert len(trace) == 20
        assert trace.times[0] == pytest.approx(model.dt)
        assert trace.times[-1] == pytest.approx(20 * model.dt)
        # Straight drive moves along +x.
        assert trace.true_states[-1][0] > 1.1

    def test_ground_truth_recorded(self, world, model, rng):
        platform = build_platform(world, model)
        schedule = AttackSchedule([sensor_dos("lidar", start=0.5)])
        sim = ClosedLoopSimulator(platform, _StraightController(), schedule=schedule)
        trace = sim.run(20, rng)
        idx = trace.first_index_at(0.5)
        assert trace.truth_sensors[idx] == frozenset({"lidar"})
        assert trace.truth_sensors[0] == frozenset()

    def test_actuator_truth_uses_command_time(self, world, model, rng):
        platform = build_platform(world, model)
        schedule = AttackSchedule([actuator_offset("wheels", (0.05, 0.0), start=0.5)])
        sim = ClosedLoopSimulator(platform, _StraightController(), schedule=schedule)
        trace = sim.run(20, rng)
        anomalies = trace.actual_actuator_anomaly()
        truth = np.array(trace.truth_actuator)
        assert np.allclose(anomalies[truth, 0], 0.05, atol=1e-5)
        assert np.allclose(anomalies[~truth, 0], 0.0, atol=1e-5)

    def test_stop_condition(self, world, model, rng):
        platform = build_platform(world, model)
        controller = _StraightController()
        sim = ClosedLoopSimulator(platform, controller)
        trace = sim.run(100, rng, stop_condition=lambda: controller.calls >= 5)
        assert len(trace) == 5

    def test_detector_hook_invoked(self, world, model, rng):
        platform = build_platform(world, model)

        class Recorder:
            def __init__(self):
                self.count = 0

            def step(self, u, z):
                self.count += 1
                return self.count

        recorder = Recorder()
        sim = ClosedLoopSimulator(platform, _StraightController(), detector=recorder)
        trace = sim.run(7, rng)
        assert recorder.count == 7
        assert trace.reports == [1, 2, 3, 4, 5, 6, 7]
        assert trace.has_reports

    def test_invalid_nav_sensor(self, world, model):
        platform = build_platform(world, model)
        with pytest.raises(ConfigurationError):
            ClosedLoopSimulator(platform, _StraightController(), nav_sensor="radar")

    def test_invalid_n_steps(self, world, model, rng):
        platform = build_platform(world, model)
        sim = ClosedLoopSimulator(platform, _StraightController())
        with pytest.raises(SimulationError):
            sim.run(0, rng)


class TestTrace:
    def test_first_index_beyond_end_raises(self):
        trace = SimulationTrace(dt=0.1, sensor_names=("a",))
        trace.append(0.1, np.zeros(3), np.zeros(2), np.zeros(2), np.zeros(3), np.zeros(3), frozenset(), False)
        with pytest.raises(SimulationError):
            trace.first_index_at(1.0)

    def test_arrays(self):
        trace = SimulationTrace(dt=0.1, sensor_names=("a",))
        for k in range(3):
            trace.append(
                0.1 * (k + 1),
                np.full(3, k),
                np.full(2, k),
                np.full(2, k + 0.5),
                np.zeros(3),
                np.zeros(3),
                frozenset(),
                False,
            )
        assert trace.states_array().shape == (3, 3)
        assert np.allclose(trace.actual_actuator_anomaly(), 0.5)
        assert trace.truth_condition(1) == (frozenset(), False)


class TestBusIntegration:
    def test_platform_publishes_traffic(self, world, model, rng):
        from repro.sim.bus import CommunicationBus

        bus = CommunicationBus()
        ips = IPS()
        wheel_encoder = OdometryPoseSensor()
        lidar = WallDistanceSensor(world)
        suite = SensorSuite([ips, wheel_encoder, lidar])
        platform = RobotPlatform(
            model=model,
            suite=suite,
            workflows={
                "ips": FeatureSensingWorkflow(ips),
                "wheel_encoder": FeatureSensingWorkflow(wheel_encoder),
                "lidar": FeatureSensingWorkflow(lidar),
            },
            actuation=ActuationWorkflow(WheelPairActuator(speed_unit=0.0)),
            process_noise=1e-8,
            initial_state=[1.0, 1.0, 0.0],
            bus=bus,
        )
        platform.step(np.array([0.2, 0.2]), 0.0, rng, AttackSchedule())
        platform.step(np.array([0.2, 0.2]), 0.05, rng, AttackSchedule())
        assert len(bus.history("sensors/ips")) == 2
        assert len(bus.history("actuators/wheels")) == 2
        packet = bus.history("sensors/ips")[-1]
        assert packet.payload.shape == (3,)
        assert packet.iteration == 2

    def test_bus_sees_corrupted_readings(self, world, model, rng):
        """The bus carries what the planner receives — corruption included."""
        from repro.sim.bus import CommunicationBus

        bus = CommunicationBus()
        ips = IPS(sigma_xy=1e-9, sigma_theta=1e-9)
        suite = SensorSuite([ips])
        platform = RobotPlatform(
            model=model,
            suite=suite,
            workflows={"ips": FeatureSensingWorkflow(ips)},
            actuation=ActuationWorkflow(WheelPairActuator(speed_unit=0.0)),
            process_noise=1e-12,
            initial_state=[1.0, 1.0, 0.0],
            bus=bus,
        )
        schedule = AttackSchedule([sensor_bias("ips", offset=(0.5,), start=0.0, components=(0,))])
        step = platform.step(np.array([0.0, 0.0]), 0.0, rng, schedule)
        packet = bus.history("sensors/ips")[-1]
        assert packet.payload[0] == pytest.approx(step.readings["ips"][0])
        assert packet.payload[0] == pytest.approx(1.5, abs=1e-4)

    def test_bus_reused_across_two_runs(self, world, model, rng):
        """One bus, two back-to-back platform runs, reset() between them.

        Without reset() the first run's subscriptions keep firing on the
        second run's traffic — the regression this test pins down.
        """
        from repro.sim.bus import CommunicationBus

        bus = CommunicationBus()

        def build_platform():
            ips = IPS()
            return RobotPlatform(
                model=model,
                suite=SensorSuite([ips]),
                workflows={"ips": FeatureSensingWorkflow(ips)},
                actuation=ActuationWorkflow(WheelPairActuator(speed_unit=0.0)),
                process_noise=1e-8,
                initial_state=[1.0, 1.0, 0.0],
                bus=bus,
            )

        first_run, second_run = [], []
        bus.subscribe("sensors/ips", first_run.append)
        build_platform().step(np.array([0.1, 0.1]), 0.0, rng, AttackSchedule())
        assert len(first_run) == 1 and len(bus.history()) > 0

        bus.reset()
        assert bus.history() == [] and bus.subscriber_count() == 0

        bus.subscribe("sensors/ips", second_run.append)
        platform2 = build_platform()
        platform2.step(np.array([0.1, 0.1]), 0.0, rng, AttackSchedule())
        platform2.step(np.array([0.1, 0.1]), 0.05, rng, AttackSchedule())
        assert len(second_run) == 2
        assert len(first_run) == 1  # stale subscriber stayed severed
        assert len(bus.history("sensors/ips")) == 2  # log holds run 2 only
