"""Tests for measurement models: pose sensors, GPS, magnetometer, suite."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DimensionError
from repro.linalg import numerical_jacobian
from repro.sensors.gps import GPS
from repro.sensors.magnetometer import Magnetometer
from repro.sensors.pose_sensors import IPS, InertialNavSensor, OdometryPoseSensor
from repro.sensors.suite import SensorGroup, SensorSuite


class TestPoseSensors:
    @pytest.mark.parametrize("cls", [IPS, OdometryPoseSensor, InertialNavSensor])
    def test_h_is_pose(self, cls):
        sensor = cls()
        state = np.array([1.0, 2.0, 0.5])
        assert np.allclose(sensor.h(state), state)

    @pytest.mark.parametrize("cls", [IPS, OdometryPoseSensor, InertialNavSensor])
    def test_jacobian_matches_numeric(self, cls):
        sensor = cls()
        state = np.array([1.0, 2.0, 0.5])
        assert np.allclose(sensor.jacobian(state), numerical_jacobian(sensor.h, state))

    def test_angular_component(self):
        sensor = IPS()
        assert sensor.angular_components == (2,)
        assert sensor.angular_mask.tolist() == [False, False, True]

    def test_residual_wraps_heading(self):
        sensor = IPS()
        state = np.array([0.0, 0.0, np.pi - 0.01])
        reading = np.array([0.0, 0.0, -np.pi + 0.01])
        residual = sensor.residual(reading, state)
        assert residual[2] == pytest.approx(0.02, abs=1e-9)

    def test_measure_noise_statistics(self, rng):
        sensor = IPS(sigma_xy=0.01, sigma_theta=0.02)
        state = np.array([1.0, 1.0, 0.3])
        readings = np.array([sensor.measure(state, rng) for _ in range(4000)])
        errors = readings - state
        assert np.allclose(errors.mean(axis=0), 0.0, atol=2e-3)
        assert np.allclose(errors.std(axis=0), [0.01, 0.01, 0.02], rtol=0.15)

    def test_pose_indices_for_bigger_state(self):
        sensor = IPS(state_dim=5, pose_indices=(0, 1, 4))
        state = np.array([1.0, 2.0, 9.0, 9.0, 0.7])
        assert np.allclose(sensor.h(state), [1.0, 2.0, 0.7])
        jac = sensor.jacobian(state)
        assert jac.shape == (3, 5)
        assert jac[2, 4] == 1.0

    def test_invalid_pose_indices(self):
        with pytest.raises(ConfigurationError):
            IPS(pose_indices=(0, 1))
        with pytest.raises(ConfigurationError):
            IPS(pose_indices=(0, 1, 7))


class TestGPS:
    def test_h_and_jacobian(self):
        gps = GPS()
        state = np.array([3.0, 4.0, 1.0])
        assert np.allclose(gps.h(state), [3.0, 4.0])
        assert np.allclose(gps.jacobian(state), [[1, 0, 0], [0, 1, 0]])

    def test_no_angular_components(self):
        assert GPS().angular_components == ()


class TestMagnetometer:
    def test_h_and_jacobian(self):
        mag = Magnetometer()
        state = np.array([1.0, 2.0, 0.4])
        assert np.allclose(mag.h(state), [0.4])
        assert np.allclose(mag.jacobian(state), [[0, 0, 1]])

    def test_angular(self):
        assert Magnetometer().angular_components == (0,)

    def test_invalid_heading_index(self):
        with pytest.raises(ConfigurationError):
            Magnetometer(heading_index=5)


class TestSensorSuite:
    @pytest.fixture
    def suite(self):
        return SensorSuite([IPS(), GPS(), Magnetometer()])

    def test_total_dim_and_names(self, suite):
        assert suite.total_dim == 6
        assert suite.names == ("ips", "gps", "magnetometer")
        assert len(suite) == 3

    def test_slices(self, suite):
        assert suite.slice_of("ips") == slice(0, 3)
        assert suite.slice_of("gps") == slice(3, 5)
        assert suite.slice_of("magnetometer") == slice(5, 6)

    def test_indices_in_suite_order(self, suite):
        idx = suite.indices_of(["magnetometer", "ips"])
        assert idx.tolist() == [0, 1, 2, 5]

    def test_unknown_sensor_rejected(self, suite):
        with pytest.raises(ConfigurationError):
            suite.indices_of(["radar"])
        with pytest.raises(ConfigurationError):
            suite.sensor("radar")

    def test_stacked_h(self, suite):
        state = np.array([1.0, 2.0, 0.3])
        z = suite.h(state)
        assert np.allclose(z, [1.0, 2.0, 0.3, 1.0, 2.0, 0.3])

    def test_subset_h_preserves_order(self, suite):
        state = np.array([1.0, 2.0, 0.3])
        z = suite.h(state, ["magnetometer", "gps"])
        # Suite order (gps before magnetometer) is preserved regardless of
        # the order names are listed in.
        assert np.allclose(z, [1.0, 2.0, 0.3])

    def test_covariance_block_diag(self, suite):
        cov = suite.covariance()
        assert cov.shape == (6, 6)
        assert np.allclose(cov, cov.T)
        assert np.allclose(cov[:3, 3:], 0.0)

    def test_angular_mask(self, suite):
        assert suite.angular_mask().tolist() == [False, False, True, False, False, True]

    def test_labels(self, suite):
        labels = suite.labels(["gps"])
        assert labels == ("gps.x", "gps.y")

    def test_split_stack_roundtrip(self, suite, rng):
        reading = rng.standard_normal(6)
        parts = suite.split(reading)
        assert set(parts) == {"ips", "gps", "magnetometer"}
        assert np.allclose(suite.stack(parts), reading)

    def test_split_rejects_bad_shape(self, suite):
        with pytest.raises(DimensionError):
            suite.split(np.zeros(5))

    def test_stack_rejects_missing(self, suite):
        with pytest.raises(ConfigurationError):
            suite.stack({"ips": np.zeros(3)})

    def test_measure_shape(self, suite, rng):
        z = suite.measure(np.array([0.0, 0.0, 0.0]), rng)
        assert z.shape == (6,)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            SensorSuite([IPS(), IPS()])

    def test_mismatched_state_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            SensorSuite([IPS(), GPS(state_dim=4)])

    def test_empty_suite_rejected(self):
        with pytest.raises(ConfigurationError):
            SensorSuite([])

    @given(st.lists(st.floats(-10, 10), min_size=6, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, values):
        suite = SensorSuite([IPS(), GPS(), Magnetometer()])
        reading = np.array(values)
        assert np.allclose(suite.stack(suite.split(reading)), reading)


class TestSensorGroup:
    def test_group_concatenates(self):
        group = SensorGroup("gps+mag", [GPS(), Magnetometer()])
        state = np.array([1.0, 2.0, 0.4])
        assert group.dim == 3
        assert np.allclose(group.h(state), [1.0, 2.0, 0.4])
        assert group.angular_components == (2,)
        assert np.allclose(group.jacobian(state), [[1, 0, 0], [0, 1, 0], [0, 0, 1]])

    def test_group_covariance_block_diag(self):
        gps = GPS(sigma_xy=0.5)
        mag = Magnetometer(sigma_theta=0.02)
        group = SensorGroup("g", [gps, mag])
        assert np.allclose(np.diag(group.covariance), [0.25, 0.25, 0.0004])

    def test_group_measure(self, rng):
        group = SensorGroup("g", [GPS(), Magnetometer()])
        assert group.measure(np.zeros(3), rng).shape == (3,)

    def test_group_needs_two_members(self):
        with pytest.raises(ConfigurationError):
            SensorGroup("solo", [GPS()])

    def test_group_rejects_mixed_state_dims(self):
        with pytest.raises(ConfigurationError):
            SensorGroup("bad", [GPS(), Magnetometer(state_dim=4)])

    def test_group_usable_in_suite(self):
        group = SensorGroup("gps+mag", [GPS(), Magnetometer()])
        suite = SensorSuite([IPS(), group])
        assert suite.total_dim == 6
        assert suite.slice_of("gps+mag") == slice(3, 6)
