"""Crash-recovery tests for the sharded multi-process fleet.

Golden parity under directed faults: a worker killed or hung mid-stream is
respawned by the supervisor and its sessions restored from spool + journal,
and the final per-session reports and snapshot bytes must be *bit-identical*
to an uninterrupted serial run. Randomized fault schedules live in
``tests/test_chaos.py`` (opt-in ``chaos`` marker); these tests pin each
mechanism deterministically — crash recovery, hang detection, restart-budget
retirement, deterministic session errors, and closure aggregation.
"""

import time

import numpy as np
import pytest

from repro.core.detector import RoboADS
from repro.dynamics.differential_drive import DifferentialDriveModel
from repro.errors import (
    ConfigurationError,
    FleetClosureError,
    ShardRecoveryError,
    ShardSessionError,
)
from repro.eval.session_replay import report_drift
from repro.sensors.lidar import WallDistanceSensor
from repro.sensors.pose_sensors import IPS, OdometryPoseSensor
from repro.sensors.suite import SensorSuite
from repro.serve import (
    DetectorSession,
    SessionMessage,
    ShardManager,
    SnapshotSpool,
    SupervisorConfig,
)
from repro.world.map import WorldMap

pytestmark = [pytest.mark.serve]

PROCESS = np.diag([0.0005**2, 0.0005**2, 0.0015**2])
WORLD = WorldMap.rectangle(3.0, 3.0)

#: Small timeouts so fault-recovery tests run in tens of milliseconds.
FAST = SupervisorConfig(heartbeat_interval=0.05, heartbeat_timeout=0.5)


def build_detector() -> RoboADS:
    suite = SensorSuite([IPS(), OdometryPoseSensor(), WallDistanceSensor(WORLD)])
    return RoboADS(
        DifferentialDriveModel(dt=0.05),
        suite,
        PROCESS,
        initial_state=np.array([1.5, 1.5, 0.0]),
        nominal_control=np.array([0.1, 0.12]),
    )


def mission_messages(n: int, seed: int = 5):
    model = DifferentialDriveModel(dt=0.05)
    suite = SensorSuite([IPS(), OdometryPoseSensor(), WallDistanceSensor(WORLD)])
    rng = np.random.default_rng(seed)
    x = np.array([1.5, 1.5, 0.0])
    q_sqrt = np.sqrt(np.diag(PROCESS))
    messages = []
    for k in range(n):
        u = np.array([0.1, 0.12]) + 0.05 * rng.standard_normal(2)
        x = model.normalize_state(model.f(x, u) + q_sqrt * rng.standard_normal(3))
        messages.append(
            SessionMessage(seq=k, t=k * model.dt, control=u, reading=suite.measure(x, rng))
        )
    return messages


def serial_reference(messages, robot_id="robot"):
    """Reports and end-of-run snapshot bytes from an uninterrupted session."""
    session = DetectorSession(build_detector(), robot_id=robot_id)
    reports = [r for m in messages if (r := session.process(m)) is not None]
    return reports, session.checkpoint().to_bytes()


def assert_parity(result, messages):
    ref_reports, ref_blob = serial_reference(messages, robot_id=result.robot_id)
    assert report_drift(result.reports, ref_reports, atol=0.0) == []
    assert result.final_snapshot == ref_blob
    assert result.messages_processed == len(messages)


class TestHealthyOperation:
    def test_undisturbed_fleet_matches_serial_reference(self, tmp_path):
        streams = {f"r{i}": mission_messages(25, seed=30 + i) for i in range(3)}
        spool = SnapshotSpool(tmp_path / "spool")
        with ShardManager(
            build_detector, workers=2, spool=spool, spool_every=8, supervisor=FAST
        ) as manager:
            for robot_id in streams:
                manager.open_session(robot_id)
            for j in range(25):
                for robot_id, messages in streams.items():
                    manager.submit(robot_id, messages[j])
            results = manager.close_all()
        for robot_id, messages in streams.items():
            assert_parity(results[robot_id], messages)
            assert results[robot_id].recoveries == 0

    def test_spool_retention_holds_during_a_run(self, tmp_path):
        spool = SnapshotSpool(tmp_path / "spool", keep=2)
        messages = mission_messages(30)
        with ShardManager(
            build_detector, workers=1, spool=spool, spool_every=5, supervisor=FAST
        ) as manager:
            manager.open_session("r1")
            for message in messages:
                manager.submit("r1", message)
            manager.close_all()
            generations = spool.generations("r1")
        assert 1 <= len(generations) <= 2  # retention pruned the rest
        assert generations[-1] >= 20

    def test_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ShardManager(build_detector, workers=0)
        with pytest.raises(ConfigurationError):
            ShardManager(build_detector, workers=1, spool_every=0)
        with pytest.raises(ConfigurationError):
            ShardManager(build_detector, workers=1, window=0)
        with pytest.raises(ConfigurationError):
            ShardManager(build_detector, workers=1, start_method="not-a-method")
        with ShardManager(build_detector, workers=1, supervisor=FAST) as manager:
            manager.open_session("r1")
            with pytest.raises(ConfigurationError):
                manager.open_session("r1")
            with pytest.raises(ConfigurationError):
                manager.submit("ghost", mission_messages(1)[0])


class TestCrashRecovery:
    def test_killed_worker_recovers_bit_identical(self, tmp_path):
        streams = {f"r{i}": mission_messages(30, seed=40 + i) for i in range(3)}
        spool = SnapshotSpool(tmp_path / "spool")
        with ShardManager(
            build_detector, workers=2, spool=spool, spool_every=8, supervisor=FAST
        ) as manager:
            for robot_id in streams:
                manager.open_session(robot_id)
            for j in range(30):
                for robot_id, messages in streams.items():
                    manager.submit(robot_id, messages[j])
                if j == 10:
                    manager.kill_worker(0)
                if j == 20:
                    manager.kill_worker(1)
            results = manager.close_all()
            events = manager.supervisor.events
        for robot_id, messages in streams.items():
            assert_parity(results[robot_id], messages)
        assert sum(result.recoveries for result in results.values()) >= 2
        assert sum(result.replayed for result in results.values()) > 0
        assert {event.reason for event in events} == {"crash"}
        assert all(event.recovered for event in events)
        assert manager.supervisor.crashes_survived == len(events)

    def test_without_spool_recovery_replays_full_history(self):
        messages = mission_messages(20)
        with ShardManager(build_detector, workers=1, spool=None, supervisor=FAST) as manager:
            manager.open_session("r1")
            for j, message in enumerate(messages):
                manager.submit("r1", message)
                if j == 14:
                    manager.kill_worker(0)
            result = manager.close_all()["r1"]
        assert_parity(result, messages)
        # No snapshots existed, so the journal held the whole prefix.
        assert result.replayed >= 15

    def test_hung_worker_is_reaped_at_the_heartbeat_timeout(self, tmp_path):
        messages = mission_messages(25)
        spool = SnapshotSpool(tmp_path / "spool")
        config = SupervisorConfig(heartbeat_interval=0.05, heartbeat_timeout=0.35)
        with ShardManager(
            build_detector, workers=1, spool=spool, spool_every=6, supervisor=config
        ) as manager:
            manager.open_session("r1")
            for j, message in enumerate(messages):
                manager.submit("r1", message)
                if j == 12:
                    manager.hang_worker(0)
            result = manager.close_all()["r1"]
            events = manager.supervisor.events
        assert_parity(result, messages)
        assert any(event.reason == "hang" for event in events)

    def test_slowed_worker_is_degraded_but_never_reaped(self):
        """Acks count as liveness: slow must not look like hung."""
        messages = mission_messages(12)
        with ShardManager(build_detector, workers=1, supervisor=FAST) as manager:
            manager.open_session("r1")
            manager.slow_worker(0, 0.01)
            for message in messages:
                manager.submit("r1", message)
            result = manager.close_all()["r1"]
        assert_parity(result, messages)
        assert manager.supervisor.events == []
        assert result.recoveries == 0

    def test_kill_during_close_still_yields_exact_results(self, tmp_path):
        messages = mission_messages(15)
        spool = SnapshotSpool(tmp_path / "spool")
        with ShardManager(
            build_detector, workers=1, spool=spool, spool_every=4, supervisor=FAST
        ) as manager:
            manager.open_session("r1")
            for message in messages:
                manager.submit("r1", message)
            manager.kill_worker(0)  # dies with the close about to be issued
            result = manager.close_all()["r1"]
        assert_parity(result, messages)
        assert result.recoveries >= 1


class TestFailurePaths:
    def test_session_error_is_typed_and_does_not_crash_loop(self):
        """A deterministic detector error must not trigger respawn-replay."""
        with ShardManager(build_detector, workers=1, supervisor=FAST) as manager:
            manager.open_session("bad")
            manager.open_session("good")
            poison = SessionMessage(seq=0, t=0.0, control=[0.1, 0.12], reading=[1.0])
            manager.submit("bad", poison)
            good_messages = mission_messages(10)
            for message in good_messages:
                manager.submit("good", message)
            with pytest.raises(FleetClosureError) as excinfo:
                manager.close_all()
            events = manager.supervisor.events
        error = excinfo.value
        assert isinstance(error.failures["bad"], ShardSessionError)
        assert "Worker traceback" in str(error.failures["bad"])
        assert_parity(error.results["good"], good_messages)
        assert events == []  # the worker survived its session's error

    def test_restart_budget_exhaustion_retires_the_slot(self):
        def pump_until(manager, predicate, timeout=10.0):
            deadline = time.monotonic() + timeout
            while not predicate():
                assert time.monotonic() < deadline, "condition never reached"
                manager.pump(0.05)

        config = SupervisorConfig(
            heartbeat_interval=0.05,
            heartbeat_timeout=0.5,
            backoff_base_s=0.0,
            backoff_cap_s=0.0,
            max_restarts=1,
        )
        messages = mission_messages(8)
        with ShardManager(build_detector, workers=1, supervisor=config) as manager:
            manager.open_session("r1")
            manager.submit("r1", messages[0])
            manager.kill_worker(0)
            pump_until(manager, lambda: manager.supervisor.crashes_survived == 1)
            manager.kill_worker(0)  # second death inside the reset window
            pump_until(manager, lambda: manager.handles[0].retired)
            with pytest.raises(ShardRecoveryError):
                manager.submit("r1", messages[1])
            with pytest.raises(FleetClosureError) as excinfo:
                manager.close_all()
            with pytest.raises(ConfigurationError):
                manager.open_session("r2")  # every slot retired: no capacity
        assert isinstance(excinfo.value.failures["r1"], ShardRecoveryError)
        final = [event for event in manager.supervisor.events if not event.recovered]
        assert len(final) == 1 and final[0].streak == 2
