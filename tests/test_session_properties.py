"""Hypothesis properties: checkpoint → pickle → restore is *exact*.

The example-based parity tests pin the golden missions; these properties pin
the mechanism over randomized detector states: arbitrary mission prefixes
with degraded availability masks (which exercise held modes and the partial
NUISE path), checkpoints landing mid c-of-w-window, differently sized mode
banks, and redelivered/stale message streams. In every case the round trip
through the pickled wire form must change *nothing* — report drift at
``atol=0.0`` and bit-identical end-of-run snapshot bytes — and malformed or
version-mismatched snapshots must raise the typed errors without perturbing
the resident session.
"""

import dataclasses
import itertools
import pickle
import tempfile
from collections import deque

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.detector import RoboADS
from repro.dynamics.differential_drive import DifferentialDriveModel
from repro.errors import (
    SnapshotCompatibilityError,
    SnapshotError,
    SnapshotVersionError,
)
from repro.eval.session_replay import report_drift
from repro.sensors.lidar import WallDistanceSensor
from repro.sensors.pose_sensors import IPS, OdometryPoseSensor
from repro.sensors.suite import SensorSuite
from repro.serve import (
    SNAPSHOT_VERSION,
    DetectorSession,
    SessionMessage,
    SessionSnapshot,
    SnapshotSpool,
)
from repro.world.map import WorldMap

pytestmark = [pytest.mark.serve]

PROCESS = np.diag([0.0005**2, 0.0005**2, 0.0015**2])
WORLD = WorldMap.rectangle(3.0, 3.0)

# Two rig shapes so the properties cover different mode-bank sizes: the full
# three-sensor bank and a two-sensor bank with one fewer reference mode.
SUITES = {
    "full": lambda: [IPS(), OdometryPoseSensor(), WallDistanceSensor(WORLD)],
    "dual": lambda: [IPS(), OdometryPoseSensor()],
}
SUITE_NAMES = {
    "full": ("ips", "wheel_encoder", "lidar"),
    "dual": ("ips", "wheel_encoder"),
}


def build_detector(suite_key: str = "full") -> RoboADS:
    return RoboADS(
        DifferentialDriveModel(dt=0.05),
        SensorSuite(SUITES[suite_key]()),
        PROCESS,
        initial_state=np.array([1.5, 1.5, 0.0]),
        nominal_control=np.array([0.1, 0.12]),
    )


def random_messages(suite_key, seed, masks):
    """A short randomized mission as a message stream, seq = step index."""
    model = DifferentialDriveModel(dt=0.05)
    suite = SensorSuite(SUITES[suite_key]())
    rng = np.random.default_rng(seed)
    x = np.array([1.5, 1.5, 0.0])
    q_sqrt = np.sqrt(np.diag(PROCESS))
    messages = []
    for k, mask in enumerate(masks):
        u = np.array([0.1, 0.12]) + 0.05 * rng.standard_normal(2)
        x = model.normalize_state(model.f(x, u) + q_sqrt * rng.standard_normal(3))
        z = suite.measure(x, rng)
        messages.append(
            SessionMessage(seq=k, t=k * model.dt, control=u, reading=z, available=mask)
        )
    return messages


def _mask_strategy(suite_key):
    names = SUITE_NAMES[suite_key]
    subsets = [
        combo
        for r in range(1, len(names) + 1)
        for combo in itertools.combinations(names, r)
    ]
    # None = nominal full delivery; a proper subset = a degraded iteration
    # (held modes for every reference sensor that went missing).
    return st.one_of(st.none(), st.sampled_from(subsets))


@st.composite
def streaming_cases(draw):
    """(suite_key, seed, masks, cut): a mission and a checkpoint position."""
    suite_key = draw(st.sampled_from(sorted(SUITES)))
    n = draw(st.integers(min_value=3, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    masks = draw(
        st.lists(_mask_strategy(suite_key), min_size=n, max_size=n)
    )
    cut = draw(st.integers(min_value=1, max_value=n - 1))
    return suite_key, seed, masks, cut


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=streaming_cases())
def test_checkpoint_pickle_restore_roundtrip_exact(case):
    """Interrupt anywhere, round-trip the wire form, migrate: zero drift.

    The cut position is unconstrained, so checkpoints routinely land mid
    c-of-w-window on both decision channels and between held-mode degraded
    iterations; the restored detector is freshly built (migration), and both
    the reports and the *end-of-run snapshot bytes* must match the
    uninterrupted session exactly.
    """
    suite_key, seed, masks, cut = case
    messages = random_messages(suite_key, seed, masks)

    reference = DetectorSession(build_detector(suite_key))
    ref_reports = [r for m in messages if (r := reference.process(m)) is not None]

    interrupted = DetectorSession(build_detector(suite_key))
    reports = [r for m in messages[:cut] if (r := interrupted.process(m)) is not None]
    blob = interrupted.checkpoint().to_bytes()
    migrated = DetectorSession.resume(
        build_detector(suite_key), SessionSnapshot.from_bytes(blob)
    )
    reports += [r for m in messages[cut:] if (r := migrated.process(m)) is not None]

    assert report_drift(reports, ref_reports, atol=0.0) == []
    assert migrated.checkpoint().to_bytes() == reference.checkpoint().to_bytes()


@st.composite
def redelivery_cases(draw):
    """A clean mission plus injected duplicate/stale redeliveries."""
    suite_key, seed, masks, _ = draw(streaming_cases())
    n = len(masks)
    n_inject = draw(st.integers(min_value=1, max_value=6))
    injections = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=n),  # insertion point
                st.integers(min_value=0, max_value=n - 1),  # redelivered step
            ),
            min_size=n_inject,
            max_size=n_inject,
        )
    )
    return suite_key, seed, masks, injections


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=redelivery_cases())
def test_stale_redelivery_never_perturbs_the_recursion(case):
    """Under ``drop_stale``, duplicated/late arrivals are exactly invisible.

    A dirty stream — the clean mission with messages redelivered at
    arbitrary later points — must leave the detector bit-identical to the
    clean stream, and the suppressions must be fully accounted for in the
    ingest counters.
    """
    suite_key, seed, masks, injections = case
    messages = random_messages(suite_key, seed, masks)

    dirty = list(messages)
    suppressed = 0
    for at, source in sorted(injections, reverse=True):
        # Re-insert an already-delivered message later in the stream; only
        # count it as suppressed when it lands at/after its clean position.
        if at > source:
            suppressed += 1
            dirty.insert(at, messages[source])

    clean_session = DetectorSession(build_detector(suite_key))
    clean = [r for m in messages if (r := clean_session.process(m)) is not None]
    dirty_session = DetectorSession(build_detector(suite_key))
    streamed = [r for m in dirty if (r := dirty_session.process(m)) is not None]

    assert report_drift(streamed, clean, atol=0.0) == []
    stats = dirty_session.ingest_stats
    assert stats.processed == len(messages)
    assert stats.duplicates + stats.dropped_stale == suppressed
    assert stats.received == stats.processed + suppressed
    assert pickle.dumps(dirty_session.detector.snapshot_state()) == pickle.dumps(
        clean_session.detector.snapshot_state()
    )


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    bad_version=st.integers().filter(lambda v: v != SNAPSHOT_VERSION),
    n_steps=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_version_mismatch_raises_typed_error_without_corruption(
    bad_version, n_steps, seed
):
    """A wrong-version snapshot fails loudly and changes nothing.

    Both the decode path (``from_bytes``) and the in-process restore raise
    :class:`SnapshotVersionError`, and afterwards the resident session's own
    checkpoint is byte-for-byte what it was before the failed restore.
    """
    session = DetectorSession(build_detector("dual"))
    for message in random_messages("dual", seed, [None] * n_steps):
        session.process(message)
    good = session.checkpoint()
    bad = dataclasses.replace(good, version=bad_version)

    with pytest.raises(SnapshotVersionError):
        SessionSnapshot.from_bytes(bad.to_bytes())
    with pytest.raises(SnapshotVersionError):
        session.restore(bad)
    assert session.checkpoint().to_bytes() == good.to_bytes()


@st.composite
def crash_cases(draw):
    """A mission, a crash position and a spool cadence."""
    suite_key, seed, masks, crash_at = draw(streaming_cases())
    spool_every = draw(st.integers(min_value=1, max_value=8))
    return suite_key, seed, masks, crash_at, spool_every


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=crash_cases())
def test_crash_anywhere_recovers_bit_identical_from_spool_plus_journal(case):
    """Spool + journal recovery is exact at every crash index and cadence.

    This is the recovery algebra :class:`repro.serve.shard.ShardManager`
    runs after a worker death, executed deterministically in-process: spool
    a snapshot every ``spool_every`` messages (pruning the journal up to the
    covered generation), crash at an arbitrary message index discarding all
    in-memory session state, restore from the latest spooled generation (a
    fresh session when none was spooled yet) and replay the journal, then
    finish the mission. The end-of-run snapshot bytes must equal the
    uninterrupted session's exactly, and the journal must have stayed
    bounded by the spool cadence.
    """
    suite_key, seed, masks, crash_at, spool_every = case
    messages = random_messages(suite_key, seed, masks)

    reference = DetectorSession(build_detector(suite_key))
    for message in messages:
        reference.process(message)

    with tempfile.TemporaryDirectory() as tmp:
        spool = SnapshotSpool(tmp)
        journal: deque = deque()
        doomed = DetectorSession(build_detector(suite_key))
        for idx, message in enumerate(messages[:crash_at]):
            journal.append((idx, message))
            doomed.process(message)
            if (idx + 1) % spool_every == 0:
                spool.put("r", idx, doomed.checkpoint().to_bytes())
                while journal and journal[0][0] <= idx:
                    journal.popleft()
        del doomed  # the crash: every in-memory session byte is gone

        latest = spool.latest("r")
        if latest is None:
            assert len(journal) == crash_at  # nothing spooled: full replay
            recovered = DetectorSession(build_detector(suite_key))
        else:
            generation, blob = latest
            assert len(journal) < spool_every  # the bounded-journal claim
            assert all(idx > generation for idx, _ in journal)
            recovered = DetectorSession.resume(
                build_detector(suite_key), SessionSnapshot.from_bytes(blob)
            )
        for _, message in journal:
            recovered.process(message)
        for message in messages[crash_at:]:
            recovered.process(message)

        assert (
            recovered.checkpoint().to_bytes() == reference.checkpoint().to_bytes()
        )


class TestSnapshotRejection:
    """Malformed snapshots raise typed errors; the session survives intact."""

    def test_garbage_bytes_raise_snapshot_error(self):
        with pytest.raises(SnapshotError):
            SessionSnapshot.from_bytes(b"\x00not a pickle")

    def test_wrong_object_raises_snapshot_error(self):
        blob = pickle.dumps({"version": SNAPSHOT_VERSION})
        with pytest.raises(SnapshotError):
            SessionSnapshot.from_bytes(blob)

    def test_version_error_is_a_snapshot_error(self):
        assert issubclass(SnapshotVersionError, SnapshotError)

    def test_mismatched_rig_rolls_back_cleanly(self):
        """Restoring a foreign rig's snapshot fails typed and atomically.

        The three-sensor snapshot names modes the two-sensor detector does
        not have; the restore must raise
        :class:`SnapshotCompatibilityError` and leave the resident session
        exactly where it was (all-or-nothing restore).
        """
        foreign = DetectorSession(build_detector("full"))
        for message in random_messages("full", 7, [None] * 5):
            foreign.process(message)
        session = DetectorSession(build_detector("dual"))
        for message in random_messages("dual", 11, [None] * 5):
            session.process(message)
        before = session.checkpoint().to_bytes()

        with pytest.raises(SnapshotCompatibilityError):
            session.restore(foreign.checkpoint())
        assert session.checkpoint().to_bytes() == before
