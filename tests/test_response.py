"""Tests for the response module (navigation failover)."""

import numpy as np
import pytest

from repro.core.decision import DecisionOutcome
from repro.core.detector import DetectionReport
from repro.core.report import IterationStatistics
from repro.core.response import NavigationFailover
from repro.errors import ConfigurationError


def make_report(iteration=1, flagged=(), actuator=False, state=(0.0, 0.0, 0.0)):
    stats = IterationStatistics(
        iteration=iteration,
        selected_mode="ref:x",
        mode_probabilities={"ref:x": 1.0},
        state_estimate=np.asarray(state, dtype=float),
        sensor_statistic=0.0,
        sensor_dof=3,
        actuator_statistic=0.0,
        actuator_dof=2,
        sensor_stats={},
        actuator_estimate=np.zeros(2),
        actuator_covariance=np.eye(2),
    )
    outcome = DecisionOutcome(
        sensor_positive=bool(flagged),
        actuator_positive=actuator,
        sensor_alarm=bool(flagged),
        flagged_sensors=frozenset(flagged),
        actuator_alarm=actuator,
    )
    return DetectionReport(iteration=iteration, time=iteration * 0.05, statistics=stats, outcome=outcome)


class TestNavigationFailover:
    def test_prefers_first_sensor_when_clean(self):
        responder = NavigationFailover(("ips", "wheel_encoder"))
        assert responder.update(make_report()) == "ips"
        assert responder.events == []

    def test_fails_over_on_flag(self):
        responder = NavigationFailover(("ips", "wheel_encoder"))
        responder.update(make_report(1))
        source = responder.update(make_report(2, flagged=("ips",)))
        assert source == "wheel_encoder"
        assert len(responder.events) == 1
        assert responder.events[0].source == "wheel_encoder"

    def test_recovery_requires_streak(self):
        responder = NavigationFailover(("ips", "wheel_encoder"), recovery_streak=3)
        responder.update(make_report(1, flagged=("ips",)))
        assert responder.current_source == "wheel_encoder"
        # One clean report is not enough to switch back...
        responder.update(make_report(2))
        assert responder.current_source == "wheel_encoder"
        responder.update(make_report(3))
        assert responder.current_source == "wheel_encoder"
        # ...the third consecutive clean one is.
        responder.update(make_report(4))
        assert responder.current_source == "ips"

    def test_flicker_does_not_thrash(self):
        responder = NavigationFailover(("ips", "wheel_encoder"), recovery_streak=5)
        responder.update(make_report(1, flagged=("ips",)))
        for k in range(2, 6):
            flagged = ("ips",) if k % 2 == 0 else ()
            responder.update(make_report(k, flagged=flagged))
        assert responder.current_source == "wheel_encoder"
        assert len(responder.events) == 1

    def test_all_flagged_falls_back_to_estimate(self):
        responder = NavigationFailover(("ips", "wheel_encoder"))
        source = responder.update(make_report(1, flagged=("ips", "wheel_encoder")))
        assert source == NavigationFailover.ESTIMATE

    def test_estimate_disallowed_keeps_current(self):
        responder = NavigationFailover(("ips",), allow_estimate=False)
        source = responder.update(make_report(1, flagged=("ips",)))
        assert source == "ips"

    def test_navigation_pose_sources(self):
        responder = NavigationFailover(("ips", "wheel_encoder"))
        readings = {
            "ips": np.array([1.0, 2.0, 0.1]),
            "wheel_encoder": np.array([5.0, 6.0, 0.2]),
        }
        pose = responder.navigation_pose(readings, make_report(1))
        assert np.allclose(pose, [1.0, 2.0, 0.1])
        pose = responder.navigation_pose(readings, make_report(2, flagged=("ips",)))
        assert np.allclose(pose, [5.0, 6.0, 0.2])

    def test_navigation_pose_estimate(self):
        responder = NavigationFailover(("ips",))
        readings = {"ips": np.array([1.0, 2.0, 0.1])}
        report = make_report(1, flagged=("ips",), state=(9.0, 9.0, 0.5))
        pose = responder.navigation_pose(readings, report)
        assert np.allclose(pose, [9.0, 9.0, 0.5])

    def test_reset(self):
        responder = NavigationFailover(("ips", "wheel_encoder"))
        responder.update(make_report(1, flagged=("ips",)))
        responder.reset()
        assert responder.current_source == "ips"
        assert responder.events == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NavigationFailover(())
        with pytest.raises(ConfigurationError):
            NavigationFailover(("ips",), recovery_streak=0)


@pytest.mark.slow
class TestResponseExperiment:
    def test_mission_saved(self):
        from repro.experiments.response import run_response

        result = run_response(seed=800)
        assert result.mission_saved
        assert result.failover_events
        assert result.failover_events[0].source == "wheel_encoder"
        assert "failover" in result.format()
