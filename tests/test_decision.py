"""Tests for the Chi-square decision maker and sliding windows."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chi2 import anomaly_statistic, chi_square_threshold
from repro.core.decision import DecisionConfig, DecisionMaker, SlidingWindow
from repro.core.report import IterationStatistics, SensorStatistic
from repro.errors import ConfigurationError


class TestChi2:
    def test_threshold_monotone_in_alpha(self):
        assert chi_square_threshold(0.005, 3) > chi_square_threshold(0.05, 3)

    def test_threshold_monotone_in_dof(self):
        assert chi_square_threshold(0.05, 5) > chi_square_threshold(0.05, 2)

    def test_known_value(self):
        # chi2(0.95, dof=2) = 5.991
        assert chi_square_threshold(0.05, 2) == pytest.approx(5.991, abs=0.01)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            chi_square_threshold(0.0, 3)
        with pytest.raises(ConfigurationError):
            chi_square_threshold(0.05, 0)

    def test_anomaly_statistic(self):
        stat, dof = anomaly_statistic(np.array([2.0, 0.0]), np.diag([4.0, 1.0]))
        assert stat == pytest.approx(1.0)
        assert dof == 2

    def test_anomaly_statistic_singular(self):
        stat, dof = anomaly_statistic(np.array([1.0, 1.0]), np.diag([1.0, 0.0]))
        assert dof == 1
        assert stat == pytest.approx(1.0)

    def test_anomaly_statistic_empty(self):
        stat, dof = anomaly_statistic(np.zeros(0), np.zeros((0, 0)))
        assert (stat, dof) == (0.0, 0)


class TestSlidingWindow:
    def test_basic_c_of_w(self):
        window = SlidingWindow(3, 2)
        assert not window.push(True)
        assert window.push(True)
        assert window.push(False)  # two of last three still true
        assert not window.push(False)

    def test_w1_c1_immediate(self):
        window = SlidingWindow(1, 1)
        assert window.push(True)
        assert not window.push(False)

    def test_reset(self):
        window = SlidingWindow(2, 2)
        window.push(True)
        window.reset()
        assert not window.push(True)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlidingWindow(0, 1)
        with pytest.raises(ConfigurationError):
            SlidingWindow(2, 3)
        with pytest.raises(ConfigurationError):
            SlidingWindow(2, 0)

    @given(st.integers(1, 8), st.lists(st.booleans(), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_matches_reference_semantics(self, window_size, pushes):
        criteria = max(1, window_size // 2)
        window = SlidingWindow(window_size, criteria)
        history = []
        for value in pushes:
            history.append(value)
            met = window.push(value)
            expected = sum(history[-window_size:]) >= criteria
            assert met == expected


def make_stats(
    sensor_stat=0.0,
    per_sensor=None,
    actuator_stat=0.0,
    iteration=1,
    sensor_dof=3,
    actuator_dof=2,
):
    per_sensor = per_sensor or {}
    sensor_stats = {
        name: SensorStatistic(
            name=name,
            estimate=np.zeros(3),
            covariance=np.eye(3),
            statistic=value,
            dof=3,
        )
        for name, value in per_sensor.items()
    }
    return IterationStatistics(
        iteration=iteration,
        selected_mode="ref:x",
        mode_probabilities={"ref:x": 1.0},
        state_estimate=np.zeros(3),
        sensor_statistic=sensor_stat,
        sensor_dof=sensor_dof,
        actuator_statistic=actuator_stat,
        actuator_dof=actuator_dof,
        sensor_stats=sensor_stats,
        actuator_estimate=np.zeros(2),
        actuator_covariance=np.eye(2),
    )


class TestDecisionConfig:
    def test_defaults_match_paper(self):
        config = DecisionConfig()
        assert config.sensor_alpha == 0.005
        assert (config.sensor_criteria, config.sensor_window) == (2, 2)
        assert config.actuator_alpha == 0.05
        assert (config.actuator_criteria, config.actuator_window) == (3, 6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DecisionConfig(sensor_alpha=1.5)
        with pytest.raises(ConfigurationError):
            DecisionConfig(sensor_criteria=3, sensor_window=2)
        with pytest.raises(ConfigurationError):
            DecisionConfig(actuator_criteria=0)


class TestDecisionMaker:
    def test_no_alarm_below_threshold(self):
        maker = DecisionMaker()
        outcome = maker.step(make_stats(sensor_stat=1.0, per_sensor={"a": 1.0}))
        assert not outcome.sensor_alarm
        assert outcome.flagged_sensors == frozenset()
        assert not outcome.actuator_alarm

    def test_sensor_alarm_after_window(self):
        maker = DecisionMaker(DecisionConfig(sensor_window=2, sensor_criteria=2))
        high = make_stats(sensor_stat=100.0, per_sensor={"a": 100.0, "b": 1.0})
        first = maker.step(high)
        second = maker.step(high)
        assert not first.sensor_alarm
        assert second.sensor_alarm
        assert second.flagged_sensors == frozenset({"a"})

    def test_actuator_alarm_c_of_w(self):
        maker = DecisionMaker(DecisionConfig(actuator_window=6, actuator_criteria=3))
        high = make_stats(actuator_stat=100.0)
        low = make_stats(actuator_stat=0.1)
        outcomes = [maker.step(s) for s in (high, low, high, high)]
        assert not outcomes[2].actuator_alarm
        assert outcomes[3].actuator_alarm  # 3 positives within last 6

    def test_reference_sensor_window_decays(self):
        maker = DecisionMaker(DecisionConfig(sensor_window=2, sensor_criteria=1))
        high = make_stats(sensor_stat=100.0, per_sensor={"a": 100.0})
        maker.step(high)
        # Sensor "a" becomes the reference (absent from stats) for two
        # iterations: its window must decay and stop being flagged.
        absent = make_stats(sensor_stat=100.0, per_sensor={"b": 100.0})
        maker.step(absent)
        outcome = maker.step(absent)
        assert "a" not in outcome.flagged_sensors
        assert "b" in outcome.flagged_sensors

    def test_zero_dof_is_negative(self):
        maker = DecisionMaker(DecisionConfig(sensor_window=1, sensor_criteria=1,
                                             actuator_window=1, actuator_criteria=1))
        stats = make_stats(sensor_stat=100.0, sensor_dof=0, actuator_stat=100.0, actuator_dof=0)
        outcome = maker.step(stats)
        assert not outcome.sensor_positive
        assert not outcome.actuator_positive

    def test_alarm_requires_confirmed_sensor(self):
        # Aggregate fires but no individual sensor confirms: no sensor alarm.
        maker = DecisionMaker(DecisionConfig(sensor_window=1, sensor_criteria=1))
        stats = make_stats(sensor_stat=100.0, per_sensor={"a": 0.1, "b": 0.1})
        outcome = maker.step(stats)
        assert outcome.sensor_positive
        assert not outcome.sensor_alarm
        assert outcome.flagged_sensors == frozenset()

    def test_reset(self):
        maker = DecisionMaker(DecisionConfig(sensor_window=2, sensor_criteria=2))
        high = make_stats(sensor_stat=100.0, per_sensor={"a": 100.0})
        maker.step(high)
        maker.reset()
        outcome = maker.step(high)
        assert not outcome.sensor_alarm
