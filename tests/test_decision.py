"""Tests for the Chi-square decision maker and sliding windows."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chi2 import anomaly_statistic, chi_square_threshold
from repro.core.decision import DecisionConfig, DecisionMaker, SlidingWindow
from repro.core.report import IterationStatistics, SensorStatistic
from repro.errors import ConfigurationError


class TestChi2:
    def test_threshold_monotone_in_alpha(self):
        assert chi_square_threshold(0.005, 3) > chi_square_threshold(0.05, 3)

    def test_threshold_monotone_in_dof(self):
        assert chi_square_threshold(0.05, 5) > chi_square_threshold(0.05, 2)

    def test_known_value(self):
        # chi2(0.95, dof=2) = 5.991
        assert chi_square_threshold(0.05, 2) == pytest.approx(5.991, abs=0.01)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            chi_square_threshold(0.0, 3)
        with pytest.raises(ConfigurationError):
            chi_square_threshold(0.05, 0)

    def test_anomaly_statistic(self):
        stat, dof = anomaly_statistic(np.array([2.0, 0.0]), np.diag([4.0, 1.0]))
        assert stat == pytest.approx(1.0)
        assert dof == 2

    def test_anomaly_statistic_singular(self):
        stat, dof = anomaly_statistic(np.array([1.0, 1.0]), np.diag([1.0, 0.0]))
        assert dof == 1
        assert stat == pytest.approx(1.0)

    def test_anomaly_statistic_empty(self):
        stat, dof = anomaly_statistic(np.zeros(0), np.zeros((0, 0)))
        assert (stat, dof) == (0.0, 0)


class TestSlidingWindow:
    def test_basic_c_of_w(self):
        window = SlidingWindow(3, 2)
        assert not window.push(True)
        assert window.push(True)
        assert window.push(False)  # two of last three still true
        assert not window.push(False)

    def test_w1_c1_immediate(self):
        window = SlidingWindow(1, 1)
        assert window.push(True)
        assert not window.push(False)

    def test_reset(self):
        window = SlidingWindow(2, 2)
        window.push(True)
        window.reset()
        assert not window.push(True)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlidingWindow(0, 1)
        with pytest.raises(ConfigurationError):
            SlidingWindow(2, 3)
        with pytest.raises(ConfigurationError):
            SlidingWindow(2, 0)

    @given(st.integers(1, 8), st.lists(st.booleans(), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_matches_reference_semantics(self, window_size, pushes):
        criteria = max(1, window_size // 2)
        window = SlidingWindow(window_size, criteria)
        history = []
        for value in pushes:
            history.append(value)
            met = window.push(value)
            expected = sum(history[-window_size:]) >= criteria
            assert met == expected

    def test_met_reads_without_pushing(self):
        window = SlidingWindow(3, 2)
        window.push(True)
        window.push(True)
        assert window.met
        assert window.met  # repeated reads don't age the buffer
        assert window.push(False)  # the two positives are still in-window

    def test_confirmation_before_buffer_fills(self):
        # c positives confirm even when fewer than w values were ever pushed.
        window = SlidingWindow(6, 3)
        assert not window.push(True)
        assert not window.push(True)
        assert window.push(True)

    def test_exact_boundary(self):
        # Exactly c positives in the last w: met. One falls out: not met.
        window = SlidingWindow(4, 2)
        window.push(True)
        window.push(False)
        window.push(False)
        assert window.push(True)  # positives at offsets 0 and 3: exactly c=2
        assert not window.push(False)  # oldest positive ages out: 1 < c


def make_stats(
    sensor_stat=0.0,
    per_sensor=None,
    actuator_stat=0.0,
    iteration=1,
    sensor_dof=3,
    actuator_dof=2,
    degraded=False,
    available_sensors=None,
):
    per_sensor = per_sensor or {}
    sensor_stats = {
        name: SensorStatistic(
            name=name,
            estimate=np.zeros(3),
            covariance=np.eye(3),
            statistic=value,
            dof=3,
        )
        for name, value in per_sensor.items()
    }
    return IterationStatistics(
        iteration=iteration,
        selected_mode="ref:x",
        mode_probabilities={"ref:x": 1.0},
        state_estimate=np.zeros(3),
        sensor_statistic=sensor_stat,
        sensor_dof=sensor_dof,
        actuator_statistic=actuator_stat,
        actuator_dof=actuator_dof,
        sensor_stats=sensor_stats,
        actuator_estimate=np.zeros(2),
        actuator_covariance=np.eye(2),
        available_sensors=available_sensors,
        degraded=degraded,
    )


class TestDecisionConfig:
    def test_defaults_match_paper(self):
        config = DecisionConfig()
        assert config.sensor_alpha == 0.005
        assert (config.sensor_criteria, config.sensor_window) == (2, 2)
        assert config.actuator_alpha == 0.05
        assert (config.actuator_criteria, config.actuator_window) == (3, 6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DecisionConfig(sensor_alpha=1.5)
        with pytest.raises(ConfigurationError):
            DecisionConfig(sensor_criteria=3, sensor_window=2)
        with pytest.raises(ConfigurationError):
            DecisionConfig(actuator_criteria=0)


class TestDecisionMaker:
    def test_no_alarm_below_threshold(self):
        maker = DecisionMaker()
        outcome = maker.step(make_stats(sensor_stat=1.0, per_sensor={"a": 1.0}))
        assert not outcome.sensor_alarm
        assert outcome.flagged_sensors == frozenset()
        assert not outcome.actuator_alarm

    def test_sensor_alarm_after_window(self):
        maker = DecisionMaker(DecisionConfig(sensor_window=2, sensor_criteria=2))
        high = make_stats(sensor_stat=100.0, per_sensor={"a": 100.0, "b": 1.0})
        first = maker.step(high)
        second = maker.step(high)
        assert not first.sensor_alarm
        assert second.sensor_alarm
        assert second.flagged_sensors == frozenset({"a"})

    def test_actuator_alarm_c_of_w(self):
        maker = DecisionMaker(DecisionConfig(actuator_window=6, actuator_criteria=3))
        high = make_stats(actuator_stat=100.0)
        low = make_stats(actuator_stat=0.1)
        outcomes = [maker.step(s) for s in (high, low, high, high)]
        assert not outcomes[2].actuator_alarm
        assert outcomes[3].actuator_alarm  # 3 positives within last 6

    def test_reference_sensor_window_decays(self):
        maker = DecisionMaker(DecisionConfig(sensor_window=2, sensor_criteria=1))
        high = make_stats(sensor_stat=100.0, per_sensor={"a": 100.0})
        maker.step(high)
        # Sensor "a" becomes the reference (absent from stats) for two
        # iterations: its window must decay and stop being flagged.
        absent = make_stats(sensor_stat=100.0, per_sensor={"b": 100.0})
        maker.step(absent)
        outcome = maker.step(absent)
        assert "a" not in outcome.flagged_sensors
        assert "b" in outcome.flagged_sensors

    def test_zero_dof_is_negative(self):
        maker = DecisionMaker(DecisionConfig(sensor_window=1, sensor_criteria=1,
                                             actuator_window=1, actuator_criteria=1))
        stats = make_stats(sensor_stat=100.0, sensor_dof=0, actuator_stat=100.0, actuator_dof=0)
        outcome = maker.step(stats)
        assert not outcome.sensor_positive
        assert not outcome.actuator_positive

    def test_alarm_requires_confirmed_sensor(self):
        # Aggregate fires but no individual sensor confirms: no sensor alarm.
        maker = DecisionMaker(DecisionConfig(sensor_window=1, sensor_criteria=1))
        stats = make_stats(sensor_stat=100.0, per_sensor={"a": 0.1, "b": 0.1})
        outcome = maker.step(stats)
        assert outcome.sensor_positive
        assert not outcome.sensor_alarm
        assert outcome.flagged_sensors == frozenset()

    def test_reset(self):
        maker = DecisionMaker(DecisionConfig(sensor_window=2, sensor_criteria=2))
        high = make_stats(sensor_stat=100.0, per_sensor={"a": 100.0})
        maker.step(high)
        maker.reset()
        outcome = maker.step(high)
        assert not outcome.sensor_alarm

    def test_alarm_at_exact_c_of_w_boundary(self):
        # 3-of-6: positives at steps 1, 3, 6 — the third lands exactly at the
        # window edge and must still confirm; step 7 (low) drops it to 2-of-6.
        maker = DecisionMaker(DecisionConfig(actuator_window=6, actuator_criteria=3))
        high = make_stats(actuator_stat=100.0)
        low = make_stats(actuator_stat=0.1)
        sequence = [high, low, high, low, low, high, low]
        outcomes = [maker.step(s) for s in sequence]
        assert [o.actuator_alarm for o in outcomes] == [
            False, False, False, False, False, True, False,
        ]

    def test_recovery_after_attack_stops(self):
        # Alarms confirm during the attack and clear once the positives age
        # out of every window — no latching.
        maker = DecisionMaker(DecisionConfig(sensor_window=2, sensor_criteria=2,
                                             actuator_window=6, actuator_criteria=3))
        high = make_stats(sensor_stat=100.0, per_sensor={"a": 100.0},
                          actuator_stat=100.0)
        low = make_stats(sensor_stat=0.1, per_sensor={"a": 0.1}, actuator_stat=0.1)
        for _ in range(4):
            outcome = maker.step(high)
        assert outcome.sensor_alarm and outcome.actuator_alarm
        recovered = [maker.step(low) for _ in range(6)]
        assert not recovered[0].sensor_alarm  # 2-of-2 clears on first low step
        assert recovered[2].actuator_alarm  # 3 highs still inside 6-window
        assert not recovered[3].actuator_alarm  # ...until they age out
        assert all(not o.sensor_alarm for o in recovered)
        assert recovered[-1].flagged_sensors == frozenset()


class TestDecisionMakerDegraded:
    def test_missing_sensor_window_held_not_decayed(self):
        # Sensor "a" confirms once, then goes unavailable (degraded) for two
        # steps: its window is held, so one more positive re-confirms.
        maker = DecisionMaker(DecisionConfig(sensor_window=2, sensor_criteria=2))
        high = make_stats(sensor_stat=100.0, per_sensor={"a": 100.0, "b": 0.1})
        maker.step(high)
        absent = make_stats(sensor_stat=100.0, per_sensor={"b": 0.1},
                            degraded=True, available_sensors=("b",))
        maker.step(absent)
        maker.step(absent)
        outcome = maker.step(high)
        assert "a" in outcome.flagged_sensors

    def test_reference_rotation_still_decays_when_not_degraded(self):
        # Same absence pattern without the degraded flag is a reference
        # rotation: the window must decay (paper semantics, unchanged).
        maker = DecisionMaker(DecisionConfig(sensor_window=2, sensor_criteria=2))
        high = make_stats(sensor_stat=100.0, per_sensor={"a": 100.0, "b": 0.1})
        maker.step(high)
        rotated = make_stats(sensor_stat=100.0, per_sensor={"b": 0.1})
        maker.step(rotated)
        maker.step(rotated)
        outcome = maker.step(high)
        assert "a" not in outcome.flagged_sensors

    def test_degraded_zero_dof_holds_aggregate_windows(self):
        # Total blackout (dof 0, degraded): aggregate windows hold instead of
        # pushing negatives, so a prior near-confirmation survives the gap.
        maker = DecisionMaker(DecisionConfig(actuator_window=6, actuator_criteria=3))
        high = make_stats(actuator_stat=100.0)
        blackout = make_stats(actuator_stat=0.0, sensor_dof=0, actuator_dof=0,
                              degraded=True, available_sensors=())
        maker.step(high)
        maker.step(high)
        for _ in range(5):
            outcome = maker.step(blackout)
            assert not outcome.actuator_alarm  # a hold never raises an alarm
        outcome = maker.step(high)
        assert outcome.actuator_alarm  # third positive joins the held two

    def test_nominal_zero_dof_still_pushes_negative(self):
        # Without the degraded flag, dof 0 keeps the paper's behavior: a
        # negative is pushed and the earlier positives age out.
        maker = DecisionMaker(DecisionConfig(actuator_window=3, actuator_criteria=3))
        high = make_stats(actuator_stat=100.0)
        zero = make_stats(actuator_stat=0.0, actuator_dof=0)
        maker.step(high)
        maker.step(high)
        maker.step(zero)
        outcome = maker.step(high)
        assert not outcome.actuator_alarm  # 2 highs + 1 pushed negative
