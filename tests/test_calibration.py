"""Tests for the measurement-noise calibration helper."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sensors.calibration import (
    CalibrationResult,
    calibrate_covariance,
    calibration_consistency,
)
from repro.sensors.lidar import RayCastLidar, ScanFeatureExtractor, WallDistanceSensor
from repro.sensors.pose_sensors import IPS
from repro.world.presets import paper_arena


class TestCalibrateCovariance:
    def test_recovers_known_sigma(self, rng):
        sensor = IPS(sigma_xy=0.004, sigma_theta=0.01)
        states = [np.array([1.0, 1.0, 0.2])] * 3000
        result = calibrate_covariance(
            sensor, lambda state, gen: sensor.measure(state, gen), states, rng
        )
        assert np.allclose(result.bias, 0.0, atol=5e-4)
        assert np.allclose(result.sigmas, [0.004, 0.004, 0.01], rtol=0.15)
        assert "sigma" in result.summary()

    def test_wraps_angular_errors(self, rng):
        sensor = IPS(sigma_xy=1e-6, sigma_theta=1e-6)
        # True heading near +pi; readings wrap to near -pi: without wrapping
        # the calibration would report a ~2*pi bias.
        states = [np.array([0.0, 0.0, np.pi - 1e-4])] * 10

        def produce(state, gen):
            reading = sensor.measure(state, gen)
            reading[2] = reading[2] - 2.0 * np.pi
            return reading

        result = calibrate_covariance(sensor, produce, states, rng)
        assert abs(result.bias[2]) < 0.01

    def test_requires_samples(self, rng):
        sensor = IPS()
        with pytest.raises(ConfigurationError):
            calibrate_covariance(sensor, lambda s, g: sensor.measure(s, g), [np.zeros(3)], rng)

    def test_consistency_ratio(self, rng):
        sensor = IPS(sigma_xy=0.01, sigma_theta=0.01)
        states = [np.array([1.0, 1.0, 0.2])] * 2000
        result = calibrate_covariance(
            sensor, lambda state, gen: sensor.measure(state, gen), states, rng
        )
        good = calibration_consistency(result, sensor.covariance)
        assert 0.5 < good < 2.0
        optimistic = calibration_consistency(result, sensor.covariance / 100.0)
        assert optimistic > 50.0


class TestLidarPipelineCalibration:
    def test_raw_pipeline_within_assumed_covariance(self, rng):
        """The raw-mode rig's assumed LiDAR R must cover the pipeline noise."""
        world = paper_arena()
        assumed = WallDistanceSensor(world, sigma_distance=0.007, sigma_theta=0.015)
        raycaster = RayCastLidar(world)
        extractor = ScanFeatureExtractor(world)

        def produce(state, gen):
            scan = raycaster.scan(state, gen)
            return extractor.extract(scan, state + gen.normal(0.0, 0.003, 3))

        states = []
        while len(states) < 150:
            candidate = np.array(
                [rng.uniform(0.3, 2.7), rng.uniform(0.3, 2.7), rng.uniform(-np.pi, np.pi)]
            )
            if world.point_free(candidate[:2], 0.15):
                states.append(candidate)
        result = calibrate_covariance(assumed, produce, states, rng)
        assert np.all(np.abs(result.bias[:3]) < 0.01)
        # The detector's assumed covariance must not be optimistic by more
        # than ~2x in variance, or clean missions would false-alarm.
        assert calibration_consistency(result, assumed.covariance) < 2.0
