"""Public API surface tests: imports, __all__ consistency, version."""

import importlib

import pytest


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_top_level_all_importable():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize(
    "module",
    [
        "repro.core",
        "repro.dynamics",
        "repro.sensors",
        "repro.actuators",
        "repro.attacks",
        "repro.planning",
        "repro.sim",
        "repro.world",
        "repro.eval",
        "repro.robots",
        "repro.experiments",
    ],
)
def test_subpackage_all_importable(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name}"


def test_quickstart_snippet_runs():
    """The module docstring's quickstart must actually work."""
    from repro import khepera_rig, khepera_scenarios, run_scenario

    rig = khepera_rig()
    scenario = khepera_scenarios()[3]
    result = run_scenario(rig, scenario, seed=7, duration=6.0)
    assert "FPR" in result.summary()


def test_errors_hierarchy():
    from repro import errors

    assert issubclass(errors.ConfigurationError, errors.ReproError)
    assert issubclass(errors.ObservabilityError, errors.ConfigurationError)
    assert issubclass(errors.DimensionError, errors.ReproError)
    assert issubclass(errors.PlanningError, errors.ReproError)
    assert issubclass(errors.SimulationError, errors.ReproError)
