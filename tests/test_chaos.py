"""Randomized chaos schedules against the sharded fleet (opt-in marker).

The directed fault tests in ``tests/test_shard.py`` pin each recovery
mechanism; these runs turn the :class:`~repro.serve.chaos.ChaosMonkey`
loose with seeded randomized kill/hang/slow schedules — including the
acceptance bar's "kill every worker at least once" — and require the final
per-session reports and snapshot bytes to stay bit-identical to
uninterrupted serial runs. Excluded from the default pytest run like
``soak``; select with ``-m chaos``.
"""

import numpy as np
import pytest

from repro.core.detector import RoboADS
from repro.dynamics.differential_drive import DifferentialDriveModel
from repro.eval.session_replay import report_drift
from repro.sensors.lidar import WallDistanceSensor
from repro.sensors.pose_sensors import IPS, OdometryPoseSensor
from repro.sensors.suite import SensorSuite
from repro.serve import (
    ChaosConfig,
    DetectorSession,
    SessionMessage,
    SnapshotSpool,
    SupervisorConfig,
    run_chaos_fleet,
)
from repro.world.map import WorldMap

pytestmark = [pytest.mark.chaos]

PROCESS = np.diag([0.0005**2, 0.0005**2, 0.0015**2])
WORLD = WorldMap.rectangle(3.0, 3.0)

#: Short heartbeat/timeout so injected hangs cost tenths of a second.
FAST = SupervisorConfig(heartbeat_interval=0.05, heartbeat_timeout=0.4)


def build_detector() -> RoboADS:
    suite = SensorSuite([IPS(), OdometryPoseSensor(), WallDistanceSensor(WORLD)])
    return RoboADS(
        DifferentialDriveModel(dt=0.05),
        suite,
        PROCESS,
        initial_state=np.array([1.5, 1.5, 0.0]),
        nominal_control=np.array([0.1, 0.12]),
    )


def mission_messages(n: int, seed: int):
    model = DifferentialDriveModel(dt=0.05)
    suite = SensorSuite([IPS(), OdometryPoseSensor(), WallDistanceSensor(WORLD)])
    rng = np.random.default_rng(seed)
    x = np.array([1.5, 1.5, 0.0])
    q_sqrt = np.sqrt(np.diag(PROCESS))
    messages = []
    for k in range(n):
        u = np.array([0.1, 0.12]) + 0.05 * rng.standard_normal(2)
        x = model.normalize_state(model.f(x, u) + q_sqrt * rng.standard_normal(3))
        messages.append(
            SessionMessage(seq=k, t=k * model.dt, control=u, reading=suite.measure(x, rng))
        )
    return messages


def references(streams):
    refs = {}
    for robot_id, messages in streams.items():
        session = DetectorSession(build_detector(), robot_id=robot_id)
        reports = [r for m in messages if (r := session.process(m)) is not None]
        refs[robot_id] = (reports, session.checkpoint().to_bytes())
    return refs


def assert_bit_identical(results, streams):
    refs = references(streams)
    for robot_id, result in results.items():
        ref_reports, ref_blob = refs[robot_id]
        assert report_drift(result.reports, ref_reports, atol=0.0) == []
        assert result.final_snapshot == ref_blob


def test_killing_every_worker_preserves_bit_identical_results(tmp_path):
    """The acceptance schedule: every worker slot dies at least once."""
    streams = {f"r{i}": mission_messages(30, seed=50 + i) for i in range(4)}
    results, report = run_chaos_fleet(
        build_detector,
        streams,
        workers=4,
        spool=SnapshotSpool(tmp_path / "spool"),
        spool_every=8,
        supervisor_config=FAST,
        kill_every_worker=True,
    )
    assert_bit_identical(results, streams)
    killed = {strike.slot for strike in report.strikes if strike.kind == "kill"}
    assert killed == {0, 1, 2, 3}
    assert report.crashes_survived >= 4
    assert report.failed_recoveries == 0
    assert report.messages_submitted == 120
    assert report.recovery_latency_max_s >= report.recovery_latency_mean_s > 0.0


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_randomized_kill_hang_slow_schedules_stay_exact(tmp_path, seed):
    streams = {f"r{i}": mission_messages(25, seed=60 + i) for i in range(3)}
    results, report = run_chaos_fleet(
        build_detector,
        streams,
        workers=3,
        spool=SnapshotSpool(tmp_path / "spool"),
        spool_every=6,
        config=ChaosConfig(
            seed=seed, kill_rate=0.05, hang_rate=0.02, slow_rate=0.05, max_strikes=6
        ),
        supervisor_config=FAST,
    )
    assert_bit_identical(results, streams)
    assert len(report.strikes) <= 6
    assert report.failed_recoveries == 0
    if report.messages_replayed:
        assert report.replayed_per_s > 0.0
        assert "replayed" in report.summary()


def test_chaos_without_spool_replays_whole_histories(tmp_path):
    streams = {f"r{i}": mission_messages(20, seed=70 + i) for i in range(2)}
    results, report = run_chaos_fleet(
        build_detector,
        streams,
        workers=2,
        spool=None,
        supervisor_config=FAST,
        kill_every_worker=True,
    )
    assert_bit_identical(results, streams)
    assert report.crashes_survived >= 2
    # No spool: every recovery replays the session's full prefix.
    assert report.messages_replayed >= report.crashes_survived
