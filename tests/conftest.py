"""Shared fixtures: seeded generators and session-scoped robot rigs.

The rigs are session-scoped because RRT* planning dominates setup time;
tests must not mutate them (per-run objects come from the rig factories).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.robots.khepera import khepera_rig
from repro.robots.tamiya import tamiya_rig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def khepera():
    rig = khepera_rig()
    rig.plan_path(0)
    return rig


@pytest.fixture(scope="session")
def tamiya():
    rig = tamiya_rig()
    rig.plan_path(0)
    return rig
