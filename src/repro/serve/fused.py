"""Fused multi-session stepping: many live sessions, one stacked kernel.

:class:`~repro.serve.session.DetectorSession` steps one robot per call, so a
fleet worker hosting ``N`` homogeneous sessions pays ``N`` serial detector
iterations per drain tick even though every one of them runs the *same*
mode-bank arithmetic. The offline replay lattice already advances a whole
``(mission, mode)`` batch per step (:mod:`repro.core.stacked`); this module
brings that layout to the streaming path.

A :class:`FusedSessionBank` coalesces one drain tick's pending
``(session, message)`` pairs, groups sessions whose detectors are
configured identically (same model, suite, mode bank, process noise,
decision parameters — the *fuse signature*), and advances each group with
one batched linearization plus one
:meth:`~repro.core.stacked.StackedBank.run` call over a
``(session, mode)`` lattice. Mode probabilities, the consistency-window
selection, chi-square statistics and the c-of-w decision windows are then
scattered back into each session's own engine and decision maker.

**Bit-identity contract.** A fused step leaves every session in *exactly*
the state a serial :meth:`~repro.serve.session.DetectorSession.process`
loop would have produced — snapshot bytes equal, reports equal at
``atol=0`` (``tests/test_fused.py``: golden 200-step parity plus a
hypothesis property over random fleets, interleavings, degraded masks and
checkpoint cuts). This is what lets fused and serial fleets interoperate
freely: a fused checkpoint restores into a serial worker and vice versa.
The contract holds because every fused stage reuses the serial
arithmetic: the batched kernels are per-slice bit-identical to their
serial counterparts (``tests/test_stacked.py``), the probability /
selection / decision updates run per session in plain Python exactly as
the engine does, and the chi-square statistics go through
:func:`~repro.core.chi2.anomaly_statistic_cells`, which reproduces the
serial ``estimate @ chol_solve(factor, estimate)`` contraction cell by
cell.

**Serial fallback.** Sessions that cannot take the batched path — degraded
availability or non-finite readings (data-dependent block plans),
an attached telemetry sink (per-mode event reconstruction), a
non-default linearization policy, an engine without a usable stacked
bank, or a fuse group of one — are stepped through the ordinary serial
:meth:`~repro.serve.session.DetectorSession.apply`, so a mixed fleet
degrades in throughput only, never in behavior. Batch occupancy is
surfaced through :class:`~repro.obs.telemetry.FusedBatchEvent` and
``scripts/diagnose_run.py`` so under-filled batches are visible.
"""

from __future__ import annotations

import pickle
from typing import NamedTuple, Sequence
from weakref import WeakKeyDictionary

import numpy as np

from ..core.chi2 import anomaly_statistic_cells
from ..core.detector import DetectionReport
from ..core.engine import _LOG_FLOOR
from ..core.linearization import EveryStepLinearization
from ..core.report import IterationStatistics, SensorStatistic
from ..errors import DimensionError
from ..linalg import symmetrize_stacked
from ..obs.telemetry import NULL_TELEMETRY, FusedBatchEvent, Telemetry
from .messages import SessionMessage
from .session import DetectorSession

__all__ = ["FusedOutcome", "FusedSessionBank"]


class FusedOutcome(NamedTuple):
    """What one ``(session, message)`` pair produced in a fused tick.

    Exactly one interpretation applies per item: a report (the detector
    stepped), a suppressed message (``report`` and ``error`` both ``None``
    — the ingest policy rejected it, same as a ``None`` from
    :meth:`~repro.serve.session.DetectorSession.process`), or an error (the
    step raised; the exception is captured here so one poisoned session
    cannot abort its co-batched neighbours mid-scatter). ``batched`` says
    whether the step went through a batched kernel call (occupancy
    accounting; suppressed and errored items are never batched).
    """

    report: DetectionReport | None = None
    error: BaseException | None = None
    batched: bool = False


class _PreparedItem(NamedTuple):
    """One admitted message after serial-exact preprocessing."""

    position: int
    session: DetectorSession
    message: SessionMessage
    control: np.ndarray
    reading: np.ndarray


class FusedSessionBank:
    """Coalesce pending session messages into stacked mode-bank advances.

    One instance serves one worker (an asyncio fleet or a shard worker
    process); it owns no session state — sessions remain fully usable
    through their serial entry points between fused ticks, which is what
    keeps checkpoint/restore and journal replay oblivious to how a message
    happened to be stepped.

    Parameters
    ----------
    telemetry:
        Optional worker-level sink receiving one
        :class:`~repro.obs.telemetry.FusedBatchEvent` per
        :meth:`process` call. This is *worker* observability — per-session
        detector telemetry intentionally forces the serial path instead.
    min_batch:
        Smallest fuse group worth a kernel launch; smaller groups take the
        serial path (default 2 — a singleton batch would pay stacked-call
        overhead to save nothing).
    """

    def __init__(self, telemetry: Telemetry | None = None, min_batch: int = 2) -> None:
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._min_batch = max(2, int(min_batch))
        self._signatures: WeakKeyDictionary = WeakKeyDictionary()
        self.ticks = 0
        self.kernel_calls = 0
        self.sessions_batched = 0
        self.sessions_serial = 0
        self.messages_suppressed = 0

    # ------------------------------------------------------------------
    # Occupancy
    # ------------------------------------------------------------------
    def occupancy(self) -> dict:
        """Cumulative batch-occupancy counters (JSON-ready)."""
        batched = self.sessions_batched
        calls = self.kernel_calls
        return {
            "ticks": self.ticks,
            "kernel_calls": calls,
            "sessions_batched": batched,
            "sessions_serial": self.sessions_serial,
            "messages_suppressed": self.messages_suppressed,
            "mean_batch_size": (batched / calls) if calls else 0.0,
        }

    # ------------------------------------------------------------------
    # The fused tick
    # ------------------------------------------------------------------
    def process(
        self, pairs: Sequence[tuple[DetectorSession, SessionMessage]]
    ) -> list[FusedOutcome]:
        """Step every ``(session, message)`` pair, batching where possible.

        Returns one :class:`FusedOutcome` per input pair, in input order.
        Messages are admitted through each session's ingest tracker first
        (in input order, so per-session sequencing semantics match a serial
        loop); a session appearing more than once is stepped in input order
        across successive internal waves, since its second message depends
        on the recursion state the first one produces.
        """
        outcomes: list[FusedOutcome | None] = [None] * len(pairs)
        admitted: list[tuple[int, DetectorSession, SessionMessage]] = []
        for position, (session, message) in enumerate(pairs):
            try:
                ok = session.admit(message)
            except BaseException as exc:  # strict-policy sequence errors
                outcomes[position] = FusedOutcome(error=exc)
                continue
            if ok:
                admitted.append((position, session, message))
            else:
                outcomes[position] = FusedOutcome()
                self.messages_suppressed += 1

        # Waves: at most one message per session per wave, stepped in
        # arrival order (wave k holds each session's (k+1)-th message).
        waves: list[list[tuple[int, DetectorSession, SessionMessage]]] = []
        depth: dict[int, int] = {}
        for item in admitted:
            k = depth.get(id(item[1]), 0)
            depth[id(item[1])] = k + 1
            if k == len(waves):
                waves.append([])
            waves[k].append(item)

        group_sizes: list[int] = []
        tick_batched = tick_serial = 0
        for wave in waves:
            serial_items: list[tuple[int, DetectorSession, SessionMessage]] = []
            groups: dict[bytes, list[_PreparedItem]] = {}
            for position, session, message in wave:
                prepared = None
                if self._fusable(session):
                    prepared = self._prepare(position, session, message)
                if prepared is None:
                    serial_items.append((position, session, message))
                else:
                    key = self._signature(session)
                    if key is None:
                        serial_items.append((position, session, message))
                    else:
                        groups.setdefault(key, []).append(prepared)

            for items in groups.values():
                if len(items) < self._min_batch:
                    serial_items.extend(
                        (it.position, it.session, it.message) for it in items
                    )
                    continue
                if self._step_group(items, outcomes):
                    group_sizes.append(len(items))
                    tick_batched += len(items)
                else:
                    serial_items.extend(
                        (it.position, it.session, it.message) for it in items
                    )

            for position, session, message in sorted(serial_items):
                tick_serial += 1
                try:
                    report = session.apply(message)
                except BaseException as exc:
                    outcomes[position] = FusedOutcome(error=exc)
                else:
                    outcomes[position] = FusedOutcome(report=report)

        self.ticks += 1
        self.kernel_calls += len(group_sizes)
        self.sessions_batched += tick_batched
        self.sessions_serial += tick_serial
        if self._telemetry.enabled:
            self._telemetry.emit(
                FusedBatchEvent(
                    iteration=self.ticks,
                    batched=tick_batched,
                    serial_fallbacks=tick_serial,
                    groups=len(group_sizes),
                    suppressed=sum(1 for o in outcomes if o and o.report is None and o.error is None),
                    group_sizes=tuple(group_sizes),
                )
            )
        return [o if o is not None else FusedOutcome() for o in outcomes]

    # ------------------------------------------------------------------
    # Eligibility, preprocessing, grouping
    # ------------------------------------------------------------------
    @staticmethod
    def _fusable(session: DetectorSession) -> bool:
        """Whether this session's detector can take the batched path at all."""
        detector = session.detector
        engine = detector.engine
        return (
            not detector.telemetry.enabled
            and engine.stacked_bank is not None
            and type(engine._policy) is EveryStepLinearization
        )

    def _prepare(
        self, position: int, session: DetectorSession, message: SessionMessage
    ) -> _PreparedItem | None:
        """Serial-exact step preprocessing; ``None`` routes to the fallback.

        Mirrors :meth:`repro.core.detector.RoboADS.step` validation and
        non-finite handling plus the engine's availability normalization —
        any iteration that would end up degraded (or raise) goes back to
        the serial path, which reproduces the exact behavior including the
        exception, so the fused layer never invents its own error surface.
        """
        detector = session.detector
        model, suite = detector.model, detector.suite
        try:
            control = model.validate_control(
                np.asarray(message.control, dtype=float)
            )
            reading = np.asarray(message.reading, dtype=float)
            if reading.shape != (suite.total_dim,):
                raise DimensionError("shape mismatch")  # serial re-raises nicely
            if not np.isfinite(reading).all():
                return None  # degraded by payload corruption
            available = message.available
            if available is not None:
                present = set(available)
                if present - set(suite.names):
                    return None  # serial path raises ConfigurationError
                names = tuple(n for n in suite.names if n in present)
                if names != tuple(suite.names):
                    return None  # genuinely degraded iteration
        except Exception:
            return None
        return _PreparedItem(position, session, message, control, reading)

    def _signature(self, session: DetectorSession) -> bytes | None:
        """The fuse-group key: byte-equal keys guarantee co-riggedness.

        Two sessions may fuse only when their detectors would run the
        identical stacked-bank arithmetic: same model, suite, mode bank,
        process noise, linearization policy class, selection parameters and
        decision parameters. Pickle bytes of that configuration tuple are a
        conservative such certificate — a false *mismatch* merely costs the
        batch (serial fallback), never correctness. Unpicklable
        configurations get ``None`` (always serial). Cached per session.
        """
        cached = self._signatures.get(session)
        if cached is not None:
            return cached or None
        detector = session.detector
        engine = detector.engine
        try:
            signature = pickle.dumps(
                (
                    detector.model,
                    detector.suite,
                    tuple(engine.modes),
                    engine._bank._Q,
                    engine._epsilon,
                    engine._window,
                    type(engine._policy).__qualname__,
                    detector.decision_config,
                ),
                protocol=5,
            )
        except Exception:
            self._signatures[session] = b""
            return None
        self._signatures[session] = signature
        return signature

    # ------------------------------------------------------------------
    # One batched group advance
    # ------------------------------------------------------------------
    def _step_group(
        self, items: list[_PreparedItem], outcomes: list[FusedOutcome | None]
    ) -> bool:
        """Advance one co-rigged group through a single stacked kernel call.

        Returns False — with *no* session state touched — when the batched
        compute itself fails, so the caller can rerun every item serially.
        After the kernel succeeds, the scatter mutates sessions one by one;
        a per-item scatter error poisons only that item's outcome (its
        session is mid-step, exactly as a serial exception would leave it).
        """
        first = items[0].session.detector
        engine = first.engine
        bank = engine.stacked_bank
        model, suite, policy = first.model, first.suite, engine._policy
        engines = [it.session.detector.engine for it in items]
        try:
            X = np.stack([eng._x for eng in engines])
            Pc = symmetrize_stacked(np.stack([eng._P for eng in engines]))
            U = np.stack([it.control for it in items])
            Z = np.stack([it.reading for it in items])
            x_check, A, G = policy.f_and_jacobians_batch(model, X, U)
            APA = A @ Pc @ A.swapaxes(-1, -2)
            h_check = policy.h_batch(suite, None, x_check)
            C_check = policy.measurement_jacobian_batch(suite, None, x_check)
            # testing=False defers the sensor-anomaly block: the nominal
            # engine only ever consumes the *selected* mode's testing
            # results (telemetry sessions, which read every mode's, take
            # the serial path), so the fused step evaluates it
            # post-selection at batch width instead of lattice width.
            result = bank.run(
                X,
                Pc,
                U,
                Z,
                x_check=x_check,
                A=A,
                G=G,
                APA=APA,
                h_check=h_check,
                C_check=C_check,
                testing=False,
            )
        except Exception:
            return False

        # --- Scatter phase A: probabilities, selection, commit ---------
        # Plain-Python per session, in the engine's exact arithmetic (dict
        # iteration order, left-to-right sums, the same floor sequencing).
        mode_names = bank.mode_names
        mode_pos = {name: m for m, name in enumerate(mode_names)}
        # tolist() yields the same Python floats float() would, in one pass;
        # the batched elementwise log is bit-identical to the engine's
        # per-value ``np.log(value) if value > 0.0 else _LOG_FLOOR`` +
        # ``max(..., _LOG_FLOOR)`` (no value here is NaN: likelihoods are
        # non-negative, and non-positive entries are floored before the max).
        lik_arr = result.likelihoods
        likelihood_rows = lik_arr.tolist()
        with np.errstate(divide="ignore", invalid="ignore"):
            raw_logs = np.log(lik_arr)
        log_rows = np.maximum(
            np.where(lik_arr > 0.0, raw_logs, _LOG_FLOOR), _LOG_FLOOR
        ).tolist()
        selected_idx = np.empty(len(items), dtype=int)
        likelihood_dicts: list[dict[str, float]] = []
        mu_dicts: list[dict[str, float]] = []
        for b, item in enumerate(items):
            detector = item.session.detector
            eng = detector.engine
            detector._iteration += 1
            eng._iteration += 1
            likelihoods = dict(zip(mode_names, likelihood_rows[b]))
            mu_prev = eng._mu
            weighted = {
                name: likelihoods[name] * mu_prev[name] for name in mu_prev
            }
            total = sum(weighted.values())
            if total > 0.0 and np.isfinite(total):
                mu = {name: value / total for name, value in weighted.items()}
            else:
                mu = dict(mu_prev)
            if any(value < eng._epsilon for value in mu.values()):
                floored = {
                    name: max(value, eng._epsilon) for name, value in mu.items()
                }
                floor_total = sum(floored.values())
                mu = {
                    name: value / floor_total for name, value in floored.items()
                }
            eng._mu = mu
            history = eng._log_history
            for name, log_n in zip(mode_names, log_rows[b]):
                history[name].append(log_n)
            scores = {name: sum(hist) for name, hist in history.items()}
            selected_name = max(scores, key=lambda name: scores[name])
            sel = mode_pos[selected_name]
            selected_idx[b] = sel
            eng._x = result.states[b, sel].copy()
            eng._P = result.covariances[b, sel].copy()
            likelihood_dicts.append(likelihoods)
            mu_dicts.append(mu)

        # --- Scatter phase B: chi-square statistics, batched by group --
        # The deferred testing block runs only for each cell's selected
        # mode (batch width, not lattice width), exactly like the offline
        # replay lattice's post-selection evaluation. Cells sharing one
        # testing group already arrive stacked from ``testing_selected``,
        # so every chi-square batch (aggregate block, per-sensor slots) is
        # a view into that stack; actuator cells all share the control
        # dimension and solve as one gathered batch.
        count = len(items)
        rows_arange = np.arange(count)
        sel_states = result.states[rows_arange, selected_idx]
        sel_state_covs = result.covariances[rows_arange, selected_idx]
        act_ests = result.actuator_anomaly[rows_arange, selected_idx]
        act_covs = result.actuator_covariance[rows_arange, selected_idx]
        act_stats, act_dofs = anomaly_statistic_cells(act_ests, act_covs)
        sel_anoms: list[np.ndarray] = [None] * count  # type: ignore[list-item]
        sel_covs: list[np.ndarray] = [None] * count  # type: ignore[list-item]
        agg_stats = [0.0] * count
        agg_dofs = [0] * count
        slot_stats: list[list[tuple[float, int]]] = [[]] * count
        for gi, rows, _jpos, d_s, P_s in bank.testing_selected(
            sel_states, sel_state_covs, Z, selected_idx
        ):
            g_stats, g_dofs = anomaly_statistic_cells(d_s, P_s)
            per_slice = [
                anomaly_statistic_cells(d_s[:, sl], P_s[:, sl, sl])
                for sl in bank._groups[gi].test_slices
            ]
            for k, b in enumerate(rows.tolist()):
                sel_anoms[b] = d_s[k]
                sel_covs[b] = P_s[k]
                agg_stats[b] = float(g_stats[k])
                agg_dofs[b] = int(g_dofs[k])
                slot_stats[b] = [
                    (float(ss[k]), int(sd[k])) for ss, sd in per_slice
                ]

        # --- Scatter phase C: assemble statistics, decide, report ------
        # Sessions in a fused group share one rig config, so the testing
        # layout for a given selected mode is identical across the batch;
        # memoize the (name, slice) pairs per mode within this group.
        dt = model.dt
        slice_cache: dict[str, list[tuple[str, slice]]] = {}
        for b, item in enumerate(items):
            detector = item.session.detector
            eng = detector.engine
            sel = int(selected_idx[b])
            selected_name = mode_names[sel]
            try:
                slice_items = slice_cache.get(selected_name)
                if slice_items is None:
                    nuise = eng._filters[selected_name]
                    slice_items = slice_cache[selected_name] = list(
                        nuise.testing_slices(nuise._full_plan.test_names).items()
                    )
                per_sensor: dict[str, SensorStatistic] = {}
                anom = sel_anoms[b]
                cov = sel_covs[b]
                for (name, sl), (slot_stat, slot_dof) in zip(
                    slice_items, slot_stats[b]
                ):
                    per_sensor[name] = SensorStatistic(
                        name=name,
                        estimate=anom[sl].copy(),
                        covariance=cov[sl, sl].copy(),
                        statistic=slot_stat,
                        dof=slot_dof,
                    )
                stats = IterationStatistics(
                    iteration=eng._iteration,
                    selected_mode=selected_name,
                    mode_probabilities=dict(mu_dicts[b]),
                    state_estimate=result.states[b, sel].copy(),
                    sensor_statistic=agg_stats[b],
                    sensor_dof=agg_dofs[b],
                    actuator_statistic=float(act_stats[b]),
                    actuator_dof=int(act_dofs[b]),
                    sensor_stats=per_sensor,
                    actuator_estimate=act_ests[b].copy(),
                    actuator_covariance=act_covs[b].copy(),
                    likelihoods=dict(likelihood_dicts[b]),
                    available_sensors=None,
                    degraded=False,
                )
                outcome = detector._decision.step(stats)
                report = DetectionReport(
                    iteration=detector._iteration,
                    time=detector._iteration * dt,
                    statistics=stats,
                    outcome=outcome,
                )
                item.session.absorb(report)
            except BaseException as exc:
                outcomes[item.position] = FusedOutcome(error=exc)
            else:
                outcomes[item.position] = FusedOutcome(report=report, batched=True)
        return True
