"""Process-level chaos: seeded fault injection for the sharded fleet.

:mod:`repro.sim.faults` injects misbehaviors into *sensors and actuators*;
this module applies the same discipline one layer down, to the
infrastructure hosting the detector. A :class:`ChaosMonkey` strikes worker
processes with a seeded schedule of faults —

* ``kill`` — SIGKILL, no warning (the crash path);
* ``hang`` — the worker sleeps silently until the supervisor's heartbeat
  timeout reaps it (the liveness path);
* ``slow`` — per-message latency, alive but degraded (must *not* trigger
  recovery: acks count as liveness);

— while :func:`run_chaos_fleet` streams real missions through a
:class:`~repro.serve.shard.ShardManager` under fire and the
:class:`ChaosReport` reduces the supervisor's recovery log to the numbers
that matter: crashes survived, messages replayed, recovery latency. The
point of the exercise is the acceptance bar from ROADMAP item 2: a seeded
run that kills **every** worker at least once must still produce per-session
reports bit-identical to an undisturbed serial run (``tests/test_chaos.py``,
``scripts/chaos_smoke.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from .ingest import IngestPolicy
from .shard import ShardManager, ShardSessionResult
from .spool import SnapshotSpool
from .supervisor import Supervisor, SupervisorConfig

__all__ = ["ChaosConfig", "Strike", "ChaosMonkey", "ChaosReport", "run_chaos_fleet"]


@dataclass(frozen=True)
class ChaosConfig:
    """A seeded fault-injection schedule for worker processes.

    Attributes
    ----------
    seed:
        Seed for the strike schedule (``numpy`` Generator) — identical seeds
        reproduce identical fault timings against the same stream.
    kill_rate / hang_rate / slow_rate:
        Per-submitted-message probability of striking a random live worker
        with that fault.
    hang_s:
        How long a hung worker sleeps. Deliberately enormous by default: a
        hang must be *reaped by the heartbeat timeout*, never waited out.
    slow_s:
        Added per-message latency on a slowed worker.
    max_strikes:
        Total strike budget (``None`` = unlimited). Bounds wall-clock for
        randomized schedules — every hang costs one heartbeat timeout.
    """

    seed: int = 0
    kill_rate: float = 0.0
    hang_rate: float = 0.0
    slow_rate: float = 0.0
    hang_s: float = 3600.0
    slow_s: float = 0.002
    max_strikes: int | None = None

    def __post_init__(self) -> None:
        """Validate rates and durations at construction."""
        for name in ("kill_rate", "hang_rate", "slow_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1], got {rate}")
        if self.hang_s <= 0 or self.slow_s < 0:
            raise ConfigurationError("hang_s must be positive and slow_s non-negative")
        if self.max_strikes is not None and self.max_strikes < 0:
            raise ConfigurationError("max_strikes must be non-negative (or None)")


@dataclass(frozen=True)
class Strike:
    """One delivered fault: which worker, what kind, when in the stream."""

    at_message: int
    slot: int
    kind: str


class ChaosMonkey:
    """Delivers seeded worker faults through a manager's chaos hooks.

    Drives :meth:`~repro.serve.shard.ShardManager.kill_worker` /
    ``hang_worker`` / ``slow_worker`` either probabilistically
    (:meth:`maybe_strike`, once per submitted message) or on demand
    (:meth:`kill`, :meth:`hang`, :meth:`slow`), recording every delivered
    fault in :attr:`strikes`.
    """

    def __init__(self, manager: ShardManager, config: ChaosConfig | None = None) -> None:
        self.manager = manager
        self.config = config or ChaosConfig()
        self.strikes: list[Strike] = []
        self._rng = np.random.default_rng(self.config.seed)

    def _budget_left(self) -> bool:
        budget = self.config.max_strikes
        return budget is None or len(self.strikes) < budget

    def _pick_slot(self) -> int | None:
        slots = [h.slot for h in self.manager.handles if not h.retired]
        if not slots:
            return None
        return slots[int(self._rng.integers(len(slots)))]

    def maybe_strike(self, at_message: int) -> list[Strike]:
        """Roll the dice once per fault kind; deliver what comes up."""
        delivered: list[Strike] = []
        for kind, rate in (
            ("kill", self.config.kill_rate),
            ("hang", self.config.hang_rate),
            ("slow", self.config.slow_rate),
        ):
            if rate <= 0.0 or not self._budget_left():
                continue
            if self._rng.random() >= rate:
                continue
            slot = self._pick_slot()
            if slot is None:
                break
            getattr(self, kind)(slot, at_message=at_message)
            delivered.append(self.strikes[-1])
        return delivered

    def kill(self, slot: int, at_message: int = -1) -> Strike:
        """SIGKILL a worker slot right now; records and returns the strike."""
        self.manager.kill_worker(slot)
        strike = Strike(at_message=at_message, slot=slot, kind="kill")
        self.strikes.append(strike)
        return strike

    def hang(self, slot: int, at_message: int = -1) -> Strike:
        """Silence a worker until the heartbeat timeout reaps it."""
        self.manager.hang_worker(slot, self.config.hang_s)
        strike = Strike(at_message=at_message, slot=slot, kind="hang")
        self.strikes.append(strike)
        return strike

    def slow(self, slot: int, at_message: int = -1) -> Strike:
        """Degrade a worker with per-message latency (alive, not reaped)."""
        self.manager.slow_worker(slot, self.config.slow_s)
        strike = Strike(at_message=at_message, slot=slot, kind="slow")
        self.strikes.append(strike)
        return strike


@dataclass(frozen=True)
class ChaosReport:
    """What a chaos run survived, reduced from the supervisor's event log.

    Attributes
    ----------
    messages_submitted:
        Stream messages submitted across all sessions (replays excluded).
    strikes:
        Every delivered fault, in delivery order.
    crashes_survived:
        Recoveries that fully restored the dead worker's sessions.
    failed_recoveries:
        Recoveries abandoned because a slot exhausted its restart budget.
    messages_replayed:
        Journal messages re-submitted across all recoveries.
    recovery_latency_mean_s / recovery_latency_max_s:
        Death-detection-to-sessions-restored wall clock over successful
        recoveries (0.0 when none happened).
    replayed_per_s:
        Replay throughput: messages replayed per second of total recovery
        time (0.0 when nothing was replayed).
    """

    messages_submitted: int
    strikes: tuple[Strike, ...]
    crashes_survived: int
    failed_recoveries: int
    messages_replayed: int
    recovery_latency_mean_s: float
    recovery_latency_max_s: float
    replayed_per_s: float

    @classmethod
    def from_run(
        cls, messages_submitted: int, strikes, supervisor: Supervisor
    ) -> "ChaosReport":
        """Reduce a monkey's strikes and a supervisor's events into a report."""
        recovered = [e for e in supervisor.events if e.recovered]
        latencies = [e.latency_s for e in recovered]
        total_latency = float(sum(latencies))
        replayed = supervisor.messages_replayed
        return cls(
            messages_submitted=int(messages_submitted),
            strikes=tuple(strikes),
            crashes_survived=len(recovered),
            failed_recoveries=len(supervisor.events) - len(recovered),
            messages_replayed=int(replayed),
            recovery_latency_mean_s=total_latency / len(latencies) if latencies else 0.0,
            recovery_latency_max_s=max(latencies) if latencies else 0.0,
            replayed_per_s=replayed / total_latency if replayed and total_latency else 0.0,
        )

    def summary(self) -> str:
        """Human-readable one-paragraph account of the run."""
        kinds = {}
        for strike in self.strikes:
            kinds[strike.kind] = kinds.get(strike.kind, 0) + 1
        struck = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items())) or "none"
        return (
            f"chaos: {self.messages_submitted} messages submitted under "
            f"{len(self.strikes)} strikes ({struck}); "
            f"{self.crashes_survived} crashes survived "
            f"({self.failed_recoveries} abandoned), "
            f"{self.messages_replayed} messages replayed "
            f"(mean recovery {self.recovery_latency_mean_s * 1e3:.1f} ms, "
            f"max {self.recovery_latency_max_s * 1e3:.1f} ms, "
            f"{self.replayed_per_s:.0f} replayed/s)"
        )


def run_chaos_fleet(
    factory,
    streams: dict,
    *,
    workers: int = 4,
    spool: SnapshotSpool | None = None,
    spool_every: int = 10,
    window: int = 16,
    policy: IngestPolicy | None = None,
    config: ChaosConfig | None = None,
    supervisor_config: SupervisorConfig | None = None,
    kill_every_worker: bool = False,
) -> tuple[dict[str, ShardSessionResult], ChaosReport]:
    """Stream missions through a sharded fleet while faults rain down.

    *streams* maps robot id to its ordered list of
    :class:`~repro.serve.messages.SessionMessage`; sessions are interleaved
    round-robin one message at a time, with the :class:`ChaosMonkey` rolling
    its seeded dice after every submit. With ``kill_every_worker=True`` a
    forced SIGKILL of each worker slot is additionally scheduled at evenly
    spaced points in the stream — the acceptance bar's "kills every worker
    at least once" schedule. Returns the per-session results (bit-identical
    to an undisturbed run) and the :class:`ChaosReport`.
    """
    supervisor = Supervisor(supervisor_config)
    manager = ShardManager(
        factory,
        workers=workers,
        spool=spool,
        spool_every=spool_every,
        window=window,
        supervisor=supervisor,
    )
    submitted = 0
    try:
        monkey = ChaosMonkey(manager, config)
        for robot_id in streams:
            manager.open_session(robot_id, policy)
        total = sum(len(messages) for messages in streams.values())
        forced: dict[int, list[int]] = {}
        if kill_every_worker:
            for slot in range(workers):
                at = max(1, (slot + 1) * total // (workers + 1))
                forced.setdefault(at, []).append(slot)
        active = deque((robot_id, iter(messages)) for robot_id, messages in streams.items())
        while active:
            robot_id, stream = active.popleft()
            message = next(stream, None)
            if message is None:
                continue
            manager.submit(robot_id, message)
            submitted += 1
            for slot in forced.get(submitted, ()):
                monkey.kill(slot, at_message=submitted)
            monkey.maybe_strike(submitted)
            active.append((robot_id, stream))
        results = manager.close_all()
    finally:
        manager.shutdown()
    return results, ChaosReport.from_run(submitted, monkey.strikes, supervisor)
