"""FleetService: many resident detector sessions in one asyncio process.

Multi-tenant fleet monitoring: every robot gets a :class:`DetectorSession`
behind a bounded ingest queue, a worker coroutine drains the queue in FIFO
order, and producers feeding :meth:`FleetService.submit` experience
*backpressure* (the await blocks) whenever a robot's queue is full — the
bounded-queue semantics a real ingest tier needs so one slow session cannot
absorb unbounded memory.

Determinism under concurrency is structural, not accidental: each session's
messages are processed in the exact order its own producer submitted them
(per-robot FIFO), and sessions share no mutable state, so the final
per-robot reports are independent of how the event loop interleaves robots.
The opt-in soak test (``tests/test_soak.py``, ``soak`` marker) drives ≥1000
concurrent sessions under randomized scheduling to pin exactly that.

Detector steps are synchronous CPU-bound work (~1 ms), so a single service
hosts a fleet limited by one core's throughput; scaling beyond it is what
session snapshots are for — checkpoint, move to another worker process,
resume (see ``docs/STREAMING.md``).

With ``fused=True`` the per-session worker coroutines are replaced by one
drain coordinator that, each tick, pulls at most one pending message per
session and advances the whole co-rigged fleet through a single
:class:`~repro.serve.fused.FusedSessionBank` kernel call. Submit-side
backpressure, per-robot FIFO order, failure surfacing and ``drain``'s
``task_done`` accounting are all preserved, and the resulting reports and
snapshots are bit-identical to the serial worker path (the fused stepper's
contract); heterogeneous or ineligible sessions fall back to serial steps
inside the fused bank itself.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from pathlib import Path

from ..core.detector import DetectionReport, RoboADS
from ..errors import ConfigurationError, FleetClosureError
from ..obs.telemetry import Telemetry
from .fused import FusedSessionBank
from .ingest import IngestPolicy, IngestStats
from .messages import SessionMessage
from .session import DetectorSession
from .snapshot import SessionSnapshot

__all__ = ["FleetService", "SessionResult"]

#: Queue sentinel asking a session worker to finish and exit.
_CLOSE = object()


@dataclass
class SessionResult:
    """What one closed session produced.

    Attributes
    ----------
    robot_id:
        The session's identity.
    reports:
        Every detector report, in processing order (suppressed stale /
        duplicate messages produce no report).
    ingest:
        Final delivery counters.
    max_queue_depth:
        High-water mark of the session's ingest queue — how close the
        producer came to experiencing backpressure (depth == capacity means
        it did).
    telemetry_path:
        The per-session JSONL export, when the service was built with an
        ``export_dir`` and the session recorded telemetry; ``None`` otherwise.
    """

    robot_id: str
    reports: list[DetectionReport]
    ingest: IngestStats
    max_queue_depth: int
    telemetry_path: Path | None = None


class _SessionWorker:
    """One robot's session, queue, worker task and counters."""

    def __init__(self, session: DetectorSession, capacity: int) -> None:
        self.session = session
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=capacity)
        self.reports: list[DetectionReport] = []
        self.max_depth = 0
        self.failure: BaseException | None = None
        self.task: asyncio.Task | None = None

    async def run(self) -> None:
        while True:
            item = await self.queue.get()
            try:
                if item is _CLOSE:
                    return
                try:
                    report = self.session.process(item)
                except BaseException as exc:  # surfaced at submit/close
                    self.failure = exc
                    return
                if report is not None:
                    self.reports.append(report)
            finally:
                self.queue.task_done()


class FleetService:
    """Hosts concurrent detector sessions with bounded-queue ingest.

    Parameters
    ----------
    queue_capacity:
        Per-session ingest queue bound; :meth:`submit` awaits (backpressure)
        while a robot's queue is full.
    export_dir:
        When set, each closed session with a recording telemetry sink writes
        its events to ``<export_dir>/<robot_id>.jsonl`` (incremental — a
        session flushed mid-run via :meth:`flush_telemetry` appends only the
        tail).
    fused:
        Opt in to the fused drain coordinator: pending messages across the
        fleet are stepped through batched
        :class:`~repro.serve.fused.FusedSessionBank` kernel calls instead of
        per-session worker coroutines. Results are bit-identical to the
        default serial path.
    fused_telemetry:
        Optional sink receiving the fused stepper's per-tick
        :class:`~repro.obs.telemetry.FusedBatchEvent` occupancy events
        (ignored unless ``fused=True``).
    """

    def __init__(
        self,
        queue_capacity: int = 64,
        export_dir=None,
        fused: bool = False,
        fused_telemetry: Telemetry | None = None,
    ) -> None:
        if queue_capacity < 1:
            raise ConfigurationError("queue capacity must be at least 1")
        self._capacity = int(queue_capacity)
        self._export_dir = None if export_dir is None else Path(export_dir)
        self._workers: dict[str, _SessionWorker] = {}
        self._fused = bool(fused)
        self._fused_bank = (
            FusedSessionBank(telemetry=fused_telemetry) if self._fused else None
        )
        #: Fused-mode state: workers awaiting coordinator service (entries
        #: leave on close or failure), the coordinator task itself, and the
        #: wake event submitters set to end an idle coordinator's sleep.
        self._fused_registry: list[_SessionWorker] = []
        self._coordinator: asyncio.Task | None = None
        self._wake: asyncio.Event | None = None

    @property
    def fused_bank(self) -> FusedSessionBank | None:
        """The fused stepping engine (occupancy counters), or ``None``."""
        return self._fused_bank

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    @property
    def active_sessions(self) -> tuple[str, ...]:
        """Robot ids currently hosted, in registration order."""
        return tuple(self._workers)

    def session(self, robot_id: str) -> DetectorSession:
        """The resident session for *robot_id* (introspection/checkpointing)."""
        return self._worker(robot_id).session

    async def open_session(
        self,
        robot_id: str,
        detector: RoboADS,
        policy: IngestPolicy | None = None,
        telemetry: Telemetry | None = None,
        snapshot: SessionSnapshot | None = None,
    ) -> DetectorSession:
        """Register a robot and start its worker.

        With *snapshot* the session resumes from a checkpoint (worker
        migration); otherwise the detector starts a fresh mission. Returns
        the resident session.
        """
        if robot_id in self._workers:
            raise ConfigurationError(f"robot {robot_id!r} already has a session")
        if snapshot is not None:
            session = DetectorSession.resume(
                detector, snapshot, policy=policy, telemetry=telemetry,
                robot_id=robot_id,
            )
        else:
            session = DetectorSession(
                detector, robot_id=robot_id, policy=policy, telemetry=telemetry
            )
        worker = _SessionWorker(session, self._capacity)
        if self._fused:
            # No per-session coroutine: the shared coordinator services the
            # queue, and this future stands in for the worker task (resolved
            # when the coordinator consumes the close sentinel or observes
            # the session's failure — exactly when a serial worker exits).
            worker.task = asyncio.get_running_loop().create_future()
            self._fused_registry.append(worker)
            self._ensure_coordinator()
        else:
            worker.task = asyncio.create_task(worker.run())
        self._workers[robot_id] = worker
        return session

    async def submit(self, robot_id: str, message: SessionMessage) -> None:
        """Enqueue one message for *robot_id*'s session.

        Awaits while the session's bounded queue is full — the backpressure
        contract: a producer can never outrun a session by more than the
        queue capacity. Raises the session's processing failure, if its
        worker died.
        """
        worker = self._worker(robot_id)
        if worker.failure is not None:
            raise worker.failure
        await worker.queue.put(message)
        worker.max_depth = max(worker.max_depth, worker.queue.qsize())
        if self._wake is not None:
            self._wake.set()

    async def drain(self, robot_id: str) -> None:
        """Wait until every message submitted so far has been processed.

        The quiescence point for mid-run checkpoints: ``await drain(...)``
        then ``service.session(robot_id).checkpoint()`` freezes the session
        at a well-defined message boundary (assuming the caller pauses its
        producers meanwhile).
        """
        await self._worker(robot_id).queue.join()

    async def checkpoint_session(self, robot_id: str) -> SessionSnapshot:
        """Drain *robot_id*'s queue, then snapshot its session."""
        worker = self._worker(robot_id)
        await worker.queue.join()
        if worker.failure is not None:
            raise worker.failure
        return worker.session.checkpoint()

    async def close_session(self, robot_id: str) -> SessionResult:
        """Stop *robot_id*'s worker after its queue drains; return the result.

        Re-raises the worker's processing failure, if any, after unwinding
        the worker task. Exports the session's telemetry when the service
        has an ``export_dir``.
        """
        worker = self._workers.pop(robot_id, None)
        if worker is None:
            raise ConfigurationError(f"robot {robot_id!r} has no open session")
        await worker.queue.put(_CLOSE)
        if self._wake is not None:
            self._wake.set()
        await worker.task
        if worker.failure is not None:
            raise worker.failure
        telemetry_path = self._export(worker.session)
        return SessionResult(
            robot_id=robot_id,
            reports=worker.reports,
            ingest=worker.session.ingest_stats,
            max_queue_depth=worker.max_depth,
            telemetry_path=telemetry_path,
        )

    async def close_all(self) -> dict[str, SessionResult]:
        """Close every session (registration order); results keyed by robot.

        Every session is attempted even when one raises — a poisoned session
        must not orphan the rest of the fleet's results and telemetry
        exports. On any failure a :class:`~repro.errors.FleetClosureError`
        is raised carrying both the per-robot failures and the successfully
        closed results.
        """
        results: dict[str, SessionResult] = {}
        failures: dict[str, BaseException] = {}
        for robot_id in tuple(self._workers):
            try:
                results[robot_id] = await self.close_session(robot_id)
            except Exception as exc:
                failures[robot_id] = exc
        if failures:
            raise FleetClosureError(results, failures)
        return results

    # ------------------------------------------------------------------
    # Fused drain coordinator
    # ------------------------------------------------------------------
    def _ensure_coordinator(self) -> None:
        if self._wake is None:
            self._wake = asyncio.Event()
        self._wake.set()
        if self._coordinator is None or self._coordinator.done():
            self._coordinator = asyncio.create_task(self._coordinate())

    async def _coordinate(self) -> None:
        """Drain every registered session's queue through fused ticks.

        Runs while any fused worker is registered; exits when the last one
        closes (a later ``open_session`` restarts it). The clear-then-scan
        order makes the idle sleep race-free: a submit landing after the
        scan re-sets the event, so the wait returns immediately.
        """
        while self._fused_registry:
            self._wake.clear()
            if self._fused_tick():
                # Yield so producers blocked on a full queue (and fresh
                # submits) can run between ticks; per-robot FIFO is kept
                # because each tick takes at most one message per session.
                await asyncio.sleep(0)
            else:
                await self._wake.wait()

    def _fused_tick(self) -> bool:
        """One coordinator pass; returns whether any queue item was consumed.

        Pulls at most one pending message per live session (so a session
        whose earlier message fails never has a later one stepped — the
        serial worker's stop-on-failure contract), fuses them through one
        :meth:`FusedSessionBank.process` call, and scatters reports,
        failures and ``task_done`` accounting back per queue.
        """
        batch: list[tuple[_SessionWorker, SessionMessage]] = []
        progressed = False
        for worker in list(self._fused_registry):
            if worker.failure is not None:
                # A serial worker's task exits at failure time, leaving any
                # queued messages unconsumed; mirror that by retiring the
                # entry and resolving the stand-in task.
                self._fused_registry.remove(worker)
                if not worker.task.done():
                    worker.task.set_result(None)
                progressed = True
                continue
            if worker.queue.empty():
                continue
            item = worker.queue.get_nowait()
            if item is _CLOSE:
                worker.queue.task_done()
                self._fused_registry.remove(worker)
                if not worker.task.done():
                    worker.task.set_result(None)
                progressed = True
            else:
                batch.append((worker, item))
        if batch:
            progressed = True
            outcomes = self._fused_bank.process(
                [(worker.session, message) for worker, message in batch]
            )
            for (worker, _message), outcome in zip(batch, outcomes):
                try:
                    if outcome.error is not None:
                        worker.failure = outcome.error
                    elif outcome.report is not None:
                        worker.reports.append(outcome.report)
                finally:
                    worker.queue.task_done()
        return progressed

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def flush_telemetry(self, robot_id: str) -> Path | None:
        """Flush *robot_id*'s unexported telemetry now; return the path."""
        return self._export(self._worker(robot_id).session)

    def _export(self, session: DetectorSession) -> Path | None:
        if self._export_dir is None:
            return None
        path = self._export_dir / f"{session.robot_id}.jsonl"
        written = session.export_telemetry(path)
        return path if written or path.exists() else None

    def _worker(self, robot_id: str) -> _SessionWorker:
        worker = self._workers.get(robot_id)
        if worker is None:
            raise ConfigurationError(f"robot {robot_id!r} has no open session")
        return worker
