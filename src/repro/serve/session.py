"""DetectorSession: a resident, resumable detector fed one message at a time.

The run-to-completion entry points (:meth:`repro.core.detector.RoboADS.replay`,
:func:`repro.eval.runner.run_scenario`) drive a detector over a whole mission
in one call. A :class:`DetectorSession` inverts the control flow for the
service-shaped deployment: the detector stays resident, messages arrive one
at a time (possibly late, duplicated or out of order — the ingest policy
decides), and at any message boundary the session can be checkpointed into a
:class:`~repro.serve.snapshot.SessionSnapshot`, moved to another process,
and resumed bit-identically.

The equivalence contract — *streaming == batch == resume-after-checkpoint*
— is proven by ``tests/test_session_parity.py`` (golden traces at 1e-10) and
the hypothesis round-trip properties in ``tests/test_session_properties.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.detector import DetectionReport, RoboADS
from ..obs.telemetry import RecordingTelemetry, Telemetry
from .ingest import IngestPolicy, IngestStats, SequenceTracker
from .messages import SessionMessage
from .snapshot import SNAPSHOT_VERSION, SessionSnapshot

__all__ = ["DetectorSession"]


class DetectorSession:
    """One robot's resident detector plus its streaming bookkeeping.

    Parameters
    ----------
    detector:
        The wrapped :class:`~repro.core.detector.RoboADS`. The session owns
        its mutable state from here on (``reset=True`` starts it fresh;
        pass ``reset=False`` to adopt a detector mid-mission).
    robot_id:
        Identity used in snapshots and telemetry export filenames.
    policy:
        Ingest sequencing policy (default: drop stale/duplicate arrivals).
    telemetry:
        Optional sink attached to the detector for the session's lifetime; a
        :class:`~repro.obs.telemetry.RecordingTelemetry` additionally enables
        incremental JSONL export (:meth:`export_telemetry`) with cursors that
        survive checkpoint/restore.
    reset:
        Reset the detector on construction (default True).
    """

    def __init__(
        self,
        detector: RoboADS,
        robot_id: str = "robot",
        policy: IngestPolicy | None = None,
        telemetry: Telemetry | None = None,
        reset: bool = True,
    ) -> None:
        self._detector = detector
        self._robot_id = str(robot_id)
        self._tracker = SequenceTracker(policy)
        if reset:
            detector.reset()
        if telemetry is not None:
            detector.attach_telemetry(telemetry)
        self._messages_processed = 0
        self._telemetry_exported = 0
        self._last_report: DetectionReport | None = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def robot_id(self) -> str:
        """The session's identity (snapshot bookkeeping, export filenames)."""
        return self._robot_id

    @property
    def detector(self) -> RoboADS:
        """The wrapped resident detector."""
        return self._detector

    @property
    def ingest_stats(self) -> IngestStats:
        """Delivery counters maintained by the ingest tracker."""
        return self._tracker.stats

    @property
    def messages_processed(self) -> int:
        """How many messages actually reached the detector."""
        return self._messages_processed

    @property
    def last_report(self) -> DetectionReport | None:
        """The newest detector report (``None`` before the first message)."""
        return self._last_report

    def _recording(self) -> RecordingTelemetry | None:
        telemetry = self._detector.telemetry
        return telemetry if isinstance(telemetry, RecordingTelemetry) else None

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def process(self, message: SessionMessage) -> DetectionReport | None:
        """Consume one message; return the detector's report, or ``None``.

        ``None`` means the ingest policy suppressed the message (stale or
        duplicate delivery) — the detector never saw it, so the recursion is
        untouched and the caller should treat the iteration as absent, not
        negative.
        """
        if not self.admit(message):
            return None
        return self.apply(message)

    def admit(self, message: SessionMessage) -> bool:
        """Run only the ingest-policy half of :meth:`process`.

        Returns whether the detector should see *message*. Split out so a
        fused stepper (:mod:`repro.serve.fused`) can gate admission for a
        whole batch before advancing any detector, keeping ingest counters
        exactly where a serial :meth:`process` loop would leave them.
        """
        return self._tracker.admit(message)

    def apply(self, message: SessionMessage) -> DetectionReport:
        """Run only the detector half of :meth:`process`.

        Steps the detector with an already-admitted *message* and updates the
        session counters. Callers must have taken a ``True`` from
        :meth:`admit` for this message first; :meth:`process` is the fused
        pair.
        """
        report = self._detector.step(
            message.control, message.reading, available=message.available
        )
        self._messages_processed += 1
        self._last_report = report
        return report

    def absorb(self, report: DetectionReport) -> DetectionReport:
        """Record a report produced outside :meth:`apply` for this session.

        The fused stepper advances the detector recursion itself (batched
        kernels over several sessions) and hands each session its finished
        report; this keeps ``messages_processed`` / ``last_report`` exactly
        as a serial :meth:`apply` would have left them.
        """
        self._messages_processed += 1
        self._last_report = report
        return report

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self) -> SessionSnapshot:
        """Freeze the session at the current message boundary.

        The snapshot carries the detector recursion, ingest position and
        telemetry cursors (plus any recorded-but-unexported events, so a
        migrated session flushes them from its new process). Checkpointing
        is read-only — the session continues unaffected.
        """
        recording = self._recording()
        pending: tuple = ()
        if recording is not None:
            pending = tuple(recording.events[self._telemetry_exported :])
        return SessionSnapshot(
            version=SNAPSHOT_VERSION,
            robot_id=self._robot_id,
            messages_processed=self._messages_processed,
            detector_state=self._detector.snapshot_state(),
            ingest_state=self._tracker.snapshot_state(),
            telemetry_exported=self._telemetry_exported,
            telemetry_pending=pending,
        )

    def restore(self, snapshot: SessionSnapshot) -> None:
        """Resume from *snapshot*, replacing all session state.

        The detector must be configured identically to the one the snapshot
        came from (same rig/modes/decision parameters — the factory pattern:
        rebuild via the rig, then restore). Raises
        :class:`~repro.errors.SnapshotVersionError` on a format-version
        mismatch and :class:`~repro.errors.SnapshotCompatibilityError` on a
        configuration mismatch, both without corrupting the current state.
        """
        snapshot.require_version()
        self._detector.restore_state(snapshot.detector_state)
        self._tracker.restore_state(snapshot.ingest_state)
        self._messages_processed = int(snapshot.messages_processed)
        self._last_report = None
        recording = self._recording()
        if recording is not None:
            # The new process's sink starts from the snapshot's unflushed
            # tail; everything before the cursor already lives in the
            # exported JSONL on the previous worker.
            recording.events = list(snapshot.telemetry_pending)
            self._telemetry_exported = 0
        else:
            self._telemetry_exported = int(snapshot.telemetry_exported)

    @classmethod
    def resume(
        cls,
        detector: RoboADS,
        snapshot: SessionSnapshot,
        policy: IngestPolicy | None = None,
        telemetry: Telemetry | None = None,
        robot_id: str | None = None,
    ) -> "DetectorSession":
        """Build a session around a freshly-constructed detector and restore.

        The worker-migration entry point: the new process rebuilds the
        detector from configuration (e.g. ``rig.detector()``), then adopts
        the snapshot's state. Equivalent to constructing a session and
        calling :meth:`restore`. *robot_id* optionally re-keys the migrated
        session (default: keep the snapshot's identity).
        """
        session = cls(
            detector,
            robot_id=snapshot.robot_id if robot_id is None else robot_id,
            policy=policy,
            telemetry=telemetry,
            reset=False,
        )
        session.restore(snapshot)
        return session

    # ------------------------------------------------------------------
    # Telemetry export
    # ------------------------------------------------------------------
    def export_telemetry(self, path) -> int:
        """Append the unexported telemetry events to *path* as JSONL.

        Incremental: each call flushes only the events recorded since the
        previous call (the cursor is part of the snapshot, so a resumed
        session never re-exports). Returns the number of events written;
        0 (and no file touched) when no recording sink is attached.
        """
        recording = self._recording()
        if recording is None:
            return 0
        pending = recording.events[self._telemetry_exported :]
        if not pending:
            return 0
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as fh:
            for event in pending:
                fh.write(json.dumps(event.to_record(), sort_keys=True) + "\n")
        self._telemetry_exported = len(recording.events)
        return len(pending)
