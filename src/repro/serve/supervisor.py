"""Worker supervision: liveness checks, capped-backoff respawn, recovery.

The :class:`~repro.serve.shard.ShardManager` owns the mechanics of running
sessions across worker processes; the :class:`Supervisor` owns the *policy*
of keeping them alive:

* **Liveness** — every worker emits traffic continuously (acks while busy,
  heartbeats every ``heartbeat_interval`` while idle), so parent-side
  silence longer than ``heartbeat_timeout`` can only mean a hung or dead
  process. A broken pipe or a reaped process is declared immediately.
* **Respawn with capped exponential backoff** — a dying worker is replaced
  after ``backoff_base_s * backoff_factor**(streak-1)`` seconds, capped at
  ``backoff_cap_s``; the streak resets once a worker survives
  ``backoff_reset_s``. After ``max_restarts`` consecutive deaths the slot is
  retired and its sessions fail with the typed
  :class:`~repro.errors.ShardRecoveryError` instead of crash-looping.
* **Recovery orchestration** — before the replacement starts, events the
  dead worker already wrote to its pipe are salvaged (they represent real
  processing), then each hosted session is restored from the latest spooled
  snapshot and the manager's in-memory journal is replayed beyond it. The
  golden parity tests prove the result is bit-identical to a run that never
  crashed.

Every recovery is recorded as a :class:`RecoveryEvent`; the chaos harness
(:mod:`repro.serve.chaos`) reduces the event list into its
:class:`~repro.serve.chaos.ChaosReport`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ConfigurationError, ShardRecoveryError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a module cycle
    from .shard import ShardManager, WorkerHandle

__all__ = ["SupervisorConfig", "RecoveryEvent", "Supervisor"]


@dataclass(frozen=True)
class SupervisorConfig:
    """Tunables for worker liveness and respawn behavior.

    Attributes
    ----------
    heartbeat_interval:
        Worker-side idle heartbeat period (seconds). Busy workers need no
        heartbeats — every ack counts as liveness.
    heartbeat_timeout:
        Parent-side silence threshold before a worker is declared hung and
        killed. Must exceed ``heartbeat_interval`` with margin.
    backoff_base_s / backoff_factor / backoff_cap_s:
        Capped exponential respawn delay: the n-th *consecutive* death waits
        ``min(base * factor**(n-1), cap)`` seconds before the replacement
        starts.
    backoff_reset_s:
        A worker surviving this long resets its consecutive-death streak.
    max_restarts:
        Consecutive deaths tolerated per worker slot before it is retired
        and its sessions fail typed (``None`` = unlimited).
    """

    heartbeat_interval: float = 0.1
    heartbeat_timeout: float = 2.0
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap_s: float = 1.0
    backoff_reset_s: float = 5.0
    max_restarts: int | None = 5

    def __post_init__(self) -> None:
        """Validate the tunables at construction."""
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise ConfigurationError("heartbeat interval and timeout must be positive")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ConfigurationError(
                "heartbeat_timeout must exceed heartbeat_interval, otherwise "
                "an idle worker is indistinguishable from a hung one"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < self.backoff_base_s:
            raise ConfigurationError("backoff must satisfy 0 <= base <= cap")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if self.max_restarts is not None and self.max_restarts < 1:
            raise ConfigurationError("max_restarts must be positive (or None)")


@dataclass(frozen=True)
class RecoveryEvent:
    """One completed (or abandoned) worker recovery.

    Attributes
    ----------
    slot:
        The worker slot that died.
    reason:
        ``"crash"`` (process died / pipe broke) or ``"hang"`` (heartbeat
        timeout — the process was alive but silent and was killed).
    robot_ids:
        Sessions hosted by the dead worker, in registration order.
    replayed:
        Journal messages re-submitted to reach the pre-crash state.
    latency_s:
        Wall-clock seconds from death detection to every session restored
        and its journal replayed (includes the backoff delay).
    streak:
        The slot's consecutive-death count including this death.
    recovered:
        False when the restart budget was exhausted and the slot retired.
    """

    slot: int
    reason: str
    robot_ids: tuple[str, ...]
    replayed: int
    latency_s: float
    streak: int
    recovered: bool


class Supervisor:
    """Health-checks shard workers and orchestrates their recovery.

    One supervisor per :class:`~repro.serve.shard.ShardManager`; its
    :attr:`events` list accumulates every :class:`RecoveryEvent` for
    reporting (the chaos harness and ``scripts/chaos_smoke.py`` read it).
    """

    def __init__(self, config: SupervisorConfig | None = None) -> None:
        self.config = config or SupervisorConfig()
        self.events: list[RecoveryEvent] = []

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def crashes_survived(self) -> int:
        """Recoveries that fully restored the dead worker's sessions."""
        return sum(1 for event in self.events if event.recovered)

    @property
    def messages_replayed(self) -> int:
        """Total journal messages re-submitted across all recoveries."""
        return sum(event.replayed for event in self.events)

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def check(self, manager: "ShardManager") -> None:
        """Declare dead/hung workers and recover them.

        Called by the manager after every pump: a worker whose process has
        exited (or whose pipe broke) is recovered as a ``"crash"``; one that
        is alive but silent past ``heartbeat_timeout`` is killed and
        recovered as a ``"hang"``. Pipe-buffered events are read *before*
        this runs, so a busy-but-healthy worker can never be misdeclared.
        """
        now = time.perf_counter()
        for handle in manager.handles:
            if handle.retired or handle.process is None:
                continue
            if handle.broken or not handle.process.is_alive():
                self.recover(manager, handle, "crash")
            elif now - handle.last_seen > self.config.heartbeat_timeout:
                self.recover(manager, handle, "hang")

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def backoff_delay(self, streak: int) -> float:
        """The respawn delay for a slot's n-th consecutive death."""
        delay = self.config.backoff_base_s * self.config.backoff_factor ** max(
            0, streak - 1
        )
        return min(delay, self.config.backoff_cap_s)

    def recover(self, manager: "ShardManager", handle: "WorkerHandle", reason: str) -> RecoveryEvent:
        """Replace a dead worker and restore its sessions.

        The sequence: salvage events the dead worker already piped out
        (completed processing — spooled snapshots shrink the replay), kill
        and reap the process, wait out the capped backoff, spawn the
        replacement, then restore every hosted session from the latest
        spooled snapshot and replay the journal beyond it. When the restart
        budget is exhausted the slot is retired instead and its sessions
        fail with :class:`~repro.errors.ShardRecoveryError`.
        """
        started = time.perf_counter()
        robot_ids = tuple(handle.session_ids)
        manager.salvage(handle)
        handle.terminate()

        now = time.perf_counter()
        if (
            handle.last_death is not None
            and now - handle.last_death > self.config.backoff_reset_s
        ):
            handle.streak = 0
        handle.streak += 1
        handle.last_death = now
        handle.total_deaths += 1

        budget = self.config.max_restarts
        if budget is not None and handle.streak > budget:
            handle.retired = True
            failure = ShardRecoveryError(
                f"worker slot {handle.slot} died {handle.streak} consecutive "
                f"times (budget {budget}); retiring the shard instead of "
                "crash-looping"
            )
            manager.fail_sessions(robot_ids, failure)
            event = RecoveryEvent(
                slot=handle.slot,
                reason=reason,
                robot_ids=robot_ids,
                replayed=0,
                latency_s=time.perf_counter() - started,
                streak=handle.streak,
                recovered=False,
            )
            self.events.append(event)
            return event

        delay = self.backoff_delay(handle.streak)
        if delay > 0:
            time.sleep(delay)
        manager.spawn_worker(handle)
        replayed = manager.restore_slot(handle)
        event = RecoveryEvent(
            slot=handle.slot,
            reason=reason,
            robot_ids=robot_ids,
            replayed=replayed,
            latency_s=time.perf_counter() - started,
            streak=handle.streak,
            recovered=True,
        )
        self.events.append(event)
        return event
