"""Session messages: the streaming unit of detector input.

A resident detector session consumes one :class:`SessionMessage` per control
iteration — the planned command ``u_{k-1}``, the stacked reading ``z_k``, and
the delivery metadata the ingest layer sequences on (a per-robot monotone
sequence number plus the mission timestamp). This is the wire shape of the
run-to-completion loop's ``(u, z, availability)`` triple: everything
:meth:`repro.core.detector.RoboADS.step` takes, plus identity.

Messages are frozen and picklable, so they can cross process boundaries
(queues, sockets) unchanged and a recorded trace converts losslessly into a
message stream (:func:`repro.serve.adapter.trace_messages`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SessionMessage"]


@dataclass(frozen=True)
class SessionMessage:
    """One control iteration's detector input, addressed by sequence number.

    Attributes
    ----------
    seq:
        Per-robot monotone sequence number assigned at the producer (for a
        recorded trace, the step's :attr:`repro.sim.trace.SimulationTrace.sequences`
        entry). The ingest policy uses it to detect stale, duplicated and
        reordered deliveries — mirroring how :mod:`repro.sim.faults` models
        the delivery channel.
    t:
        Mission time of the reading (seconds).
    control:
        Planned command ``u_{k-1}`` (copied to float64).
    reading:
        Stacked sensor reading ``z_k`` in suite order (copied to float64).
    available:
        Names of the sensors actually delivered this iteration, or ``None``
        for nominal full delivery — exactly
        :meth:`~repro.core.detector.RoboADS.step`'s *available* argument.
    """

    seq: int
    t: float
    control: np.ndarray
    reading: np.ndarray
    available: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        """Coerce the payload to immutable-by-convention float64 copies."""
        object.__setattr__(self, "seq", int(self.seq))
        object.__setattr__(self, "t", float(self.t))
        object.__setattr__(
            self, "control", np.array(self.control, dtype=float, copy=True)
        )
        object.__setattr__(
            self, "reading", np.array(self.reading, dtype=float, copy=True)
        )
        if self.available is not None:
            object.__setattr__(self, "available", tuple(self.available))
