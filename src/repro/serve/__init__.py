"""Streaming detection service: resident, resumable detector sessions.

Everything in :mod:`repro.core` and :mod:`repro.eval` runs a mission to
completion. This package turns the detector into a *service* component
(``docs/STREAMING.md``):

* :mod:`repro.serve.messages` — :class:`SessionMessage`, the ``(u, z,
  availability)`` streaming unit with producer-side sequencing.
* :mod:`repro.serve.ingest` — :class:`IngestPolicy` /
  :class:`SequenceTracker`: what a session does with late, stale and
  duplicated deliveries (the :mod:`repro.sim.faults` channel vocabulary at
  the service boundary).
* :mod:`repro.serve.session` — :class:`DetectorSession`: a resident
  detector fed one message at a time, checkpointable at any message
  boundary.
* :mod:`repro.serve.snapshot` — :class:`SessionSnapshot`: the versioned,
  picklable pause/migrate/resume primitive (bit-identical resume).
* :mod:`repro.serve.service` — :class:`FleetService`: an asyncio host for
  many concurrent sessions with bounded-queue backpressure and per-session
  telemetry export.
* :mod:`repro.serve.fused` — :class:`FusedSessionBank`: the batched
  stepping engine behind ``fused=True``; co-rigged live sessions advance
  through one stacked-lattice kernel call per drain tick, bit-identical to
  serial stepping.
* :mod:`repro.serve.adapter` — :func:`trace_messages`: recorded missions as
  message streams.

The crash-tolerant multi-process half (``docs/STREAMING.md`` § crash
recovery):

* :mod:`repro.serve.shard` — :class:`ShardManager`: sessions partitioned
  across supervised worker processes, with a bounded per-session message
  journal for replay.
* :mod:`repro.serve.spool` — :class:`SnapshotSpool`: crash-durable,
  generation-numbered snapshot storage (atomic staging, retention gc).
* :mod:`repro.serve.supervisor` — :class:`Supervisor`: heartbeat liveness,
  capped-backoff respawn, restore-from-spool recovery orchestration.
* :mod:`repro.serve.chaos` — :class:`ChaosMonkey` / :func:`run_chaos_fleet`:
  seeded kill/hang/slow fault injection proving recovery is bit-identical.
"""

from .adapter import trace_messages
from .chaos import ChaosConfig, ChaosMonkey, ChaosReport, Strike, run_chaos_fleet
from .fused import FusedOutcome, FusedSessionBank
from .ingest import IngestPolicy, IngestStats, SequenceTracker
from .messages import SessionMessage
from .service import FleetService, SessionResult
from .session import DetectorSession
from .shard import ShardManager, ShardSessionResult, WorkerHandle
from .snapshot import SNAPSHOT_PICKLE_PROTOCOL, SNAPSHOT_VERSION, SessionSnapshot
from .spool import SnapshotSpool
from .supervisor import RecoveryEvent, Supervisor, SupervisorConfig

__all__ = [
    "SessionMessage",
    "IngestPolicy",
    "IngestStats",
    "SequenceTracker",
    "DetectorSession",
    "SessionSnapshot",
    "SNAPSHOT_PICKLE_PROTOCOL",
    "SNAPSHOT_VERSION",
    "FleetService",
    "SessionResult",
    "FusedSessionBank",
    "FusedOutcome",
    "trace_messages",
    "ShardManager",
    "ShardSessionResult",
    "WorkerHandle",
    "SnapshotSpool",
    "Supervisor",
    "SupervisorConfig",
    "RecoveryEvent",
    "ChaosConfig",
    "ChaosMonkey",
    "ChaosReport",
    "Strike",
    "run_chaos_fleet",
]
