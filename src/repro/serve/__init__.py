"""Streaming detection service: resident, resumable detector sessions.

Everything in :mod:`repro.core` and :mod:`repro.eval` runs a mission to
completion. This package turns the detector into a *service* component
(``docs/STREAMING.md``):

* :mod:`repro.serve.messages` — :class:`SessionMessage`, the ``(u, z,
  availability)`` streaming unit with producer-side sequencing.
* :mod:`repro.serve.ingest` — :class:`IngestPolicy` /
  :class:`SequenceTracker`: what a session does with late, stale and
  duplicated deliveries (the :mod:`repro.sim.faults` channel vocabulary at
  the service boundary).
* :mod:`repro.serve.session` — :class:`DetectorSession`: a resident
  detector fed one message at a time, checkpointable at any message
  boundary.
* :mod:`repro.serve.snapshot` — :class:`SessionSnapshot`: the versioned,
  picklable pause/migrate/resume primitive (bit-identical resume).
* :mod:`repro.serve.service` — :class:`FleetService`: an asyncio host for
  many concurrent sessions with bounded-queue backpressure and per-session
  telemetry export.
* :mod:`repro.serve.adapter` — :func:`trace_messages`: recorded missions as
  message streams.
"""

from .adapter import trace_messages
from .ingest import IngestPolicy, IngestStats, SequenceTracker
from .messages import SessionMessage
from .service import FleetService, SessionResult
from .session import DetectorSession
from .snapshot import SNAPSHOT_VERSION, SessionSnapshot

__all__ = [
    "SessionMessage",
    "IngestPolicy",
    "IngestStats",
    "SequenceTracker",
    "DetectorSession",
    "SessionSnapshot",
    "SNAPSHOT_VERSION",
    "FleetService",
    "SessionResult",
    "trace_messages",
]
