"""Versioned session snapshots: the pause/migrate/resume primitive.

A :class:`SessionSnapshot` freezes everything a
:class:`~repro.serve.session.DetectorSession` needs to continue a mission
bit-for-bit — the detector's recursion state (shared estimate, mode
probabilities, consistency-window history, c-of-w decision windows), the
ingest sequencing position, and the telemetry cursors. The recursive NUISE
structure is what makes this small: the filters themselves carry no
per-iteration state, so the whole resumable object is a few arrays and
counters.

Snapshots are plain picklable dataclasses with an explicit format version.
``to_bytes``/``from_bytes`` wrap pickling so callers move sessions across
processes (worker migration, the sharding primitive for fleet scale) without
touching the wire format; a version mismatch raises the typed
:class:`~repro.errors.SnapshotVersionError` *before* any state is applied,
so an incompatible snapshot can never corrupt a resident session.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

from ..errors import SnapshotError, SnapshotVersionError

__all__ = ["SNAPSHOT_PICKLE_PROTOCOL", "SNAPSHOT_VERSION", "SessionSnapshot"]

#: Current snapshot format version. Bump on any change to the snapshot's
#: structure or to the meaning of the state dicts it carries; restore
#: refuses other versions with :class:`~repro.errors.SnapshotVersionError`.
SNAPSHOT_VERSION = 1

#: Pickle protocol pinned for :meth:`SessionSnapshot.to_bytes`. The
#: bit-identity proofs (golden parity, crash recovery, fused-vs-serial)
#: byte-compare snapshot blobs, so the encoding must not drift with the
#: interpreter's ``pickle.HIGHEST_PROTOCOL`` default; protocol 5 is
#: available from Python 3.8 (< our 3.10 floor) and supports the
#: out-of-band buffers large array states benefit from. Bump together
#: with :data:`SNAPSHOT_VERSION` if the wire encoding ever changes.
SNAPSHOT_PICKLE_PROTOCOL = 5


@dataclass(frozen=True)
class SessionSnapshot:
    """One session's complete resumable state at a message boundary.

    Attributes
    ----------
    version:
        Snapshot format version (must equal :data:`SNAPSHOT_VERSION` to
        restore).
    robot_id:
        The session's identity, carried for bookkeeping; restore does not
        require it to match (a migrated session may be re-keyed).
    messages_processed:
        How many messages the session had processed at checkpoint time.
    detector_state:
        :meth:`repro.core.detector.RoboADS.snapshot_state` — engine
        recursion plus decision windows.
    ingest_state:
        :meth:`repro.serve.ingest.SequenceTracker.snapshot_state` —
        sequencing position and delivery counters.
    telemetry_exported:
        How many telemetry events the session had already flushed to its
        JSONL export when the checkpoint was taken (the export cursor).
    telemetry_pending:
        The recorded-but-unflushed telemetry events, carried in the snapshot
        so a migrated session exports them from its new process; empty when
        no recording sink was attached.
    """

    version: int
    robot_id: str
    messages_processed: int
    detector_state: dict
    ingest_state: dict
    telemetry_exported: int = 0
    telemetry_pending: tuple = ()

    def require_version(self) -> None:
        """Raise :class:`~repro.errors.SnapshotVersionError` unless current."""
        if self.version != SNAPSHOT_VERSION:
            raise SnapshotVersionError(
                f"snapshot format version {self.version} cannot be restored by "
                f"this library (expects {SNAPSHOT_VERSION}); re-checkpoint the "
                "session with a matching library revision"
            )

    def to_bytes(self) -> bytes:
        """Serialize for transport/storage (the worker-migration wire form).

        The protocol is pinned to :data:`SNAPSHOT_PICKLE_PROTOCOL` so two
        interpreters with different ``pickle.HIGHEST_PROTOCOL`` defaults
        still produce byte-identical blobs for identical sessions.
        """
        return pickle.dumps(self, protocol=SNAPSHOT_PICKLE_PROTOCOL)

    @staticmethod
    def from_bytes(blob: bytes) -> "SessionSnapshot":
        """Inverse of :meth:`to_bytes`, with version checking.

        Raises :class:`~repro.errors.SnapshotError` when the bytes do not
        decode to a :class:`SessionSnapshot`, and
        :class:`~repro.errors.SnapshotVersionError` on a format-version
        mismatch — both before the caller can touch any session state.
        """
        try:
            snapshot = pickle.loads(blob)
        except Exception as exc:  # pickle raises a zoo of error types
            raise SnapshotError(f"snapshot bytes failed to decode: {exc}") from exc
        if not isinstance(snapshot, SessionSnapshot):
            raise SnapshotError(
                f"decoded object is {type(snapshot).__name__}, not a SessionSnapshot"
            )
        snapshot.require_version()
        return snapshot
