"""Trace-to-message adapter: recorded missions as streaming input.

A :class:`~repro.sim.trace.SimulationTrace` records exactly the per-step
quantities a :class:`~repro.serve.messages.SessionMessage` carries — planned
control, stacked reading, delivery mask, timestamp, and (since the streaming
layer) an explicit sequence number. This module converts between the two, so
every recorded or simulated mission doubles as a replayable message feed for
sessions and the fleet service, and the parity tests can prove streaming
equals batch on the *same* inputs.
"""

from __future__ import annotations

from typing import Iterator

from ..sim.trace import SimulationTrace
from .messages import SessionMessage

__all__ = ["trace_messages"]


def trace_messages(trace: SimulationTrace) -> Iterator[SessionMessage]:
    """Yield one :class:`SessionMessage` per recorded step, in trace order.

    Sequence numbers come from the trace's explicit
    :attr:`~repro.sim.trace.SimulationTrace.sequences` column (the step index
    for traces recorded by this library's simulator), so a deliberately
    perturbed trace — duplicated or reordered steps — streams with its
    perturbation intact and the ingest policy's response becomes testable
    against recorded data.
    """
    for k in range(len(trace)):
        yield SessionMessage(
            seq=trace.sequences[k],
            t=trace.times[k],
            control=trace.planned_controls[k],
            reading=trace.readings[k],
            available=trace.availability[k] if trace.availability else None,
        )
