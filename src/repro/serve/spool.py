"""Snapshot spooling: crash-durable session checkpoints on disk.

A :class:`SnapshotSpool` persists :meth:`SessionSnapshot.to_bytes
<repro.serve.snapshot.SessionSnapshot.to_bytes>` blobs so a session can be
restored after its hosting process dies. Layout — one directory per robot,
one file per snapshot *generation* (the submit index the snapshot covers)::

    <root>/
      .gitignore                     self-ignoring, like benchmarks/artifacts/
      <robot_id>/gen-000000000120.snap
      <robot_id>/gen-000000000140.snap   <- latest() picks the highest

Writes follow the same atomic-staging discipline as
:mod:`repro.campaign.store`: the blob lands in a ``mkstemp`` temp file in
the destination directory and is moved into place with :func:`os.replace`,
so a crash mid-write can never leave a truncated snapshot that a later
restore would trust. Retention is generation-numbered: :meth:`put` keeps the
newest ``keep`` generations per robot and :meth:`gc` reclaims stale
generations (and, given a live-session set, whole directories of sessions
that no longer exist — mirroring the store's reachability gc).

Robot ids are percent-encoded into directory names, so any id the session
layer accepts (including path separators) spools safely.
"""

from __future__ import annotations

import os
import re
import tempfile
from pathlib import Path
from urllib.parse import quote, unquote

from ..errors import ConfigurationError

__all__ = ["SnapshotSpool"]

#: ``gen-<generation>.snap`` — the generation is the submit index covered.
_GEN_RE = re.compile(r"^gen-(\d{12})\.snap$")


class SnapshotSpool:
    """Durable, generation-numbered snapshot storage for one fleet.

    Parameters
    ----------
    root:
        Spool directory (created lazily, self-ignoring via ``.gitignore``).
    keep:
        Newest generations retained per robot by :meth:`put` (default 2 — the
        latest plus one predecessor, so a crash *during* retention pruning
        still leaves a restorable snapshot behind).
    """

    def __init__(self, root, keep: int = 2) -> None:
        if int(keep) != keep or keep < 1:
            raise ConfigurationError("keep must be a positive integer")
        self.root = Path(root)
        self.keep = int(keep)

    def _ensure_root(self) -> None:
        # Self-ignoring, like campaign/store.py: spooled snapshots are
        # derived crash-recovery state and must never be committed.
        marker = self.root / ".gitignore"
        if not marker.is_file():
            self.root.mkdir(parents=True, exist_ok=True)
            marker.write_text("*\n")

    def _session_dir(self, robot_id: str) -> Path:
        return self.root / quote(str(robot_id), safe="")

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def put(self, robot_id: str, generation: int, blob: bytes) -> Path:
        """Persist one snapshot atomically; returns the final path.

        *generation* is the monotone submit index the snapshot covers —
        recovery restores from the highest generation and replays journal
        entries beyond it. Older generations beyond ``keep`` are pruned
        after the new one is durably in place.
        """
        if int(generation) != generation or generation < 0:
            raise ConfigurationError("generation must be a non-negative integer")
        self._ensure_root()
        directory = self._session_dir(robot_id)
        directory.mkdir(parents=True, exist_ok=True)
        final = directory / f"gen-{int(generation):012d}.snap"
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(bytes(blob))
            os.replace(tmp, final)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        for stale in self.generations(robot_id)[: -self.keep]:
            (directory / f"gen-{stale:012d}.snap").unlink(missing_ok=True)
        return final

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def sessions(self) -> list[str]:
        """Robot ids with at least one spooled snapshot (sorted)."""
        if not self.root.is_dir():
            return []
        return sorted(
            unquote(entry.name)
            for entry in self.root.iterdir()
            if entry.is_dir() and self._generations_in(entry)
        )

    @staticmethod
    def _generations_in(directory: Path) -> list[int]:
        found = []
        for entry in directory.iterdir():
            match = _GEN_RE.match(entry.name)
            if match and entry.is_file():
                found.append(int(match.group(1)))
        return sorted(found)

    def generations(self, robot_id: str) -> list[int]:
        """Spooled generations for *robot_id*, oldest first."""
        directory = self._session_dir(robot_id)
        if not directory.is_dir():
            return []
        return self._generations_in(directory)

    def load(self, robot_id: str, generation: int) -> bytes:
        """The snapshot blob at an exact generation."""
        path = self._session_dir(robot_id) / f"gen-{int(generation):012d}.snap"
        if not path.is_file():
            raise ConfigurationError(
                f"no spooled snapshot for robot {robot_id!r} at generation "
                f"{generation} (have {self.generations(robot_id)})"
            )
        return path.read_bytes()

    def latest(self, robot_id: str) -> tuple[int, bytes] | None:
        """The newest ``(generation, blob)`` for *robot_id*, or ``None``."""
        generations = self.generations(robot_id)
        if not generations:
            return None
        return generations[-1], self.load(robot_id, generations[-1])

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def gc(self, keep: int | None = None, live: set[str] | None = None) -> list[Path]:
        """Delete stale generations (and, with *live*, dead sessions).

        Per robot, everything older than the newest *keep* generations
        (default: the spool's retention setting) is removed. When *live* is
        given, entire session directories whose robot id is not in the set
        are reclaimed too — the reachability rule of
        :meth:`repro.campaign.store.ResultStore.gc` applied to sessions.
        Returns the deleted paths.
        """
        keep = self.keep if keep is None else int(keep)
        if keep < 1:
            raise ConfigurationError("gc keep must be a positive integer")
        deleted: list[Path] = []
        if not self.root.is_dir():
            return deleted
        for entry in sorted(self.root.iterdir()):
            if not entry.is_dir():
                continue
            robot_id = unquote(entry.name)
            stale = self._generations_in(entry)
            if live is not None and robot_id not in live:
                pass  # whole session unreachable: drop every generation
            else:
                stale = stale[:-keep]
            for generation in stale:
                path = entry / f"gen-{generation:012d}.snap"
                path.unlink(missing_ok=True)
                deleted.append(path)
            if not any(entry.iterdir()):
                entry.rmdir()
        return deleted
