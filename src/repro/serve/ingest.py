"""Ingest sequencing: what a session does with late, stale or duplicate input.

The fault layer (:mod:`repro.sim.faults`) established the delivery-channel
vocabulary on the simulation side: packets drop, arrive late, duplicate and
reorder, and the *last packet to arrive wins* at the consumer. The streaming
ingest layer applies the same vocabulary at the service boundary, where the
question inverts: given messages that already carry their producer-side
sequence numbers, which should a resident detector actually process?

Three orderings cover the deployments we model:

* ``"drop_stale"`` (default) — process only messages that advance the
  sequence; count and drop duplicates (same seq as the newest processed) and
  stale arrivals (older seq). The detector's recursion then sees a monotone
  subsequence of the mission — precisely the degraded-but-consistent view
  the graceful-degradation path was built for.
* ``"accept"`` — process everything in arrival order, mirroring the fault
  channel's last-to-arrive-wins hold semantics; reordered arrivals are
  counted but not suppressed. Use when the producer already guarantees the
  arrival order is the order to trust.
* ``"strict"`` — any non-advancing sequence raises
  :class:`~repro.errors.IngestSequenceError`; for producers (e.g. replay
  harnesses) where out-of-order input can only mean a bug.

Sequence *gaps* are never an error: an absent message is indistinguishable
from upstream loss, and the detector handles missing iterations the same way
it handles dropped sensor packets — by continuing from what it has.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError, IngestSequenceError
from .messages import SessionMessage

__all__ = ["IngestPolicy", "IngestStats", "SequenceTracker"]

_ORDERINGS = ("drop_stale", "accept", "strict")


@dataclass(frozen=True)
class IngestPolicy:
    """How a session sequences its inbound messages.

    Attributes
    ----------
    ordering:
        One of ``"drop_stale"`` (default), ``"accept"``, ``"strict"`` — see
        the module docstring for semantics.
    """

    ordering: str = "drop_stale"

    def __post_init__(self) -> None:
        """Reject unknown orderings at construction."""
        if self.ordering not in _ORDERINGS:
            raise ConfigurationError(
                f"unknown ingest ordering {self.ordering!r}: valid orderings "
                f"are {_ORDERINGS}"
            )


@dataclass
class IngestStats:
    """Counters describing one session's delivery history.

    ``received = processed + dropped_stale + duplicates`` always holds;
    ``reordered`` counts *accepted* non-monotone arrivals (``"accept"``
    ordering only), so it overlaps ``processed``.
    """

    received: int = 0
    processed: int = 0
    dropped_stale: int = 0
    duplicates: int = 0
    reordered: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view (JSONL export and snapshots)."""
        return {
            "received": self.received,
            "processed": self.processed,
            "dropped_stale": self.dropped_stale,
            "duplicates": self.duplicates,
            "reordered": self.reordered,
        }


class SequenceTracker:
    """Applies an :class:`IngestPolicy` to an arriving message stream.

    One tracker per session; its mutable state (the newest processed
    sequence number plus the counters) is part of the session snapshot, so a
    restored session continues sequencing exactly where the checkpoint left
    off.
    """

    def __init__(self, policy: IngestPolicy | None = None) -> None:
        self._policy = policy or IngestPolicy()
        self._last_seq: int | None = None
        self._stats = IngestStats()

    @property
    def policy(self) -> IngestPolicy:
        """The sequencing policy this tracker applies."""
        return self._policy

    @property
    def stats(self) -> IngestStats:
        """Live counters (mutated by :meth:`admit`)."""
        return self._stats

    @property
    def last_seq(self) -> int | None:
        """Newest processed sequence number (``None`` before any message)."""
        return self._last_seq

    def admit(self, message: SessionMessage) -> bool:
        """Record one arrival and decide whether the session processes it.

        Returns True when the message should reach the detector. Under the
        ``"strict"`` ordering a non-advancing sequence raises
        :class:`~repro.errors.IngestSequenceError` instead of returning.
        """
        stats = self._stats
        advancing = self._last_seq is None or message.seq > self._last_seq
        if not advancing and self._policy.ordering == "strict":
            # Raised before any counter moves: a strict-mode violation is a
            # protocol error, not a delivery observation.
            raise IngestSequenceError(
                f"message seq {message.seq} does not advance the stream "
                f"(newest processed: {self._last_seq}) under the strict ordering"
            )
        stats.received += 1
        if advancing:
            self._last_seq = message.seq
            stats.processed += 1
            return True
        if self._policy.ordering == "accept":
            stats.processed += 1
            stats.reordered += 1
            return True
        if message.seq == self._last_seq:
            stats.duplicates += 1
        else:
            stats.dropped_stale += 1
        return False

    # ------------------------------------------------------------------
    # Checkpoint/restore hooks (repro.serve.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Sequencing position and counters, for the session snapshot."""
        return {
            "ordering": self._policy.ordering,
            "last_seq": self._last_seq,
            "stats": self._stats.as_dict(),
        }

    def restore_state(self, state: dict) -> None:
        """Apply a prior :meth:`snapshot_state` (the policy must match)."""
        if state["ordering"] != self._policy.ordering:
            raise ConfigurationError(
                f"snapshot was taken under ingest ordering {state['ordering']!r}, "
                f"this tracker uses {self._policy.ordering!r}"
            )
        self._last_seq = None if state["last_seq"] is None else int(state["last_seq"])
        self._stats = IngestStats(**{k: int(v) for k, v in state["stats"].items()})
