"""Sharded fleet: detector sessions partitioned across worker processes.

:class:`~repro.serve.service.FleetService` hosts a fleet inside one asyncio
process — one core's throughput, one process's blast radius. This module is
the multi-process half of ROADMAP item 2: a :class:`ShardManager` partitions
robot sessions round-robin across supervised worker processes, frames
:class:`~repro.serve.messages.SessionMessage` traffic over
``multiprocessing`` pipes (the same fork-first discipline as
:mod:`repro.eval.parallel`), and keeps exactly the bookkeeping a crash
needs:

* a **bounded in-memory journal** per session — every message submitted
  since the last durably spooled snapshot (so its length is bounded by
  ``spool_every`` plus the in-flight window);
* a **snapshot spool** (:class:`~repro.serve.spool.SnapshotSpool`) — workers
  checkpoint each session every ``spool_every`` messages and the parent
  persists the blob atomically, pruning the journal up to the covered
  generation.

When a worker dies or hangs, the :class:`~repro.serve.supervisor.Supervisor`
respawns it with capped backoff and replays ``spool + journal`` — the
restored sessions are **bit-identical** to a run that never crashed (golden
parity in ``tests/test_shard.py``, randomized schedules in
``tests/test_chaos.py`` and ``scripts/chaos_smoke.py``).

The wire protocol is deliberately dumb: pickled tuples, FIFO per worker.
Parent → worker: ``open`` / ``msg`` / ``close`` / ``ping`` / ``chaos`` /
``shutdown``. Worker → parent: ``ack`` (one per message, carrying the
report), ``snap`` (periodic checkpoint blobs), ``closed``, ``error``
(deterministic session failure — never retried), ``hb`` idle heartbeats,
``pong`` and ``fatal``.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
import traceback
from collections import deque
from dataclasses import dataclass, field

from ..core.detector import DetectionReport
from ..errors import ConfigurationError, FleetClosureError, ShardSessionError
from ..eval.parallel import ensure_picklable
from .fused import FusedSessionBank
from .ingest import IngestPolicy, IngestStats
from .messages import SessionMessage
from .session import DetectorSession
from .snapshot import SessionSnapshot
from .spool import SnapshotSpool
from .supervisor import Supervisor, SupervisorConfig

__all__ = ["ShardManager", "ShardSessionResult", "WorkerHandle"]


# ----------------------------------------------------------------------
# Worker process body
# ----------------------------------------------------------------------
def _worker_main(
    conn,
    factory,
    heartbeat_interval: float,
    spool_every: int,
    fused: bool = False,
) -> None:
    """Host sessions inside one worker process; speak the pipe protocol.

    Sends an idle heartbeat every *heartbeat_interval* seconds of command
    silence so the parent can tell "busy" from "hung". With *spool_every*
    > 0, each session is checkpointed after that many submitted messages
    and the blob shipped to the parent for spooling.

    With *fused* the worker drains its pipe backlog before stepping:
    consecutive ``msg`` commands for distinct sessions coalesce into one
    :class:`~repro.serve.fused.FusedSessionBank` batch (bit-identical to
    serial stepping), acks ship in arrival order, and every control command
    — plus a second message for a session already in the batch — acts as a
    barrier that flushes the pending batch first. Per-session spool cadence
    and error reporting are unchanged.
    """
    sessions: dict[str, DetectorSession] = {}
    since_snap: dict[str, int] = {}
    latest_idx: dict[str, int] = {}
    errored: set[str] = set()
    slow_s = 0.0
    bank = FusedSessionBank() if fused else None
    pending: list[tuple[str, int, SessionMessage]] = []
    pending_ids: set[str] = set()

    def flush_batch() -> None:
        """Step the coalesced backlog through one fused bank call."""
        if not pending:
            return
        batch = pending[:]
        pending.clear()
        pending_ids.clear()
        if slow_s:
            time.sleep(slow_s * len(batch))
        outcomes = bank.process(
            [(sessions[rid], message) for rid, _idx, message in batch]
        )
        for (rid, idx, _message), outcome in zip(batch, outcomes):
            if outcome.error is not None:
                del sessions[rid]
                errored.add(rid)
                conn.send(
                    (
                        "error",
                        rid,
                        "".join(traceback.format_exception(outcome.error)),
                    )
                )
                continue
            conn.send(("ack", rid, idx, outcome.report))
            latest_idx[rid] = idx
            since_snap[rid] += 1
            if spool_every and since_snap[rid] >= spool_every:
                blob = sessions[rid].checkpoint().to_bytes()
                conn.send(("snap", rid, idx, blob))
                since_snap[rid] = 0

    try:
        while True:
            if pending:
                # Backlog mode: step the batch as soon as the pipe runs dry.
                if not conn.poll(0):
                    flush_batch()
                    continue
            elif not conn.poll(heartbeat_interval):
                conn.send(("hb",))
                continue
            try:
                command = conn.recv()
            except (EOFError, OSError):
                return  # parent went away; nothing left to serve
            op = command[0]
            if bank is not None:
                if op == "msg":
                    _, robot_id, idx, message = command
                    if robot_id not in sessions:
                        continue  # errored session: parent already knows
                    if robot_id in pending_ids:
                        # One message per session per batch: its successor
                        # depends on the recursion state this one produces.
                        flush_batch()
                    pending.append((robot_id, idx, message))
                    pending_ids.add(robot_id)
                    continue
                flush_batch()  # any control command is a batch barrier
            if op == "shutdown":
                return
            if op == "ping":
                conn.send(("pong", command[1]))
            elif op == "chaos":
                _, kind, arg = command
                if kind == "hang":
                    time.sleep(float(arg))  # no heartbeats: parent times out
                elif kind == "slow":
                    slow_s = float(arg)
                elif kind == "exit":
                    import os

                    os._exit(int(arg))  # hard crash, bypassing cleanup
            elif op == "open":
                _, robot_id, blob, policy = command
                try:
                    detector = factory()
                    if blob is None:
                        session = DetectorSession(
                            detector, robot_id=robot_id, policy=policy
                        )
                    else:
                        session = DetectorSession.resume(
                            detector,
                            SessionSnapshot.from_bytes(blob),
                            policy=policy,
                            robot_id=robot_id,
                        )
                except Exception:
                    errored.add(robot_id)
                    conn.send(("error", robot_id, traceback.format_exc()))
                else:
                    sessions[robot_id] = session
                    since_snap[robot_id] = 0
                    errored.discard(robot_id)
            elif op == "msg":
                _, robot_id, idx, message = command
                session = sessions.get(robot_id)
                if session is None:
                    continue  # errored session: parent already knows
                if slow_s:
                    time.sleep(slow_s)
                try:
                    report = session.process(message)
                except Exception:
                    del sessions[robot_id]
                    errored.add(robot_id)
                    conn.send(("error", robot_id, traceback.format_exc()))
                    continue
                conn.send(("ack", robot_id, idx, report))
                latest_idx[robot_id] = idx
                since_snap[robot_id] += 1
                if spool_every and since_snap[robot_id] >= spool_every:
                    blob = session.checkpoint().to_bytes()
                    conn.send(("snap", robot_id, idx, blob))
                    since_snap[robot_id] = 0
            elif op == "close":
                _, robot_id = command
                session = sessions.pop(robot_id, None)
                if session is None:
                    continue  # errored or already closed
                conn.send(
                    (
                        "closed",
                        robot_id,
                        session.checkpoint().to_bytes(),
                        session.ingest_stats.as_dict(),
                        session.messages_processed,
                    )
                )
    except (BrokenPipeError, KeyboardInterrupt):
        return
    except BaseException:
        try:
            conn.send(("fatal", traceback.format_exc()))
        except Exception:
            pass
        raise


# ----------------------------------------------------------------------
# Parent-side state
# ----------------------------------------------------------------------
@dataclass
class WorkerHandle:
    """Parent-side view of one worker slot: process, pipe, liveness.

    The *slot* is stable across respawns — sessions are assigned to slots,
    and recovery replaces the slot's process while keeping its identity,
    journal assignments and restart accounting.
    """

    slot: int
    process: multiprocessing.process.BaseProcess | None = None
    conn: multiprocessing.connection.Connection | None = None
    session_ids: list[str] = field(default_factory=list)
    last_seen: float = 0.0
    broken: bool = False
    retired: bool = False
    streak: int = 0
    last_death: float | None = None
    total_deaths: int = 0

    @property
    def pid(self) -> int | None:
        """The live worker's pid (``None`` between death and respawn)."""
        return None if self.process is None else self.process.pid

    def send(self, obj) -> bool:
        """Ship one command; returns False (and marks broken) on a dead pipe."""
        if self.conn is None or self.broken:
            return False
        try:
            self.conn.send(obj)
            return True
        except (BrokenPipeError, OSError):
            self.broken = True
            return False

    def kill_process(self) -> None:
        """SIGKILL and reap the worker, keeping the pipe open for salvage."""
        if self.process is not None:
            try:
                self.process.kill()
            except Exception:
                pass
            self.process.join(timeout=5.0)

    def close_conn(self) -> None:
        """Close the parent end of the pipe."""
        if self.conn is not None:
            try:
                self.conn.close()
            except Exception:
                pass
            self.conn = None

    def terminate(self) -> None:
        """Kill, reap and disconnect (idempotent; used at shutdown)."""
        self.kill_process()
        self.process = None
        self.close_conn()


@dataclass
class _Session:
    """One sharded session's parent-side bookkeeping."""

    robot_id: str
    policy: IngestPolicy | None
    slot: int
    n_submitted: int = 0
    inflight: int = 0
    spooled_upto: int = -1
    journal: deque = field(default_factory=deque)
    reports: dict[int, DetectionReport] = field(default_factory=dict)
    replayed: int = 0
    recoveries: int = 0
    failure: BaseException | None = None
    closing: bool = False
    closed: tuple | None = None


@dataclass
class ShardSessionResult:
    """What one closed sharded session produced.

    Attributes
    ----------
    robot_id:
        The session's identity.
    reports:
        Every detector report in submit order (suppressed messages produce
        none) — bit-identical to an uninterrupted serial run regardless of
        how many times the hosting worker died.
    ingest:
        Final delivery counters from the worker-resident session.
    messages_processed:
        Messages that actually reached the detector.
    final_snapshot:
        The session's end-of-run snapshot bytes (byte-compares against a
        reference session's ``checkpoint().to_bytes()`` in the parity
        tests).
    replayed:
        Journal messages re-processed across this session's recoveries.
    recoveries:
        Worker deaths this session survived.
    """

    robot_id: str
    reports: list[DetectionReport]
    ingest: IngestStats
    messages_processed: int
    final_snapshot: bytes
    replayed: int = 0
    recoveries: int = 0


# ----------------------------------------------------------------------
# The manager
# ----------------------------------------------------------------------
class ShardManager:
    """Partitions sessions across supervised worker processes.

    Parameters
    ----------
    factory:
        Zero-argument callable building identically configured detectors
        (e.g. ``rig.detector``) — called inside workers for fresh opens and
        for snapshot restores. Under a non-``fork`` start method it must be
        picklable.
    workers:
        Worker process count (sessions are assigned round-robin at open).
    spool:
        A :class:`~repro.serve.spool.SnapshotSpool` for crash-durable
        checkpoints, or ``None`` to disable spooling (recovery then replays
        each session's whole history — the journal is never pruned).
    spool_every:
        Messages between worker-side checkpoints of each session. Together
        with *window* it bounds the journal: at most roughly
        ``spool_every + window`` messages are ever replayed.
    window:
        Per-session in-flight cap; :meth:`submit` blocks (pumping events)
        while a session has this many unacknowledged messages. Keeps pipes
        shallow so a hang is detected at the heartbeat timeout, not at a
        pipe-buffer deadlock.
    supervisor:
        A :class:`~repro.serve.supervisor.Supervisor`, a
        :class:`~repro.serve.supervisor.SupervisorConfig`, or ``None`` for
        defaults.
    start_method:
        ``multiprocessing`` start method (``None``: ``fork`` where
        available, else ``spawn``).
    fused:
        Opt in to fused worker stepping: each worker drains its pipe
        backlog and advances co-rigged sessions through batched
        :class:`~repro.serve.fused.FusedSessionBank` calls. Acks, spool
        cadence and recovery semantics are unchanged, and results stay
        bit-identical to serial workers.
    """

    def __init__(
        self,
        factory,
        workers: int = 2,
        spool: SnapshotSpool | None = None,
        spool_every: int = 25,
        window: int = 16,
        supervisor: Supervisor | SupervisorConfig | None = None,
        start_method: str | None = None,
        fused: bool = False,
    ) -> None:
        if int(workers) != workers or workers < 1:
            raise ConfigurationError("workers must be a positive integer")
        if int(spool_every) != spool_every or spool_every < 1:
            raise ConfigurationError("spool_every must be a positive integer")
        if int(window) != window or window < 1:
            raise ConfigurationError("window must be a positive integer")
        if isinstance(supervisor, Supervisor):
            self.supervisor = supervisor
        else:
            self.supervisor = Supervisor(supervisor)
        self._factory = factory
        self._spool = spool
        self._spool_every = int(spool_every)
        self._window = int(window)
        self._fused = bool(fused)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        elif start_method not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                f"start_method {start_method!r} is not available on this platform"
            )
        if start_method != "fork":
            ensure_picklable(factory, f"the detector factory (start_method={start_method!r})")
        self._ctx = multiprocessing.get_context(start_method)
        self._poll_s = min(0.05, self.supervisor.config.heartbeat_interval)
        self.handles: list[WorkerHandle] = [WorkerHandle(slot=i) for i in range(workers)]
        self._sessions: dict[str, _Session] = {}
        self._next_slot = 0
        for handle in self.handles:
            self.spawn_worker(handle)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardManager":
        """Context-manager entry (workers are already running)."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Tear every worker down on exit."""
        self.shutdown()

    @property
    def active_sessions(self) -> tuple[str, ...]:
        """Robot ids currently hosted, in registration order."""
        return tuple(self._sessions)

    def worker_pids(self) -> dict[int, int | None]:
        """Live pid per worker slot (chaos targets workers by slot)."""
        return {handle.slot: handle.pid for handle in self.handles}

    def open_session(self, robot_id: str, policy: IngestPolicy | None = None) -> int:
        """Register a robot on the next worker slot; returns the slot.

        Any spooled snapshots left behind by a previous fleet under the same
        robot id are dropped first — a fresh session must never resume from
        a stale generation.
        """
        robot_id = str(robot_id)
        if robot_id in self._sessions:
            raise ConfigurationError(f"robot {robot_id!r} already has a session")
        candidates = [h for h in self.handles if not h.retired]
        if not candidates:
            raise ConfigurationError("every worker slot is retired; no capacity left")
        handle = candidates[self._next_slot % len(candidates)]
        self._next_slot += 1
        if self._spool is not None:
            self._spool.gc(live=set(self._sessions))  # drop stale leftovers
        state = _Session(robot_id=robot_id, policy=policy, slot=handle.slot)
        self._sessions[robot_id] = state
        handle.session_ids.append(robot_id)
        handle.send(("open", robot_id, None, policy))
        return handle.slot

    def submit(self, robot_id: str, message: SessionMessage) -> None:
        """Journal one message and ship it to the session's worker.

        Blocks (pumping worker events, so crash recovery happens *inside*
        the wait) while the session has ``window`` unacknowledged messages.
        Raises the session's failure if its worker reported one.
        """
        state = self._state(robot_id)
        self.pump(0.0)
        while state.failure is None and state.inflight >= self._window:
            self.pump(self._poll_s)
        if state.failure is not None:
            raise state.failure
        idx = state.n_submitted
        state.n_submitted += 1
        state.journal.append((idx, message))
        handle = self.handles[state.slot]
        if handle.send(("msg", robot_id, idx, message)):
            state.inflight += 1
        # On a dead pipe the message stays journaled; the next pump's
        # supervisor check recovers the worker and replays it.

    def close_session(self, robot_id: str) -> ShardSessionResult:
        """Drain, close and collect one session's result.

        Survives worker deaths mid-close: the recovery path re-opens the
        session, replays its journal and re-issues the close command.
        Raises the session's (deterministic) failure if one was reported.
        """
        state = self._state(robot_id)
        while state.failure is None and state.inflight > 0:
            self.pump(self._poll_s)
        if state.failure is None:
            state.closing = True
            self.handles[state.slot].send(("close", robot_id))
            while state.failure is None and state.closed is None:
                self.pump(self._poll_s)
        self._forget(state)
        if state.failure is not None:
            raise state.failure
        blob, stats, processed = state.closed
        return ShardSessionResult(
            robot_id=robot_id,
            reports=[state.reports[i] for i in sorted(state.reports)],
            ingest=IngestStats(**{k: int(v) for k, v in stats.items()}),
            messages_processed=int(processed),
            final_snapshot=blob,
            replayed=state.replayed,
            recoveries=state.recoveries,
        )

    def close_all(self) -> dict[str, ShardSessionResult]:
        """Close every session; aggregate failures instead of stopping.

        Mirrors ``FleetService.close_all``: every session is attempted, and
        one poisoned session cannot orphan the rest — on any failure a
        :class:`~repro.errors.FleetClosureError` carries both the failures
        and the successfully closed results.
        """
        results: dict[str, ShardSessionResult] = {}
        failures: dict[str, BaseException] = {}
        for robot_id in tuple(self._sessions):
            try:
                results[robot_id] = self.close_session(robot_id)
            except Exception as exc:
                failures[robot_id] = exc
        if failures:
            raise FleetClosureError(results, failures)
        return results

    def shutdown(self) -> None:
        """Stop every worker (graceful shutdown command, then the axe)."""
        for handle in self.handles:
            if not handle.broken and handle.conn is not None:
                handle.send(("shutdown",))
        for handle in self.handles:
            if handle.process is not None:
                handle.process.join(timeout=2.0)
            handle.terminate()
            handle.retired = True

    # ------------------------------------------------------------------
    # Chaos hooks (process-level fault injection)
    # ------------------------------------------------------------------
    def kill_worker(self, slot: int) -> None:
        """SIGKILL a worker slot — detection and recovery happen at pump."""
        handle = self.handles[slot]
        if handle.process is not None:
            try:
                handle.process.kill()
            except Exception:
                pass

    def hang_worker(self, slot: int, seconds: float = 3600.0) -> None:
        """Make a worker sleep silently — the heartbeat timeout reaps it."""
        self.handles[slot].send(("chaos", "hang", float(seconds)))

    def slow_worker(self, slot: int, per_message_s: float) -> None:
        """Add per-message latency to a worker (alive, just slow)."""
        self.handles[slot].send(("chaos", "slow", float(per_message_s)))

    # ------------------------------------------------------------------
    # Event pump
    # ------------------------------------------------------------------
    def pump(self, timeout: float = 0.0) -> None:
        """Read worker events, then run the supervisor's liveness check.

        With *timeout* > 0, waits up to that long for any worker to become
        readable. All buffered events are drained *before* liveness is
        judged, so a busy worker's queued heartbeats and acks always count.
        """
        by_conn = {
            handle.conn: handle
            for handle in self.handles
            if handle.conn is not None and not handle.retired and not handle.broken
        }
        if by_conn:
            for conn in multiprocessing.connection.wait(list(by_conn), timeout=timeout):
                self._drain_ready(by_conn[conn])
        elif timeout > 0:
            time.sleep(min(timeout, self._poll_s))
        self.supervisor.check(self)

    def salvage(self, handle: WorkerHandle) -> None:
        """Drain a dead worker's pipe: its buffered events are real work.

        Called by the supervisor after the process is reaped — acks and
        snapshot blobs the worker shipped before dying still count, and
        every salvaged snapshot shrinks the journal replay.
        """
        conn = handle.conn
        if conn is None:
            return
        while True:
            try:
                if not conn.poll(0):
                    break
                event = conn.recv()
            except Exception:
                break  # EOF or a half-written final message: nothing more
            self._dispatch(handle, event)

    def _drain_ready(self, handle: WorkerHandle) -> None:
        conn = handle.conn
        while conn is not None and not handle.broken:
            try:
                if not conn.poll(0):
                    return
                event = conn.recv()
            except Exception:
                handle.broken = True
                return
            handle.last_seen = time.perf_counter()
            self._dispatch(handle, event)

    def _dispatch(self, handle: WorkerHandle, event: tuple) -> None:
        op = event[0]
        if op in ("hb", "pong"):
            return
        if op == "fatal":
            handle.broken = True
            return
        robot_id = event[1]
        state = self._sessions.get(robot_id)
        if state is None:
            return  # late event for a session already closed and forgotten
        if op == "ack":
            _, _, idx, report = event
            state.inflight = max(0, state.inflight - 1)
            if report is not None:
                state.reports[idx] = report
        elif op == "snap":
            _, _, idx, blob = event
            if self._spool is not None and state.failure is None:
                self._spool.put(robot_id, idx, blob)
                state.spooled_upto = idx
                while state.journal and state.journal[0][0] <= idx:
                    state.journal.popleft()
        elif op == "error":
            _, _, worker_tb = event
            if state.failure is None:
                state.failure = ShardSessionError(
                    f"session {robot_id!r} failed in worker slot "
                    f"{handle.slot}.\nWorker traceback:\n{worker_tb}"
                )
            state.inflight = 0
        elif op == "closed":
            _, _, blob, stats, processed = event
            state.closed = (blob, stats, processed)
            state.inflight = 0

    # ------------------------------------------------------------------
    # Supervisor plumbing
    # ------------------------------------------------------------------
    def spawn_worker(self, handle: WorkerHandle) -> None:
        """(Re)start a worker process on *handle*'s slot with a fresh pipe."""
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                self._factory,
                self.supervisor.config.heartbeat_interval,
                self._spool_every if self._spool is not None else 0,
                self._fused,
            ),
            daemon=True,
            name=f"repro-shard-{handle.slot}",
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.broken = False
        handle.last_seen = time.perf_counter()

    def restore_slot(self, handle: WorkerHandle) -> int:
        """Re-open a respawned worker's sessions and replay their journals.

        Each session restores from the latest spooled snapshot (fresh open
        when none exists) and re-submits every journaled message beyond the
        snapshot's generation, in order. Acks are drained between sends so
        a large replay cannot deadlock the pipe. Returns the number of
        messages replayed.
        """
        replayed = 0
        for robot_id in list(handle.session_ids):
            state = self._sessions.get(robot_id)
            if state is None or state.failure is not None or state.closed is not None:
                continue
            blob = None
            if self._spool is not None:
                latest = self._spool.latest(robot_id)
                if latest is not None:
                    generation, blob = latest
                    while state.journal and state.journal[0][0] <= generation:
                        state.journal.popleft()
            handle.send(("open", robot_id, blob, state.policy))
            state.inflight = 0
            pending = list(state.journal)
            for idx, message in pending:
                if handle.broken:
                    break  # the replacement died too; the next check retries
                if handle.send(("msg", robot_id, idx, message)):
                    state.inflight += 1
                    replayed += 1
                self._drain_ready(handle)
            state.replayed += len(pending)
            state.recoveries += 1
            if state.closing and state.closed is None:
                handle.send(("close", robot_id))
        return replayed

    def fail_sessions(self, robot_ids, failure: BaseException) -> None:
        """Mark sessions failed (a retired slot cannot host them anymore)."""
        for robot_id in robot_ids:
            state = self._sessions.get(robot_id)
            if state is not None and state.failure is None and state.closed is None:
                state.failure = failure
                state.inflight = 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _state(self, robot_id: str) -> _Session:
        state = self._sessions.get(robot_id)
        if state is None:
            raise ConfigurationError(f"robot {robot_id!r} has no open session")
        return state

    def _forget(self, state: _Session) -> None:
        self._sessions.pop(state.robot_id, None)
        handle = self.handles[state.slot]
        if state.robot_id in handle.session_ids:
            handle.session_ids.remove(state.robot_id)
