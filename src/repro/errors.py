"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause while
still being able to distinguish configuration problems from numerical ones.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ObservabilityError",
    "DimensionError",
    "SimulationError",
    "PlanningError",
    "ParallelExecutionError",
    "SnapshotError",
    "SnapshotVersionError",
    "SnapshotCompatibilityError",
    "IngestSequenceError",
    "ShardSessionError",
    "ShardRecoveryError",
    "FleetClosureError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was assembled with inconsistent or invalid settings."""


class ObservabilityError(ConfigurationError):
    """A mode's reference sensors cannot support unknown-input estimation.

    Raised when the reference measurement Jacobian ``C2`` applied to the
    control Jacobian ``G`` does not have full column rank, which makes the
    weighted-least-squares actuator anomaly estimate (NUISE step 1) undefined.
    The paper discusses this requirement in Section VI ("Sensor
    capabilities"); grouping sensors via
    :class:`repro.sensors.suite.SensorGroup` is the suggested remedy.
    """


class DimensionError(ReproError):
    """An array argument did not have the expected shape."""


class SimulationError(ReproError):
    """The closed-loop simulation reached an invalid state."""


class PlanningError(ReproError):
    """A motion planner failed to produce a feasible path."""


class ParallelExecutionError(ReproError):
    """A worker process failed while executing fanned-out trials.

    Raised by :func:`repro.eval.parallel.map_trials` when a worker chunk
    raises (the message carries the worker traceback plus the chunk's trial
    descriptors, so the failing seed is identifiable without re-running) or
    when the process pool itself breaks (a worker died without reporting).
    """


class SnapshotError(ReproError):
    """A detector-state snapshot could not be produced or applied.

    Base class for every checkpoint/restore failure raised by
    :mod:`repro.serve.snapshot`; restore is all-or-nothing, so catching this
    means the target detector was left untouched.
    """


class SnapshotVersionError(SnapshotError):
    """A snapshot's format version does not match this library's.

    Raised *before* any state is applied: a snapshot written by a different
    snapshot-format revision must fail loudly instead of silently corrupting
    a resident detector session.
    """


class SnapshotCompatibilityError(SnapshotError):
    """A snapshot's detector configuration does not match the restore target.

    The snapshot names a different mode bank, sensor suite, window geometry
    or state dimension than the detector it is being applied to — e.g. a
    Khepera session snapshot restored into a Tamiya detector.
    """


class IngestSequenceError(ReproError):
    """A streaming session received a message violating its sequencing policy.

    Raised only under :class:`repro.serve.ingest.IngestPolicy`'s ``strict``
    ordering: a stale or duplicated sequence number is a protocol error the
    producer must fix. The default tolerant policies count and drop instead.
    """


class ShardSessionError(ReproError):
    """A sharded session's detector raised inside its worker process.

    The failure is deterministic (a malformed message, a numerically invalid
    update), so the supervisor must *not* respawn-and-replay its way through
    it: the session is marked failed, the message carries the worker-side
    traceback, and the error re-raises at the next
    :meth:`repro.serve.shard.ShardManager.submit` / close for that robot.
    Other sessions on the same worker are unaffected.
    """


class ShardRecoveryError(ReproError):
    """Crash recovery for a worker shard gave up.

    Raised (attached to every session the dead worker hosted) when the
    supervisor's consecutive-restart budget is exhausted — the worker keeps
    dying faster than :class:`repro.serve.supervisor.SupervisorConfig`'s
    ``backoff_reset_s`` healthy period, so respawning again would loop.
    """


class FleetClosureError(ReproError):
    """Closing a fleet finished, but one or more sessions failed.

    Aggregates per-session failures instead of letting the first raising
    session orphan the rest: ``results`` holds every successfully closed
    session's result and ``failures`` maps robot id to the exception its
    closure raised. Raised by ``FleetService.close_all`` and
    ``ShardManager.close_all`` after *every* session has been attempted.
    """

    def __init__(self, results: dict, failures: dict) -> None:
        self.results = dict(results)
        self.failures = dict(failures)
        names = ", ".join(repr(r) for r in sorted(failures))
        super().__init__(
            f"{len(failures)} of {len(results) + len(failures)} sessions "
            f"failed to close ({names}); successful results are preserved "
            "on this error's .results"
        )
