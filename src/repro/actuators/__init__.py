"""Actuation workflows: command limits, quantization and execution.

Actuators sit between the planner's commands and the kinematic model: they
apply the physical limits (saturation, servo clipping, firmware
quantization) that real hardware imposes on ``u_{k-1}`` before the dynamics
integrate it. Actuator *misbehaviors* are injected between the planner and
the actuator by :mod:`repro.attacks`.
"""

from .ackermann import AckermannActuator
from .base import Actuator
from .differential import WheelPairActuator

__all__ = ["Actuator", "WheelPairActuator", "AckermannActuator"]
