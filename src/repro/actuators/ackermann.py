"""Ackermann actuator (Tamiya RC car): throttle ESC plus steering servo."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .base import Actuator

__all__ = ["AckermannActuator"]


class AckermannActuator(Actuator):
    """Speed/steering execution with ESC and servo limits.

    Parameters
    ----------
    max_speed:
        ESC forward-speed saturation in m/s.
    max_reverse:
        Reverse-speed saturation in m/s (most RC ESCs reverse slower than
        they drive forward).
    max_steer:
        Steering-servo limit in radians; should match the
        :class:`~repro.dynamics.bicycle.BicycleModel` limit.
    """

    def __init__(
        self,
        max_speed: float = 2.0,
        max_reverse: float = 0.5,
        max_steer: float = 0.55,
        name: str = "drivetrain",
    ) -> None:
        if max_speed <= 0.0 or max_reverse < 0.0:
            raise ConfigurationError("speed limits must be positive")
        if not 0.0 < max_steer < np.pi / 2.0:
            raise ConfigurationError("max_steer must be in (0, pi/2)")
        super().__init__(name=name, dim=2, labels=("v", "delta"))
        self._max_speed = float(max_speed)
        self._max_reverse = float(max_reverse)
        self._max_steer = float(max_steer)

    @property
    def max_steer(self) -> float:
        return self._max_steer

    def execute(self, command: np.ndarray) -> np.ndarray:
        command = self.validate(command)
        v = float(np.clip(command[0], -self._max_reverse, self._max_speed))
        delta = float(np.clip(command[1], -self._max_steer, self._max_steer))
        return np.array([v, delta])
