"""Abstract actuator: the execution end of an actuation workflow."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..linalg import as_vector

__all__ = ["Actuator"]


class Actuator(ABC):
    """Physical execution model for a block of control-command components.

    Parameters
    ----------
    name:
        Identifier of the actuation workflow (e.g. ``"wheels"``).
    dim:
        Number of command components this actuator executes.
    labels:
        Component names matching the robot model's control labels.
    """

    def __init__(self, name: str, dim: int, labels: Sequence[str]) -> None:
        if dim < 1:
            raise ConfigurationError("actuator dimension must be at least 1")
        if len(labels) != dim:
            raise ConfigurationError("labels length must equal actuator dim")
        self._name = str(name)
        self._dim = int(dim)
        self._labels = tuple(labels)

    @property
    def name(self) -> str:
        return self._name

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def labels(self) -> tuple[str, ...]:
        return self._labels

    @abstractmethod
    def execute(self, command: np.ndarray) -> np.ndarray:
        """Map a (possibly corrupted) command to the physically executed one.

        Implementations apply saturation, quantization and other hardware
        constraints. The returned vector is what the kinematic model
        integrates.
        """

    def validate(self, command: np.ndarray) -> np.ndarray:
        return as_vector(command, self._dim, f"{self._name} command")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self._name!r}, dim={self._dim})"
