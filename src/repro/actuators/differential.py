"""Differential wheel-pair actuator (Khepera III drive train).

The Khepera firmware accepts integer wheel-speed commands in "speed units";
the paper's calibration (Section V-H: 900 units = 0.006 m/s) fixes the unit
scale. Commands are quantized to whole units and saturated at the motor
limit, mirroring the real actuation workflow.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .base import Actuator

__all__ = ["WheelPairActuator", "SPEED_UNIT_M_PER_S"]

#: Metres per second per Khepera firmware speed unit (from the paper's
#: Section V-H calibration: 900 units = 0.006 m/s).
SPEED_UNIT_M_PER_S = 0.006 / 900.0


class WheelPairActuator(Actuator):
    """Left/right wheel speed execution with quantization and saturation.

    Parameters
    ----------
    max_speed:
        Motor saturation in m/s per wheel (Khepera III tops out near
        0.5 m/s).
    speed_unit:
        Quantization step in m/s (one firmware speed unit). Set to 0 to
        disable quantization (useful for analytically exact tests).
    """

    def __init__(
        self,
        max_speed: float = 0.5,
        speed_unit: float = SPEED_UNIT_M_PER_S,
        name: str = "wheels",
    ) -> None:
        if max_speed <= 0.0:
            raise ConfigurationError("max_speed must be positive")
        if speed_unit < 0.0:
            raise ConfigurationError("speed_unit must be nonnegative")
        super().__init__(name=name, dim=2, labels=("v_l", "v_r"))
        self._max_speed = float(max_speed)
        self._speed_unit = float(speed_unit)

    @property
    def max_speed(self) -> float:
        return self._max_speed

    @property
    def speed_unit(self) -> float:
        return self._speed_unit

    def to_units(self, speeds_m_per_s: np.ndarray) -> np.ndarray:
        """Convert m/s wheel speeds to firmware speed units."""
        if self._speed_unit == 0.0:
            raise ConfigurationError("speed_unit is disabled (0); no unit conversion")
        return np.asarray(speeds_m_per_s, dtype=float) / self._speed_unit

    def from_units(self, speed_units: np.ndarray) -> np.ndarray:
        """Convert firmware speed units to m/s wheel speeds."""
        return np.asarray(speed_units, dtype=float) * self._speed_unit

    def execute(self, command: np.ndarray) -> np.ndarray:
        command = self.validate(command)
        if self._speed_unit > 0.0:
            command = np.round(command / self._speed_unit) * self._speed_unit
        return np.clip(command, -self._max_speed, self._max_speed)
