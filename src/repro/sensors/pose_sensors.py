"""Full-pose sensors: IPS, wheel-encoder odometry and inertial navigation.

All three report the robot pose ``(x, y, theta)`` but model *different
sensing workflows* with different noise levels:

* :class:`IPS` — the Vicon-backed indoor positioning system of Fig 5(b):
  an external observer, millimetre-grade position noise.
* :class:`OdometryPoseSensor` — the wheel-encoder sensing workflow. The
  utility process integrates encoder ticks into a pose (which is why Fig 6
  plot 2 shows wheel-encoder anomaly components on x, y and theta). The
  stationary-Gaussian form here matches the measurement model the paper's
  estimator assumes; the drifting tick-level simulation lives in
  :class:`repro.sim.workflows.OdometryWorkflow` and is used by the ablation
  experiment.
* :class:`InertialNavSensor` — the Tamiya's IMU workflow ("inertial
  navigation data", Section V-D): integrated pose with coarser noise.

The three classes are kept distinct (rather than one ``PoseSensor`` with a
name argument) so robot builders read like the paper's hardware lists and so
type-based dispatch in the workflow layer stays explicit.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import ConfigurationError
from .base import Sensor

__all__ = ["PoseSensorBase", "IPS", "OdometryPoseSensor", "InertialNavSensor"]


class PoseSensorBase(Sensor):
    """Shared implementation for sensors reporting ``(x, y, theta)``.

    ``pose_indices`` maps the three reported components into the robot state
    vector, so the same sensor works for models whose state is larger than a
    pose (velocity-augmented states, for example).
    """

    def __init__(
        self,
        name: str,
        covariance: Iterable,
        state_dim: int = 3,
        pose_indices: Sequence[int] = (0, 1, 2),
    ) -> None:
        if len(pose_indices) != 3:
            raise ConfigurationError("pose_indices must select (x, y, theta)")
        super().__init__(
            name=name,
            dim=3,
            state_dim=state_dim,
            covariance=covariance,
            labels=(f"{name}.x", f"{name}.y", f"{name}.theta"),
            angular_components=(2,),
        )
        self._idx = tuple(int(i) for i in pose_indices)
        for i in self._idx:
            if not 0 <= i < state_dim:
                raise ConfigurationError(f"pose index {i} out of state range")
        jac = np.zeros((3, state_dim))
        for row, col in enumerate(self._idx):
            jac[row, col] = 1.0
        self._jac_const = jac

    def h(self, state: np.ndarray) -> np.ndarray:
        state = np.asarray(state, dtype=float)
        return state[list(self._idx)]

    def jacobian(self, state: np.ndarray) -> np.ndarray:
        return self._jac_const.copy()

    @property
    def constant_jacobian(self) -> np.ndarray:
        return self._jac_const

    def h_batch(self, states: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=float)
        return states[..., list(self._idx)]

    def jacobian_batch(self, states: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=float)
        return np.broadcast_to(
            self._jac_const, states.shape[:-1] + (3, self._state_dim)
        )


class IPS(PoseSensorBase):
    """Indoor positioning system (Vicon motion capture).

    Defaults: sigma = 1 mm on position, 0.005 rad on heading — motion-capture
    grade, the most trusted sensor in the Khepera rig.
    """

    def __init__(
        self,
        sigma_xy: float = 0.001,
        sigma_theta: float = 0.003,
        name: str = "ips",
        state_dim: int = 3,
        pose_indices: Sequence[int] = (0, 1, 2),
    ) -> None:
        cov = np.diag([sigma_xy**2, sigma_xy**2, sigma_theta**2])
        super().__init__(name, cov, state_dim, pose_indices)


class OdometryPoseSensor(PoseSensorBase):
    """Wheel-encoder sensing workflow output: dead-reckoned pose.

    Defaults: sigma = 3 mm on position, 0.008 rad on heading — encoder
    quantization plus short-horizon integration error.
    """

    def __init__(
        self,
        sigma_xy: float = 0.003,
        sigma_theta: float = 0.008,
        name: str = "wheel_encoder",
        state_dim: int = 3,
        pose_indices: Sequence[int] = (0, 1, 2),
    ) -> None:
        cov = np.diag([sigma_xy**2, sigma_xy**2, sigma_theta**2])
        super().__init__(name, cov, state_dim, pose_indices)


class InertialNavSensor(PoseSensorBase):
    """IMU sensing workflow output: inertial-navigation pose (Tamiya).

    Defaults: sigma = 4 mm on position, 0.010 rad on heading — consumer IMU
    integration over one mission segment.
    """

    def __init__(
        self,
        sigma_xy: float = 0.004,
        sigma_theta: float = 0.010,
        name: str = "imu",
        state_dim: int = 3,
        pose_indices: Sequence[int] = (0, 1, 2),
    ) -> None:
        cov = np.diag([sigma_xy**2, sigma_xy**2, sigma_theta**2])
        super().__init__(name, cov, state_dim, pose_indices)
