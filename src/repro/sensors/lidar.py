"""LiDAR sensing: feature-level wall distances and raw ray-cast scans.

The Khepera's laser range finder scans 240 degrees and the sensing workflow
turns reflections off the room walls into features. Fig 6 (plot 3) shows the
LiDAR anomaly vector components are *distances to three walls plus heading*,
so the measurement model NUISE linearizes is exactly that feature vector:

.. math:: h_L(x, y, \\theta) = (d_{w_1}, d_{w_2}, d_{w_3}, \\theta)

with :math:`d_w` the perpendicular distance to named wall ``w``.

Two simulation fidelities are provided:

* :class:`WallDistanceSensor` — draws the features directly with Gaussian
  noise (the measurement model itself). Fast and exactly matched to the
  estimator's noise assumption; default in the experiments.
* :class:`RayCastLidar` + :class:`ScanFeatureExtractor` — simulates the raw
  physical channel (per-beam ranges against the arena geometry, per-beam
  noise) and reconstructs the features from the scan, the way the real
  sensing workflow's utility process does. Used by the workflow-level tests,
  the physical-channel attack demonstrations (scan blocking / DoS cut the
  raw beams) and the calibration helper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError, DimensionError
from ..linalg import wrap_angle
from ..world.geometry import Ray
from ..world.map import WorldMap
from .base import Sensor

__all__ = ["WallDistanceSensor", "RayCastLidar", "ScanFeatureExtractor", "LidarScan"]

DEFAULT_WALLS = ("west", "south", "east")


class WallDistanceSensor(Sensor):
    """Feature-level LiDAR: perpendicular distances to named walls + heading."""

    def __init__(
        self,
        world: WorldMap,
        wall_names: Sequence[str] = DEFAULT_WALLS,
        sigma_distance: float = 0.005,
        sigma_theta: float = 0.008,
        name: str = "lidar",
        state_dim: int = 3,
        pose_indices: Sequence[int] = (0, 1, 2),
    ) -> None:
        if len(wall_names) < 1:
            raise ConfigurationError("at least one wall is required")
        if len(pose_indices) != 3:
            raise ConfigurationError("pose_indices must select (x, y, theta)")
        walls = [world.wall(w) for w in wall_names]  # validates names
        dim = len(walls) + 1
        cov = np.diag([sigma_distance**2] * len(walls) + [sigma_theta**2])
        labels = tuple(f"{name}.d_{w.name}" for w in walls) + (f"{name}.theta",)
        super().__init__(
            name=name,
            dim=dim,
            state_dim=state_dim,
            covariance=cov,
            labels=labels,
            angular_components=(dim - 1,),
        )
        self._world = world
        self._walls = walls
        self._wall_names = tuple(wall_names)
        self._idx = tuple(int(i) for i in pose_indices)
        # The perpendicular distance to a wall *line* is affine in (x, y):
        # d = (p - p0) . n, so the whole feature block is N p + c with the
        # stacked inward normals N and offsets c = -N p0. Walls never move,
        # so both are precomputed; the estimator linearizes this sensor at
        # several points per mode per iteration, which makes the per-call
        # Segment property arithmetic the dominant cost otherwise.
        self._normals = np.array([w.segment.normal for w in walls])
        self._offsets = np.array(
            [-float(w.segment.normal @ w.segment.p0) for w in walls]
        )
        ix, iy, itheta = self._idx
        jac = np.zeros((dim, state_dim))
        jac[:-1, ix] = self._normals[:, 0]
        jac[:-1, iy] = self._normals[:, 1]
        jac[dim - 1, itheta] = 1.0
        self._jac_const = jac

    @property
    def wall_names(self) -> tuple[str, ...]:
        return self._wall_names

    @property
    def world(self) -> WorldMap:
        return self._world

    def h(self, state: np.ndarray) -> np.ndarray:
        state = np.asarray(state, dtype=float)
        ix, iy, itheta = self._idx
        out = np.empty(self.dim)
        out[:-1] = self._normals @ np.array([state[ix], state[iy]]) + self._offsets
        out[-1] = state[itheta]
        return out

    def jacobian(self, state: np.ndarray) -> np.ndarray:
        # Constant: the distance features are affine in (x, y) and the
        # heading feature is a state component.
        return self._jac_const.copy()

    @property
    def constant_jacobian(self) -> np.ndarray:
        return self._jac_const

    def h_batch(self, states: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=float)
        ix, iy, itheta = self._idx
        out = np.empty(states.shape[:-1] + (self.dim,))
        out[..., :-1] = states[..., (ix, iy)] @ self._normals.T + self._offsets
        out[..., -1] = states[..., itheta]
        return out

    def jacobian_batch(self, states: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=float)
        return np.broadcast_to(
            self._jac_const, states.shape[:-1] + self._jac_const.shape
        )


@dataclass(frozen=True)
class LidarScan:
    """A raw scan: per-beam ranges plus beam angles relative to the heading."""

    ranges: tuple[float, ...]
    relative_angles: tuple[float, ...]
    max_range: float

    def __post_init__(self) -> None:
        if len(self.ranges) != len(self.relative_angles):
            raise DimensionError("ranges and relative_angles must have equal length")

    @property
    def n_beams(self) -> int:
        return len(self.ranges)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.ranges, dtype=float), np.asarray(self.relative_angles, dtype=float)


class RayCastLidar:
    """Physical-channel LiDAR simulation: ray casting against the arena.

    Not a :class:`Sensor` — it produces raw scans, which the sensing
    workflow's :class:`ScanFeatureExtractor` turns into the feature vector of
    :class:`WallDistanceSensor`.
    """

    def __init__(
        self,
        world: WorldMap,
        fov: float = np.deg2rad(240.0),
        n_beams: int = 60,
        max_range: float = 10.0,
        sigma_range: float = 0.004,
    ) -> None:
        if n_beams < 2:
            raise ConfigurationError("a scanning LiDAR needs at least two beams")
        if not 0.0 < fov <= 2.0 * np.pi:
            raise ConfigurationError("fov must be in (0, 2*pi]")
        self._world = world
        self._fov = float(fov)
        self._n_beams = int(n_beams)
        self._max_range = float(max_range)
        self._sigma_range = float(sigma_range)
        self._relative = tuple(np.linspace(-fov / 2.0, fov / 2.0, n_beams))

    @property
    def n_beams(self) -> int:
        return self._n_beams

    @property
    def relative_angles(self) -> np.ndarray:
        return np.asarray(self._relative)

    def scan(self, pose: np.ndarray, rng: np.random.Generator | None = None) -> LidarScan:
        """Cast all beams from *pose* ``(x, y, theta, ...)`` with range noise."""
        pose = np.asarray(pose, dtype=float)
        x, y, theta = pose[0], pose[1], pose[2]
        ranges = np.array(
            [self._world.cast_ray(Ray((x, y), theta + rel), self._max_range) for rel in self._relative]
        )
        if rng is not None and self._sigma_range > 0.0:
            ranges = ranges + self._sigma_range * rng.standard_normal(self._n_beams)
        ranges = np.clip(ranges, 0.0, self._max_range)
        return LidarScan(tuple(ranges), self._relative, self._max_range)


class ScanFeatureExtractor:
    """Turns a raw scan into ``(d_w1, ..., d_wn, theta)`` features.

    The extractor plays the role of the LiDAR sensing workflow's utility
    process. It needs a rough pose prior (the planner's last estimate) to
    associate beams with walls; the *measured distances themselves* come only
    from the scan:

    1. Heading: for each pair of adjacent beams associated with the same
       wall, the chord between the two hit points (expressed in the robot
       frame) is parallel to the wall. Comparing its robot-frame angle with
       the wall's known world-frame angle yields a heading estimate; the
       circular mean over all pairs is the feature.
    2. Wall distances: with the estimated heading, each beam direction is
       known in the world frame, and the perpendicular distance to the
       beam's wall is ``-r * (dir . n)`` with ``n`` the wall's inward
       normal. The median over the wall's beams rejects stray associations.
    """

    def __init__(
        self,
        world: WorldMap,
        wall_names: Sequence[str] = DEFAULT_WALLS,
        association_tolerance: float = 0.08,
    ) -> None:
        self._world = world
        self._walls = [world.wall(w) for w in wall_names]
        self._wall_names = tuple(wall_names)
        self._tol = float(association_tolerance)

    @property
    def wall_names(self) -> tuple[str, ...]:
        return self._wall_names

    def _associate(self, scan: LidarScan, pose_prior: np.ndarray) -> list[int | None]:
        """Index of the wall each beam most plausibly hit (None = no wall)."""
        ranges, rel = scan.as_arrays()
        x, y, theta = pose_prior[0], pose_prior[1], pose_prior[2]
        origin = np.array([x, y])
        assoc: list[int | None] = []
        for r, a in zip(ranges, rel):
            if not 0.0 < r < scan.max_range - 1e-9:
                assoc.append(None)
                continue
            direction = np.array([np.cos(theta + a), np.sin(theta + a)])
            hit = origin + r * direction
            best, best_dist = None, self._tol
            for idx, wall in enumerate(self._walls):
                dist = abs(wall.distance_from(hit))
                if dist < best_dist:
                    best, best_dist = idx, dist
            assoc.append(best)
        return assoc

    def _estimate_heading(
        self, scan: LidarScan, assoc: list[int | None], theta_prior: float
    ) -> float:
        ranges, rel = scan.as_arrays()
        sin_sum = cos_sum = 0.0
        count = 0
        for i in range(scan.n_beams - 1):
            wall_idx = assoc[i]
            if wall_idx is None or assoc[i + 1] != wall_idx:
                continue
            # Robot-frame hit points of the two adjacent beams.
            p0 = ranges[i] * np.array([np.cos(rel[i]), np.sin(rel[i])])
            p1 = ranges[i + 1] * np.array([np.cos(rel[i + 1]), np.sin(rel[i + 1])])
            chord = p1 - p0
            norm = np.linalg.norm(chord)
            if norm < 1e-6:
                continue
            robot_angle = np.arctan2(chord[1], chord[0])
            wall_angle = self._walls[wall_idx].segment.angle
            # theta + robot_angle = wall_angle (mod pi): walls are lines, so
            # resolve the pi ambiguity toward the prior heading.
            candidate = wrap_angle(wall_angle - robot_angle)
            if abs(wrap_angle(candidate - theta_prior)) > np.pi / 2.0:
                candidate = wrap_angle(candidate + np.pi)
            sin_sum += np.sin(candidate)
            cos_sum += np.cos(candidate)
            count += 1
        if count == 0:
            return float(theta_prior)
        return float(np.arctan2(sin_sum, cos_sum))

    #: Minimum fraction of beams with usable returns below which the whole
    #: scan is declared dead (wire cut / DoS) and the degenerate all-zero
    #: feature vector of Table II #6 is emitted.
    MIN_VALID_FRACTION = 0.1

    def extract(self, scan: LidarScan, pose_prior: np.ndarray) -> np.ndarray:
        """Feature vector ``(d_w1, ..., d_wn, theta_hat)`` from a raw scan.

        A healthy scanner cannot always see every wall (240-degree FOV,
        obstacle occlusion); for walls with no associated beams the utility
        process falls back to the distance predicted from the localization
        prior — what a real tracking stack holds between observations. A
        scan with almost no usable returns at all is a dead sensor (wire
        cut / DoS) and yields the degenerate all-zero vector of Table II #6.
        """
        pose_prior = np.asarray(pose_prior, dtype=float)
        ranges, rel = scan.as_arrays()
        valid = np.count_nonzero((ranges > 1e-9) & (ranges < scan.max_range - 1e-9))
        if valid < self.MIN_VALID_FRACTION * scan.n_beams:
            return np.zeros(len(self._walls) + 1)
        assoc = self._associate(scan, pose_prior)
        theta_hat = self._estimate_heading(scan, assoc, float(pose_prior[2]))
        features = []
        for idx, wall in enumerate(self._walls):
            normal = wall.segment.normal
            samples = []
            for r, a, w in zip(ranges, rel, assoc):
                if w != idx:
                    continue
                direction = np.array([np.cos(theta_hat + a), np.sin(theta_hat + a)])
                samples.append(-r * float(direction @ normal))
            if samples:
                features.append(float(np.median(samples)))
            else:
                features.append(abs(wall.distance_from(pose_prior[:2])))
        features.append(theta_hat)
        return np.array(features)
