"""Empirical measurement-noise calibration.

The estimator's optimality and the Chi-square thresholds both assume the
measurement covariances ``R_i`` describe the *delivered* readings. For
feature-level sensors that is true by construction, but staged pipelines
(the raw LiDAR workflow's scan-to-feature extraction, tick-integrating
odometry) deliver readings whose noise is *induced* by the pipeline and
must be measured. This module provides the calibration pass a deployment
would run on clean recorded data — and that this repository ran to pick the
raw-mode LiDAR covariance in :func:`repro.robots.khepera.khepera_rig`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..linalg import wrap_residual
from .base import Sensor

__all__ = ["calibrate_covariance", "CalibrationResult", "calibration_consistency"]


class CalibrationResult:
    """Empirical error moments of a sensing pipeline against ground truth."""

    def __init__(self, errors: np.ndarray, labels: Sequence[str]) -> None:
        if errors.ndim != 2 or errors.shape[0] < 2:
            raise ConfigurationError("calibration needs at least two error samples")
        self._errors = errors
        self._labels = tuple(labels)

    @property
    def n_samples(self) -> int:
        return self._errors.shape[0]

    @property
    def bias(self) -> np.ndarray:
        """Mean error per component (should be ~0 for an unbiased pipeline)."""
        return self._errors.mean(axis=0)

    @property
    def covariance(self) -> np.ndarray:
        """Empirical covariance — the calibrated ``R`` candidate."""
        return np.cov(self._errors.T, ddof=1).reshape(
            self._errors.shape[1], self._errors.shape[1]
        )

    @property
    def sigmas(self) -> np.ndarray:
        return np.sqrt(np.diag(self.covariance))

    def summary(self) -> str:
        lines = ["calibration over %d samples:" % self.n_samples]
        for i, label in enumerate(self._labels):
            lines.append(
                f"  {label}: bias {self.bias[i]:+.5f}, sigma {self.sigmas[i]:.5f}"
            )
        return "\n".join(lines)


def calibrate_covariance(
    sensor: Sensor,
    produce_reading: Callable[[np.ndarray, np.random.Generator], np.ndarray],
    states: Sequence[np.ndarray],
    rng: np.random.Generator,
) -> CalibrationResult:
    """Measure a pipeline's delivered-reading noise against ground truth.

    ``produce_reading(state, rng)`` runs the full (clean) sensing pipeline
    at a known true *state*; the errors against ``sensor.h(state)`` (with
    angular components wrapped) form the empirical noise model.
    """
    errors = []
    for state in states:
        state = np.asarray(state, dtype=float)
        reading = np.asarray(produce_reading(state, rng), dtype=float)
        errors.append(wrap_residual(reading - sensor.h(state), sensor.angular_mask))
    return CalibrationResult(np.asarray(errors), sensor.labels)


def calibration_consistency(result: CalibrationResult, assumed: np.ndarray) -> float:
    """Largest per-component variance ratio between empirical and assumed R.

    Values near 1 mean the assumed covariance matches the pipeline; values
    far above 1 mean the detector would false-alarm (assumed noise too
    small), far below 1 that it would be needlessly insensitive.
    """
    assumed = np.asarray(assumed, dtype=float)
    empirical = np.diag(result.covariance)
    assumed_diag = np.diag(assumed) if assumed.ndim == 2 else assumed
    ratios = empirical / np.maximum(assumed_diag, 1e-18)
    return float(np.max(ratios))
