"""Sensor suites: stacking individual sensors into the full measurement.

A robot's measurement vector ``z_k`` is the concatenation of its ``p``
sensing-workflow outputs. :class:`SensorSuite` owns the ordering, the index
bookkeeping (which components of ``z`` belong to which sensor) and the
stacked measurement model used by the estimator. :class:`SensorGroup`
implements the paper's Section VI remedy for weak sensors: several physical
sensors treated as a single logical reference unit.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError, DimensionError
from ..linalg import block_diag
from .base import Sensor

__all__ = ["SensorSuite", "SensorGroup"]


class SensorGroup(Sensor):
    """Several sensors fused into one logical sensor.

    The paper (Section VI, "Sensor capabilities"): *"a magnetometer can be
    grouped together with a GPS sensor to measure both the orientation and
    the position"* — the group then qualifies as a reference unit even though
    neither member alone renders the state observable.
    """

    def __init__(self, name: str, members: Sequence[Sensor]) -> None:
        if len(members) < 2:
            raise ConfigurationError("a sensor group needs at least two members")
        state_dims = {s.state_dim for s in members}
        if len(state_dims) != 1:
            raise ConfigurationError("group members must share state_dim")
        dim = sum(s.dim for s in members)
        labels: list[str] = []
        angular: list[int] = []
        offset = 0
        for sensor in members:
            labels.extend(sensor.labels)
            angular.extend(offset + i for i in sensor.angular_components)
            offset += sensor.dim
        covariance = block_diag([s.covariance for s in members])
        super().__init__(
            name=name,
            dim=dim,
            state_dim=state_dims.pop(),
            covariance=covariance,
            labels=labels,
            angular_components=angular,
        )
        self._members = tuple(members)

    @property
    def members(self) -> tuple[Sensor, ...]:
        return self._members

    def h(self, state: np.ndarray) -> np.ndarray:
        return np.concatenate([s.h(state) for s in self._members])

    def jacobian(self, state: np.ndarray) -> np.ndarray:
        return np.vstack([s.jacobian(state) for s in self._members])

    def h_batch(self, states: np.ndarray) -> np.ndarray:
        return np.concatenate([s.h_batch(states) for s in self._members], axis=-1)

    def jacobian_batch(self, states: np.ndarray) -> np.ndarray:
        return np.concatenate([s.jacobian_batch(states) for s in self._members], axis=-2)

    def measure(self, state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.concatenate([s.measure(state, rng) for s in self._members])


class SensorSuite:
    """Ordered collection of a robot's sensors with stacked-model helpers."""

    def __init__(self, sensors: Sequence[Sensor]) -> None:
        if not sensors:
            raise ConfigurationError("a sensor suite needs at least one sensor")
        names = [s.name for s in sensors]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate sensor names: {names}")
        state_dims = {s.state_dim for s in sensors}
        if len(state_dims) != 1:
            raise ConfigurationError("all sensors in a suite must share state_dim")
        self._sensors = tuple(sensors)
        self._state_dim = state_dims.pop()
        self._slices: dict[str, slice] = {}
        offset = 0
        for sensor in sensors:
            self._slices[sensor.name] = slice(offset, offset + sensor.dim)
            offset += sensor.dim
        self._total_dim = offset
        # Selection cache: the estimator asks for the same name tuples every
        # control iteration; resolving them through set algebra each time is
        # measurable in the hot path.
        self._select_cache: dict[tuple[str, ...] | None, tuple[Sensor, ...]] = {}
        # Constant-Jacobian cache keyed like the selection cache: when every
        # selected sensor is affine in the state, the stacked Jacobian is one
        # precomputed block broadcast over the batch instead of a per-call
        # concatenation (False = not resolved yet, None = not constant).
        self._const_jac_cache: dict[
            tuple[str, ...] | None, np.ndarray | None | bool
        ] = {}

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def sensors(self) -> tuple[Sensor, ...]:
        return self._sensors

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self._sensors)

    @property
    def state_dim(self) -> int:
        return self._state_dim

    @property
    def total_dim(self) -> int:
        """Dimension of the stacked measurement vector ``z``."""
        return self._total_dim

    def __len__(self) -> int:
        return len(self._sensors)

    def __iter__(self):
        return iter(self._sensors)

    def sensor(self, name: str) -> Sensor:
        for s in self._sensors:
            if s.name == name:
                return s
        raise ConfigurationError(f"unknown sensor {name!r}; available: {list(self.names)}")

    def slice_of(self, name: str) -> slice:
        """Position of *name*'s components inside the stacked vector."""
        self.sensor(name)  # raise with a helpful message on typos
        return self._slices[name]

    def indices_of(self, names: Iterable[str]) -> np.ndarray:
        """Integer indices of the listed sensors' components, in suite order."""
        ordered = [s.name for s in self._sensors if s.name in set(names)]
        requested = set(names)
        known = set(self.names)
        if not requested <= known:
            raise ConfigurationError(f"unknown sensors: {sorted(requested - known)}")
        idx: list[int] = []
        for name in ordered:
            sl = self._slices[name]
            idx.extend(range(sl.start, sl.stop))
        return np.array(idx, dtype=int)

    # ------------------------------------------------------------------
    # Stacked measurement model
    # ------------------------------------------------------------------
    def h(self, state: np.ndarray, names: Sequence[str] | None = None) -> np.ndarray:
        """Stacked noise-free measurement, optionally restricted to *names*."""
        sensors = self._select(names)
        return np.concatenate([s.h(state) for s in sensors])

    def jacobian(self, state: np.ndarray, names: Sequence[str] | None = None) -> np.ndarray:
        sensors = self._select(names)
        return np.vstack([s.jacobian(state) for s in sensors])

    def h_batch(self, states: np.ndarray, names: Sequence[str] | None = None) -> np.ndarray:
        """Stacked measurement over a batch of states: ``(B, n) -> (B, m)``."""
        sensors = self._select(names)
        return np.concatenate([s.h_batch(states) for s in sensors], axis=-1)

    def jacobian_batch(self, states: np.ndarray, names: Sequence[str] | None = None) -> np.ndarray:
        """Stacked Jacobian over a batch of states: ``(B, n) -> (B, m, n)``.

        When every selected sensor has a :attr:`Sensor.constant_jacobian`
        the result is a read-only broadcast view of one cached stack.
        """
        states = np.asarray(states, dtype=float)
        key = None if names is None else tuple(names)
        cached = self._const_jac_cache.get(key, False)
        if cached is False:
            consts = [s.constant_jacobian for s in self._select(names)]
            cached = (
                np.concatenate(consts, axis=0)
                if consts and all(c is not None for c in consts)
                else None
            )
            self._const_jac_cache[key] = cached
        if cached is not None:
            return np.broadcast_to(cached, states.shape[:-1] + cached.shape)
        sensors = self._select(names)
        return np.concatenate([s.jacobian_batch(states) for s in sensors], axis=-2)

    def covariance(self, names: Sequence[str] | None = None) -> np.ndarray:
        sensors = self._select(names)
        return block_diag([s.covariance for s in sensors])

    def angular_mask(self, names: Sequence[str] | None = None) -> np.ndarray:
        sensors = self._select(names)
        return np.concatenate([s.angular_mask for s in sensors])

    def labels(self, names: Sequence[str] | None = None) -> tuple[str, ...]:
        sensors = self._select(names)
        out: list[str] = []
        for s in sensors:
            out.extend(s.labels)
        return tuple(out)

    def _select(self, names: Sequence[str] | None) -> tuple[Sensor, ...]:
        if names is None:
            return self._sensors
        key = tuple(names)
        cached = self._select_cache.get(key)
        if cached is not None:
            return cached
        requested = set(key)
        known = set(self.names)
        if not requested <= known:
            raise ConfigurationError(f"unknown sensors: {sorted(requested - known)}")
        selected = tuple(s for s in self._sensors if s.name in requested)
        self._select_cache[key] = selected
        return selected

    # ------------------------------------------------------------------
    # Readings
    # ------------------------------------------------------------------
    def measure(self, state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Simulate the full stacked reading."""
        return np.concatenate([s.measure(state, rng) for s in self._sensors])

    def split(self, reading: np.ndarray) -> dict[str, np.ndarray]:
        """Break a stacked reading into per-sensor sub-vectors."""
        reading = np.asarray(reading, dtype=float)
        if reading.shape != (self._total_dim,):
            raise DimensionError(
                f"stacked reading must have shape ({self._total_dim},), got {reading.shape}"
            )
        return {name: reading[sl].copy() for name, sl in self._slices.items()}

    def stack(self, readings: Mapping[str, np.ndarray]) -> np.ndarray:
        """Assemble a stacked reading from per-sensor sub-vectors."""
        missing = set(self.names) - set(readings)
        if missing:
            raise ConfigurationError(f"missing readings for sensors: {sorted(missing)}")
        out = np.zeros(self._total_dim)
        for sensor in self._sensors:
            part = np.asarray(readings[sensor.name], dtype=float)
            if part.shape != (sensor.dim,):
                raise DimensionError(
                    f"reading for {sensor.name!r} must have shape ({sensor.dim},), got {part.shape}"
                )
            out[self._slices[sensor.name]] = part
        return out
