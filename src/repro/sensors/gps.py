"""GPS-style position-only sensor.

Reports ``(x, y)`` without heading. On its own it does *not* render a
pose-state robot observable for unknown-input estimation in a single step —
this is exactly the Section VI "sensor capabilities" situation the paper
resolves by grouping (e.g. GPS + magnetometer); see
:class:`repro.sensors.suite.SensorGroup` and the ablation experiment.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from .base import Sensor

__all__ = ["GPS"]


class GPS(Sensor):
    """Planar position fix with isotropic Gaussian noise."""

    def __init__(
        self,
        sigma_xy: float = 0.5,
        name: str = "gps",
        state_dim: int = 3,
        position_indices: Sequence[int] = (0, 1),
    ) -> None:
        if len(position_indices) != 2:
            raise ConfigurationError("position_indices must select (x, y)")
        super().__init__(
            name=name,
            dim=2,
            state_dim=state_dim,
            covariance=np.diag([sigma_xy**2, sigma_xy**2]),
            labels=(f"{name}.x", f"{name}.y"),
        )
        self._idx = tuple(int(i) for i in position_indices)

    def h(self, state: np.ndarray) -> np.ndarray:
        state = np.asarray(state, dtype=float)
        return state[list(self._idx)]

    def jacobian(self, state: np.ndarray) -> np.ndarray:
        jac = np.zeros((2, self._state_dim))
        for row, col in enumerate(self._idx):
            jac[row, col] = 1.0
        return jac
