"""Abstract sensor: a measurement model plus a noise description.

The detection algorithm only ever sees a sensor through three things: the
measurement function ``h``, its Jacobian ``C`` and the noise covariance
``R``. Simulation additionally uses :meth:`Sensor.measure` to produce noisy
readings from the true state.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

import numpy as np

from ..dynamics.noise import GaussianNoise, validate_covariance
from ..errors import ConfigurationError
from ..linalg import as_vector, numerical_jacobian, wrap_residual

__all__ = ["Sensor"]


class Sensor(ABC):
    """A sensing workflow's measurement model.

    Parameters
    ----------
    name:
        Unique identifier within a suite (e.g. ``"ips"``, ``"lidar"``).
    dim:
        Number of measurement components this sensor reports per iteration.
    state_dim:
        Dimension of the robot state the measurement function consumes.
    covariance:
        Measurement-noise covariance ``R_i`` — full matrix, diagonal vector,
        or scalar.
    labels:
        Human-readable component names (used in reports and Fig 6-style
        plots).
    angular_components:
        Indices of components that are angles; their residuals are wrapped.
    """

    def __init__(
        self,
        name: str,
        dim: int,
        state_dim: int,
        covariance: Iterable,
        labels: Sequence[str] | None = None,
        angular_components: Sequence[int] = (),
    ) -> None:
        if dim < 1:
            raise ConfigurationError("sensor dimension must be at least 1")
        self._name = str(name)
        self._dim = int(dim)
        self._state_dim = int(state_dim)
        self._cov = validate_covariance(covariance, dim, f"{name} covariance")
        self._noise = GaussianNoise(self._cov, dim, f"{name} noise")
        if labels is None:
            labels = tuple(f"{name}[{i}]" for i in range(dim))
        if len(labels) != dim:
            raise ConfigurationError("labels length must equal sensor dim")
        self._labels = tuple(labels)
        self._angular = tuple(int(i) for i in angular_components)
        for i in self._angular:
            if not 0 <= i < dim:
                raise ConfigurationError(f"angular component index {i} out of range")

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def state_dim(self) -> int:
        return self._state_dim

    @property
    def covariance(self) -> np.ndarray:
        """Measurement-noise covariance ``R_i``."""
        return self._cov.copy()

    @property
    def labels(self) -> tuple[str, ...]:
        return self._labels

    @property
    def angular_components(self) -> tuple[int, ...]:
        return self._angular

    @property
    def angular_mask(self) -> np.ndarray:
        mask = np.zeros(self._dim, dtype=bool)
        for i in self._angular:
            mask[i] = True
        return mask

    # ------------------------------------------------------------------
    # Measurement model
    # ------------------------------------------------------------------
    @abstractmethod
    def h(self, state: np.ndarray) -> np.ndarray:
        """Noise-free measurement of *state*."""

    def jacobian(self, state: np.ndarray) -> np.ndarray:
        """``C_i = dh_i/dx``; numerical fallback, override when analytic."""
        state = as_vector(state, self._state_dim, "state")
        return numerical_jacobian(self.h, state)

    def h_batch(self, states: np.ndarray) -> np.ndarray:
        """:meth:`h` over a batch of states: ``(B, n) -> (B, dim)``.

        Default: a Python loop. Built-in sensors override with vectorized
        expressions for the stacked NUISE kernels.
        """
        states = np.asarray(states, dtype=float)
        if states.shape[0] == 0:
            return np.zeros((0, self._dim))
        return np.stack([self.h(s) for s in states])

    @property
    def constant_jacobian(self) -> np.ndarray | None:
        """The measurement Jacobian when it is state-independent, else None.

        Sensors whose ``h`` is affine in the state (pose selections, wall
        distances) expose their constant ``C_i`` here so batched
        linearization can broadcast one cached stack instead of
        re-concatenating per call.
        """
        return None

    def jacobian_batch(self, states: np.ndarray) -> np.ndarray:
        """:meth:`jacobian` over a batch of states: ``-> (B, dim, n)``.

        May return a read-only broadcast view when the Jacobian is constant.
        """
        states = np.asarray(states, dtype=float)
        if states.shape[0] == 0:
            return np.zeros((0, self._dim, self._state_dim))
        return np.stack([self.jacobian(s) for s in states])

    def residual(self, reading: np.ndarray, state: np.ndarray) -> np.ndarray:
        """``z - h(x)`` with angular components wrapped to (-pi, pi]."""
        reading = as_vector(reading, self._dim, f"{self._name} reading")
        raw = reading - self.h(as_vector(state, self._state_dim, "state"))
        return wrap_residual(raw, self.angular_mask)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def measure(self, state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Simulate a noisy reading from the true state."""
        return self.h(as_vector(state, self._state_dim, "state")) + self._noise.sample(rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self._name!r}, dim={self._dim})"
