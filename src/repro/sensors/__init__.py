"""Measurement models (paper Eq. (1), second line) and simulated sensors.

Each sensor implements ``z_i = h_i(x) + xi_i`` for its sensing workflow, plus
the measurement Jacobian ``C_i = dh_i/dx`` NUISE linearizes each iteration.
A :class:`~repro.sensors.suite.SensorSuite` stacks sensors into the full
measurement vector and provides the per-mode reference/testing slicing.
"""

from .base import Sensor
from .calibration import CalibrationResult, calibrate_covariance, calibration_consistency
from .gps import GPS
from .lidar import RayCastLidar, ScanFeatureExtractor, WallDistanceSensor
from .magnetometer import Magnetometer
from .pose_sensors import IPS, InertialNavSensor, OdometryPoseSensor
from .suite import SensorGroup, SensorSuite

__all__ = [
    "Sensor",
    "IPS",
    "OdometryPoseSensor",
    "InertialNavSensor",
    "GPS",
    "Magnetometer",
    "WallDistanceSensor",
    "RayCastLidar",
    "ScanFeatureExtractor",
    "SensorGroup",
    "SensorSuite",
    "calibrate_covariance",
    "CalibrationResult",
    "calibration_consistency",
]
