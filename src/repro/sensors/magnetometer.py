"""Magnetometer: heading-only sensor.

The paper's Section VI example of a sensor that cannot reconstruct the state
alone ("a magnetometer only measures the orientation of a robot") and must be
grouped with a position sensor to serve as a reference.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .base import Sensor

__all__ = ["Magnetometer"]


class Magnetometer(Sensor):
    """Absolute heading measurement with Gaussian noise."""

    def __init__(
        self,
        sigma_theta: float = 0.02,
        name: str = "magnetometer",
        state_dim: int = 3,
        heading_index: int = 2,
    ) -> None:
        if not 0 <= heading_index < state_dim:
            raise ConfigurationError("heading_index out of state range")
        super().__init__(
            name=name,
            dim=1,
            state_dim=state_dim,
            covariance=np.array([[sigma_theta**2]]),
            labels=(f"{name}.theta",),
            angular_components=(0,),
        )
        self._heading_index = int(heading_index)

    def h(self, state: np.ndarray) -> np.ndarray:
        state = np.asarray(state, dtype=float)
        return np.array([state[self._heading_index]])

    def jacobian(self, state: np.ndarray) -> np.ndarray:
        jac = np.zeros((1, self._state_dim))
        jac[0, self._heading_index] = 1.0
        return jac
