"""RoboADS reproduction: anomaly detection for sensor and actuator
misbehaviors in mobile robots (Guo et al., DSN 2018).

The package implements the paper's complete system and evaluation stack:

* :mod:`repro.core` — NUISE multi-mode estimation, mode selection, decision
  making (the paper's contribution).
* :mod:`repro.dynamics`, :mod:`repro.sensors`, :mod:`repro.actuators` — the
  robot models and measurement models the detector consumes.
* :mod:`repro.world`, :mod:`repro.planning`, :mod:`repro.sim`,
  :mod:`repro.attacks` — the simulated testbed: arenas, RRT* + PID missions,
  staged sensing/actuation workflows and the Table I/II misbehavior catalog.
* :mod:`repro.robots` — the Khepera and Tamiya prototypes.
* :mod:`repro.eval`, :mod:`repro.experiments` — metrics, Monte-Carlo
  running, parameter sweeps and one module per paper table/figure.
* :mod:`repro.obs` — opt-in detector telemetry: structured per-iteration
  events, per-stage timing, JSONL/timeline diagnostics export
  (``docs/OBSERVABILITY.md``).
* :mod:`repro.serve` — streaming detector sessions: resident resumable
  detectors fed one message at a time, versioned checkpoint/restore, and an
  asyncio fleet service with bounded-queue backpressure
  (``docs/STREAMING.md``).

Quickstart::

    import numpy as np
    from repro import khepera_rig, khepera_scenarios, run_scenario

    rig = khepera_rig()
    scenario = khepera_scenarios()[3]        # IPS spoofing
    result = run_scenario(rig, scenario, seed=7)
    print(result.summary())
"""

from .attacks import khepera_scenarios, tamiya_scenarios
from .core import (
    DecisionConfig,
    DetectionReport,
    Mode,
    MultiModeEstimationEngine,
    NuiseFilter,
    RoboADS,
    build_linearized_once_detector,
    complete_modes,
    single_reference_modes,
)
from .eval import ParallelConfig, RunResult, monte_carlo, run_scenario
from .obs import NullTelemetry, RecordingTelemetry, export_run, render_timeline
from .robots import RobotRig, khepera_rig, tamiya_rig
from .serve import (
    DetectorSession,
    FleetService,
    IngestPolicy,
    SessionMessage,
    SessionSnapshot,
    trace_messages,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "RoboADS",
    "NuiseFilter",
    "MultiModeEstimationEngine",
    "Mode",
    "single_reference_modes",
    "complete_modes",
    "DecisionConfig",
    "DetectionReport",
    "build_linearized_once_detector",
    "RobotRig",
    "khepera_rig",
    "tamiya_rig",
    "khepera_scenarios",
    "tamiya_scenarios",
    "run_scenario",
    "monte_carlo",
    "ParallelConfig",
    "RunResult",
    "NullTelemetry",
    "RecordingTelemetry",
    "export_run",
    "render_timeline",
    "DetectorSession",
    "FleetService",
    "IngestPolicy",
    "SessionMessage",
    "SessionSnapshot",
    "trace_messages",
]
