"""2-D world substrate: geometry, obstacles, wall maps and arena presets.

The mobile robots in the paper operate in an indoor arena bounded by walls
(the Khepera experiments run inside a Vicon-instrumented room). This package
provides the geometric world the simulator and the LiDAR sensors ray-cast
against, plus the obstacle maps the RRT* planner plans around.
"""

from .geometry import (
    Ray,
    Segment,
    distance_point_to_segment,
    ray_segment_intersection,
    segments_intersect,
)
from .obstacles import CircleObstacle, Obstacle, PolygonObstacle, RectangleObstacle
from .map import Wall, WorldMap
from .presets import cluttered_arena, corridor_arena, paper_arena

__all__ = [
    "Ray",
    "Segment",
    "distance_point_to_segment",
    "ray_segment_intersection",
    "segments_intersect",
    "Obstacle",
    "CircleObstacle",
    "PolygonObstacle",
    "RectangleObstacle",
    "Wall",
    "WorldMap",
    "paper_arena",
    "corridor_arena",
    "cluttered_arena",
]
