"""Obstacles the planner must avoid and the LiDAR can see.

Obstacles expose three operations: point containment (with an inflation
margin for robot radius), segment collision (for RRT* edge checks) and the
boundary segments used for ray casting.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import ConfigurationError
from .geometry import Segment, as_point, distance_point_to_segment, segments_intersect

__all__ = ["Obstacle", "CircleObstacle", "PolygonObstacle", "RectangleObstacle"]


class Obstacle(ABC):
    """Interface shared by all obstacle shapes."""

    @abstractmethod
    def contains(self, point: Iterable[float], margin: float = 0.0) -> bool:
        """Whether *point* lies inside the obstacle inflated by *margin*."""

    @abstractmethod
    def intersects_segment(self, segment: Segment, margin: float = 0.0) -> bool:
        """Whether *segment* passes through the obstacle inflated by *margin*."""

    @abstractmethod
    def boundary_segments(self) -> list[Segment]:
        """Boundary of the obstacle as segments for LiDAR ray casting."""


@dataclass(frozen=True)
class CircleObstacle(Obstacle):
    """A disc obstacle; its ray-casting boundary is a polygonal approximation."""

    center: tuple[float, float]
    radius: float
    boundary_vertices: int = 24

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ConfigurationError("circle obstacle radius must be positive")
        object.__setattr__(self, "center", tuple(float(v) for v in self.center))

    def contains(self, point: Iterable[float], margin: float = 0.0) -> bool:
        p = as_point(point)
        return float(np.linalg.norm(p - np.array(self.center))) <= self.radius + margin

    def intersects_segment(self, segment: Segment, margin: float = 0.0) -> bool:
        return distance_point_to_segment(self.center, segment) <= self.radius + margin

    def boundary_segments(self) -> list[Segment]:
        angles = np.linspace(0.0, 2.0 * np.pi, self.boundary_vertices + 1)
        cx, cy = self.center
        points = [(cx + self.radius * np.cos(a), cy + self.radius * np.sin(a)) for a in angles]
        return [Segment(points[i], points[i + 1]) for i in range(len(points) - 1)]


@dataclass(frozen=True)
class PolygonObstacle(Obstacle):
    """A simple (non self-intersecting) polygon obstacle."""

    vertices: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        verts = tuple(tuple(float(v) for v in vertex) for vertex in self.vertices)
        if len(verts) < 3:
            raise ConfigurationError("polygon obstacle needs at least 3 vertices")
        object.__setattr__(self, "vertices", verts)

    def boundary_segments(self) -> list[Segment]:
        verts = list(self.vertices)
        return [Segment(verts[i], verts[(i + 1) % len(verts)]) for i in range(len(verts))]

    def _contains_strict(self, point: np.ndarray) -> bool:
        """Ray-crossing test (even-odd rule)."""
        x, y = point
        inside = False
        verts = self.vertices
        j = len(verts) - 1
        for i in range(len(verts)):
            xi, yi = verts[i]
            xj, yj = verts[j]
            if (yi > y) != (yj > y):
                x_cross = (xj - xi) * (y - yi) / (yj - yi) + xi
                if x < x_cross:
                    inside = not inside
            j = i
        return inside

    def contains(self, point: Iterable[float], margin: float = 0.0) -> bool:
        p = as_point(point)
        if self._contains_strict(p):
            return True
        if margin <= 0.0:
            return False
        return any(distance_point_to_segment(p, seg) <= margin for seg in self.boundary_segments())

    def intersects_segment(self, segment: Segment, margin: float = 0.0) -> bool:
        if self.contains(segment.start, margin) or self.contains(segment.end, margin):
            return True
        for edge in self.boundary_segments():
            if segments_intersect(segment, edge):
                return True
            if margin > 0.0:
                # Inflate by checking endpoint-to-edge distances both ways.
                if distance_point_to_segment(edge.start, segment) <= margin:
                    return True
                if distance_point_to_segment(edge.end, segment) <= margin:
                    return True
        return False


def RectangleObstacle(
    lower: Sequence[float], upper: Sequence[float]
) -> PolygonObstacle:
    """Axis-aligned rectangular obstacle from lower-left and upper-right corners."""
    (x0, y0), (x1, y1) = as_point(lower), as_point(upper)
    if x1 <= x0 or y1 <= y0:
        raise ConfigurationError("rectangle upper corner must exceed lower corner")
    return PolygonObstacle(((x0, y0), (x1, y0), (x1, y1), (x0, y1)))
