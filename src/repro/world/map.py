"""World map: named boundary walls, obstacles, ray casting and free-space tests.

The arena corresponds to the Vicon-instrumented room in the paper's Khepera
experiments. Walls are *named* so the LiDAR wall-distance measurement model
(Fig 6, plot 3: distances to three walls) can reference specific walls, and
so the "LiDAR sensor blocking" scenario (Table II #7) can corrupt the reading
toward one particular wall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError
from .geometry import Ray, Segment, as_point, distance_point_to_line, segments_intersect
from .obstacles import Obstacle

__all__ = ["Wall", "WorldMap"]


@dataclass(frozen=True)
class Wall:
    """A named boundary wall.

    The wall's segment direction defines its inward normal (left-hand side);
    perpendicular distance from a robot inside the arena is positive when the
    walls wind counter-clockwise.
    """

    name: str
    segment: Segment

    def distance_from(self, point: Iterable[float]) -> float:
        """Perpendicular distance from *point* to the wall line."""
        return distance_point_to_line(point, self.segment)


class WorldMap:
    """A bounded rectangular (or polygonal) arena with walls and obstacles.

    Parameters
    ----------
    walls:
        Boundary walls. For the common axis-aligned rectangular arena use
        :meth:`WorldMap.rectangle`, which names walls ``south``, ``east``,
        ``north`` and ``west`` and winds them counter-clockwise so inward
        distances are positive.
    obstacles:
        Interior obstacles (planning keep-out regions, also visible to
        ray-cast LiDAR).
    """

    def __init__(self, walls: Sequence[Wall], obstacles: Sequence[Obstacle] = ()) -> None:
        if not walls:
            raise ConfigurationError("a world map needs at least one wall")
        names = [w.name for w in walls]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate wall names: {names}")
        self._walls: dict[str, Wall] = {w.name: w for w in walls}
        self._wall_list = list(walls)
        self._obstacles = list(obstacles)
        xs = [w.segment.start[0] for w in walls] + [w.segment.end[0] for w in walls]
        ys = [w.segment.start[1] for w in walls] + [w.segment.end[1] for w in walls]
        self._bounds = (min(xs), min(ys), max(xs), max(ys))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def rectangle(
        cls,
        width: float,
        height: float,
        obstacles: Sequence[Obstacle] = (),
    ) -> "WorldMap":
        """Axis-aligned rectangular arena ``[0, width] x [0, height]``.

        Walls wind counter-clockwise: ``south`` (y=0), ``east`` (x=width),
        ``north`` (y=height), ``west`` (x=0).
        """
        if width <= 0 or height <= 0:
            raise ConfigurationError("arena width/height must be positive")
        walls = [
            Wall("south", Segment((0.0, 0.0), (width, 0.0))),
            Wall("east", Segment((width, 0.0), (width, height))),
            Wall("north", Segment((width, height), (0.0, height))),
            Wall("west", Segment((0.0, height), (0.0, 0.0))),
        ]
        return cls(walls, obstacles)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def walls(self) -> list[Wall]:
        return list(self._wall_list)

    @property
    def obstacles(self) -> list[Obstacle]:
        return list(self._obstacles)

    @property
    def bounds(self) -> tuple[float, float, float, float]:
        """``(xmin, ymin, xmax, ymax)`` bounding box of the walls."""
        return self._bounds

    def wall(self, name: str) -> Wall:
        try:
            return self._walls[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown wall {name!r}; available: {sorted(self._walls)}"
            ) from None

    def wall_names(self) -> list[str]:
        return [w.name for w in self._wall_list]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def in_bounds(self, point: Iterable[float], margin: float = 0.0) -> bool:
        x, y = as_point(point)
        xmin, ymin, xmax, ymax = self._bounds
        return (xmin + margin) <= x <= (xmax - margin) and (ymin + margin) <= y <= (ymax - margin)

    def point_free(self, point: Iterable[float], margin: float = 0.0) -> bool:
        """Whether *point* lies in free space (inside bounds, outside obstacles)."""
        if not self.in_bounds(point, margin):
            return False
        return not any(obs.contains(point, margin) for obs in self._obstacles)

    def segment_free(self, segment: Segment, margin: float = 0.0) -> bool:
        """Whether *segment* avoids all obstacles and stays within bounds."""
        if not (self.in_bounds(segment.start, margin) and self.in_bounds(segment.end, margin)):
            return False
        for wall in self._wall_list:
            if segments_intersect(segment, wall.segment):
                # Touching the boundary exactly counts as collision.
                if not (self.in_bounds(segment.start, 0.0) and self.in_bounds(segment.end, 0.0)):
                    return False
        return not any(obs.intersects_segment(segment, margin) for obs in self._obstacles)

    def wall_distances(self, point: Iterable[float], wall_names: Sequence[str]) -> np.ndarray:
        """Perpendicular distances from *point* to the named walls."""
        return np.array([self.wall(name).distance_from(point) for name in wall_names])

    # ------------------------------------------------------------------
    # Ray casting
    # ------------------------------------------------------------------
    def cast_ray(self, ray: Ray, max_range: float = np.inf) -> float:
        """Range to the nearest wall or obstacle along *ray* (capped at max_range)."""
        from .geometry import ray_segment_intersection

        best = max_range
        for wall in self._wall_list:
            hit = ray_segment_intersection(ray, wall.segment)
            if hit is not None and hit < best:
                best = hit
        for obs in self._obstacles:
            for seg in obs.boundary_segments():
                hit = ray_segment_intersection(ray, seg)
                if hit is not None and hit < best:
                    best = hit
        return float(best)

    def scan(
        self,
        origin: Iterable[float],
        heading: float,
        fov: float,
        n_beams: int,
        max_range: float,
    ) -> np.ndarray:
        """Simulate a LiDAR scan: *n_beams* ranges over *fov* centred on *heading*."""
        origin = tuple(as_point(origin))
        if n_beams < 1:
            raise ConfigurationError("a scan needs at least one beam")
        if n_beams == 1:
            angles = np.array([heading])
        else:
            angles = heading + np.linspace(-fov / 2.0, fov / 2.0, n_beams)
        return np.array([self.cast_ray(Ray(origin, a), max_range) for a in angles])

    def beam_angles(self, heading: float, fov: float, n_beams: int) -> np.ndarray:
        """Absolute beam angles matching :meth:`scan` ordering."""
        if n_beams == 1:
            return np.array([heading])
        return heading + np.linspace(-fov / 2.0, fov / 2.0, n_beams)

    def sample_free(self, rng: np.random.Generator, margin: float = 0.0, max_tries: int = 1000) -> np.ndarray:
        """Uniformly sample a free-space point (used by RRT*)."""
        xmin, ymin, xmax, ymax = self._bounds
        for _ in range(max_tries):
            point = np.array(
                [rng.uniform(xmin + margin, xmax - margin), rng.uniform(ymin + margin, ymax - margin)]
            )
            if self.point_free(point, margin):
                return point
        raise ConfigurationError("could not sample a free point; map may be fully blocked")
