"""Ready-made arenas used by experiments, examples and tests.

``paper_arena`` mirrors the indoor Vicon room of the Khepera experiments:
a small rectangular arena with a box obstacle between the start and goal so
the RRT* path has to curve (which exercises the nonlinear dynamics that the
linearize-once baseline of Section V-G fails on).
"""

from __future__ import annotations

from .map import WorldMap
from .obstacles import CircleObstacle, RectangleObstacle

__all__ = ["paper_arena", "corridor_arena", "cluttered_arena"]


def paper_arena() -> WorldMap:
    """A 3 m x 3 m room with one box obstacle (default experiment arena)."""
    return WorldMap.rectangle(
        3.0,
        3.0,
        obstacles=[RectangleObstacle((1.2, 1.1), (1.8, 1.9))],
    )


def corridor_arena() -> WorldMap:
    """A long 6 m x 2 m corridor with two staggered boxes (forces S-curves)."""
    return WorldMap.rectangle(
        6.0,
        2.0,
        obstacles=[
            RectangleObstacle((1.5, 0.0), (2.0, 1.2)),
            RectangleObstacle((3.5, 0.8), (4.0, 2.0)),
        ],
    )


def cluttered_arena() -> WorldMap:
    """A 4 m x 4 m room with mixed obstacles (stress test for RRT*)."""
    return WorldMap.rectangle(
        4.0,
        4.0,
        obstacles=[
            RectangleObstacle((0.8, 0.8), (1.4, 1.4)),
            RectangleObstacle((2.4, 2.2), (3.0, 2.8)),
            CircleObstacle((2.0, 1.0), 0.3),
            CircleObstacle((1.0, 2.8), 0.35),
        ],
    )
