"""Planar geometry primitives used by maps, LiDAR ray casting and planning.

Everything works on plain ``(x, y)`` float pairs (NumPy arrays of shape
``(2,)``) to avoid forcing a Point class on callers; small frozen dataclasses
wrap segments and rays where named fields help readability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..errors import DimensionError

__all__ = [
    "Segment",
    "Ray",
    "as_point",
    "segments_intersect",
    "ray_segment_intersection",
    "distance_point_to_segment",
    "distance_point_to_line",
    "project_point_to_segment",
]

_EPS = 1e-12


def as_point(value: Iterable[float]) -> np.ndarray:
    """Coerce *value* into a ``(2,)`` float array."""
    arr = np.asarray(value, dtype=float).reshape(-1)
    if arr.shape != (2,):
        raise DimensionError(f"a 2-D point is required, got shape {arr.shape}")
    return arr


@dataclass(frozen=True)
class Segment:
    """A closed line segment between two endpoints."""

    start: tuple[float, float]
    end: tuple[float, float]

    def __post_init__(self) -> None:
        object.__setattr__(self, "start", tuple(float(v) for v in self.start))
        object.__setattr__(self, "end", tuple(float(v) for v in self.end))

    @property
    def p0(self) -> np.ndarray:
        return np.array(self.start, dtype=float)

    @property
    def p1(self) -> np.ndarray:
        return np.array(self.end, dtype=float)

    @property
    def length(self) -> float:
        return float(np.linalg.norm(self.p1 - self.p0))

    @property
    def direction(self) -> np.ndarray:
        """Unit vector from start to end (zero vector for degenerate segments)."""
        delta = self.p1 - self.p0
        norm = np.linalg.norm(delta)
        if norm < _EPS:
            return np.zeros(2)
        return delta / norm

    @property
    def normal(self) -> np.ndarray:
        """Unit normal (left of the direction of travel)."""
        d = self.direction
        return np.array([-d[1], d[0]])

    @property
    def angle(self) -> float:
        """Orientation of the segment in radians."""
        delta = self.p1 - self.p0
        return float(np.arctan2(delta[1], delta[0]))

    def midpoint(self) -> np.ndarray:
        return 0.5 * (self.p0 + self.p1)


@dataclass(frozen=True)
class Ray:
    """A half-line from *origin* in direction *angle* (radians)."""

    origin: tuple[float, float]
    angle: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "origin", tuple(float(v) for v in self.origin))
        object.__setattr__(self, "angle", float(self.angle))

    @property
    def p0(self) -> np.ndarray:
        return np.array(self.origin, dtype=float)

    @property
    def direction(self) -> np.ndarray:
        return np.array([np.cos(self.angle), np.sin(self.angle)])

    def point_at(self, distance: float) -> np.ndarray:
        return self.p0 + distance * self.direction


def _cross(a: np.ndarray, b: np.ndarray) -> float:
    return float(a[0] * b[1] - a[1] * b[0])


def segments_intersect(seg_a: Segment, seg_b: Segment) -> bool:
    """Whether two closed segments intersect (including touching endpoints)."""
    p, r = seg_a.p0, seg_a.p1 - seg_a.p0
    q, s = seg_b.p0, seg_b.p1 - seg_b.p0
    rxs = _cross(r, s)
    qp = q - p
    if abs(rxs) < _EPS:
        # Parallel: intersect only if collinear and overlapping.
        if abs(_cross(qp, r)) > _EPS:
            return False
        rr = float(r @ r)
        if rr < _EPS:
            # seg_a degenerates to a point; test it against seg_b instead.
            return distance_point_to_segment(p, seg_b) < _EPS
        t0 = float(qp @ r) / rr
        t1 = t0 + float(s @ r) / rr
        lo, hi = min(t0, t1), max(t0, t1)
        return hi >= -_EPS and lo <= 1.0 + _EPS
    t = _cross(qp, s) / rxs
    u = _cross(qp, r) / rxs
    return -_EPS <= t <= 1.0 + _EPS and -_EPS <= u <= 1.0 + _EPS


def ray_segment_intersection(ray: Ray, segment: Segment) -> float | None:
    """Distance along *ray* to its first intersection with *segment*.

    Returns ``None`` when the ray misses the segment. Distances smaller than
    a tiny epsilon (the ray origin lying exactly on the segment) count as 0.
    """
    p = ray.p0
    r = ray.direction
    q = segment.p0
    s = segment.p1 - segment.p0
    rxs = _cross(r, s)
    qp = q - p
    if abs(rxs) < _EPS:
        if abs(_cross(qp, r)) > _EPS:
            return None
        # Collinear: the nearest endpoint ahead of the origin.
        t0 = float(qp @ r)
        t1 = float((q + s - p) @ r)
        candidates = [t for t in (t0, t1) if t >= -_EPS]
        if not candidates:
            return None
        return max(0.0, min(candidates))
    t = _cross(qp, s) / rxs
    u = _cross(qp, r) / rxs
    if t >= -_EPS and -_EPS <= u <= 1.0 + _EPS:
        return max(0.0, t)
    return None


def project_point_to_segment(point: Iterable[float], segment: Segment) -> tuple[np.ndarray, float]:
    """Closest point on *segment* to *point* and the clamped parameter t."""
    p = as_point(point)
    a, b = segment.p0, segment.p1
    ab = b - a
    denom = float(ab @ ab)
    if denom < _EPS:
        return a.copy(), 0.0
    t = float((p - a) @ ab) / denom
    t = min(1.0, max(0.0, t))
    return a + t * ab, t


def distance_point_to_segment(point: Iterable[float], segment: Segment) -> float:
    """Euclidean distance from *point* to the closed segment."""
    p = as_point(point)
    closest, _ = project_point_to_segment(p, segment)
    return float(np.linalg.norm(p - closest))


def distance_point_to_line(point: Iterable[float], segment: Segment) -> float:
    """Signed perpendicular distance from *point* to the infinite line of *segment*.

    Positive on the left of the segment direction. Used by the LiDAR
    wall-distance measurement model, where walls extend across the whole
    arena side and perpendicular distance is the natural feature.
    """
    p = as_point(point)
    d = segment.direction
    if not d.any():
        return float(np.linalg.norm(p - segment.p0))
    n = np.array([-d[1], d[0]])
    return float((p - segment.p0) @ n)
