"""Process-pool fan-out for embarrassingly parallel evaluation workloads.

Monte-Carlo sweeps, fault-intensity campaigns and the experiment tables all
reduce to the same shape: a grid of *trials* that are fully independent
given their seeds (every trial derives its noise, attack and fault streams
from ``base_seed + trial`` / ``fault_seed + 1000·intensity_index + trial``
exactly as the serial loops do). This module fans such grids out to worker
processes while keeping the results **bit-identical to the serial path for
any worker count**:

* **Deterministic seed partitioning** — workers receive trial *descriptors*
  (scenario index, seed), never pre-drawn random state; each worker derives
  the trial's streams with the same arithmetic the serial loop uses, so the
  partitioning scheme cannot perturb a single sample.
* **Chunked scheduling** — trials are grouped into chunks and each worker
  amortizes rig/detector construction across its chunk via the
  :func:`repro.core.batch.replay_batch` fast path (simulate open-loop, then
  replay every chunk trace through one detector). Chunk boundaries cannot
  affect results because the detector is reset per trace.
* **Crash containment** — a failing trial surfaces the worker traceback and
  the chunk's trial descriptors as a
  :class:`~repro.errors.ParallelExecutionError` instead of hanging the pool.

The default ``fork`` start method lets workers inherit closures (rig
factories, fault/telemetry factories) without pickling. Under ``spawn`` /
``forkserver`` the shared payload must be picklable; a clear
:class:`~repro.errors.ConfigurationError` is raised when it is not.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Sequence, Union

from ..errors import ConfigurationError, ParallelExecutionError

__all__ = ["ParallelConfig", "ParallelSpec", "as_parallel_config", "map_trials"]


@dataclass(frozen=True)
class ParallelConfig:
    """How to fan independent trials out to worker processes.

    Attributes
    ----------
    workers:
        Number of worker processes. ``0`` (the default) resolves to
        ``os.cpu_count()``; ``1`` (or a resolved count of 1) selects the
        in-process serial path — identical results, no pool.
    chunk_size:
        Trials per work unit. ``0`` auto-sizes to about four chunks per
        worker (small enough to balance load, large enough that each worker
        amortizes detector construction across its chunk via the batched
        replay fast path).
    start_method:
        ``multiprocessing`` start method. ``None`` picks ``"fork"`` when the
        platform supports it (workers inherit rig/factory closures without
        pickling) and ``"spawn"`` otherwise.
    """

    workers: int = 0
    chunk_size: int = 0
    start_method: str | None = None

    def __post_init__(self) -> None:
        if int(self.workers) != self.workers or int(self.chunk_size) != self.chunk_size:
            raise ConfigurationError("workers and chunk_size must be integers")
        if self.start_method is not None:
            available = multiprocessing.get_all_start_methods()
            if self.start_method not in available:
                raise ConfigurationError(
                    f"start_method {self.start_method!r} is not available on this "
                    f"platform (choose from {available})"
                )

    def resolved_workers(self) -> int:
        """The effective worker count (``workers<=0`` → ``os.cpu_count()``)."""
        if self.workers > 0:
            return int(self.workers)
        return os.cpu_count() or 1

    def resolved_chunk_size(self, n_items: int) -> int:
        """The effective chunk size for a grid of *n_items* trials."""
        if self.chunk_size > 0:
            return int(self.chunk_size)
        workers = self.resolved_workers()
        return max(1, math.ceil(n_items / (4 * workers)))

    def resolved_start_method(self) -> str:
        """The effective start method (``None`` → ``fork`` where available)."""
        if self.start_method is not None:
            return self.start_method
        return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


#: What evaluation entry points accept for their ``parallel=`` argument:
#: ``None`` (serial), a worker count, or a full :class:`ParallelConfig`.
ParallelSpec = Union[ParallelConfig, int, None]


def as_parallel_config(parallel: ParallelSpec) -> ParallelConfig | None:
    """Normalize a ``parallel=`` argument (None / int / ParallelConfig)."""
    if parallel is None:
        return None
    if isinstance(parallel, ParallelConfig):
        return parallel
    if isinstance(parallel, bool):
        raise ConfigurationError("parallel must be None, an int worker count or a ParallelConfig")
    if isinstance(parallel, int):
        return ParallelConfig(workers=parallel)
    raise ConfigurationError(
        f"parallel must be None, an int worker count or a ParallelConfig, got {parallel!r}"
    )


def ensure_picklable(value: Any, what: str) -> None:
    """Raise :class:`ConfigurationError` when *value* cannot cross a process boundary."""
    try:
        pickle.dumps(value)
    except Exception as exc:
        raise ConfigurationError(
            f"{what} is not picklable and cannot cross a process boundary "
            f"({exc!r}); pass a factory callable resolved inside the worker "
            "instead of a shared mutable instance"
        ) from exc


# ----------------------------------------------------------------------
# Worker plumbing
# ----------------------------------------------------------------------
# The chunk function and shared payload travel once per worker through the
# pool initializer: under the default fork start method they are inherited
# (no pickling — closures and rigs work), under spawn they are pickled.
# Per-task traffic is only the small (index, items) descriptors and the
# pickled results.
_WORKER_STATE: dict[str, Any] = {}


def _init_worker(chunk_fn: Callable[[Any, list], list], payload: Any) -> None:
    _WORKER_STATE["fn"] = chunk_fn
    _WORKER_STATE["payload"] = payload


def _run_chunk(indexed_chunk: tuple[int, list]) -> tuple[int, bool, Any]:
    index, items = indexed_chunk
    try:
        results = _WORKER_STATE["fn"](_WORKER_STATE["payload"], items)
        return index, True, results
    except BaseException:
        import traceback

        return index, False, traceback.format_exc()


def _check_chunk_result(chunk_index: int, items: list, results: Any) -> list:
    if not isinstance(results, list) or len(results) != len(items):
        raise ParallelExecutionError(
            f"chunk function returned {type(results).__name__} of length "
            f"{len(results) if isinstance(results, list) else 'n/a'} for a chunk "
            f"of {len(items)} trials — it must return one result per trial"
        )
    return results


def map_trials(
    chunk_fn: Callable[[Any, list], list],
    items: Sequence[Any],
    parallel: ParallelSpec = None,
    payload: Any = None,
) -> list:
    """Run ``chunk_fn(payload, chunk)`` over chunks of *items*, possibly in parallel.

    Parameters
    ----------
    chunk_fn:
        A **module-level** function mapping ``(payload, chunk_items)`` to a
        list with exactly one result per chunk item. It must treat items
        independently (no cross-item state) so that chunk boundaries — and
        therefore the worker count — can never influence results.
    items:
        Small picklable trial descriptors (e.g. ``(scenario_index, seed)``
        tuples). They are the only per-task traffic to the workers.
    parallel:
        ``None`` / worker count / :class:`ParallelConfig`. A resolved worker
        count of 1 (or a single chunk) runs everything in-process through
        the identical chunked code path.
    payload:
        Shared read-only context handed to every ``chunk_fn`` call (rig,
        scenarios, factories). Under ``fork`` it is inherited; under other
        start methods it must pickle.

    Returns
    -------
    list
        The flattened per-item results, in input order, regardless of
        chunking or worker count.

    Raises
    ------
    ParallelExecutionError
        When a worker chunk raises (message carries the worker traceback and
        the chunk's trial descriptors) or the pool breaks.
    """
    config = as_parallel_config(parallel) or ParallelConfig(workers=1)
    items = list(items)
    if not items:
        return []
    chunk_size = config.resolved_chunk_size(len(items))
    chunks = [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]
    workers = min(config.resolved_workers(), len(chunks))

    if workers <= 1:
        out: list = []
        for chunk in chunks:
            out.extend(_check_chunk_result(0, chunk, chunk_fn(payload, chunk)))
        return out

    method = config.resolved_start_method()
    if method != "fork":
        ensure_picklable(payload, f"the shared work payload (start_method={method!r})")
    context = multiprocessing.get_context(method)
    results: list = [None] * len(chunks)
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(chunk_fn, payload),
        ) as pool:
            for index, ok, value in pool.map(_run_chunk, list(enumerate(chunks))):
                if not ok:
                    raise ParallelExecutionError(
                        f"worker chunk {index} failed; its trials were "
                        f"{chunks[index]!r}.\nWorker traceback:\n{value}"
                    )
                results[index] = _check_chunk_result(index, chunks[index], value)
    except BrokenProcessPool as exc:
        raise ParallelExecutionError(
            "a worker process died without reporting a result (out-of-memory "
            "killer or hard crash); re-run serially to localize the failing trial"
        ) from exc
    return [result for chunk_results in results for result in chunk_results]
