"""Offline decision-parameter sweeps (Fig 7's ROC and F1 studies).

The decision maker consumes only raw per-iteration statistics, so any
``(alpha, w, c)`` configuration can be replayed *offline* over recorded
runs — bit-exact with what online detection would have produced — making
dense parameter grids cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.decision import DecisionConfig, DecisionMaker, DecisionOutcome
from ..core.report import IterationStatistics
from .metrics import ConfusionCounts
from .runner import RunResult

__all__ = ["redecide", "SweepPoint", "roc_sweep", "f1_sweep"]


def redecide(stats: Sequence[IterationStatistics], config: DecisionConfig) -> list[DecisionOutcome]:
    """Replay the decision maker over recorded statistics with new parameters."""
    maker = DecisionMaker(config)
    return [maker.step(s) for s in stats]


@dataclass(frozen=True)
class SweepPoint:
    """One parameter configuration's aggregate performance."""

    config: DecisionConfig
    sensor: ConfusionCounts
    actuator: ConfusionCounts


def _evaluate_config(results: Sequence[RunResult], config: DecisionConfig) -> SweepPoint:
    sensor_total = ConfusionCounts()
    actuator_total = ConfusionCounts()
    for result in results:
        stats = [r.statistics for r in result.trace.reports if r is not None]
        outcomes = redecide(stats, config)
        for outcome, truth_s, truth_a in zip(
            outcomes, result.trace.truth_sensors, result.trace.truth_actuator
        ):
            sensor_total.classify(
                detected_positive=bool(outcome.flagged_sensors),
                correct=(outcome.flagged_sensors == truth_s),
                truth_positive=bool(truth_s),
            )
            actuator_total.classify(
                detected_positive=outcome.actuator_alarm,
                correct=(outcome.actuator_alarm == truth_a),
                truth_positive=truth_a,
            )
    return SweepPoint(config=config, sensor=sensor_total, actuator=actuator_total)


def roc_sweep(
    results: Sequence[RunResult],
    alphas: Iterable[float],
    window: int,
    criteria: int,
    base: DecisionConfig | None = None,
) -> list[SweepPoint]:
    """ROC points over confidence levels at a fixed c/w (Fig 7a/7b).

    Each alpha is applied to *both* the sensor and the actuator tests; the
    caller reads the sensor or actuator confusion as needed.
    """
    base = base or DecisionConfig()
    points = []
    for alpha in alphas:
        config = DecisionConfig(
            sensor_alpha=alpha,
            sensor_window=window,
            sensor_criteria=criteria,
            actuator_alpha=alpha,
            actuator_window=window,
            actuator_criteria=criteria,
        )
        points.append(_evaluate_config(results, config))
    return points


def f1_sweep(
    results: Sequence[RunResult],
    windows: Iterable[int],
    sensor_alpha: float = 0.005,
    actuator_alpha: float = 0.05,
) -> list[SweepPoint]:
    """F1 over (w, c) grids at the paper's chosen alphas (Fig 7c/7d).

    For each window size ``w`` every criteria value ``c in [1, w]`` is
    evaluated; both channels share the (w, c) configuration, with their own
    alphas.
    """
    points = []
    for window in windows:
        for criteria in range(1, window + 1):
            config = DecisionConfig(
                sensor_alpha=sensor_alpha,
                sensor_window=window,
                sensor_criteria=criteria,
                actuator_alpha=actuator_alpha,
                actuator_window=window,
                actuator_criteria=criteria,
            )
            points.append(_evaluate_config(results, config))
    return points
