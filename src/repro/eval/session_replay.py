"""Session-replay parity: prove streaming == batch == resume-after-checkpoint.

The streaming layer's correctness claim is an *equivalence*: a
:class:`~repro.serve.session.DetectorSession` fed a recorded mission
message-by-message must produce exactly the reports
:meth:`~repro.core.detector.RoboADS.replay` produces in one call, and
interrupting the stream at any message boundary with a
checkpoint → pickle → restore cycle (optionally into a freshly-built
detector, i.e. worker migration) must not perturb a single statistic.

These helpers make that claim testable in one place: :func:`stream_trace`
drives a session over a trace with optional periodic checkpoint/restore, and
:func:`report_drift` compares two report sequences field-by-field at a
tolerance. Both the example-based parity tests (golden 200-step missions at
1e-10) and ``scripts/serve_smoke.py`` are built on them.
"""

from __future__ import annotations

from typing import Callable, Sequence, Union

import numpy as np

from ..core.detector import DetectionReport, RoboADS
from ..serve.adapter import trace_messages
from ..serve.ingest import IngestPolicy
from ..serve.session import DetectorSession
from ..serve.snapshot import SessionSnapshot
from ..sim.trace import SimulationTrace

__all__ = ["stream_trace", "report_drift"]

#: A detector, or a zero-argument factory building fresh identically
#: configured detectors (the worker-migration case: every checkpoint
#: restores into a brand-new detector instance).
DetectorSpec = Union[RoboADS, Callable[[], RoboADS]]


def _fresh(spec: DetectorSpec) -> RoboADS:
    return spec() if callable(spec) else spec


def stream_trace(
    detector: DetectorSpec,
    trace: SimulationTrace,
    checkpoint_every: int | None = None,
    policy: IngestPolicy | None = None,
    robot_id: str = "replay",
) -> list[DetectionReport]:
    """Stream a recorded trace through a session; return the reports.

    With ``checkpoint_every=k`` the session is checkpointed after every *k*
    processed messages, the snapshot round-trips through
    ``to_bytes``/``from_bytes`` (the real migration wire form), and the
    stream resumes from the restored snapshot — into a *fresh* detector when
    *detector* is a factory, in place otherwise. Suppressed messages (the
    ingest policy dropped them) contribute no report, exactly like the
    session API.
    """
    session = DetectorSession(_fresh(detector), robot_id=robot_id, policy=policy)
    reports: list[DetectionReport] = []
    since_checkpoint = 0
    for message in trace_messages(trace):
        if (
            checkpoint_every is not None
            and since_checkpoint >= checkpoint_every
        ):
            blob = session.checkpoint().to_bytes()
            snapshot = SessionSnapshot.from_bytes(blob)
            session = DetectorSession.resume(_fresh(detector), snapshot, policy=policy)
            since_checkpoint = 0
        report = session.process(message)
        if report is not None:
            reports.append(report)
            since_checkpoint += 1
    return reports


def _close(a, b, atol: float) -> bool:
    return np.allclose(
        np.asarray(a, dtype=float),
        np.asarray(b, dtype=float),
        atol=atol,
        rtol=0.0,
        equal_nan=True,
    )


def report_drift(
    streamed: Sequence[DetectionReport],
    reference: Sequence[DetectionReport],
    atol: float = 1e-10,
) -> list[str]:
    """Field-by-field drift between two report sequences (empty = parity).

    Discrete fields (iterations, selected modes, alarms, flagged sets,
    degrees of freedom) must match exactly; continuous fields (state
    estimates, anomaly estimates, Chi-square statistics, mode probabilities,
    likelihoods) within *atol*. Each finding is a human-readable
    ``"k=<iteration>: <field> ..."`` string, so a failing parity assertion
    names exactly what moved.
    """
    drift: list[str] = []
    if len(streamed) != len(reference):
        drift.append(f"report count {len(streamed)} != {len(reference)}")
        return drift
    for r_s, r_r in zip(streamed, reference):
        k = r_r.iteration
        s_stats, r_stats = r_s.statistics, r_r.statistics
        if r_s.iteration != r_r.iteration:
            drift.append(f"k={k}: iteration {r_s.iteration} != {r_r.iteration}")
        if s_stats.selected_mode != r_stats.selected_mode:
            drift.append(
                f"k={k}: selected mode {s_stats.selected_mode!r} != {r_stats.selected_mode!r}"
            )
        if not _close(s_stats.state_estimate, r_stats.state_estimate, atol):
            drift.append(f"k={k}: state estimate drifted")
        if not _close(s_stats.actuator_estimate, r_stats.actuator_estimate, atol):
            drift.append(f"k={k}: actuator anomaly estimate drifted")
        for field in ("sensor_statistic", "actuator_statistic"):
            if not _close(getattr(s_stats, field), getattr(r_stats, field), atol):
                drift.append(f"k={k}: {field} drifted")
        for field in ("sensor_dof", "actuator_dof"):
            if getattr(s_stats, field) != getattr(r_stats, field):
                drift.append(f"k={k}: {field} differs")
        if tuple(s_stats.mode_probabilities) != tuple(r_stats.mode_probabilities):
            drift.append(f"k={k}: mode probability keys/order differ")
        elif not _close(
            list(s_stats.mode_probabilities.values()),
            list(r_stats.mode_probabilities.values()),
            atol,
        ):
            drift.append(f"k={k}: mode probabilities drifted")
        if not _close(
            [s_stats.likelihoods[m] for m in sorted(s_stats.likelihoods)],
            [r_stats.likelihoods[m] for m in sorted(r_stats.likelihoods)],
            atol,
        ):
            drift.append(f"k={k}: mode likelihoods drifted")
        if set(s_stats.sensor_stats) != set(r_stats.sensor_stats):
            drift.append(f"k={k}: per-sensor statistic sets differ")
        else:
            for name, stat in s_stats.sensor_stats.items():
                ref = r_stats.sensor_stats[name]
                if stat.dof != ref.dof or not _close(stat.statistic, ref.statistic, atol):
                    drift.append(f"k={k}: per-sensor statistic {name!r} drifted")
                elif not _close(stat.estimate, ref.estimate, atol):
                    drift.append(f"k={k}: per-sensor estimate {name!r} drifted")
        if r_s.flagged_sensors != r_r.flagged_sensors:
            drift.append(
                f"k={k}: flagged {sorted(r_s.flagged_sensors)} != {sorted(r_r.flagged_sensors)}"
            )
        for field in ("sensor_positive", "actuator_positive", "sensor_alarm", "actuator_alarm"):
            if getattr(r_s.outcome, field) != getattr(r_r.outcome, field):
                drift.append(f"k={k}: outcome.{field} differs")
        if s_stats.available_sensors != r_stats.available_sensors:
            drift.append(f"k={k}: availability masks differ")
    return drift
