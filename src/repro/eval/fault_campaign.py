"""Fault campaign: detection quality as a function of benign fault intensity.

A campaign sweeps a grid of fault intensities (uniform sensor-delivery
dropout by default) against a catalog of attack scenarios (Table II's by
default) and reduces every cell to the paper's confusion metrics plus
degradation bookkeeping. The result answers the robustness question the
paper's deployment story raises: how fast do detection rate and false-alarm
rate decay as the bus gets lossier, and is the zero-intensity column
identical to the fault-free baseline?

The sweep is deterministic end to end: trial noise comes from
``base_seed + trial``, fault randomness from an independent
``fault_seed``-rooted stream per intensity, so re-running a campaign
reproduces every cell bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..attacks.catalog import Scenario
from ..core.batch import replay_batch
from ..errors import ConfigurationError
from ..obs.telemetry import RecordingTelemetry, Telemetry
from ..robots.rig import RobotRig
from ..sim.faults import FaultSchedule, uniform_dropout_schedule
from .metrics import ConfusionCounts
from .parallel import ParallelSpec, as_parallel_config, map_trials
from .runner import (
    RunResult,
    _chunk_detector,
    _reduce,
    _sim_args,
    _simulate,
    _trace_availability,
    run_scenario,
    validate_run_kwargs,
)
from .tables import format_table

__all__ = ["FaultCampaignCell", "FaultCampaignResult", "run_fault_campaign"]


@dataclass(frozen=True)
class FaultCampaignCell:
    """Aggregated metrics of one (scenario, fault intensity) cell."""

    scenario_number: int
    scenario_name: str
    intensity: float
    n_trials: int
    sensor_confusion: ConfusionCounts
    actuator_confusion: ConfusionCounts
    mean_sensor_delay: float | None
    mean_actuator_delay: float | None
    #: Fraction of control iterations that ran degraded (some sensor absent).
    degraded_fraction: float
    #: Every statistic in every report stayed finite (NaN poisoning guard).
    finite: bool

    @property
    def sensor_detection_rate(self) -> float:
        return 1.0 - self.sensor_confusion.false_negative_rate

    @property
    def actuator_detection_rate(self) -> float:
        return 1.0 - self.actuator_confusion.false_negative_rate


@dataclass
class FaultCampaignResult:
    """All cells of one rig's intensity x scenario sweep."""

    rig_name: str
    intensities: tuple[float, ...]
    cells: list[FaultCampaignCell]
    n_trials: int

    def cells_at(self, intensity: float) -> list[FaultCampaignCell]:
        return [c for c in self.cells if c.intensity == intensity]

    def degradation_curve(self, channel: str = "sensor") -> dict[float, tuple[float, float]]:
        """Per intensity: (mean detection rate, mean false-alarm rate).

        The x-axis of the robustness plot — how detection quality decays as
        the delivery channel gets lossier.
        """
        if channel not in ("sensor", "actuator"):
            raise ConfigurationError("channel must be 'sensor' or 'actuator'")
        curve: dict[float, tuple[float, float]] = {}
        for intensity in self.intensities:
            cells = self.cells_at(intensity)
            if channel == "sensor":
                rates = [c.sensor_detection_rate for c in cells]
                fprs = [c.sensor_confusion.false_positive_rate for c in cells]
            else:
                rates = [c.actuator_detection_rate for c in cells]
                fprs = [c.actuator_confusion.false_positive_rate for c in cells]
            curve[intensity] = (float(np.mean(rates)), float(np.mean(fprs)))
        return curve

    @property
    def all_finite(self) -> bool:
        return all(c.finite for c in self.cells)

    def format(self) -> str:
        rows = []
        for cell in self.cells:
            rows.append(
                [
                    cell.scenario_number,
                    cell.scenario_name[:30],
                    f"{cell.intensity:.0%}",
                    f"{cell.degraded_fraction:.1%}",
                    f"{cell.sensor_detection_rate:.2%}",
                    f"{cell.sensor_confusion.false_positive_rate:.2%}",
                    f"{cell.actuator_detection_rate:.2%}",
                    f"{cell.actuator_confusion.false_positive_rate:.2%}",
                    "yes" if cell.finite else "NO",
                ]
            )
        table = format_table(
            [
                "#",
                "Scenario",
                "drop",
                "degr.",
                "S det",
                "S FPR",
                "A det",
                "A FPR",
                "finite",
            ],
            rows,
            title=(
                f"Fault campaign: {self.rig_name}, "
                f"{self.n_trials} trial(s)/cell, uniform dropout sweep"
            ),
        )
        lines = [table, ""]
        for channel in ("sensor", "actuator"):
            curve = self.degradation_curve(channel)
            series = ", ".join(
                f"{i:.0%}: det {det:.2%} / FPR {fpr:.2%}" for i, (det, fpr) in curve.items()
            )
            lines.append(f"{channel} degradation: {series}")
        return "\n".join(lines)


def _collect_cell(
    scenario: Scenario,
    intensity: float,
    results: Sequence[RunResult],
) -> FaultCampaignCell:
    sensor_total, actuator_total = ConfusionCounts(), ConfusionCounts()
    sensor_delays: list[float] = []
    actuator_delays: list[float] = []
    degraded = 0
    total = 0
    finite = True
    for result in results:
        sensor_total.add(result.sensor_confusion)
        actuator_total.add(result.actuator_confusion)
        for event in result.delays:
            if event.delay is None:
                continue
            if event.channel == "sensor":
                sensor_delays.append(event.delay)
            else:
                actuator_delays.append(event.delay)
        total += len(result.trace)
        degraded += sum(1 for a in result.trace.availability if a is not None)
        for report in result.reports:
            stats = report.statistics
            if not (
                np.isfinite(stats.sensor_statistic)
                and np.isfinite(stats.actuator_statistic)
                and np.all(np.isfinite(stats.state_estimate))
            ):
                finite = False
    return FaultCampaignCell(
        scenario_number=scenario.number,
        scenario_name=scenario.name,
        intensity=float(intensity),
        n_trials=len(results),
        sensor_confusion=sensor_total,
        actuator_confusion=actuator_total,
        mean_sensor_delay=float(np.mean(sensor_delays)) if sensor_delays else None,
        mean_actuator_delay=float(np.mean(actuator_delays)) if actuator_delays else None,
        degraded_fraction=degraded / total if total else 0.0,
        finite=finite,
    )


def _campaign_chunk(payload, items):
    """Worker: one fault-campaign work unit per ``(intensity_index, scenario_index, trial)``.

    Each item resolves its fault schedule in the worker via the factory with
    the exact serial seed arithmetic (``fault_seed + 1000·intensity_index +
    trial``), simulates the mission open-loop, and replays through a
    chunk-shared detector. Returns ``(RunResult, RecordingTelemetry | None)``
    pairs in item order.
    """
    (rig, scenarios, intensities, base_seed, fault_seed, factory, telemetry_factory, run_kwargs) = payload
    sim_args = _sim_args(run_kwargs)
    traces = []
    for intensity_index, scenario_index, trial in items:
        sim_args["faults"] = factory(
            float(intensities[intensity_index]),
            fault_seed + 1000 * intensity_index + trial,
        )
        traces.append(
            _simulate(
                rig,
                scenarios[scenario_index],
                base_seed + trial,
                detector=None,
                responder=None,
                **sim_args,
            )
        )
    detector = _chunk_detector(rig, run_kwargs)
    out: list[tuple[RunResult, RecordingTelemetry | None]] = []
    if telemetry_factory is not None:
        for (intensity_index, scenario_index, trial), trace in zip(items, traces):
            scenario = scenarios[scenario_index]
            sink = telemetry_factory(scenario, float(intensities[intensity_index]), trial)
            if sink is not None and not isinstance(sink, RecordingTelemetry):
                raise ConfigurationError(
                    "parallel fault campaigns require telemetry_factory to return "
                    "RecordingTelemetry (or a subclass) or None — worker recordings "
                    "must be picklable and mergeable into the parent"
                )
            detector.attach_telemetry(sink)
            reports = detector.replay(
                trace.planned_controls,
                trace.readings,
                reset=True,
                availability=_trace_availability(trace),
            )
            trace.attach_reports(reports)
            out.append((_reduce(rig, scenario, base_seed + trial, trace), sink))
        detector.attach_telemetry(None)
    else:
        batch = replay_batch(detector, traces, keep_reports=True)
        for position, ((intensity_index, scenario_index, trial), trace) in enumerate(
            zip(items, traces)
        ):
            trace.attach_reports(batch.trace_reports(position))
            out.append(
                (_reduce(rig, scenarios[scenario_index], base_seed + trial, trace), None)
            )
    return out


def _run_campaign_parallel(
    rig: RobotRig,
    scenarios: Sequence[Scenario],
    intensities: Sequence[float],
    n_trials: int,
    base_seed: int,
    fault_seed: int,
    factory,
    telemetry_factory,
    run_kwargs: dict,
    config,
) -> list[FaultCampaignCell]:
    rig.plan_path(run_kwargs.get("path_seed", 0))  # plan once; workers inherit the cache
    items = [
        (intensity_index, scenario_index, trial)
        for intensity_index in range(len(intensities))
        for scenario_index in range(len(scenarios))
        for trial in range(n_trials)
    ]
    payload = (
        rig,
        tuple(scenarios),
        tuple(float(i) for i in intensities),
        base_seed,
        fault_seed,
        factory,
        telemetry_factory,
        run_kwargs,
    )
    flat = map_trials(_campaign_chunk, items, parallel=config, payload=payload)
    cells: list[FaultCampaignCell] = []
    position = 0
    for intensity_index, intensity in enumerate(intensities):
        for scenario_index, scenario in enumerate(scenarios):
            results: list[RunResult] = []
            for trial in range(n_trials):
                result, recording = flat[position]
                position += 1
                if recording is not None:
                    # The parent-side factory call owns the sink the caller
                    # will inspect (and performs any registration side
                    # effects); the worker's recording is folded into it.
                    parent_sink = telemetry_factory(scenario, float(intensity), trial)
                    if parent_sink is not None:
                        if not isinstance(parent_sink, RecordingTelemetry):
                            raise ConfigurationError(
                                "telemetry_factory returned a non-mergeable sink "
                                "on the parent side; return RecordingTelemetry "
                                "(or a subclass) for parallel campaigns"
                            )
                        parent_sink.merge(recording)
                results.append(result)
            cells.append(_collect_cell(scenario, float(intensity), results))
    return cells


def run_fault_campaign(
    rig: RobotRig,
    scenarios: Sequence[Scenario],
    intensities: Sequence[float] = (0.0, 0.05, 0.1),
    n_trials: int = 1,
    base_seed: int = 100,
    fault_seed: int = 7,
    sensors: Sequence[str] | None = None,
    schedule_factory: Callable[[float, int], FaultSchedule | None] | None = None,
    telemetry_factory: Callable[[Scenario, float, int], Telemetry | None] | None = None,
    parallel: ParallelSpec = None,
    **run_kwargs,
) -> FaultCampaignResult:
    """Sweep fault intensity x attack scenarios on one rig.

    Parameters
    ----------
    rig, scenarios:
        The platform and the attack catalog rows to stress (e.g.
        ``khepera_scenarios()`` for the full Table II sweep, or a slice of
        it for a smoke run).
    intensities:
        Fault intensities; by default each is a uniform Bernoulli dropout
        probability over *sensors*. Intensity ``0.0`` maps to *no* fault
        schedule at all — the baseline column is literally the fault-free
        code path.
    n_trials, base_seed:
        Monte-Carlo depth per cell and the trial noise seed base (matching
        :func:`repro.eval.runner.monte_carlo` conventions).
    fault_seed:
        Root of the fault schedules' private random streams (independent of
        the trial noise).
    sensors:
        Sensors the default dropout targets (default: the whole suite).
    schedule_factory:
        Override mapping ``(intensity, trial_seed)`` to a
        :class:`FaultSchedule` (or None) — for sweeping burst loss, latency
        or mixed fault cocktails instead of uniform dropout.
    telemetry_factory:
        Optional mapping ``(scenario, intensity, trial)`` to a telemetry
        sink (or None) attached to that trial's detector — e.g. record one
        :class:`~repro.obs.telemetry.RecordingTelemetry` per misdetecting
        cell and export it with :func:`repro.obs.export.export_run` to see
        *which* degraded iterations ate an in-progress confirmation. Under
        ``parallel=`` the factory must return ``RecordingTelemetry`` (or a
        subclass) or None, and is invoked twice per trial: once inside the
        worker (to record) and once in the parent (to own the sink the
        worker recording is merged into) — it should therefore be
        idempotent apart from registering the sink.
    parallel:
        ``None`` (serial), a worker count, or a
        :class:`~repro.eval.parallel.ParallelConfig`. The work grid is
        cells × trials; every trial's noise and fault seeds are derived
        exactly as the serial loop derives them, so the campaign result is
        identical for any worker count. Falls back to the serial path when
        the resolved worker count is 1 or a *responder* closes the loop.
    run_kwargs:
        Extra keyword arguments for :func:`repro.eval.runner.run_scenario`
        (``duration``, ``decision``, ...).
    """
    if not scenarios:
        raise ConfigurationError("fault campaign needs at least one scenario")
    if any(not 0.0 <= i <= 1.0 for i in intensities):
        raise ConfigurationError("fault intensities must be in [0, 1]")
    validate_run_kwargs(run_kwargs, reserved=frozenset({"faults", "telemetry"}))
    target_sensors = tuple(sensors) if sensors is not None else tuple(rig.suite.names)

    def default_factory(intensity: float, trial_seed: int) -> FaultSchedule | None:
        if intensity == 0.0:
            return None
        return uniform_dropout_schedule(target_sensors, intensity, seed=trial_seed)

    factory = schedule_factory or default_factory

    config = as_parallel_config(parallel)
    if (
        config is not None
        and run_kwargs.get("responder") is None
        and config.resolved_workers() > 1
        and len(intensities) * len(scenarios) * n_trials > 1
    ):
        cells = _run_campaign_parallel(
            rig,
            scenarios,
            intensities,
            n_trials,
            base_seed,
            fault_seed,
            factory,
            telemetry_factory,
            run_kwargs,
            config,
        )
        return FaultCampaignResult(
            rig_name=rig.name,
            intensities=tuple(float(i) for i in intensities),
            cells=cells,
            n_trials=n_trials,
        )

    cells = []
    for intensity_index, intensity in enumerate(intensities):
        for scenario in scenarios:
            results = [
                run_scenario(
                    rig,
                    scenario,
                    seed=base_seed + trial,
                    faults=factory(
                        float(intensity),
                        fault_seed + 1000 * intensity_index + trial,
                    ),
                    telemetry=(
                        telemetry_factory(scenario, float(intensity), trial)
                        if telemetry_factory is not None
                        else None
                    ),
                    **run_kwargs,
                )
                for trial in range(n_trials)
            ]
            cells.append(_collect_cell(scenario, float(intensity), results))
    return FaultCampaignResult(
        rig_name=rig.name,
        intensities=tuple(float(i) for i in intensities),
        cells=cells,
        n_trials=n_trials,
    )
