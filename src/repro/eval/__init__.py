"""Evaluation harness: metrics, Monte-Carlo running and parameter sweeps.

Implements the paper's Section V metrics verbatim: a *true positive* is an
alarm that **correctly identifies** the misbehaving condition; any other
positive is a *false positive*; a *false negative* is silence while the
robot misbehaves; detection *delay* is the time from trigger to correct
identification.
"""

from .fault_campaign import FaultCampaignCell, FaultCampaignResult, run_fault_campaign
from .forensics import QuantificationReport, quantify_run
from .metrics import ConfusionCounts, DelayEvent, confusion_from_run, detection_delays
from .parallel import ParallelConfig, map_trials
from .runner import RunResult, monte_carlo, run_scenario
from .session_replay import report_drift, stream_trace
from .sweeps import f1_sweep, redecide, roc_sweep
from .tables import format_table

__all__ = [
    "ConfusionCounts",
    "DelayEvent",
    "confusion_from_run",
    "detection_delays",
    "RunResult",
    "run_scenario",
    "monte_carlo",
    "ParallelConfig",
    "map_trials",
    "FaultCampaignCell",
    "FaultCampaignResult",
    "run_fault_campaign",
    "redecide",
    "roc_sweep",
    "f1_sweep",
    "format_table",
    "QuantificationReport",
    "quantify_run",
    "stream_trace",
    "report_drift",
]
