"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None) -> str:
    """Render an ASCII table with left-aligned text and a header rule."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)
