"""Scenario running: one trial or a Monte-Carlo batch.

A run wires together a rig's platform, controller and detector with a
scenario's attack schedule, simulates the mission, and reduces the trace to
the paper's metrics. The per-iteration raw statistics stay attached to the
result so decision-parameter sweeps can replay them offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Union

import numpy as np

from ..attacks.catalog import Scenario
from ..attacks.scheduler import AttackSchedule
from ..core.batch import replay_batch
from ..core.decision import DecisionConfig
from ..core.linearization import LinearizationPolicy
from ..core.modes import Mode
from ..errors import ConfigurationError
from ..obs.telemetry import Telemetry
from ..robots.rig import RobotRig
from ..sim.faults import FaultSchedule
from ..sim.simulator import ClosedLoopSimulator
from ..sim.trace import SimulationTrace

#: Fault injection for a run: a ready schedule (reset and reused across
#: trials, so every trial sees the same fault realization) or a factory
#: called with the trial seed (independent realizations per trial).
FaultSpec = Union[FaultSchedule, Callable[[int], FaultSchedule], None]
from .metrics import ConfusionCounts, DelayEvent, confusion_from_run, detection_delays

__all__ = ["RunResult", "run_scenario", "monte_carlo"]


@dataclass
class RunResult:
    """One trial's trace plus reduced metrics."""

    rig_name: str
    scenario_name: str
    seed: int
    trace: SimulationTrace
    sensor_confusion: ConfusionCounts
    actuator_confusion: ConfusionCounts
    delays: list[DelayEvent]

    @property
    def reports(self) -> list:
        return [r for r in self.trace.reports if r is not None]

    def delays_for(self, channel: str) -> list[DelayEvent]:
        return [e for e in self.delays if e.channel == channel]

    def mean_delay(self, channel: str | None = None) -> float | None:
        """Mean delay over detected transitions (None when nothing detected)."""
        events = self.delays if channel is None else self.delays_for(channel)
        delays = [e.delay for e in events if e.delay is not None]
        if not delays:
            return None
        return float(np.mean(delays))

    def summary(self) -> str:
        s, a = self.sensor_confusion, self.actuator_confusion
        delay = self.mean_delay()
        delay_text = "n/a" if delay is None else f"{delay:.2f}s"
        return (
            f"[{self.rig_name} / {self.scenario_name} / seed {self.seed}] "
            f"sensor FPR={s.false_positive_rate:.2%} FNR={s.false_negative_rate:.2%}; "
            f"actuator FPR={a.false_positive_rate:.2%} FNR={a.false_negative_rate:.2%}; "
            f"mean delay {delay_text}"
        )


def _resolve_faults(faults: FaultSpec, seed: int) -> FaultSchedule | None:
    if faults is None or isinstance(faults, FaultSchedule):
        return faults
    return faults(seed)


def _simulate(
    rig: RobotRig,
    scenario: Scenario | None,
    seed: int,
    path_seed: int,
    duration: float | None,
    detector,
    responder,
    stop_at_goal: bool,
    faults: FaultSpec = None,
) -> SimulationTrace:
    """Simulate one mission (``detector=None`` records the raw logs only)."""
    rng = np.random.default_rng(seed)
    path = rig.plan_path(path_seed)
    platform = rig.make_platform()
    controller = rig.make_controller(path)
    schedule = scenario.build_schedule() if scenario is not None else AttackSchedule()

    simulator = ClosedLoopSimulator(
        platform,
        controller,
        schedule=schedule,
        nav_sensor=rig.nav_sensor,
        detector=detector,
        responder=responder,
        faults=_resolve_faults(faults, seed),
    )
    if duration is None:
        duration = scenario.duration if scenario is not None else rig.mission.duration
    n_steps = max(1, int(round(duration / rig.model.dt)))
    stop_condition = None
    if stop_at_goal:
        stop_condition = lambda: bool(getattr(controller, "goal_reached", False))
    return simulator.run(n_steps, rng, stop_condition=stop_condition)


def _reduce(
    rig: RobotRig, scenario: Scenario | None, seed: int, trace: SimulationTrace
) -> RunResult:
    """Reduce a reported trace to the paper's metrics."""
    sensor_confusion, actuator_confusion = confusion_from_run(trace)
    delays = detection_delays(trace)
    return RunResult(
        rig_name=rig.name,
        scenario_name=scenario.name if scenario is not None else "clean",
        seed=seed,
        trace=trace,
        sensor_confusion=sensor_confusion,
        actuator_confusion=actuator_confusion,
        delays=delays,
    )


def run_scenario(
    rig: RobotRig,
    scenario: Scenario | None,
    seed: int = 0,
    decision: DecisionConfig | None = None,
    modes: Sequence[Mode] | None = None,
    policy: LinearizationPolicy | None = None,
    path_seed: int = 0,
    duration: float | None = None,
    detector=None,
    responder=None,
    stop_at_goal: bool = True,
    faults: FaultSpec = None,
    telemetry: Telemetry | None = None,
) -> RunResult:
    """Run one trial of *scenario* on *rig* (``scenario=None`` = clean run).

    The planned path is cached per *path_seed* (all trials fly the same
    mission, as in the paper); per-trial randomness (noise, attacks) comes
    from *seed*. With ``stop_at_goal`` (default, matching the paper's
    missions) the run ends when the tracking controller reports arrival —
    a parked robot exercises no dynamics, so counting parked iterations
    would only dilute the metrics. *faults* optionally injects benign
    delivery faults (see :data:`FaultSpec`); their randomness is independent
    of *seed*'s noise stream. *telemetry* optionally attaches an
    observability sink (e.g. :class:`~repro.obs.telemetry.RecordingTelemetry`)
    to the detector for the duration of the run — export the recording with
    :func:`repro.obs.export.export_run` or ``scripts/diagnose_run.py``.
    """
    if detector is None:
        detector = rig.detector(decision=decision, modes=modes, policy=policy)
    else:
        detector.reset()
    if telemetry is not None:
        detector.attach_telemetry(telemetry)
    trace = _simulate(
        rig,
        scenario,
        seed,
        path_seed,
        duration,
        detector,
        responder,
        stop_at_goal,
        faults=faults,
    )
    return _reduce(rig, scenario, seed, trace)


def monte_carlo(
    rig: RobotRig,
    scenario: Scenario | None,
    n_trials: int,
    base_seed: int = 0,
    batched: bool = False,
    **kwargs,
) -> list[RunResult]:
    """Run *n_trials* independent trials of one scenario.

    With ``batched=True`` the trials are simulated open-loop (no detector in
    the control period) and then replayed back-to-back through a single
    detector via :func:`repro.core.batch.replay_batch`. Without a responder
    the detector never influences the closed loop — the planner navigates by
    the nav sensor's readings either way — so the reports, and therefore the
    metrics, are identical to the sequential path; the batch amortizes
    detector construction and report bookkeeping across the trials.
    """
    if not batched:
        return [
            run_scenario(rig, scenario, seed=base_seed + trial, **kwargs)
            for trial in range(n_trials)
        ]
    if kwargs.get("responder") is not None:
        raise ConfigurationError(
            "batched replay requires an open detection loop (no responder): "
            "a responder feeds detector verdicts back into the planner, so the "
            "detector cannot be deferred to offline replay"
        )
    sim_args = {
        "path_seed": kwargs.get("path_seed", 0),
        "duration": kwargs.get("duration"),
        "stop_at_goal": kwargs.get("stop_at_goal", True),
        "faults": kwargs.get("faults"),
    }
    traces = [
        _simulate(
            rig,
            scenario,
            base_seed + trial,
            detector=None,
            responder=None,
            **sim_args,
        )
        for trial in range(n_trials)
    ]
    detector = kwargs.get("detector")
    if detector is None:
        detector = rig.detector(
            decision=kwargs.get("decision"),
            modes=kwargs.get("modes"),
            policy=kwargs.get("policy"),
        )
    if kwargs.get("telemetry") is not None:
        detector.attach_telemetry(kwargs["telemetry"])
    batch = replay_batch(detector, traces, keep_reports=True)
    results: list[RunResult] = []
    for trial, trace in enumerate(traces):
        trace.attach_reports(batch.trace_reports(trial))
        results.append(_reduce(rig, scenario, base_seed + trial, trace))
    return results
