"""Scenario running: one trial or a Monte-Carlo batch.

A run wires together a rig's platform, controller and detector with a
scenario's attack schedule, simulates the mission, and reduces the trace to
the paper's metrics. The per-iteration raw statistics stay attached to the
result so decision-parameter sweeps can replay them offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Union

import numpy as np

from ..attacks.catalog import Scenario
from ..attacks.scheduler import AttackSchedule
from ..core.batch import replay_batch
from ..core.decision import DecisionConfig
from ..core.linearization import LinearizationPolicy
from ..core.modes import Mode
from ..errors import ConfigurationError
from ..obs.telemetry import RecordingTelemetry, Telemetry
from ..robots.rig import RobotRig
from ..sim.faults import FaultSchedule
from ..sim.simulator import ClosedLoopSimulator
from ..sim.trace import SimulationTrace
from .parallel import ParallelSpec, as_parallel_config, ensure_picklable, map_trials

#: Fault injection for a run: a ready schedule (reset and reused across
#: trials, so every trial sees the same fault realization) or a factory
#: called with the trial seed (independent realizations per trial).
FaultSpec = Union[FaultSchedule, Callable[[int], FaultSchedule], None]
from .metrics import ConfusionCounts, DelayEvent, confusion_from_run, detection_delays

__all__ = ["RunResult", "run_scenario", "monte_carlo"]


@dataclass
class RunResult:
    """One trial's trace plus reduced metrics."""

    rig_name: str
    scenario_name: str
    seed: int
    trace: SimulationTrace
    sensor_confusion: ConfusionCounts
    actuator_confusion: ConfusionCounts
    delays: list[DelayEvent]

    @property
    def reports(self) -> list:
        return [r for r in self.trace.reports if r is not None]

    def delays_for(self, channel: str) -> list[DelayEvent]:
        return [e for e in self.delays if e.channel == channel]

    def mean_delay(self, channel: str | None = None) -> float | None:
        """Mean delay over detected transitions (None when nothing detected)."""
        events = self.delays if channel is None else self.delays_for(channel)
        delays = [e.delay for e in events if e.delay is not None]
        if not delays:
            return None
        return float(np.mean(delays))

    def summary(self) -> str:
        s, a = self.sensor_confusion, self.actuator_confusion
        delay = self.mean_delay()
        delay_text = "n/a" if delay is None else f"{delay:.2f}s"
        return (
            f"[{self.rig_name} / {self.scenario_name} / seed {self.seed}] "
            f"sensor FPR={s.false_positive_rate:.2%} FNR={s.false_negative_rate:.2%}; "
            f"actuator FPR={a.false_positive_rate:.2%} FNR={a.false_negative_rate:.2%}; "
            f"mean delay {delay_text}"
        )


def _resolve_faults(faults: FaultSpec, seed: int) -> FaultSchedule | None:
    if faults is None or isinstance(faults, FaultSchedule):
        return faults
    return faults(seed)


def _simulate(
    rig: RobotRig,
    scenario: Scenario | None,
    seed: int,
    path_seed: int,
    duration: float | None,
    detector,
    responder,
    stop_at_goal: bool,
    faults: FaultSpec = None,
) -> SimulationTrace:
    """Simulate one mission (``detector=None`` records the raw logs only)."""
    rng = np.random.default_rng(seed)
    path = rig.plan_path(path_seed)
    platform = rig.make_platform()
    controller = rig.make_controller(path)
    schedule = scenario.build_schedule() if scenario is not None else AttackSchedule()

    simulator = ClosedLoopSimulator(
        platform,
        controller,
        schedule=schedule,
        nav_sensor=rig.nav_sensor,
        detector=detector,
        responder=responder,
        faults=_resolve_faults(faults, seed),
    )
    if duration is None:
        duration = scenario.duration if scenario is not None else rig.mission.duration
    n_steps = max(1, int(round(duration / rig.model.dt)))
    stop_condition = None
    if stop_at_goal:
        stop_condition = lambda: bool(getattr(controller, "goal_reached", False))
    return simulator.run(n_steps, rng, stop_condition=stop_condition)


def _reduce(
    rig: RobotRig, scenario: Scenario | None, seed: int, trace: SimulationTrace
) -> RunResult:
    """Reduce a reported trace to the paper's metrics."""
    sensor_confusion, actuator_confusion = confusion_from_run(trace)
    delays = detection_delays(trace)
    return RunResult(
        rig_name=rig.name,
        scenario_name=scenario.name if scenario is not None else "clean",
        seed=seed,
        trace=trace,
        sensor_confusion=sensor_confusion,
        actuator_confusion=actuator_confusion,
        delays=delays,
    )


def run_scenario(
    rig: RobotRig,
    scenario: Scenario | None,
    seed: int = 0,
    decision: DecisionConfig | None = None,
    modes: Sequence[Mode] | None = None,
    policy: LinearizationPolicy | None = None,
    path_seed: int = 0,
    duration: float | None = None,
    detector=None,
    responder=None,
    stop_at_goal: bool = True,
    faults: FaultSpec = None,
    telemetry: Telemetry | None = None,
) -> RunResult:
    """Run one trial of *scenario* on *rig* (``scenario=None`` = clean run).

    The planned path is cached per *path_seed* (all trials fly the same
    mission, as in the paper); per-trial randomness (noise, attacks) comes
    from *seed*. With ``stop_at_goal`` (default, matching the paper's
    missions) the run ends when the tracking controller reports arrival —
    a parked robot exercises no dynamics, so counting parked iterations
    would only dilute the metrics. *faults* optionally injects benign
    delivery faults (see :data:`FaultSpec`); their randomness is independent
    of *seed*'s noise stream. *telemetry* optionally attaches an
    observability sink (e.g. :class:`~repro.obs.telemetry.RecordingTelemetry`)
    to the detector for the duration of the run — export the recording with
    :func:`repro.obs.export.export_run` or ``scripts/diagnose_run.py``.
    """
    if detector is None:
        detector = rig.detector(decision=decision, modes=modes, policy=policy)
    else:
        detector.reset()
    if telemetry is not None:
        detector.attach_telemetry(telemetry)
    trace = _simulate(
        rig,
        scenario,
        seed,
        path_seed,
        duration,
        detector,
        responder,
        stop_at_goal,
        faults=faults,
    )
    return _reduce(rig, scenario, seed, trace)


#: Keyword arguments :func:`run_scenario` accepts beyond (rig, scenario,
#: seed) — the extras Monte-Carlo style entry points may forward. Kept as an
#: explicit set so both the sequential and the batched/parallel branches
#: reject unknown keys identically, before any trial runs.
RUN_SCENARIO_KWARGS = frozenset(
    {
        "decision",
        "modes",
        "policy",
        "path_seed",
        "duration",
        "detector",
        "responder",
        "stop_at_goal",
        "faults",
        "telemetry",
    }
)


def validate_run_kwargs(kwargs, reserved: frozenset[str] = frozenset()) -> None:
    """Reject ``run_scenario`` forwarding kwargs that are unknown or reserved.

    *reserved* names arguments the calling sweep supplies itself (e.g. the
    fault campaign owns ``seed``/``faults``/``telemetry``); passing one is a
    configuration error rather than a silent override.
    """
    unknown = set(kwargs) - RUN_SCENARIO_KWARGS
    if unknown:
        raise ConfigurationError(
            f"unknown run_scenario argument(s) {sorted(unknown)}; "
            f"valid extras are {sorted(RUN_SCENARIO_KWARGS)}"
        )
    clashes = set(kwargs) & reserved
    if clashes:
        raise ConfigurationError(
            f"argument(s) {sorted(clashes)} are supplied by the sweep itself "
            "and cannot be overridden through run kwargs"
        )


def _sim_args(kwargs: dict) -> dict:
    """The open-loop simulation arguments of a run-kwarg dict."""
    return {
        "path_seed": kwargs.get("path_seed", 0),
        "duration": kwargs.get("duration"),
        "stop_at_goal": kwargs.get("stop_at_goal", True),
        "faults": kwargs.get("faults"),
    }


def _chunk_detector(rig: RobotRig, kwargs: dict):
    """One detector per chunk — amortized across every trace the chunk replays."""
    detector = kwargs.get("detector")
    if detector is None:
        detector = rig.detector(
            decision=kwargs.get("decision"),
            modes=kwargs.get("modes"),
            policy=kwargs.get("policy"),
        )
    return detector


def _trace_availability(trace: SimulationTrace):
    """Per-iteration delivery masks for replay (None when fully nominal)."""
    availability = trace.availability
    if not availability or all(a is None for a in availability):
        return None
    return availability


def _replay_chunk(payload, items):
    """Worker: simulate each trial open-loop, replay the chunk through one detector.

    *payload* is ``(rig, scenarios, kwargs, per_trial_telemetry)`` and each
    item is a ``(scenario_index, seed)`` descriptor — the same seed the
    serial loop would have passed to :func:`run_scenario`, so every noise,
    attack and fault stream is derived identically. Returns one
    ``(RunResult, RecordingTelemetry | None)`` pair per item.
    """
    rig, scenarios, kwargs, per_trial_telemetry = payload
    sim_args = _sim_args(kwargs)
    traces = [
        _simulate(
            rig,
            scenarios[scenario_index],
            seed,
            detector=None,
            responder=None,
            **sim_args,
        )
        for scenario_index, seed in items
    ]
    detector = _chunk_detector(rig, kwargs)
    out: list[tuple[RunResult, RecordingTelemetry | None]] = []
    if per_trial_telemetry:
        # One fresh recording per trial so the parent can merge them back in
        # trial order — reproducing the event sequence a serial run with one
        # shared sink records. Per-trace replay instead of one batch call
        # because the sink must swap between traces.
        for (scenario_index, seed), trace in zip(items, traces):
            recording = RecordingTelemetry()
            detector.attach_telemetry(recording)
            reports = detector.replay(
                trace.planned_controls,
                trace.readings,
                reset=True,
                availability=_trace_availability(trace),
            )
            trace.attach_reports(reports)
            out.append((_reduce(rig, scenarios[scenario_index], seed, trace), recording))
        detector.attach_telemetry(None)
    else:
        batch = replay_batch(detector, traces, keep_reports=True)
        for position, ((scenario_index, seed), trace) in enumerate(zip(items, traces)):
            trace.attach_reports(batch.trace_reports(position))
            out.append((_reduce(rig, scenarios[scenario_index], seed, trace), None))
    return out


def _monte_carlo_parallel(
    rig: RobotRig,
    scenario: Scenario | None,
    n_trials: int,
    base_seed: int,
    config,
    kwargs: dict,
) -> list[RunResult]:
    telemetry = kwargs.get("telemetry")
    if telemetry is not None and not isinstance(telemetry, RecordingTelemetry):
        raise ConfigurationError(
            "parallel Monte-Carlo requires a mergeable telemetry sink "
            "(RecordingTelemetry or a subclass); worker recordings are merged "
            "back into it trial by trial"
        )
    faults = kwargs.get("faults")
    if isinstance(faults, FaultSchedule):
        # A shared mutable schedule is only safe across processes when it can
        # be copied; fork copies it implicitly, but requiring picklability
        # keeps behavior identical under every start method.
        ensure_picklable(faults, "the shared FaultSchedule instance")
    rig.plan_path(kwargs.get("path_seed", 0))  # plan once; workers inherit the cache
    worker_kwargs = {k: v for k, v in kwargs.items() if k != "telemetry"}
    items = [(0, base_seed + trial) for trial in range(n_trials)]
    payload = (rig, (scenario,), worker_kwargs, telemetry is not None)
    results: list[RunResult] = []
    for result, recording in map_trials(_replay_chunk, items, parallel=config, payload=payload):
        if recording is not None and telemetry is not None:
            telemetry.merge(recording)
        results.append(result)
    return results


def monte_carlo(
    rig: RobotRig,
    scenario: Scenario | None,
    n_trials: int,
    base_seed: int = 0,
    batched: bool = False,
    parallel: ParallelSpec = None,
    **kwargs,
) -> list[RunResult]:
    """Run *n_trials* independent trials of one scenario.

    With ``batched=True`` the trials are simulated open-loop (no detector in
    the control period) and then replayed back-to-back through a single
    detector via :func:`repro.core.batch.replay_batch`. Without a responder
    the detector never influences the closed loop — the planner navigates by
    the nav sensor's readings either way — so the reports, and therefore the
    metrics, are identical to the sequential path; the batch amortizes
    detector construction and report bookkeeping across the trials.

    With ``parallel=`` (a worker count or
    :class:`~repro.eval.parallel.ParallelConfig`) the trials fan out to
    worker processes in seed-deterministic chunks, each worker amortizing
    detector construction across its chunk exactly like the batched path —
    results are identical to the serial path for any worker count. Attached
    ``telemetry`` must be a :class:`~repro.obs.telemetry.RecordingTelemetry`
    (worker recordings are merged back in trial order). Falls back to the
    serial path when the resolved worker count is 1 or a *responder* closes
    the detection loop (a responder makes trials closed-loop online runs,
    which neither batching nor offline replay can reproduce).
    """
    validate_run_kwargs(kwargs)
    config = as_parallel_config(parallel)
    if (
        config is not None
        and n_trials > 1
        and kwargs.get("responder") is None
        and config.resolved_workers() > 1
    ):
        return _monte_carlo_parallel(rig, scenario, n_trials, base_seed, config, kwargs)
    if not batched:
        return [
            run_scenario(rig, scenario, seed=base_seed + trial, **kwargs)
            for trial in range(n_trials)
        ]
    if kwargs.get("responder") is not None:
        raise ConfigurationError(
            "batched replay requires an open detection loop (no responder): "
            "a responder feeds detector verdicts back into the planner, so the "
            "detector cannot be deferred to offline replay"
        )
    sim_args = _sim_args(kwargs)
    traces = [
        _simulate(
            rig,
            scenario,
            base_seed + trial,
            detector=None,
            responder=None,
            **sim_args,
        )
        for trial in range(n_trials)
    ]
    detector = _chunk_detector(rig, kwargs)
    if kwargs.get("telemetry") is not None:
        detector.attach_telemetry(kwargs["telemetry"])
    batch = replay_batch(detector, traces, keep_reports=True)
    results: list[RunResult] = []
    for trial, trace in enumerate(traces):
        trace.attach_reports(batch.trace_reports(trial))
        results.append(_reduce(rig, scenario, base_seed + trial, trace))
    return results
