"""Forensics: quantification accuracy of the anomaly vector estimates.

The paper motivates estimating (not just detecting) the anomaly vectors
"for forensics purposes" and reports quantification accuracy for scenario
#8: IPS x-shift estimated at +0.069 ± 0.002 m against the injected
+0.07 m, normalized average errors of 1.91% (sensor) and 0.41% / 1.79%
(actuator wheels). This module computes the same statistics for any run:
the simulator records both the delivered and the *clean* readings, so the
ground-truth corruption ``d^s = delivered − clean`` (and ``d^a = executed −
planned``) is available per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.trace import SimulationTrace

__all__ = ["QuantificationReport", "quantify_run"]


@dataclass(frozen=True)
class ChannelQuantification:
    """Quantification accuracy for one workflow (sensor or actuator).

    Two error measures are reported: the *per-iteration* normalized error
    (estimate noise relative to the true magnitude — dominated by the
    estimator's single-step variance) and the *normalized bias* of the
    time-averaged estimate (the forensics-relevant number: how accurately
    the attack magnitude is reconstructed from the whole attacked window;
    this is the analog of the paper's 1.91% / 0.41% / 1.79% figures).
    """

    name: str
    n_iterations: int
    mean_true_magnitude: float
    mean_estimate_error: float
    normalized_error: float
    normalized_bias: float

    def row(self) -> list[str]:
        return [
            self.name,
            str(self.n_iterations),
            f"{self.mean_true_magnitude:.4f}",
            f"{self.mean_estimate_error:.4f}",
            f"{self.normalized_error:.2%}",
            f"{self.normalized_bias:.2%}",
        ]


@dataclass
class QuantificationReport:
    """Per-workflow quantification accuracy over a run's attacked windows."""

    sensors: list[ChannelQuantification]
    actuator: ChannelQuantification | None

    def format(self) -> str:
        from .tables import format_table

        rows = [c.row() for c in self.sensors]
        if self.actuator is not None:
            rows.append(self.actuator.row())
        return format_table(
            ["workflow", "iterations", "mean |d| true", "mean |error|", "per-iter error", "bias of mean"],
            rows,
            title="Anomaly quantification accuracy (forensics)",
        )

    def worst_normalized_error(self) -> float:
        errors = [c.normalized_error for c in self.sensors]
        if self.actuator is not None:
            errors.append(self.actuator.normalized_error)
        return max(errors) if errors else 0.0

    def worst_normalized_bias(self) -> float:
        biases = [c.normalized_bias for c in self.sensors]
        if self.actuator is not None:
            biases.append(self.actuator.normalized_bias)
        return max(biases) if biases else 0.0


def _wrap_angles(residual: np.ndarray, mask: np.ndarray) -> np.ndarray:
    out = residual.copy()
    if mask.any():
        out[..., mask] = np.arctan2(np.sin(out[..., mask]), np.cos(out[..., mask]))
    return out


def quantify_run(trace: SimulationTrace, suite, settle_iterations: int = 5) -> QuantificationReport:
    """Quantification accuracy of one run with detector reports.

    For each sensing workflow under misbehavior the estimated
    ``d_hat^s`` (from the selected mode's testing block) is compared
    against the recorded ground-truth corruption; likewise for the
    actuator channel. ``settle_iterations`` after each truth transition
    are excluded (the paper's windows also blank transitions).
    """
    true_sensor = trace.actual_sensor_anomaly()
    true_actuator = trace.actual_actuator_anomaly()

    # Iterations considered "settled": the truth condition unchanged for at
    # least settle_iterations.
    settled = np.zeros(len(trace), dtype=bool)
    streak = 0
    previous = None
    for k in range(len(trace)):
        condition = (trace.truth_sensors[k], trace.truth_actuator[k])
        streak = streak + 1 if condition == previous else 0
        previous = condition
        settled[k] = streak >= settle_iterations

    sensors: list[ChannelQuantification] = []
    for name in suite.names:
        sl = suite.slice_of(name)
        mask = suite.sensor(name).angular_mask
        true_errors: list[float] = []
        est_errors: list[float] = []
        truths: list[np.ndarray] = []
        estimates: list[np.ndarray] = []
        for k in range(len(trace)):
            if not settled[k] or name not in trace.truth_sensors[k]:
                continue
            report = trace.reports[k]
            if report is None:
                continue
            estimate = report.sensor_anomaly(name)
            if estimate is None:
                continue
            truth = _wrap_angles(true_sensor[k, sl], mask)
            error = _wrap_angles(estimate - truth, mask)
            true_errors.append(float(np.linalg.norm(truth)))
            est_errors.append(float(np.linalg.norm(error)))
            truths.append(truth)
            estimates.append(np.asarray(estimate, dtype=float))
        if true_errors:
            mean_true = float(np.mean(true_errors))
            mean_err = float(np.mean(est_errors))
            mean_truth_vec = np.mean(truths, axis=0)
            mean_est_vec = np.mean(estimates, axis=0)
            bias = float(np.linalg.norm(_wrap_angles(mean_est_vec - mean_truth_vec, mask)))
            denom = float(np.linalg.norm(mean_truth_vec))
            sensors.append(
                ChannelQuantification(
                    name=name,
                    n_iterations=len(true_errors),
                    mean_true_magnitude=mean_true,
                    mean_estimate_error=mean_err,
                    normalized_error=mean_err / mean_true if mean_true > 0 else 0.0,
                    normalized_bias=bias / denom if denom > 0 else 0.0,
                )
            )

    actuator = None
    true_errors, est_errors = [], []
    truths, estimates = [], []
    for k in range(len(trace)):
        if not settled[k] or not trace.truth_actuator[k]:
            continue
        report = trace.reports[k]
        if report is None:
            continue
        truth = true_actuator[k]
        error = report.actuator_anomaly - truth
        true_errors.append(float(np.linalg.norm(truth)))
        est_errors.append(float(np.linalg.norm(error)))
        truths.append(truth)
        estimates.append(np.asarray(report.actuator_anomaly, dtype=float))
    if true_errors:
        mean_true = float(np.mean(true_errors))
        mean_err = float(np.mean(est_errors))
        bias = float(np.linalg.norm(np.mean(estimates, axis=0) - np.mean(truths, axis=0)))
        denom = float(np.linalg.norm(np.mean(truths, axis=0)))
        actuator = ChannelQuantification(
            name="actuators",
            n_iterations=len(true_errors),
            mean_true_magnitude=mean_true,
            mean_estimate_error=mean_err,
            normalized_error=mean_err / mean_true if mean_true > 0 else 0.0,
            normalized_bias=bias / denom if denom > 0 else 0.0,
        )
    return QuantificationReport(sensors=sensors, actuator=actuator)
