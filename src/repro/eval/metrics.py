"""Detection metrics: confusion counts, rates, F1 and detection delays.

Paper definitions (Section V, "Metrics"):

* **TP** — the system raises an alarm *and* correctly identifies the
  sensor/actuator misbehaving condition;
* **FP** — any other positive detection result;
* **FN** — no alarm while the robot is misbehaving;
* **TN** — no misbehavior and no alarm;
* **delay** — time between a misbehavior trigger and the first correct
  identification of the new condition.

Counts are accumulated per control iteration over a run's trace, separately
for the sensor and the actuator channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = ["ConfusionCounts", "DelayEvent", "confusion_from_run", "detection_delays"]


@dataclass
class ConfusionCounts:
    """Accumulated confusion counts with the paper's rate definitions."""

    tp: int = 0
    fp: int = 0
    fn: int = 0
    tn: int = 0

    def add(self, other: "ConfusionCounts") -> None:
        self.tp += other.tp
        self.fp += other.fp
        self.fn += other.fn
        self.tn += other.tn

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.fn + self.tn

    @property
    def false_positive_rate(self) -> float:
        denom = self.fp + self.tn
        return self.fp / denom if denom else 0.0

    @property
    def false_negative_rate(self) -> float:
        denom = self.fn + self.tp
        return self.fn / denom if denom else 0.0

    @property
    def true_positive_rate(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        return self.true_positive_rate

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) > 0.0 else 0.0

    def to_dict(self) -> dict:
        """JSON form: raw counts plus the derived rates campaign artifacts store.

        The counts alone reproduce every property; the rates are
        denormalized in so a stored artifact is readable without this
        class (the dashboard consumes the JSON directly).
        """
        return {
            "tp": self.tp,
            "fp": self.fp,
            "fn": self.fn,
            "tn": self.tn,
            "fpr": self.false_positive_rate,
            "fnr": self.false_negative_rate,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ConfusionCounts":
        """Rebuild counts from :meth:`to_dict` output (rates are rederived)."""
        return cls(
            tp=int(data["tp"]), fp=int(data["fp"]), fn=int(data["fn"]), tn=int(data["tn"])
        )

    def classify(self, detected_positive: bool, correct: bool, truth_positive: bool) -> None:
        """Classify one iteration and accumulate.

        ``detected_positive`` — the detector reported some misbehavior;
        ``correct`` — the reported condition equals the ground truth;
        ``truth_positive`` — the robot actually misbehaves.
        """
        if detected_positive:
            if correct and truth_positive:
                self.tp += 1
            else:
                self.fp += 1
        else:
            if truth_positive:
                self.fn += 1
            else:
                self.tn += 1


@dataclass(frozen=True)
class DelayEvent:
    """One ground-truth condition transition and its detection latency."""

    channel: str
    trigger_time: float
    truth: object
    detected_time: float | None

    @property
    def delay(self) -> float | None:
        if self.detected_time is None:
            return None
        return self.detected_time - self.trigger_time


def _iterate_conditions(
    truth_sensor: Sequence[frozenset[str]],
    truth_actuator: Sequence[bool],
    detected_sensor: Sequence[frozenset[str]],
    detected_actuator: Sequence[bool],
) -> tuple[ConfusionCounts, ConfusionCounts]:
    sensor = ConfusionCounts()
    actuator = ConfusionCounts()
    for ts, ta, ds, da in zip(truth_sensor, truth_actuator, detected_sensor, detected_actuator):
        sensor.classify(
            detected_positive=bool(ds),
            correct=(ds == ts),
            truth_positive=bool(ts),
        )
        actuator.classify(
            detected_positive=bool(da),
            correct=(da == ta),
            truth_positive=bool(ta),
        )
    return sensor, actuator


def confusion_from_run(trace) -> tuple[ConfusionCounts, ConfusionCounts]:
    """Sensor and actuator confusion counts for a trace with reports.

    ``trace`` is a :class:`~repro.sim.trace.SimulationTrace` whose reports
    are :class:`~repro.core.detector.DetectionReport` objects.
    """
    detected_sensor = [
        frozenset() if r is None else r.flagged_sensors for r in trace.reports
    ]
    detected_actuator = [False if r is None else r.actuator_alarm for r in trace.reports]
    return _iterate_conditions(
        trace.truth_sensors, trace.truth_actuator, detected_sensor, detected_actuator
    )


def detection_delays(trace, max_delay: float | None = None) -> list[DelayEvent]:
    """Detection delay for every ground-truth condition transition.

    For each change of the sensor condition (or actuator flag), the delay is
    the time until the detector's reported condition first equals the new
    truth. Transitions *to* the clean condition also count (the detector
    must clear its alarm — scenario #10's LiDAR recovery). ``None`` marks a
    transition never correctly identified before the trace (or *max_delay*
    horizon) ends.
    """
    events: list[DelayEvent] = []
    times = trace.times_array()
    detected_sensor = [
        frozenset() if r is None else r.flagged_sensors for r in trace.reports
    ]
    detected_actuator = [False if r is None else r.actuator_alarm for r in trace.reports]

    def scan(channel: str, truth: Sequence, detected: Sequence) -> None:
        previous = truth[0]
        # The initial condition counts as a transition at t=0 only if it is
        # not the clean condition (scenario #6 starts under attack).
        transition_indices = [0] if bool(previous) else []
        for idx in range(1, len(truth)):
            if truth[idx] != previous:
                transition_indices.append(idx)
                previous = truth[idx]
        for idx in transition_indices:
            target = truth[idx]
            detected_time = None
            for j in range(idx, len(detected)):
                if truth[j] != target:
                    break  # the condition changed again before detection
                if max_delay is not None and times[j] - times[idx] > max_delay:
                    break
                if detected[j] == target:
                    detected_time = float(times[j])
                    break
            events.append(
                DelayEvent(
                    channel=channel,
                    trigger_time=float(times[idx]),
                    truth=target,
                    detected_time=detected_time,
                )
            )

    scan("sensor", trace.truth_sensors, detected_sensor)
    scan("actuator", trace.truth_actuator, detected_actuator)
    return events
