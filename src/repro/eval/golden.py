"""Golden-trace capture: canonical missions pinned bit-for-bit.

A golden trace freezes everything a canonical no-fault mission reports —
states, anomaly estimates, mode probabilities, Chi-square statistics and
alarms — into a compressed archive under ``tests/golden/``. The regression
test re-runs the mission and compares against the archive to 1e-10, so any
refactor that silently drifts the seed math (a reordered reduction, a
"harmless" fast path) fails loudly instead of skewing every downstream
table. ``scripts/make_golden_traces.py`` regenerates the archives when a
drift is *intentional*.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..robots.khepera import khepera_rig
from ..robots.rig import RobotRig
from ..robots.tamiya import tamiya_rig
from ..sim.faults import FaultSchedule
from .runner import run_scenario

__all__ = ["GOLDEN_MISSIONS", "golden_mission", "save_golden", "load_golden", "compare_golden"]

#: Canonical missions: (rig factory, trial seed, steps). 200 steps covers
#: mission start-up transients plus steady tracking on both platforms.
GOLDEN_MISSIONS: dict[str, tuple] = {
    "khepera": (khepera_rig, 2024, 200),
    "tamiya": (tamiya_rig, 2024, 200),
}


def golden_mission(
    name: str,
    rig: RobotRig | None = None,
    faults: FaultSchedule | None = None,
    telemetry=None,
) -> dict[str, np.ndarray]:
    """Run one canonical mission and reduce its reports to flat arrays.

    *telemetry* is forwarded to :func:`repro.eval.runner.run_scenario`; the
    observability tests use it to prove an attached sink (null or recording)
    leaves the archived statistics bit-identical.
    """
    if name not in GOLDEN_MISSIONS:
        raise ConfigurationError(f"unknown golden mission {name!r}: {sorted(GOLDEN_MISSIONS)}")
    factory, seed, n_steps = GOLDEN_MISSIONS[name]
    if rig is None:
        rig = factory()
        rig.plan_path(0)
    duration = n_steps * rig.model.dt
    result = run_scenario(
        rig,
        None,
        seed=seed,
        duration=duration,
        stop_at_goal=False,
        faults=faults,
        telemetry=telemetry,
    )
    trace = result.trace
    reports = result.reports
    if len(reports) != n_steps:
        raise ConfigurationError(
            f"golden mission {name!r} produced {len(reports)} reports, expected {n_steps}"
        )
    mode_names = tuple(sorted(reports[0].statistics.mode_probabilities))
    sensor_names = tuple(trace.sensor_names)
    return {
        "mode_names": np.array(mode_names, dtype=np.str_),
        "sensor_names": np.array(sensor_names, dtype=np.str_),
        "readings": trace.readings_array(),
        "planned": trace.planned_array(),
        "true_states": trace.states_array(),
        "state_estimate": np.array([r.statistics.state_estimate for r in reports]),
        "actuator_estimate": np.array([r.statistics.actuator_estimate for r in reports]),
        "sensor_statistic": np.array([r.statistics.sensor_statistic for r in reports]),
        "actuator_statistic": np.array([r.statistics.actuator_statistic for r in reports]),
        "mode_probabilities": np.array(
            [[r.statistics.mode_probabilities[m] for m in mode_names] for r in reports]
        ),
        "selected_mode": np.array(
            [mode_names.index(r.statistics.selected_mode) for r in reports], dtype=int
        ),
        "flagged": np.array(
            [[s in r.flagged_sensors for s in sensor_names] for r in reports], dtype=bool
        ),
        "actuator_alarm": np.array([r.actuator_alarm for r in reports], dtype=bool),
    }


def save_golden(path, arrays: dict[str, np.ndarray]) -> None:
    np.savez_compressed(path, **arrays)


def load_golden(path) -> dict[str, np.ndarray]:
    with np.load(path, allow_pickle=False) as data:
        return {key: data[key].copy() for key in data.files}


def compare_golden(
    fresh: dict[str, np.ndarray],
    stored: dict[str, np.ndarray],
    atol: float = 1e-10,
) -> list[str]:
    """Return the list of keys that drifted beyond *atol* (empty = match)."""
    drifted: list[str] = []
    for key in sorted(stored):
        a, b = fresh.get(key), stored[key]
        if a is None or a.shape != b.shape:
            drifted.append(key)
            continue
        if a.dtype.kind in ("U", "S", "b", "i"):
            if not np.array_equal(a, b):
                drifted.append(key)
        elif not np.allclose(a, b, atol=atol, rtol=0.0, equal_nan=True):
            drifted.append(key)
    return drifted
