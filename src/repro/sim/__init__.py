"""Closed-loop robot simulation (the paper's Fig 1 system model).

The simulator plays the role of the physical testbed: it integrates the true
(noisy) dynamics, runs the sensing and actuation workflows with their attack
injection points, closes the loop through the path-tracking planner, and
records everything the detector and the evaluation harness need.
"""

from .bus import CommunicationBus, Packet
from .faults import (
    BernoulliDropout,
    BurstDropout,
    DeliveredReading,
    DuplicateFault,
    FaultSchedule,
    FaultyDelivery,
    LatencyFault,
    OutOfOrderFault,
    PayloadCorruption,
    SensorFault,
    TimestampJitter,
    uniform_dropout_schedule,
)
from .platform import PlatformStep, RobotPlatform
from .simulator import ClosedLoopSimulator
from .trace import SimulationTrace
from .workflows import (
    ActuationWorkflow,
    FeatureSensingWorkflow,
    LidarRawWorkflow,
    OdometryWorkflow,
    SensingWorkflow,
    WorkflowContext,
)

__all__ = [
    "CommunicationBus",
    "Packet",
    "SensorFault",
    "BernoulliDropout",
    "BurstDropout",
    "LatencyFault",
    "DuplicateFault",
    "OutOfOrderFault",
    "PayloadCorruption",
    "TimestampJitter",
    "DeliveredReading",
    "FaultyDelivery",
    "FaultSchedule",
    "uniform_dropout_schedule",
    "SensingWorkflow",
    "FeatureSensingWorkflow",
    "LidarRawWorkflow",
    "OdometryWorkflow",
    "ActuationWorkflow",
    "WorkflowContext",
    "RobotPlatform",
    "PlatformStep",
    "ClosedLoopSimulator",
    "SimulationTrace",
]
