"""Communication bus: the CAN-style backbone connecting workflows and planner.

A synchronous publish/subscribe bus with a bounded packet log. The detector
never parses packets (it is content-based, not metadata-based — Section
II-C), but the bus makes the Fig 1 data flows explicit, gives tests a place
to observe workflow traffic, and supports packet-injection demonstrations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Packet", "CommunicationBus"]


@dataclass(frozen=True)
class Packet:
    """One message on the bus."""

    topic: str
    iteration: int
    t: float
    payload: Any
    source: str


class CommunicationBus:
    """Synchronous topic bus with a bounded history log."""

    def __init__(self, log_size: int = 10000) -> None:
        self._subscribers: dict[str, list[Callable[[Packet], None]]] = {}
        self._log: deque[Packet] = deque(maxlen=log_size)

    def subscribe(self, topic: str, callback: Callable[[Packet], None]) -> None:
        """Register *callback* for packets on *topic*."""
        self._subscribers.setdefault(topic, []).append(callback)

    def publish(self, packet: Packet) -> None:
        """Deliver *packet* to all subscribers and append it to the log."""
        self._log.append(packet)
        for callback in self._subscribers.get(packet.topic, []):
            callback(packet)

    def send(self, topic: str, iteration: int, t: float, payload: Any, source: str) -> Packet:
        """Convenience: build and publish a packet."""
        packet = Packet(topic=topic, iteration=iteration, t=t, payload=payload, source=source)
        self.publish(packet)
        return packet

    def history(self, topic: str | None = None) -> list[Packet]:
        """Logged packets, optionally filtered by topic."""
        if topic is None:
            return list(self._log)
        return [p for p in self._log if p.topic == topic]

    def clear(self, subscribers: bool = False) -> None:
        """Empty the packet log; with ``subscribers=True`` also drop every
        registered callback.

        By default subscriptions survive — workflows subscribe once at
        construction and a log clear between missions must not sever them.
        Reusing one bus across *different* workflow stacks is the case that
        needs ``subscribers=True`` (or :meth:`reset`): otherwise the old
        stack's callbacks keep firing on the new run's traffic.
        """
        self._log.clear()
        if subscribers:
            self._subscribers.clear()

    def reset(self) -> None:
        """Return the bus to its freshly-constructed state (log and
        subscriptions both emptied)."""
        self.clear(subscribers=True)

    def subscriber_count(self, topic: str | None = None) -> int:
        """Number of registered callbacks, optionally for one topic."""
        if topic is not None:
            return len(self._subscribers.get(topic, []))
        return sum(len(cbs) for cbs in self._subscribers.values())
