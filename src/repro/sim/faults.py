"""Fault injection: benign sensor-delivery failures on the bus boundary.

Real robot stacks lose, delay, duplicate and reorder measurements
independently of adversarial corruption — a shared bus drops packets under
load, a LiDAR driver hiccups, an IPS update arrives one control period late.
RoboADS must keep running through such *benign* faults without false alarms,
which is a different requirement from detecting *malicious* corruption: a
corrupted reading carries wrong content, a faulted delivery carries no (or
stale) content.

This module models the delivery path of each sensing workflow as a channel:
every control iteration the fresh measurement enters the channel as an
in-flight packet, the active fault models perturb its fate (drop it, delay
its arrival, corrupt its payload, re-send an old copy), and the channel then
delivers whatever has arrived by that iteration. The consumer-facing result
per sensor is a :class:`DeliveredReading`: the value that arrived (which may
be stale or corrupted), whether anything arrived at all, and how old it is.

Fault models mirror :class:`repro.attacks.scheduler.AttackSchedule`'s
declarative style — a :class:`FaultSchedule` is a list of per-sensor fault
models with activation windows — but their randomness is *independent* of
the simulation's generator: each model draws from its own seeded substream,
so adding a zero-intensity fault (or removing a schedule entirely) never
perturbs the nominal mission's noise sequence. This is what makes the
golden-trace identity (zero intensity == no-fault path, bit for bit)
provable rather than approximate.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "DeliveredReading",
    "FaultyDelivery",
    "SensorFault",
    "BernoulliDropout",
    "BurstDropout",
    "LatencyFault",
    "DuplicateFault",
    "OutOfOrderFault",
    "PayloadCorruption",
    "TimestampJitter",
    "FaultSchedule",
    "uniform_dropout_schedule",
]


@dataclass
class _InFlight:
    """One measurement packet travelling through a sensor's delivery channel."""

    value: np.ndarray
    measured_iteration: int
    measured_t: float
    arrival: int
    dropped: bool = False
    #: Arrives at the *end* of its arrival iteration — after any fresh packet
    #: delivered the same iteration (how a straggling retransmission lands).
    late: bool = False
    events: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class DeliveredReading:
    """What one sensor's channel delivered at one control iteration.

    Attributes
    ----------
    value:
        The delivered reading — the payload of the *last* packet to arrive
        this iteration (out-of-order delivery means this can be an older
        measurement than one already seen). When nothing has ever arrived it
        is ``None``.
    available:
        Whether any packet arrived this iteration. Unavailable sensors keep
        ``value`` at the last delivered payload (hold semantics) so the
        planner has something to navigate by, but the detector must exclude
        them from the measurement update.
    age:
        Iterations between the delivered value's measurement and now
        (0 = fresh). Meaningful only when ``value`` is not ``None``.
    events:
        Fault-event labels that touched this delivery (``"dropout"``,
        ``"latency"``, ``"duplicate"``, ``"reorder"``, ``"corruption"``,
        ``"jitter"``), for traces and forensics.
    """

    value: np.ndarray | None
    available: bool
    age: int
    events: tuple[str, ...] = ()


@dataclass(frozen=True)
class FaultyDelivery:
    """All sensors' deliveries for one control iteration."""

    iteration: int
    t: float
    readings: dict[str, DeliveredReading]

    @property
    def available_sensors(self) -> frozenset[str]:
        """Names of the sensors that delivered a packet this iteration."""
        return frozenset(n for n, r in self.readings.items() if r.available)

    @property
    def degraded(self) -> bool:
        """True when at least one sensor failed to deliver this iteration."""
        return any(not r.available for r in self.readings.values())

    def stacked(self, suite, fallback: np.ndarray) -> np.ndarray:
        """Assemble a stacked reading in *suite* order.

        Sensors that never delivered anything fall back to the corresponding
        block of *fallback* (typically the clean initial reading); their rows
        are excluded from estimation by the availability mask anyway, but the
        stacked vector must stay materializable.
        """
        out = np.asarray(fallback, dtype=float).copy()
        for name, delivered in self.readings.items():
            if delivered.value is not None:
                out[suite.slice_of(name)] = delivered.value
        return out


class SensorFault(ABC):
    """Base class: one fault model acting on one sensor's delivery channel.

    Parameters
    ----------
    sensor:
        Name of the sensing workflow whose channel this fault perturbs.
    start, stop:
        Activation window in mission time (``stop=None`` = until mission
        end), mirroring :class:`repro.attacks.base.Attack`.
    name:
        Display name for traces and reports.
    """

    #: Event label recorded on deliveries this fault touched.
    event = "fault"

    def __init__(
        self,
        sensor: str,
        start: float = 0.0,
        stop: float | None = None,
        name: str | None = None,
    ) -> None:
        if stop is not None and stop <= start:
            raise ConfigurationError("fault stop time must be after start")
        self.sensor = str(sensor)
        self.start = float(start)
        self.stop = None if stop is None else float(stop)
        self.name = name or f"{self.event}:{sensor}"
        self._rng: np.random.Generator | None = None
        self._seed: np.random.SeedSequence | None = None

    def active(self, t: float) -> bool:
        """Whether the fault's [start, stop) activity window covers time *t*."""
        return t >= self.start and (self.stop is None or t < self.stop)

    # -- lifecycle ------------------------------------------------------
    def bind(self, seed: np.random.SeedSequence) -> None:
        """Attach this fault's private random substream (idempotent reset base)."""
        self._seed = seed
        self.reset()

    def reset(self) -> None:
        """Restart the fault's private stream for a fresh run."""
        if self._seed is None:
            raise ConfigurationError(
                f"fault {self.name!r} was never bound to a schedule; "
                "construct a FaultSchedule around it"
            )
        self._rng = np.random.default_rng(self._seed)

    @property
    def rng(self) -> np.random.Generator:
        """The fault's private random stream (independent of trial noise)."""
        if self._rng is None:
            raise ConfigurationError(f"fault {self.name!r} used before reset()")
        return self._rng

    # -- hooks ----------------------------------------------------------
    def apply(self, packet: _InFlight, t: float) -> None:
        """Perturb the fresh in-flight packet (drop / delay / corrupt)."""

    def extra_packets(
        self, channel: "_Channel", iteration: int, t: float
    ) -> list[_InFlight]:
        """Additional packets injected into the channel this iteration."""
        return []


class BernoulliDropout(SensorFault):
    """Independent per-iteration packet loss with probability *probability*."""

    event = "dropout"

    def __init__(self, sensor: str, probability: float, **kwargs) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError("dropout probability must be in [0, 1]")
        super().__init__(sensor, **kwargs)
        self.probability = float(probability)

    def apply(self, packet: _InFlight, t: float) -> None:
        """Drop the packet with the configured Bernoulli probability."""
        if self.probability > 0.0 and self.rng.random() < self.probability:
            packet.dropped = True
            packet.events.append(self.event)


class BurstDropout(SensorFault):
    """Two-state (Gilbert–Elliott) burst loss.

    From the good state the channel enters a loss burst with probability
    *p_enter* per iteration; inside a burst every packet is lost and the
    burst ends with probability *p_exit* per iteration — the classic model of
    correlated bus congestion, where losses cluster instead of scattering.
    """

    event = "dropout"

    def __init__(self, sensor: str, p_enter: float, p_exit: float = 0.5, **kwargs) -> None:
        if not 0.0 <= p_enter <= 1.0 or not 0.0 < p_exit <= 1.0:
            raise ConfigurationError("burst probabilities must be in [0, 1] (p_exit > 0)")
        super().__init__(sensor, **kwargs)
        self.p_enter = float(p_enter)
        self.p_exit = float(p_exit)
        self._in_burst = False

    def reset(self) -> None:
        """Restart the private stream and leave any in-progress burst."""
        super().reset()
        self._in_burst = False

    def apply(self, packet: _InFlight, t: float) -> None:
        """Advance the two-state chain; drop the packet while in a burst."""
        if self._in_burst:
            packet.dropped = True
            packet.events.append(self.event)
            if self.rng.random() < self.p_exit:
                self._in_burst = False
        elif self.p_enter > 0.0 and self.rng.random() < self.p_enter:
            self._in_burst = True
            packet.dropped = True
            packet.events.append(self.event)


class LatencyFault(SensorFault):
    """Delayed delivery: packets arrive *delay* iterations late.

    With ``probability < 1`` only a random subset of packets is delayed
    (the rest arrive on time, so a delayed packet arrives *after* fresher
    ones — out-of-order delivery falls out of the arrival ordering). The
    consumer sees stale readings while delayed packets are in flight.
    """

    event = "latency"

    def __init__(
        self, sensor: str, delay: int, probability: float = 1.0, **kwargs
    ) -> None:
        if delay < 1:
            raise ConfigurationError("latency delay must be at least 1 iteration")
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError("latency probability must be in [0, 1]")
        super().__init__(sensor, **kwargs)
        self.delay = int(delay)
        self.probability = float(probability)

    def apply(self, packet: _InFlight, t: float) -> None:
        """Postpone the packet's arrival by the configured iteration count."""
        if self.probability >= 1.0 or (
            self.probability > 0.0 and self.rng.random() < self.probability
        ):
            packet.arrival += self.delay
            packet.events.append(self.event)


class DuplicateFault(SensorFault):
    """Re-transmission: with probability *probability*, the previously
    delivered packet is sent again this iteration (arriving after the fresh
    one, so the consumer's latest value becomes the stale duplicate)."""

    event = "duplicate"

    def __init__(self, sensor: str, probability: float, **kwargs) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError("duplicate probability must be in [0, 1]")
        super().__init__(sensor, **kwargs)
        self.probability = float(probability)

    def extra_packets(self, channel: "_Channel", iteration: int, t: float) -> list[_InFlight]:
        """Maybe re-inject a copy of the channel's last delivered packet."""
        last = channel.last_delivered
        if (
            last is not None
            and self.probability > 0.0
            and self.rng.random() < self.probability
        ):
            copy = _InFlight(
                value=last.value.copy(),
                measured_iteration=last.measured_iteration,
                measured_t=last.measured_t,
                arrival=iteration,
                events=list(last.events) + [self.event],
            )
            return [copy]
        return []


class OutOfOrderFault(SensorFault):
    """Reordering: with probability *probability*, the current packet is held
    one iteration and delivered after the next fresh packet — the consumer's
    latest value regresses to the older measurement."""

    event = "reorder"

    def __init__(self, sensor: str, probability: float, **kwargs) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError("reorder probability must be in [0, 1]")
        super().__init__(sensor, **kwargs)
        self.probability = float(probability)

    def apply(self, packet: _InFlight, t: float) -> None:
        """Hold the packet one iteration so it lands behind a fresher one."""
        if self.probability > 0.0 and self.rng.random() < self.probability:
            packet.arrival += 1
            # Arriving after the next iteration's fresh packet makes the held
            # packet the channel's latest — i.e. delivered out of order.
            packet.late = True
            packet.events.append(self.event)


class PayloadCorruption(SensorFault):
    """Non-finite payload corruption: with probability *probability* the
    packet's components are replaced by *value* (NaN by default — a driver
    serializing uninitialized memory or a failed checksum decode)."""

    event = "corruption"

    def __init__(
        self,
        sensor: str,
        probability: float,
        value: float = np.nan,
        components: Sequence[int] | None = None,
        **kwargs,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError("corruption probability must be in [0, 1]")
        super().__init__(sensor, **kwargs)
        self.probability = float(probability)
        self.value = float(value)
        self.components = None if components is None else tuple(int(c) for c in components)

    def apply(self, packet: _InFlight, t: float) -> None:
        """Overwrite the targeted payload components with the stuck value."""
        if self.probability > 0.0 and self.rng.random() < self.probability:
            if self.components is None:
                packet.value[:] = self.value
            else:
                packet.value[list(self.components)] = self.value
            packet.events.append(self.event)


class TimestampJitter(SensorFault):
    """Timestep jitter: the packet's measurement timestamp is skewed by up to
    ±*skew* seconds (clock drift, asynchronous sampling). The payload is
    unchanged — downstream consumers that trust timestamps see readings that
    claim a slightly different sampling instant."""

    event = "jitter"

    def __init__(self, sensor: str, skew: float, probability: float = 1.0, **kwargs) -> None:
        if skew < 0.0:
            raise ConfigurationError("jitter skew must be non-negative")
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError("jitter probability must be in [0, 1]")
        super().__init__(sensor, **kwargs)
        self.skew = float(skew)
        self.probability = float(probability)

    def apply(self, packet: _InFlight, t: float) -> None:
        """Skew the packet's measurement timestamp by uniform ±skew seconds."""
        if self.skew > 0.0 and (
            self.probability >= 1.0 or self.rng.random() < self.probability
        ):
            packet.measured_t += float(self.rng.uniform(-self.skew, self.skew))
            packet.events.append(self.event)


class _Channel:
    """Delivery state of one sensor: in-flight queue + last delivered packet."""

    __slots__ = ("queue", "last_delivered")

    def __init__(self) -> None:
        self.queue: list[_InFlight] = []
        self.last_delivered: _InFlight | None = None

    def reset(self) -> None:
        self.queue.clear()
        self.last_delivered = None


class FaultSchedule:
    """Declarative collection of sensor-delivery faults for one mission.

    Parameters
    ----------
    faults:
        The fault models. Several faults may target the same sensor; they are
        applied in list order to each fresh packet.
    seed:
        Root seed of the schedule's private random streams. Every fault gets
        its own :class:`numpy.random.SeedSequence` child, so fault randomness
        is reproducible and independent of the simulation's generator and of
        the other faults.

    Usage mirrors :class:`repro.attacks.scheduler.AttackSchedule`: build one
    schedule per run (or :meth:`reset` between runs), then call
    :meth:`deliver` once per control iteration with the fresh per-sensor
    readings.
    """

    def __init__(self, faults: Sequence[SensorFault] = (), seed: int = 0) -> None:
        self._faults = list(faults)
        self._seed = int(seed)
        root = np.random.SeedSequence(self._seed)
        for fault, child in zip(self._faults, root.spawn(max(len(self._faults), 1))):
            fault.bind(child)
        self._channels: dict[str, _Channel] = {}
        self._iteration = 0

    @property
    def faults(self) -> list[SensorFault]:
        """The schedule's fault models (copy), in registration order."""
        return list(self._faults)

    @property
    def sensors(self) -> frozenset[str]:
        """Sensors with at least one fault model attached."""
        return frozenset(f.sensor for f in self._faults)

    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self):
        return iter(self._faults)

    def reset(self) -> None:
        """Restart every fault stream and empty the channels for a new run."""
        for fault in self._faults:
            fault.reset()
        for channel in self._channels.values():
            channel.reset()
        self._iteration = 0

    def _channel(self, sensor: str) -> _Channel:
        channel = self._channels.get(sensor)
        if channel is None:
            channel = self._channels[sensor] = _Channel()
        return channel

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def deliver(
        self,
        readings: Mapping[str, np.ndarray],
        iteration: int,
        t: float,
    ) -> FaultyDelivery:
        """Push this iteration's fresh readings through the fault channels.

        Sensors without fault models pass through untouched (always
        available, age 0), so a schedule only pays for — and only perturbs —
        the channels it declares.
        """
        delivered: dict[str, DeliveredReading] = {}
        faulted = self.sensors
        for name, value in readings.items():
            if name not in faulted:
                delivered[name] = DeliveredReading(
                    value=np.asarray(value, dtype=float),
                    available=True,
                    age=0,
                )
                continue
            delivered[name] = self._deliver_one(name, value, iteration, t)
        return FaultyDelivery(iteration=iteration, t=t, readings=delivered)

    def _deliver_one(
        self, sensor: str, value: np.ndarray, iteration: int, t: float
    ) -> DeliveredReading:
        channel = self._channel(sensor)
        fresh = _InFlight(
            value=np.asarray(value, dtype=float).copy(),
            measured_iteration=iteration,
            measured_t=t,
            arrival=iteration,
        )
        for fault in self._faults:
            if fault.sensor != sensor or not fault.active(t):
                continue
            fault.apply(fresh, t)
        if not fresh.dropped:
            channel.queue.append(fresh)
        for fault in self._faults:
            if fault.sensor != sensor or not fault.active(t):
                continue
            channel.queue.extend(fault.extra_packets(channel, iteration, t))

        # Stable sort: within one iteration, punctual packets keep queue
        # order and late ones (reordered stragglers) land after them.
        arrivals = sorted(
            (p for p in channel.queue if p.arrival <= iteration),
            key=lambda p: p.late,
        )
        channel.queue = [p for p in channel.queue if p.arrival > iteration]

        events: list[str] = []
        if fresh.dropped:
            events.extend(fresh.events)
        for packet in arrivals:
            events.extend(packet.events)

        if arrivals:
            # Last to arrive wins: reordered/duplicated packets overwrite the
            # fresher ones, exactly as a "latest value" consumer experiences.
            latest = arrivals[-1]
            channel.last_delivered = latest
            return DeliveredReading(
                value=latest.value,
                available=True,
                age=iteration - latest.measured_iteration,
                events=tuple(dict.fromkeys(events)),
            )
        held = channel.last_delivered
        return DeliveredReading(
            value=None if held is None else held.value,
            available=False,
            age=0 if held is None else iteration - held.measured_iteration,
            events=tuple(dict.fromkeys(events)),
        )


def uniform_dropout_schedule(
    sensors: Iterable[str],
    probability: float,
    seed: int = 0,
    start: float = 0.0,
    stop: float | None = None,
) -> FaultSchedule:
    """Bernoulli dropout at one *probability* on every listed sensor — the
    fault-campaign runner's default intensity knob."""
    return FaultSchedule(
        [
            BernoulliDropout(name, probability, start=start, stop=stop)
            for name in sensors
        ],
        seed=seed,
    )
