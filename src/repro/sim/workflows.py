"""Sensing and actuation workflows (paper Fig 1/Fig 2).

A *sensing workflow* carries a physical signal through capture, digitization
and processing into the reading the planner receives; an *actuation workflow*
carries a planned command through decoding and amplification into a physical
actuation. Misbehaviors inject at the stage matching their channel:

* **physical** — at the transducer: before (actuation) or during (sensing)
  the physical interaction;
* **cyber** — in the workflow software: after capture (sensing) or before
  hardware execution (actuation).

The detector never observes which stage was corrupted; the distinction only
shapes *what* corruption is physically plausible (e.g. wheel jamming applies
after motor saturation — a jammed wheel ignores whatever the firmware
commands).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..actuators.base import Actuator
from ..attacks.base import AttackChannel, AttackTarget
from ..attacks.scheduler import AttackSchedule
from ..dynamics.differential_drive import DifferentialDriveModel
from ..errors import ConfigurationError
from ..linalg import wrap_angle
from ..sensors.base import Sensor
from ..sensors.lidar import RayCastLidar, ScanFeatureExtractor, WallDistanceSensor

__all__ = [
    "WorkflowContext",
    "SensingWorkflow",
    "FeatureSensingWorkflow",
    "LidarRawWorkflow",
    "OdometryWorkflow",
    "ActuationWorkflow",
]


@dataclass(frozen=True)
class WorkflowContext:
    """Everything a workflow may need for one control iteration.

    Attributes
    ----------
    true_state:
        The robot's true state after this iteration's motion.
    executed_control:
        The control the actuators physically executed this iteration.
    t:
        Mission time of the new sensor readings (``t_k``).
    rng:
        The run's random generator.
    schedule:
        Active attack schedule.
    pose_prior:
        The planner's latest pose belief — available to utility processes
        that need a rough prior (scan-to-wall association), mirroring a real
        localization stack.
    """

    true_state: np.ndarray
    executed_control: np.ndarray
    t: float
    rng: np.random.Generator
    schedule: AttackSchedule
    pose_prior: np.ndarray


def _apply_channel(
    schedule: AttackSchedule,
    sensor_name: str,
    value: np.ndarray,
    t: float,
    rng: np.random.Generator,
    channel: AttackChannel,
    whole_vector_only: bool = False,
) -> np.ndarray:
    """Apply the schedule's attacks of one channel to a sensing value."""
    out = np.asarray(value, dtype=float).copy()
    for attack in schedule.attacks:
        if attack.target is not AttackTarget.SENSOR or attack.workflow != sensor_name:
            continue
        if attack.channel is not channel or not attack.active(t):
            continue
        if whole_vector_only and attack.components is not None:
            continue
        out = attack.apply(out, t, rng)
    return out


class SensingWorkflow(ABC):
    """A sensing workflow: produces the reading one sensor delivers.

    Implementations stash the *clean* value (post-noise, pre-attack) in
    :attr:`last_clean` each iteration; the simulator records it so the
    evaluation layer can compute the ground-truth corruption
    ``d^s = delivered - clean`` for forensics quantification metrics.
    """

    def __init__(self, sensor: Sensor) -> None:
        self._sensor = sensor
        self.last_clean: np.ndarray | None = None

    @property
    def sensor(self) -> Sensor:
        """The measurement model of this workflow's output."""
        return self._sensor

    @property
    def name(self) -> str:
        return self._sensor.name

    @abstractmethod
    def produce(self, ctx: WorkflowContext) -> np.ndarray:
        """The (possibly corrupted) reading delivered to the planner."""

    def reset(self, initial_state: np.ndarray) -> None:
        """Reset per-run state (default: stateless)."""


class FeatureSensingWorkflow(SensingWorkflow):
    """Feature-level workflow: measure, then corrupt per channel.

    Physical attacks corrupt the captured signal; cyber attacks corrupt the
    processed reading. For a feature-level simulation both act on the same
    vector, in physical-then-cyber order (matching the pipeline direction of
    Fig 2a).
    """

    def produce(self, ctx: WorkflowContext) -> np.ndarray:
        reading = self._sensor.measure(ctx.true_state, ctx.rng)
        self.last_clean = reading.copy()
        reading = _apply_channel(
            ctx.schedule, self.name, reading, ctx.t, ctx.rng, AttackChannel.PHYSICAL
        )
        reading = _apply_channel(
            ctx.schedule, self.name, reading, ctx.t, ctx.rng, AttackChannel.CYBER
        )
        return reading


class LidarRawWorkflow(SensingWorkflow):
    """Raw-pipeline LiDAR workflow: ray-cast scan -> feature extraction.

    Whole-vector physical attacks (DoS / wire cut) corrupt the *scan ranges*;
    component-targeted physical attacks (blocking one direction) and all
    cyber attacks corrupt the extracted features — the closest faithful
    mapping of Table II's LiDAR scenarios onto a staged pipeline.
    """

    def __init__(
        self,
        feature_sensor: WallDistanceSensor,
        raycaster: RayCastLidar,
        extractor: ScanFeatureExtractor | None = None,
    ) -> None:
        super().__init__(feature_sensor)
        if extractor is None:
            extractor = ScanFeatureExtractor(feature_sensor.world, feature_sensor.wall_names)
        if tuple(extractor.wall_names) != tuple(feature_sensor.wall_names):
            raise ConfigurationError("extractor walls must match the feature sensor's walls")
        self._raycaster = raycaster
        self._extractor = extractor

    def produce(self, ctx: WorkflowContext) -> np.ndarray:
        scan = self._raycaster.scan(ctx.true_state[:3], ctx.rng)
        ranges = np.asarray(scan.ranges, dtype=float)
        corrupted_ranges = _apply_channel(
            ctx.schedule,
            self.name,
            ranges,
            ctx.t,
            ctx.rng,
            AttackChannel.PHYSICAL,
            whole_vector_only=True,
        )
        from ..sensors.lidar import LidarScan

        clean_scan = LidarScan(tuple(ranges), scan.relative_angles, scan.max_range)
        self.last_clean = self._extractor.extract(clean_scan, ctx.pose_prior)
        scan = LidarScan(tuple(corrupted_ranges), scan.relative_angles, scan.max_range)
        features = self._extractor.extract(scan, ctx.pose_prior)
        for attack in ctx.schedule.attacks:
            if (
                attack.target is AttackTarget.SENSOR
                and attack.workflow == self.name
                and attack.active(ctx.t)
                and not (attack.channel is AttackChannel.PHYSICAL and attack.components is None)
            ):
                features = attack.apply(features, ctx.t, ctx.rng)
        return features


class OdometryWorkflow(SensingWorkflow):
    """Tick-integrating wheel-encoder workflow (drift-realistic mode).

    Dead-reckons a pose from the *executed* wheel speeds with per-step tick
    quantization noise. Unlike the feature-level
    :class:`~repro.sensors.pose_sensors.OdometryPoseSensor`, its error
    accumulates over the mission — the model mismatch the ablation experiment
    quantifies, and one practical reason the paper's decision maker needs a
    sliding window.
    """

    def __init__(
        self,
        sensor: Sensor,
        drive: DifferentialDriveModel,
        tick_sigma: float = 5.0e-4,
    ) -> None:
        super().__init__(sensor)
        self._drive = drive
        self._tick_sigma = float(tick_sigma)
        self._pose: np.ndarray | None = None

    def reset(self, initial_state: np.ndarray) -> None:
        self._pose = np.asarray(initial_state[:3], dtype=float).copy()

    def produce(self, ctx: WorkflowContext) -> np.ndarray:
        if self._pose is None:
            self._pose = np.asarray(ctx.true_state[:3], dtype=float).copy()
        # Wheel arc lengths over the period, quantized with tick noise.
        speeds = np.asarray(ctx.executed_control, dtype=float)
        arcs = speeds * self._drive.dt + self._tick_sigma * ctx.rng.standard_normal(2)
        forward = float(np.mean(arcs))
        dtheta = float((arcs[1] - arcs[0]) / self._drive.wheel_base)
        theta = self._pose[2]
        self._pose = np.array(
            [
                self._pose[0] + forward * np.cos(theta),
                self._pose[1] + forward * np.sin(theta),
                wrap_angle(theta + dtheta),
            ]
        )
        reading = self._pose.copy()
        self.last_clean = reading.copy()
        reading = _apply_channel(
            ctx.schedule, self.name, reading, ctx.t, ctx.rng, AttackChannel.PHYSICAL
        )
        reading = _apply_channel(
            ctx.schedule, self.name, reading, ctx.t, ctx.rng, AttackChannel.CYBER
        )
        return reading


class ActuationWorkflow:
    """An actuation workflow: planned command -> physically executed command.

    Pipeline order (Fig 2b): cyber corruption of the command inside the
    workflow software, hardware execution (saturation/quantization), then
    physical corruption at the actuator (jamming, blowout — effects the
    motor driver cannot override).
    """

    def __init__(self, actuator: Actuator) -> None:
        self._actuator = actuator

    @property
    def actuator(self) -> Actuator:
        return self._actuator

    @property
    def name(self) -> str:
        return self._actuator.name

    def execute(
        self,
        planned: np.ndarray,
        t: float,
        rng: np.random.Generator,
        schedule: AttackSchedule,
    ) -> np.ndarray:
        """The command the physical world actually receives at time *t*."""
        command = np.asarray(planned, dtype=float).copy()
        for attack in schedule.attacks:
            if (
                attack.target is AttackTarget.ACTUATOR
                and attack.workflow == self.name
                and attack.channel is AttackChannel.CYBER
            ):
                command = attack.apply(command, t, rng)
        command = self._actuator.execute(command)
        for attack in schedule.attacks:
            if (
                attack.target is AttackTarget.ACTUATOR
                and attack.workflow == self.name
                and attack.channel is AttackChannel.PHYSICAL
            ):
                command = attack.apply(command, t, rng)
        return command
