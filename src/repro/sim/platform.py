"""Robot platform: true dynamics plus the sensing/actuation workflows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..attacks.scheduler import AttackSchedule
from ..dynamics.base import RobotModel
from ..dynamics.noise import GaussianNoise
from ..errors import ConfigurationError
from ..sensors.suite import SensorSuite
from .bus import CommunicationBus
from .workflows import ActuationWorkflow, SensingWorkflow, WorkflowContext

__all__ = ["RobotPlatform", "PlatformStep"]


@dataclass(frozen=True)
class PlatformStep:
    """Result of one physical control iteration.

    ``clean_reading`` is the stacked pre-attack reading (noise included,
    corruption excluded) — hidden from the detector, used by the
    evaluation layer's forensics metrics.
    """

    state: np.ndarray
    executed_control: np.ndarray
    readings: dict[str, np.ndarray]
    stacked_reading: np.ndarray
    clean_reading: np.ndarray


class RobotPlatform:
    """The physical robot: dynamics, actuators and sensors with workflows.

    Parameters
    ----------
    model:
        Kinematic model integrated with process noise.
    suite:
        The measurement models (what the detector knows about the sensors).
    workflows:
        One sensing workflow per suite sensor (keyed by sensor name).
    actuation:
        The actuation workflow executing planned commands.
    process_noise:
        Process-noise covariance ``Q`` (matrix, diagonal or scalar).
    initial_state:
        True state at mission start.
    bus:
        Optional communication bus (Fig 1's backbone). When present, every
        sensing workflow publishes its reading to ``sensors/<name>`` and the
        actuation workflow's executed command to ``actuators/<name>`` — the
        packet traffic time/fingerprint-based defenses inspect, observable
        here for tests and demonstrations.
    """

    def __init__(
        self,
        model: RobotModel,
        suite: SensorSuite,
        workflows: Mapping[str, SensingWorkflow],
        actuation: ActuationWorkflow,
        process_noise,
        initial_state: Sequence[float],
        bus: CommunicationBus | None = None,
    ) -> None:
        if set(workflows) != set(suite.names):
            raise ConfigurationError(
                f"workflows {sorted(workflows)} must match suite sensors {sorted(suite.names)}"
            )
        if suite.state_dim != model.state_dim:
            raise ConfigurationError("sensor suite state_dim must match the model")
        self._model = model
        self._suite = suite
        self._workflows = dict(workflows)
        self._actuation = actuation
        self._noise = GaussianNoise(process_noise, model.state_dim, "process noise")
        self._initial_state = model.normalize_state(np.asarray(initial_state, dtype=float))
        self._state = self._initial_state.copy()
        self._bus = bus
        self._iteration = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def model(self) -> RobotModel:
        return self._model

    @property
    def suite(self) -> SensorSuite:
        return self._suite

    @property
    def actuation(self) -> ActuationWorkflow:
        return self._actuation

    @property
    def state(self) -> np.ndarray:
        """The true (hidden) robot state."""
        return self._state.copy()

    @property
    def process_noise_covariance(self) -> np.ndarray:
        return self._noise.covariance

    @property
    def bus(self) -> CommunicationBus | None:
        return self._bus

    def reset(self) -> None:
        """Restore the initial state and reset stateful workflows."""
        self._state = self._initial_state.copy()
        self._iteration = 0
        for workflow in self._workflows.values():
            workflow.reset(self._state)

    # ------------------------------------------------------------------
    # Physics
    # ------------------------------------------------------------------
    def sense(
        self,
        t: float,
        rng: np.random.Generator,
        schedule: AttackSchedule,
        pose_prior: np.ndarray | None = None,
        executed_control: np.ndarray | None = None,
    ) -> tuple[dict[str, np.ndarray], np.ndarray, np.ndarray]:
        """Run every sensing workflow at time *t*.

        Returns ``(per-sensor readings, stacked reading, stacked clean
        reading)``; the clean stack is the evaluation-layer ground truth.
        """
        if pose_prior is None:
            pose_prior = self._state[:3]
        if executed_control is None:
            executed_control = self._model.zero_control()
        ctx = WorkflowContext(
            true_state=self._state.copy(),
            executed_control=np.asarray(executed_control, dtype=float),
            t=t,
            rng=rng,
            schedule=schedule,
            pose_prior=np.asarray(pose_prior, dtype=float),
        )
        readings = {name: wf.produce(ctx) for name, wf in self._workflows.items()}
        if self._bus is not None:
            for name, reading in readings.items():
                self._bus.send(f"sensors/{name}", self._iteration, t, reading.copy(), name)
        clean = {
            name: (wf.last_clean if wf.last_clean is not None else readings[name])
            for name, wf in self._workflows.items()
        }
        return readings, self._suite.stack(readings), self._suite.stack(clean)

    def step(
        self,
        planned_control: np.ndarray,
        t_command: float,
        rng: np.random.Generator,
        schedule: AttackSchedule,
        pose_prior: np.ndarray | None = None,
    ) -> PlatformStep:
        """One control iteration: execute, integrate, sense.

        *t_command* is the time the command is issued (``t_{k-1}``); sensor
        readings are taken at ``t_command + dt`` (``t_k``), matching the
        paper's iteration indexing for ``u_{k-1}`` and ``z_k``.
        """
        planned_control = self._model.validate_control(planned_control)
        self._iteration += 1
        executed = self._actuation.execute(planned_control, t_command, rng, schedule)
        if self._bus is not None:
            self._bus.send(
                f"actuators/{self._actuation.name}",
                self._iteration,
                t_command,
                np.asarray(executed, dtype=float).copy(),
                self._actuation.name,
            )
        next_state = self._model.f(self._state, executed) + self._noise.sample(rng)
        self._state = self._model.normalize_state(next_state)
        t_sense = t_command + self._model.dt
        readings, stacked, clean = self.sense(
            t_sense, rng, schedule, pose_prior=pose_prior, executed_control=executed
        )
        return PlatformStep(
            state=self._state.copy(),
            executed_control=np.asarray(executed, dtype=float),
            readings=readings,
            stacked_reading=stacked,
            clean_reading=clean,
        )
