"""Simulation traces: everything one closed-loop run produced.

A trace stores, per control iteration ``k`` (1-based, at time ``t_k``):

* the true state ``x_k`` (hidden from the detector),
* planned ``u_{k-1}`` and executed ``u_{k-1} + d^a`` commands,
* the stacked sensor reading ``z_k`` the planner received,
* ground truth: the set of sensing workflows under active misbehavior at
  ``t_k`` and whether the actuation workflow was under misbehavior at
  ``t_{k-1}``,
* optionally the detector's per-iteration report.

Traces are the single interchange format between the simulator, the
evaluation metrics and the offline decision-parameter sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..errors import SimulationError

__all__ = ["SimulationTrace"]


@dataclass
class SimulationTrace:
    """Recorded closed-loop run."""

    dt: float
    sensor_names: tuple[str, ...]
    times: list[float] = field(default_factory=list)
    true_states: list[np.ndarray] = field(default_factory=list)
    planned_controls: list[np.ndarray] = field(default_factory=list)
    executed_controls: list[np.ndarray] = field(default_factory=list)
    readings: list[np.ndarray] = field(default_factory=list)
    nav_poses: list[np.ndarray] = field(default_factory=list)
    truth_sensors: list[frozenset[str]] = field(default_factory=list)
    truth_actuator: list[bool] = field(default_factory=list)
    reports: list[Any] = field(default_factory=list)
    clean_readings: list[np.ndarray] = field(default_factory=list)
    #: Per-iteration delivery masks under fault injection (``None`` = full
    #: delivery, the nominal case). Replays feed these back to the detector so
    #: offline results match the online degraded run.
    availability: list[tuple[str, ...] | None] = field(default_factory=list)
    #: Explicit per-step sequence numbers (monotone 0-based by default). A
    #: recorded step's identity used to be implied by its list index; carrying
    #: it explicitly lets streaming ingest (:mod:`repro.serve.ingest`) detect
    #: duplicated/reordered message deliveries against the recorded order.
    sequences: list[int] = field(default_factory=list)

    def append(
        self,
        t: float,
        true_state: np.ndarray,
        planned: np.ndarray,
        executed: np.ndarray,
        reading: np.ndarray,
        nav_pose: np.ndarray,
        corrupted_sensors: frozenset[str],
        actuator_corrupted: bool,
        report: Any = None,
        clean_reading: np.ndarray | None = None,
        available: Sequence[str] | None = None,
        sequence: int | None = None,
    ) -> None:
        self.sequences.append(len(self.times) if sequence is None else int(sequence))
        self.times.append(float(t))
        self.true_states.append(np.asarray(true_state, dtype=float).copy())
        self.planned_controls.append(np.asarray(planned, dtype=float).copy())
        self.executed_controls.append(np.asarray(executed, dtype=float).copy())
        self.readings.append(np.asarray(reading, dtype=float).copy())
        self.nav_poses.append(np.asarray(nav_pose, dtype=float).copy())
        self.truth_sensors.append(frozenset(corrupted_sensors))
        self.truth_actuator.append(bool(actuator_corrupted))
        self.reports.append(report)
        if clean_reading is None:
            clean_reading = reading
        self.clean_readings.append(np.asarray(clean_reading, dtype=float).copy())
        self.availability.append(None if available is None else tuple(available))

    def attach_reports(self, reports: Sequence[Any]) -> None:
        """Install per-iteration detector reports produced offline.

        Batched replay (:func:`repro.core.batch.replay_batch`) simulates
        missions open-loop and regenerates the reports afterwards; this hooks
        them back onto the trace so every reducer that reads
        ``trace.reports`` (confusion counts, delay scans) works unchanged.
        """
        if len(reports) != len(self.times):
            raise SimulationError(
                f"got {len(reports)} reports for a trace of {len(self.times)} iterations"
            )
        self.reports = list(reports)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def has_reports(self) -> bool:
        return any(r is not None for r in self.reports)

    # ------------------------------------------------------------------
    # Array views
    # ------------------------------------------------------------------
    def times_array(self) -> np.ndarray:
        return np.asarray(self.times)

    def sequences_array(self) -> np.ndarray:
        return np.asarray(self.sequences, dtype=int)

    def states_array(self) -> np.ndarray:
        return np.asarray(self.true_states)

    def planned_array(self) -> np.ndarray:
        return np.asarray(self.planned_controls)

    def executed_array(self) -> np.ndarray:
        return np.asarray(self.executed_controls)

    def readings_array(self) -> np.ndarray:
        return np.asarray(self.readings)

    def actual_actuator_anomaly(self) -> np.ndarray:
        """Ground-truth ``d^a`` per iteration (executed minus planned)."""
        return self.executed_array() - self.planned_array()

    def clean_readings_array(self) -> np.ndarray:
        return np.asarray(self.clean_readings)

    def actual_sensor_anomaly(self) -> np.ndarray:
        """Ground-truth ``d^s`` per iteration (delivered minus clean reading)."""
        return self.readings_array() - self.clean_readings_array()

    def first_index_at(self, t: float) -> int:
        """Index of the first iteration at or after mission time *t*."""
        times = self.times_array()
        idx = int(np.searchsorted(times, t - 1e-9))
        if idx >= len(times):
            raise SimulationError(f"time {t} is beyond the trace end {times[-1] if len(times) else 0}")
        return idx

    def truth_condition(self, index: int) -> tuple[frozenset[str], bool]:
        """Ground-truth (corrupted sensors, actuator corrupted) at *index*."""
        return self.truth_sensors[index], self.truth_actuator[index]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist the trace to a compressed ``.npz`` archive.

        Everything except the detector reports round-trips (reports hold
        rich nested objects; regenerate them offline by replaying the saved
        controls/readings through :meth:`repro.core.detector.RoboADS.replay`).
        """
        np.savez_compressed(
            path,
            dt=np.array(self.dt),
            sensor_names=np.array(self.sensor_names, dtype=np.str_),
            times=self.times_array(),
            true_states=self.states_array(),
            planned=self.planned_array(),
            executed=self.executed_array(),
            readings=self.readings_array(),
            clean_readings=self.clean_readings_array(),
            nav_poses=np.asarray(self.nav_poses),
            truth_sensors=np.array(
                ["|".join(sorted(s)) for s in self.truth_sensors], dtype=np.str_
            ),
            truth_actuator=np.asarray(self.truth_actuator, dtype=bool),
            # "*" encodes the nominal full-delivery iteration (None); a
            # delivered subset is "|"-joined in suite order (possibly empty).
            availability=np.array(
                ["*" if a is None else "|".join(a) for a in self.availability],
                dtype=np.str_,
            ),
            sequences=self.sequences_array(),
        )

    @classmethod
    def load(cls, path) -> "SimulationTrace":
        """Load a trace saved with :meth:`save` (reports come back as None)."""
        with np.load(path, allow_pickle=False) as data:
            trace = cls(
                dt=float(data["dt"]),
                sensor_names=tuple(str(n) for n in data["sensor_names"]),
            )
            n = data["times"].shape[0]
            has_availability = "availability" in data.files  # pre-fault-layer archives lack it
            has_sequences = "sequences" in data.files  # pre-streaming archives lack it
            for k in range(n):
                encoded = str(data["truth_sensors"][k])
                sensors = frozenset(encoded.split("|")) if encoded else frozenset()
                available: tuple[str, ...] | None = None
                if has_availability:
                    raw = str(data["availability"][k])
                    if raw != "*":
                        available = tuple(raw.split("|")) if raw else ()
                trace.append(
                    t=float(data["times"][k]),
                    true_state=data["true_states"][k],
                    planned=data["planned"][k],
                    executed=data["executed"][k],
                    reading=data["readings"][k],
                    nav_pose=data["nav_poses"][k],
                    corrupted_sensors=sensors,
                    actuator_corrupted=bool(data["truth_actuator"][k]),
                    report=None,
                    clean_reading=data["clean_readings"][k],
                    available=available,
                    sequence=int(data["sequences"][k]) if has_sequences else None,
                )
        return trace
