"""Closed-loop simulator: planner + platform + attacks (+ detector).

One iteration follows the paper's control loop exactly:

1. the planner reads its latest navigation pose (from the — possibly
   corrupted — navigation sensor's reading, as in the paper's mission where
   PID tracking consumes real-time IPS data),
2. generates the planned command ``u_{k-1}``,
3. the actuation workflow executes it (attacks may corrupt it),
4. the true state evolves with process noise,
5. sensing workflows deliver ``z_k`` (attacks may corrupt them),
6. optionally, the detector consumes ``(u_{k-1}, z_k)``.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol

import numpy as np

from ..attacks.scheduler import AttackSchedule
from ..errors import ConfigurationError, SimulationError
from .faults import FaultSchedule
from .platform import RobotPlatform
from .trace import SimulationTrace

__all__ = ["ClosedLoopSimulator"]


class _Controller(Protocol):
    def command(self, pose: np.ndarray, dt: float) -> np.ndarray: ...
    def reset(self) -> None: ...


class _Detector(Protocol):
    def step(self, planned_control: np.ndarray, reading: np.ndarray) -> Any: ...


class ClosedLoopSimulator:
    """Runs a mission with attacks and (optionally) online detection.

    Parameters
    ----------
    platform:
        The physical robot.
    controller:
        A tracking controller with a ``command(pose, dt)`` method.
    schedule:
        The run's attack schedule (empty schedule = clean run).
    nav_sensor:
        Name of the sensor whose readings the planner navigates by. The
        first three components of that sensor's reading must be a pose.
    detector:
        Optional online detector with a ``step(u, z)`` method whose return
        value is recorded per iteration.
    responder:
        Optional response module (e.g.
        :class:`repro.core.response.NavigationFailover`) with a
        ``navigation_pose(readings, report)`` method; when present (and a
        detector is), it chooses the pose the planner navigates by each
        iteration instead of the fixed ``nav_sensor``.
    faults:
        Optional :class:`repro.sim.faults.FaultSchedule` of benign delivery
        faults (dropout, latency, duplicates, corruption). Fault randomness
        is independent of *rng*, so an all-zero-intensity schedule leaves
        the mission bit-identical to a fault-free run. On degraded
        iterations the planner navigates by the last delivered pose and the
        detector receives the per-iteration availability mask.
    """

    def __init__(
        self,
        platform: RobotPlatform,
        controller: _Controller,
        schedule: AttackSchedule | None = None,
        nav_sensor: str = "ips",
        detector: Any = None,
        responder: Any = None,
        faults: FaultSchedule | None = None,
    ) -> None:
        if nav_sensor not in platform.suite.names:
            raise ConfigurationError(
                f"nav sensor {nav_sensor!r} not in suite {list(platform.suite.names)}"
            )
        if platform.suite.sensor(nav_sensor).dim < 3:
            raise ConfigurationError("navigation sensor must report at least (x, y, theta)")
        self._platform = platform
        self._controller = controller
        self._schedule = schedule or AttackSchedule()
        if responder is not None and detector is None:
            raise ConfigurationError("a responder requires a detector")
        self._nav_sensor = nav_sensor
        self._detector = detector
        self._responder = responder
        self._faults = faults

    @property
    def platform(self) -> RobotPlatform:
        return self._platform

    @property
    def schedule(self) -> AttackSchedule:
        return self._schedule

    @property
    def faults(self) -> FaultSchedule | None:
        return self._faults

    def run(
        self,
        n_steps: int,
        rng: np.random.Generator,
        on_iteration: Callable[[int, SimulationTrace], None] | None = None,
        stop_condition: Callable[[], bool] | None = None,
    ) -> SimulationTrace:
        """Simulate up to *n_steps* control iterations and return the trace.

        ``stop_condition`` is polled after each iteration; returning True
        ends the mission early (e.g. goal reached).
        """
        if n_steps < 1:
            raise SimulationError("n_steps must be at least 1")
        platform = self._platform
        model = platform.model
        dt = model.dt

        platform.reset()
        self._schedule.reset()
        self._controller.reset()
        if self._responder is not None:
            self._responder.reset()
        if self._faults is not None:
            self._faults.reset()

        trace = SimulationTrace(dt=dt, sensor_names=platform.suite.names)

        # Initial readings at t=0 bootstrap the planner's navigation pose.
        initial_readings, _, _ = platform.sense(0.0, rng, self._schedule)
        nav_pose = np.asarray(initial_readings[self._nav_sensor][:3], dtype=float)

        for k in range(1, n_steps + 1):
            t_command = (k - 1) * dt
            planned = model.validate_control(self._controller.command(nav_pose, dt))
            step = platform.step(
                planned, t_command, rng, self._schedule, pose_prior=nav_pose
            )
            t_sense = t_command + dt

            # Push the sensed readings through the fault channels: what the
            # consumers (planner, detector) see is whatever was delivered,
            # which may be stale, corrupted, or absent.
            stacked = step.stacked_reading
            consumer_readings = step.readings
            available: tuple[str, ...] | None = None
            delivery = None
            if self._faults is not None:
                delivery = self._faults.deliver(step.readings, k, t_sense)
                stacked = delivery.stacked(platform.suite, fallback=step.stacked_reading)
                consumer_readings = {
                    name: (r.value if r.value is not None else step.readings[name])
                    for name, r in delivery.readings.items()
                }
                if delivery.degraded:
                    available = tuple(
                        n
                        for n in platform.suite.names
                        if delivery.readings[n].available
                    )

            report = None
            if self._detector is not None:
                if available is None:
                    report = self._detector.step(planned, stacked)
                else:
                    report = self._detector.step(planned, stacked, available=available)

            if self._responder is not None and report is not None:
                nav_pose = np.asarray(
                    self._responder.navigation_pose(consumer_readings, report), dtype=float
                )
            elif delivery is not None:
                # Navigate by the delivered pose; a dropout (or a non-finite
                # corrupted payload) holds the previous navigation fix, as a
                # real planner consuming a latest-value topic would.
                nav_delivered = delivery.readings[self._nav_sensor].value
                if nav_delivered is not None and np.all(np.isfinite(nav_delivered[:3])):
                    nav_pose = np.asarray(nav_delivered[:3], dtype=float)
            else:
                nav_pose = np.asarray(step.readings[self._nav_sensor][:3], dtype=float)

            trace.append(
                t=t_sense,
                true_state=step.state,
                planned=planned,
                executed=step.executed_control,
                reading=stacked,
                nav_pose=nav_pose,
                corrupted_sensors=self._schedule.corrupted_sensors(t_sense),
                actuator_corrupted=self._schedule.actuator_corrupted(t_command),
                report=report,
                clean_reading=step.clean_reading,
                available=available,
            )
            if on_iteration is not None:
                on_iteration(k, trace)
            if stop_condition is not None and stop_condition():
                break
        return trace
