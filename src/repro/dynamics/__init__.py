"""Robot kinematic models (paper Eq. (1), first line).

Each model implements the discrete-time kinematic function
``x_k = f(x_{k-1}, u_{k-1}) + zeta_{k-1}`` plus its Jacobians with respect to
state (``A``) and control (``G``), which NUISE linearizes at every iteration.
"""

from .base import RobotModel
from .bicycle import BicycleModel
from .differential_drive import DifferentialDriveModel
from .noise import GaussianNoise, validate_covariance
from .omnidirectional import OmnidirectionalModel
from .unicycle import UnicycleModel

__all__ = [
    "RobotModel",
    "DifferentialDriveModel",
    "BicycleModel",
    "UnicycleModel",
    "OmnidirectionalModel",
    "GaussianNoise",
    "validate_covariance",
]
