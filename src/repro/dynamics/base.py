"""Abstract robot kinematic model.

A :class:`RobotModel` is the ``f`` of the paper's dynamic model (Eq. (1)):

.. math:: x_k = f(x_{k-1}, u_{k-1}) + \\zeta_{k-1}

NUISE additionally needs the Jacobians ``A = df/dx`` and ``G = df/du``
evaluated at the current estimate (the paper linearizes at every control
iteration — this is the capability the Section V-G baseline lacks). Models
may rely on the numerical-differentiation defaults, but the built-in models
provide analytic Jacobians which the test-suite cross-checks numerically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..linalg import as_vector, numerical_jacobian, wrap_angle

__all__ = ["RobotModel"]


class RobotModel(ABC):
    """Discrete-time nonlinear kinematic model of a mobile robot."""

    def __init__(
        self,
        state_dim: int,
        control_dim: int,
        dt: float,
        state_labels: Sequence[str],
        control_labels: Sequence[str],
        angular_states: Sequence[int] = (),
    ) -> None:
        if dt <= 0.0:
            raise ConfigurationError("time step dt must be positive")
        if len(state_labels) != state_dim:
            raise ConfigurationError("state_labels length must equal state_dim")
        if len(control_labels) != control_dim:
            raise ConfigurationError("control_labels length must equal control_dim")
        self._state_dim = state_dim
        self._control_dim = control_dim
        self._dt = float(dt)
        self._state_labels = tuple(state_labels)
        self._control_labels = tuple(control_labels)
        self._angular_states = tuple(int(i) for i in angular_states)
        for i in self._angular_states:
            if not 0 <= i < state_dim:
                raise ConfigurationError(f"angular state index {i} out of range")

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def state_dim(self) -> int:
        return self._state_dim

    @property
    def control_dim(self) -> int:
        return self._control_dim

    @property
    def dt(self) -> float:
        """Control-iteration period in seconds."""
        return self._dt

    @property
    def state_labels(self) -> tuple[str, ...]:
        return self._state_labels

    @property
    def control_labels(self) -> tuple[str, ...]:
        return self._control_labels

    @property
    def angular_states(self) -> tuple[int, ...]:
        """Indices of state components that are angles (wrapped to (-pi, pi])."""
        return self._angular_states

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    @abstractmethod
    def f(self, state: np.ndarray, control: np.ndarray) -> np.ndarray:
        """Kinematic function: next state given current state and control."""

    def jacobian_state(self, state: np.ndarray, control: np.ndarray) -> np.ndarray:
        """``A = df/dx`` evaluated at ``(state, control)``.

        Default: central-difference numerical Jacobian. Override with the
        analytic expression where available.
        """
        state = self.validate_state(state)
        control = self.validate_control(control)
        return numerical_jacobian(lambda x: self.f(x, control), state)

    def jacobian_control(self, state: np.ndarray, control: np.ndarray) -> np.ndarray:
        """``G = df/du`` evaluated at ``(state, control)``.

        This is also the gain through which an actuator anomaly ``d^a`` enters
        the state (paper Eq. (2): ``f(x, u + d^a)``), so NUISE uses it as the
        unknown-input matrix.
        """
        state = self.validate_state(state)
        control = self.validate_control(control)
        return numerical_jacobian(lambda u: self.f(state, u), control)

    # ------------------------------------------------------------------
    # Batched dynamics (stacked NUISE kernels)
    # ------------------------------------------------------------------
    def f_batch(self, states: np.ndarray, controls: np.ndarray) -> np.ndarray:
        """:meth:`f` over leading batch axes: ``(B, n), (B, l) -> (B, n)``.

        Default: a Python loop over rows. Built-in models override with a
        vectorized expression so the stacked replay lattice advances every
        mission with a handful of array ops.
        """
        states = np.asarray(states, dtype=float)
        controls = np.asarray(controls, dtype=float)
        if states.shape[0] == 0:
            return np.zeros((0, self._state_dim))
        return np.stack([self.f(x, u) for x, u in zip(states, controls)])

    def jacobian_state_batch(self, states: np.ndarray, controls: np.ndarray) -> np.ndarray:
        """:meth:`jacobian_state` over a batch: ``-> (B, n, n)``."""
        states = np.asarray(states, dtype=float)
        controls = np.asarray(controls, dtype=float)
        if states.shape[0] == 0:
            return np.zeros((0, self._state_dim, self._state_dim))
        return np.stack([self.jacobian_state(x, u) for x, u in zip(states, controls)])

    def jacobian_control_batch(self, states: np.ndarray, controls: np.ndarray) -> np.ndarray:
        """:meth:`jacobian_control` over a batch: ``-> (B, n, l)``."""
        states = np.asarray(states, dtype=float)
        controls = np.asarray(controls, dtype=float)
        if states.shape[0] == 0:
            return np.zeros((0, self._state_dim, self._control_dim))
        return np.stack([self.jacobian_control(x, u) for x, u in zip(states, controls)])

    def f_and_jacobians_batch(
        self, states: np.ndarray, controls: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(f, A, G)`` over a batch in one call.

        Default: the three separate batch evaluations. Built-in models
        override to share the twist/trigonometry subexpressions all three
        maps need, which the stacked replay lattice calls every iteration.
        """
        return (
            self.f_batch(states, controls),
            self.jacobian_state_batch(states, controls),
            self.jacobian_control_batch(states, controls),
        )

    def normalize_state_batch(self, states: np.ndarray) -> np.ndarray:
        """:meth:`normalize_state` over leading batch axes (vectorized)."""
        states = np.array(np.asarray(states, dtype=float))
        if self._angular_states and states.size:
            idx = list(self._angular_states)
            vals = states[..., idx]
            wrapped = np.mod(vals + np.pi, 2.0 * np.pi) - np.pi
            wrapped = np.where(wrapped == -np.pi, np.pi, wrapped)
            states[..., idx] = wrapped
        return states

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def validate_state(self, state: np.ndarray) -> np.ndarray:
        return as_vector(state, self._state_dim, "state")

    def validate_control(self, control: np.ndarray) -> np.ndarray:
        return as_vector(control, self._control_dim, "control")

    def normalize_state(self, state: np.ndarray) -> np.ndarray:
        """Wrap angular state components to ``(-pi, pi]``."""
        state = self.validate_state(state).copy()
        for i in self._angular_states:
            state[i] = wrap_angle(state[i])
        return state

    def zero_state(self) -> np.ndarray:
        return np.zeros(self._state_dim)

    def zero_control(self) -> np.ndarray:
        return np.zeros(self._control_dim)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(state={list(self._state_labels)}, "
            f"control={list(self._control_labels)}, dt={self._dt})"
        )
