"""Gaussian noise models for process and measurement noise.

The paper assumes zero-mean Gaussian noise with known covariances ``Q``
(process) and ``R`` (measurement); this module provides the sampler the
simulator uses and the validation shared by every covariance-bearing
component.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import ConfigurationError, DimensionError
from ..linalg import as_matrix, is_psd, symmetrize

__all__ = ["validate_covariance", "GaussianNoise"]


def validate_covariance(cov: Iterable[Iterable[float]] | Iterable[float], dim: int, name: str = "covariance") -> np.ndarray:
    """Validate and normalize a covariance specification.

    Accepts a full ``(dim, dim)`` matrix, a length-``dim`` vector of variances
    (interpreted as a diagonal), or a scalar variance applied to every
    component. The result is a symmetric PSD ``(dim, dim)`` array.
    """
    arr = np.asarray(cov, dtype=float)
    if arr.ndim == 0:
        matrix = float(arr) * np.eye(dim)
    elif arr.ndim == 1:
        if arr.shape[0] != dim:
            raise DimensionError(f"{name} diagonal must have length {dim}, got {arr.shape[0]}")
        matrix = np.diag(arr)
    else:
        matrix = as_matrix(arr, (dim, dim), name)
    matrix = symmetrize(matrix)
    if not is_psd(matrix):
        raise ConfigurationError(f"{name} must be positive semidefinite")
    return matrix


class GaussianNoise:
    """Zero-mean Gaussian noise source with a fixed covariance.

    Sampling uses the Cholesky-like square root from an eigendecomposition so
    semidefinite covariances (exactly-zero variance components) are allowed.
    """

    def __init__(self, covariance: Iterable, dim: int, name: str = "noise") -> None:
        self._cov = validate_covariance(covariance, dim, name)
        self._dim = dim
        eigvals, eigvecs = np.linalg.eigh(self._cov)
        eigvals = np.clip(eigvals, 0.0, None)
        self._sqrt = eigvecs @ np.diag(np.sqrt(eigvals))

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def covariance(self) -> np.ndarray:
        return self._cov.copy()

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray:
        """Draw one sample of shape ``(dim,)`` or *size* samples ``(size, dim)``."""
        if size is None:
            return self._sqrt @ rng.standard_normal(self._dim)
        draws = rng.standard_normal((size, self._dim))
        return draws @ self._sqrt.T

    @classmethod
    def from_sigmas(cls, sigmas: Sequence[float], name: str = "noise") -> "GaussianNoise":
        """Build from per-component standard deviations."""
        sigmas = np.asarray(sigmas, dtype=float)
        return cls(sigmas**2, sigmas.shape[0], name)
