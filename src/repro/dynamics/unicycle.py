"""Unicycle model: the simplest nonlinear mobile-robot kinematics.

State ``x = (x, y, theta)``; control ``u = (v, omega)`` — forward speed and
yaw rate commanded directly. Used in the quickstart example and as the small
deterministic model for unit tests; it is also the body-frame abstraction
both built-in robots reduce to.
"""

from __future__ import annotations

import numpy as np

from ..linalg import wrap_angle
from .base import RobotModel

__all__ = ["UnicycleModel"]


class UnicycleModel(RobotModel):
    """Forward-Euler unicycle."""

    def __init__(self, dt: float = 0.05) -> None:
        super().__init__(
            state_dim=3,
            control_dim=2,
            dt=dt,
            state_labels=("x", "y", "theta"),
            control_labels=("v", "omega"),
            angular_states=(2,),
        )

    def f(self, state: np.ndarray, control: np.ndarray) -> np.ndarray:
        state = self.validate_state(state)
        control = self.validate_control(control)
        v, omega = control
        x, y, theta = state
        dt = self.dt
        return np.array(
            [
                x + v * np.cos(theta) * dt,
                y + v * np.sin(theta) * dt,
                wrap_angle(theta + omega * dt),
            ]
        )

    def jacobian_state(self, state: np.ndarray, control: np.ndarray) -> np.ndarray:
        state = self.validate_state(state)
        control = self.validate_control(control)
        v = control[0]
        theta = state[2]
        dt = self.dt
        jac = np.eye(3)
        jac[0, 2] = -v * np.sin(theta) * dt
        jac[1, 2] = v * np.cos(theta) * dt
        return jac

    def jacobian_control(self, state: np.ndarray, control: np.ndarray) -> np.ndarray:
        state = self.validate_state(state)
        self.validate_control(control)
        theta = state[2]
        dt = self.dt
        return np.array(
            [
                [np.cos(theta) * dt, 0.0],
                [np.sin(theta) * dt, 0.0],
                [0.0, dt],
            ]
        )
