"""Omnidirectional (mecanum/holonomic) drive kinematics.

State ``x = (x, y, theta)``; control ``u = (v_x, v_y, omega)`` — body-frame
longitudinal/lateral velocities and yaw rate, as produced by a mecanum or
omni-wheel base (warehouse robots, the paper's introduction mentions them
among representative mobile robots).

This model exercises a case neither built-in prototype covers: a
*three-dimensional* actuator anomaly. Unknown-input estimation then needs a
reference block with ``rank(C2 G) = 3`` — a full pose sensor qualifies,
a position-only or heading-only sensor does not.
"""

from __future__ import annotations

import numpy as np

from ..linalg import wrap_angle
from .base import RobotModel

__all__ = ["OmnidirectionalModel"]


class OmnidirectionalModel(RobotModel):
    """Forward-Euler holonomic base with body-frame velocity commands."""

    def __init__(self, dt: float = 0.05) -> None:
        super().__init__(
            state_dim=3,
            control_dim=3,
            dt=dt,
            state_labels=("x", "y", "theta"),
            control_labels=("v_x", "v_y", "omega"),
            angular_states=(2,),
        )

    def f(self, state: np.ndarray, control: np.ndarray) -> np.ndarray:
        state = self.validate_state(state)
        control = self.validate_control(control)
        x, y, theta = state
        vx, vy, omega = control
        dt = self.dt
        cos_t, sin_t = np.cos(theta), np.sin(theta)
        return np.array(
            [
                x + (vx * cos_t - vy * sin_t) * dt,
                y + (vx * sin_t + vy * cos_t) * dt,
                wrap_angle(theta + omega * dt),
            ]
        )

    def jacobian_state(self, state: np.ndarray, control: np.ndarray) -> np.ndarray:
        state = self.validate_state(state)
        control = self.validate_control(control)
        theta = state[2]
        vx, vy, _ = control
        dt = self.dt
        cos_t, sin_t = np.cos(theta), np.sin(theta)
        jac = np.eye(3)
        jac[0, 2] = (-vx * sin_t - vy * cos_t) * dt
        jac[1, 2] = (vx * cos_t - vy * sin_t) * dt
        return jac

    def jacobian_control(self, state: np.ndarray, control: np.ndarray) -> np.ndarray:
        state = self.validate_state(state)
        self.validate_control(control)
        theta = state[2]
        dt = self.dt
        cos_t, sin_t = np.cos(theta), np.sin(theta)
        return np.array(
            [
                [cos_t * dt, -sin_t * dt, 0.0],
                [sin_t * dt, cos_t * dt, 0.0],
                [0.0, 0.0, dt],
            ]
        )
