"""Kinematic bicycle model (the Tamiya TT-02 RC car of Section V-D).

State ``x = (x, y, theta)`` — rear-axle position and heading.
Control ``u = (v, delta)`` — commanded forward speed (m/s) and front-wheel
steering angle (rad).

Discrete-time update (forward-Euler on the rear-axle kinematic bicycle):

.. math::
    x_{k+1} = x_k + v \\cos\\theta\\, dt \\\\
    y_{k+1} = y_k + v \\sin\\theta\\, dt \\\\
    \\theta_{k+1} = \\theta_k + (v / L) \\tan\\delta\\, dt

where ``L`` is the wheelbase. Unknown-input estimation through a
position/heading reference sensor needs ``C2 G`` full column rank, which
holds whenever the car is moving (``v != 0``); the steering column vanishes
at standstill — the same physical unobservability a real car has.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..linalg import wrap_angle
from .base import RobotModel

__all__ = ["BicycleModel"]


class BicycleModel(RobotModel):
    """Kinematic bicycle (Ackermann-steered car).

    Parameters
    ----------
    wheelbase:
        Distance between front and rear axles in metres (Tamiya TT-02:
        0.257 m).
    max_steer:
        Mechanical steering limit in radians; commands are clipped to
        ``[-max_steer, max_steer]`` exactly like a steering servo would.
    dt:
        Control-iteration period in seconds.
    """

    def __init__(self, wheelbase: float = 0.257, max_steer: float = 0.55, dt: float = 0.05) -> None:
        if wheelbase <= 0.0:
            raise ConfigurationError("wheelbase must be positive")
        if not 0.0 < max_steer < np.pi / 2.0:
            raise ConfigurationError("max_steer must be in (0, pi/2)")
        super().__init__(
            state_dim=3,
            control_dim=2,
            dt=dt,
            state_labels=("x", "y", "theta"),
            control_labels=("v", "delta"),
            angular_states=(2,),
        )
        self._wheelbase = float(wheelbase)
        self._max_steer = float(max_steer)

    @property
    def wheelbase(self) -> float:
        return self._wheelbase

    @property
    def max_steer(self) -> float:
        return self._max_steer

    def clip_control(self, control: np.ndarray) -> np.ndarray:
        """Apply the steering-servo limit (speed is passed through)."""
        control = self.validate_control(control).copy()
        control[1] = float(np.clip(control[1], -self._max_steer, self._max_steer))
        return control

    def f(self, state: np.ndarray, control: np.ndarray) -> np.ndarray:
        state = self.validate_state(state)
        control = self.validate_control(control)
        v, delta = control
        # NOTE: f must stay smooth in the control for the Jacobian-based
        # unknown-input estimate, so the servo clip is applied by the
        # *actuator* in simulation, not here.
        x, y, theta = state
        dt = self.dt
        nx = x + v * np.cos(theta) * dt
        ny = y + v * np.sin(theta) * dt
        ntheta = theta + (v / self._wheelbase) * np.tan(delta) * dt
        return np.array([nx, ny, wrap_angle(ntheta)])

    def jacobian_state(self, state: np.ndarray, control: np.ndarray) -> np.ndarray:
        state = self.validate_state(state)
        control = self.validate_control(control)
        v, _ = control
        theta = state[2]
        dt = self.dt
        jac = np.eye(3)
        jac[0, 2] = -v * np.sin(theta) * dt
        jac[1, 2] = v * np.cos(theta) * dt
        return jac

    def f_batch(self, states: np.ndarray, controls: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=float)
        controls = np.asarray(controls, dtype=float)
        v, delta = controls[..., 0], controls[..., 1]
        x, y, theta = states[..., 0], states[..., 1], states[..., 2]
        dt = self.dt
        nx = x + v * np.cos(theta) * dt
        ny = y + v * np.sin(theta) * dt
        ntheta = theta + (v / self._wheelbase) * np.tan(delta) * dt
        return np.stack([nx, ny, np.asarray(wrap_angle(ntheta))], axis=-1)

    def jacobian_state_batch(self, states: np.ndarray, controls: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=float)
        controls = np.asarray(controls, dtype=float)
        v = controls[..., 0]
        theta = states[..., 2]
        dt = self.dt
        jac = np.broadcast_to(np.eye(3), states.shape[:-1] + (3, 3)).copy()
        jac[..., 0, 2] = -v * np.sin(theta) * dt
        jac[..., 1, 2] = v * np.cos(theta) * dt
        return jac

    def jacobian_control_batch(self, states: np.ndarray, controls: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=float)
        controls = np.asarray(controls, dtype=float)
        v, delta = controls[..., 0], controls[..., 1]
        theta = states[..., 2]
        dt = self.dt
        L = self._wheelbase
        sec2 = 1.0 / np.cos(delta) ** 2
        jac = np.zeros(states.shape[:-1] + (3, 2))
        jac[..., 0, 0] = np.cos(theta) * dt
        jac[..., 1, 0] = np.sin(theta) * dt
        jac[..., 2, 0] = np.tan(delta) * dt / L
        jac[..., 2, 1] = v * sec2 * dt / L
        return jac

    def jacobian_control(self, state: np.ndarray, control: np.ndarray) -> np.ndarray:
        state = self.validate_state(state)
        control = self.validate_control(control)
        v, delta = control
        theta = state[2]
        dt = self.dt
        L = self._wheelbase
        sec2 = 1.0 / np.cos(delta) ** 2
        return np.array(
            [
                [np.cos(theta) * dt, 0.0],
                [np.sin(theta) * dt, 0.0],
                [np.tan(delta) * dt / L, v * sec2 * dt / L],
            ]
        )
