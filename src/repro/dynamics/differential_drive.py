"""Differential-drive kinematics (the Khepera III robot of Section V-A).

State ``x = (x, y, theta)`` — planar position and heading.
Control ``u = (v_l, v_r)`` — left/right wheel *linear* speeds in m/s.

The Khepera firmware commands wheel speeds in integer "speed units"; the
paper's Section V-H calibration (900 units = 0.006 m/s) implies 1 unit =
6.67e-6 m/s. The conversion lives in
:data:`repro.robots.khepera.SPEED_UNIT_M_PER_S` so the scenario catalog can
speak the paper's units while the model stays in SI.

Discrete-time update (exact integration of the unicycle twist over one
period, with the well-known straight-line limit when the wheel speeds are
nearly equal):

.. math::
    v = (v_l + v_r) / 2, \\qquad \\omega = (v_r - v_l) / b

where ``b`` is the wheel base (axle length).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..linalg import wrap_angle
from .base import RobotModel

__all__ = ["DifferentialDriveModel"]

#: Below this |omega * dt| the straight-line Taylor limit replaces the exact
#: arc update. The threshold is deliberately wide: the arc-branch Jacobian
#: divides differences of O(1) trigonometric terms by omega**2, which loses
#: ~1e-16/(omega*dt)**2 to cancellation, while the Taylor branch's truncation
#: error is O((omega*dt)**2) — they cross near 1e-4.
_OMEGA_EPS = 1e-4


class DifferentialDriveModel(RobotModel):
    """Two-wheel differential-drive robot.

    Parameters
    ----------
    wheel_base:
        Distance between the two wheels in metres (Khepera III: 0.0888 m).
    dt:
        Control-iteration period in seconds.
    """

    def __init__(self, wheel_base: float = 0.0888, dt: float = 0.05) -> None:
        if wheel_base <= 0.0:
            raise ConfigurationError("wheel base must be positive")
        super().__init__(
            state_dim=3,
            control_dim=2,
            dt=dt,
            state_labels=("x", "y", "theta"),
            control_labels=("v_l", "v_r"),
            angular_states=(2,),
        )
        self._wheel_base = float(wheel_base)

    @property
    def wheel_base(self) -> float:
        return self._wheel_base

    def body_twist(self, control: np.ndarray) -> tuple[float, float]:
        """Forward speed ``v`` and yaw rate ``omega`` from wheel speeds."""
        control = self.validate_control(control)
        v = 0.5 * (control[0] + control[1])
        omega = (control[1] - control[0]) / self._wheel_base
        return float(v), float(omega)

    def wheel_speeds(self, v: float, omega: float) -> np.ndarray:
        """Inverse of :meth:`body_twist` (used by the tracking controller)."""
        half = 0.5 * omega * self._wheel_base
        return np.array([v - half, v + half])

    def f(self, state: np.ndarray, control: np.ndarray) -> np.ndarray:
        state = self.validate_state(state)
        v, omega = self.body_twist(control)
        x, y, theta = state
        dt = self.dt
        if abs(omega * dt) < _OMEGA_EPS:
            # First-order Taylor limit of the arc update — keeping the O(omega)
            # lateral term makes f differentiable across the branch switch
            # (its control Jacobian depends on it).
            nx = x + v * dt * np.cos(theta) - 0.5 * v * omega * dt**2 * np.sin(theta)
            ny = y + v * dt * np.sin(theta) + 0.5 * v * omega * dt**2 * np.cos(theta)
            ntheta = theta + omega * dt
        else:
            # Exact integration along the circular arc.
            radius = v / omega
            ntheta = theta + omega * dt
            nx = x + radius * (np.sin(ntheta) - np.sin(theta))
            ny = y - radius * (np.cos(ntheta) - np.cos(theta))
        return np.array([nx, ny, wrap_angle(ntheta)])

    def jacobian_state(self, state: np.ndarray, control: np.ndarray) -> np.ndarray:
        state = self.validate_state(state)
        v, omega = self.body_twist(control)
        theta = state[2]
        dt = self.dt
        jac = np.eye(3)
        if abs(omega * dt) < _OMEGA_EPS:
            jac[0, 2] = -v * np.sin(theta) * dt
            jac[1, 2] = v * np.cos(theta) * dt
        else:
            radius = v / omega
            ntheta = theta + omega * dt
            jac[0, 2] = radius * (np.cos(ntheta) - np.cos(theta))
            jac[1, 2] = radius * (np.sin(ntheta) - np.sin(theta))
        return jac

    def _twist_batch(self, controls: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        v = 0.5 * (controls[..., 0] + controls[..., 1])
        omega = (controls[..., 1] - controls[..., 0]) / self._wheel_base
        return v, omega

    def f_batch(self, states: np.ndarray, controls: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=float)
        controls = np.asarray(controls, dtype=float)
        v, omega = self._twist_batch(controls)
        x, y, theta = states[..., 0], states[..., 1], states[..., 2]
        dt = self.dt
        small = np.abs(omega * dt) < _OMEGA_EPS
        # Both branches are evaluated densely; the arc branch divides by an
        # omega sanitized to 1.0 on the straight-line rows so no warnings or
        # NaNs leak out of the unselected branch.
        omega_safe = np.where(small, 1.0, omega)
        radius = v / omega_safe
        sin_t, cos_t = np.sin(theta), np.cos(theta)
        ntheta = theta + omega * dt
        sin_n, cos_n = np.sin(ntheta), np.cos(ntheta)
        nx = np.where(
            small,
            x + v * dt * cos_t - 0.5 * v * omega * dt**2 * sin_t,
            x + radius * (sin_n - sin_t),
        )
        ny = np.where(
            small,
            y + v * dt * sin_t + 0.5 * v * omega * dt**2 * cos_t,
            y - radius * (cos_n - cos_t),
        )
        return np.stack([nx, ny, np.asarray(wrap_angle(ntheta))], axis=-1)

    def jacobian_state_batch(self, states: np.ndarray, controls: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=float)
        controls = np.asarray(controls, dtype=float)
        v, omega = self._twist_batch(controls)
        theta = states[..., 2]
        dt = self.dt
        small = np.abs(omega * dt) < _OMEGA_EPS
        omega_safe = np.where(small, 1.0, omega)
        radius = v / omega_safe
        sin_t, cos_t = np.sin(theta), np.cos(theta)
        ntheta = theta + omega * dt
        sin_n, cos_n = np.sin(ntheta), np.cos(ntheta)
        jac = np.broadcast_to(np.eye(3), states.shape[:-1] + (3, 3)).copy()
        jac[..., 0, 2] = np.where(small, -v * sin_t * dt, radius * (cos_n - cos_t))
        jac[..., 1, 2] = np.where(small, v * cos_t * dt, radius * (sin_n - sin_t))
        return jac

    def jacobian_control_batch(self, states: np.ndarray, controls: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=float)
        controls = np.asarray(controls, dtype=float)
        v, omega = self._twist_batch(controls)
        theta = states[..., 2]
        dt = self.dt
        b = self._wheel_base
        small = np.abs(omega * dt) < _OMEGA_EPS
        omega_safe = np.where(small, 1.0, omega)
        sin_t, cos_t = np.sin(theta), np.cos(theta)
        ntheta = theta + omega * dt
        sin_n, cos_n = np.sin(ntheta), np.cos(ntheta)
        sin_d = sin_n - sin_t
        cos_d = cos_n - cos_t
        dpose = np.zeros(states.shape[:-1] + (3, 2))
        dpose[..., 0, 0] = np.where(small, cos_t * dt, sin_d / omega_safe)
        dpose[..., 0, 1] = np.where(
            small,
            -0.5 * v * sin_t * dt**2,
            -v * sin_d / omega_safe**2 + v * dt * cos_n / omega_safe,
        )
        dpose[..., 1, 0] = np.where(small, sin_t * dt, -cos_d / omega_safe)
        dpose[..., 1, 1] = np.where(
            small,
            0.5 * v * cos_t * dt**2,
            v * cos_d / omega_safe**2 + v * dt * sin_n / omega_safe,
        )
        dpose[..., 2, 1] = dt
        dtwist = np.array([[0.5, 0.5], [-1.0 / b, 1.0 / b]])
        return dpose @ dtwist

    def f_and_jacobians_batch(
        self, states: np.ndarray, controls: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        # One twist/trig evaluation feeds all three maps; each output
        # expression matches its standalone batch method term for term.
        states = np.asarray(states, dtype=float)
        controls = np.asarray(controls, dtype=float)
        v, omega = self._twist_batch(controls)
        x, y, theta = states[..., 0], states[..., 1], states[..., 2]
        dt = self.dt
        b = self._wheel_base
        small = np.abs(omega * dt) < _OMEGA_EPS
        omega_safe = np.where(small, 1.0, omega)
        radius = v / omega_safe
        sin_t, cos_t = np.sin(theta), np.cos(theta)
        ntheta = theta + omega * dt
        sin_n, cos_n = np.sin(ntheta), np.cos(ntheta)
        sin_d = sin_n - sin_t
        cos_d = cos_n - cos_t

        nx = np.where(
            small,
            x + v * dt * cos_t - 0.5 * v * omega * dt**2 * sin_t,
            x + radius * sin_d,
        )
        ny = np.where(
            small,
            y + v * dt * sin_t + 0.5 * v * omega * dt**2 * cos_t,
            y - radius * cos_d,
        )
        f = np.stack([nx, ny, np.asarray(wrap_angle(ntheta))], axis=-1)

        A = np.broadcast_to(np.eye(3), states.shape[:-1] + (3, 3)).copy()
        A[..., 0, 2] = np.where(small, -v * sin_t * dt, radius * cos_d)
        A[..., 1, 2] = np.where(small, v * cos_t * dt, radius * sin_d)

        dpose = np.zeros(states.shape[:-1] + (3, 2))
        dpose[..., 0, 0] = np.where(small, cos_t * dt, sin_d / omega_safe)
        dpose[..., 0, 1] = np.where(
            small,
            -0.5 * v * sin_t * dt**2,
            -v * sin_d / omega_safe**2 + v * dt * cos_n / omega_safe,
        )
        dpose[..., 1, 0] = np.where(small, sin_t * dt, -cos_d / omega_safe)
        dpose[..., 1, 1] = np.where(
            small,
            0.5 * v * cos_t * dt**2,
            v * cos_d / omega_safe**2 + v * dt * sin_n / omega_safe,
        )
        dpose[..., 2, 1] = dt
        dtwist = np.array([[0.5, 0.5], [-1.0 / b, 1.0 / b]])
        return f, A, dpose @ dtwist

    def jacobian_control(self, state: np.ndarray, control: np.ndarray) -> np.ndarray:
        # The chain rule through (v, omega) is exact; the (v, omega) -> pose
        # part is differentiated analytically below.
        state = self.validate_state(state)
        control = self.validate_control(control)
        v, omega = self.body_twist(control)
        theta = state[2]
        dt = self.dt
        b = self._wheel_base
        # d(v, omega)/d(v_l, v_r)
        dtwist = np.array([[0.5, 0.5], [-1.0 / b, 1.0 / b]])
        if abs(omega * dt) < _OMEGA_EPS:
            # Straight-line limit: expand the arc update to first order in
            # omega so the Jacobian stays continuous across omega = 0:
            #   x += v dt cos(theta) - v dt^2/2 sin(theta) * omega + O(w^2)
            #   y += v dt sin(theta) + v dt^2/2 cos(theta) * omega + O(w^2)
            dpose = np.array(
                [
                    [np.cos(theta) * dt, -0.5 * v * np.sin(theta) * dt**2],
                    [np.sin(theta) * dt, 0.5 * v * np.cos(theta) * dt**2],
                    [0.0, dt],
                ]
            )
        else:
            ntheta = theta + omega * dt
            sin_d = np.sin(ntheta) - np.sin(theta)
            cos_d = np.cos(ntheta) - np.cos(theta)
            dpose = np.array(
                [
                    [sin_d / omega, -v * sin_d / omega**2 + v * dt * np.cos(ntheta) / omega],
                    [-cos_d / omega, v * cos_d / omega**2 + v * dt * np.sin(ntheta) / omega],
                    [0.0, dt],
                ]
            )
        return dpose @ dtwist
