"""Linearization policies: every-step (RoboADS) vs fixed-point (baseline).

The paper's headline capability over prior model-based work is relinearizing
the nonlinear dynamic model at every control iteration (Section IV-B,
challenge 3). The Section V-G benchmark compares against a representative
linear-system approach that linearizes once at mission start; encoding the
difference as a policy object lets both detectors share every other line of
the filter, so the comparison isolates exactly the capability the paper
claims.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

import numpy as np

from ..dynamics.base import RobotModel
from ..linalg import symmetrize
from ..sensors.suite import SensorSuite

__all__ = [
    "LinearizationPolicy",
    "EveryStepLinearization",
    "FixedPointLinearization",
    "IterationWorkspace",
]


class LinearizationPolicy(ABC):
    """Supplies the (possibly approximated) model a NUISE instance uses."""

    @abstractmethod
    def f(self, model: RobotModel, state: np.ndarray, control: np.ndarray) -> np.ndarray:
        """State propagation."""

    @abstractmethod
    def jacobians(
        self, model: RobotModel, state: np.ndarray, control: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(A, G)`` at the filter's current linearization point."""

    @abstractmethod
    def h(
        self, suite: SensorSuite, names: Sequence[str], state: np.ndarray
    ) -> np.ndarray:
        """Measurement prediction for the named sensors."""

    @abstractmethod
    def measurement_jacobian(
        self, suite: SensorSuite, names: Sequence[str], state: np.ndarray
    ) -> np.ndarray:
        """``C`` for the named sensors."""

    def workspace(
        self,
        model: RobotModel,
        suite: SensorSuite,
        state: np.ndarray,
        control: np.ndarray,
        covariance: np.ndarray | None = None,
    ) -> "IterationWorkspace":
        """Shared per-iteration workspace (see :class:`IterationWorkspace`)."""
        return IterationWorkspace(self, model, suite, state, control, covariance)

    # ------------------------------------------------------------------
    # Batched evaluation (stacked NUISE kernels)
    # ------------------------------------------------------------------
    def f_batch(self, model: RobotModel, states: np.ndarray, controls: np.ndarray) -> np.ndarray:
        """:meth:`f` over leading batch axes (default: Python loop)."""
        states = np.asarray(states, dtype=float)
        controls = np.asarray(controls, dtype=float)
        if states.shape[0] == 0:
            return np.zeros((0, model.state_dim))
        return np.stack([self.f(model, x, u) for x, u in zip(states, controls)])

    def jacobians_batch(
        self, model: RobotModel, states: np.ndarray, controls: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(A, G)`` stacks over a batch: ``-> (B, n, n), (B, n, l)``."""
        states = np.asarray(states, dtype=float)
        controls = np.asarray(controls, dtype=float)
        if states.shape[0] == 0:
            return (
                np.zeros((0, model.state_dim, model.state_dim)),
                np.zeros((0, model.state_dim, model.control_dim)),
            )
        pairs = [self.jacobians(model, x, u) for x, u in zip(states, controls)]
        return np.stack([p[0] for p in pairs]), np.stack([p[1] for p in pairs])

    def f_and_jacobians_batch(
        self, model: RobotModel, states: np.ndarray, controls: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(f, A, G)`` stacks in one call (default: the two batch calls)."""
        f = self.f_batch(model, states, controls)
        A, G = self.jacobians_batch(model, states, controls)
        return f, A, G

    def h_batch(
        self, suite: SensorSuite, names: Sequence[str] | None, states: np.ndarray
    ) -> np.ndarray:
        """Stacked measurement prediction over a batch of states."""
        states = np.asarray(states, dtype=float)
        if states.shape[0] == 0:
            return np.zeros((0, suite.total_dim if names is None else len(suite.indices_of(names))))
        return np.stack([self.h(suite, names, x) for x in states])

    def measurement_jacobian_batch(
        self, suite: SensorSuite, names: Sequence[str] | None, states: np.ndarray
    ) -> np.ndarray:
        """Stacked ``C`` over a batch of states."""
        states = np.asarray(states, dtype=float)
        if states.shape[0] == 0:
            m = suite.total_dim if names is None else len(suite.indices_of(names))
            return np.zeros((0, m, suite.state_dim))
        return np.stack([self.measurement_jacobian(suite, names, x) for x in states])


class IterationWorkspace:
    """Shared linearization products for one control iteration.

    Algorithm 1 feeds every mode the *same* previous estimate
    ``x_hat_{k-1|k-1}`` and control ``u_{k-1}``, so the dynamics propagation
    ``f(x, u)``, the process Jacobians ``A``/``G``, the propagated prior
    ``A P A^T`` and the per-sensor measurement model at the shared predicted
    point ``x_check = f(x, u)`` are all mode-independent. The engine builds
    one workspace per iteration and hands it to every
    :meth:`~repro.core.nuise.NuiseFilter.step`; each mode then row-stacks its
    ``C2``/``h2`` blocks from the cached per-sensor rows instead of
    re-linearizing from scratch. Everything is lazy, so a standalone filter
    (no engine) pays only for what it touches.

    Only quantities evaluated at the shared point are cached here; the
    per-mode re-linearizations at the compensated prediction ``x_pred`` and
    the posterior ``x_new`` stay inside the filter, because those points
    differ per mode.
    """

    __slots__ = (
        "policy",
        "model",
        "suite",
        "state",
        "control",
        "covariance",
        "_x_check",
        "_jacobians",
        "_propagated_prior",
        "_sensor_rows",
        "_stacked",
    )

    def __init__(
        self,
        policy: LinearizationPolicy,
        model: RobotModel,
        suite: SensorSuite,
        state: np.ndarray,
        control: np.ndarray,
        covariance: np.ndarray | None = None,
    ) -> None:
        self.policy = policy
        self.model = model
        self.suite = suite
        self.state = model.validate_state(state)
        self.control = model.validate_control(control)
        self.covariance = (
            symmetrize(np.asarray(covariance, dtype=float)) if covariance is not None else None
        )
        self._x_check: np.ndarray | None = None
        self._jacobians: tuple[np.ndarray, np.ndarray] | None = None
        self._propagated_prior: np.ndarray | None = None
        self._sensor_rows: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self._stacked: dict[tuple[str, ...], tuple[np.ndarray, np.ndarray]] = {}

    def propagate(self) -> np.ndarray:
        """``x_check = f(x_{k-1|k-1}, u_{k-1})`` (shared across modes)."""
        if self._x_check is None:
            self._x_check = self.policy.f(self.model, self.state, self.control)
        return self._x_check

    def jacobians(self) -> tuple[np.ndarray, np.ndarray]:
        """``(A, G)`` at the shared linearization point."""
        if self._jacobians is None:
            self._jacobians = self.policy.jacobians(self.model, self.state, self.control)
        return self._jacobians

    def propagated_prior(self) -> np.ndarray:
        """``A P_{k-1} A^T`` (each mode adds its own ``Q``)."""
        if self._propagated_prior is None:
            if self.covariance is None:
                raise ValueError("workspace was built without a shared covariance")
            A, _ = self.jacobians()
            self._propagated_prior = A @ self.covariance @ A.T
        return self._propagated_prior

    def measurement(self, names: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
        """``(h(x_check), C(x_check))`` stacked over *names* in suite order.

        Per-sensor rows are evaluated once per iteration no matter how many
        modes reference the sensor; mode-level stacks are additionally memoized
        by name tuple.
        """
        key = tuple(names)
        stacked = self._stacked.get(key)
        if stacked is None:
            wanted = set(key)
            hs: list[np.ndarray] = []
            Cs: list[np.ndarray] = []
            for name in self.suite.names:
                if name not in wanted:
                    continue
                rows = self._sensor_rows.get(name)
                if rows is None:
                    x_check = self.propagate()
                    rows = (
                        self.policy.h(self.suite, (name,), x_check),
                        self.policy.measurement_jacobian(self.suite, (name,), x_check),
                    )
                    self._sensor_rows[name] = rows
                hs.append(rows[0])
                Cs.append(rows[1])
            if hs:
                stacked = (np.concatenate(hs), np.vstack(Cs))
            else:
                stacked = (np.zeros(0), np.zeros((0, self.model.state_dim)))
            self._stacked[key] = stacked
        return stacked


class EveryStepLinearization(LinearizationPolicy):
    """RoboADS behaviour: exact nonlinear maps, Jacobians at every iterate."""

    def f(self, model: RobotModel, state: np.ndarray, control: np.ndarray) -> np.ndarray:
        return model.f(state, control)

    def jacobians(self, model, state, control):
        return model.jacobian_state(state, control), model.jacobian_control(state, control)

    def h(self, suite, names, state):
        return suite.h(state, names)

    def measurement_jacobian(self, suite, names, state):
        return suite.jacobian(state, names)

    def f_batch(self, model, states, controls):
        return model.f_batch(states, controls)

    def jacobians_batch(self, model, states, controls):
        return (
            model.jacobian_state_batch(states, controls),
            model.jacobian_control_batch(states, controls),
        )

    def f_and_jacobians_batch(self, model, states, controls):
        return model.f_and_jacobians_batch(states, controls)

    def h_batch(self, suite, names, states):
        return suite.h_batch(states, names)

    def measurement_jacobian_batch(self, suite, names, states):
        return suite.jacobian_batch(states, names)


class FixedPointLinearization(LinearizationPolicy):
    """Section V-G baseline: affine model frozen at ``(x_ref, u_ref)``.

    The dynamic and measurement maps become their first-order Taylor
    expansions at the reference point — the "linearize only once at the
    beginning" treatment of [Yong, Zhu & Frazzoli 2015] that the paper
    benchmarks against. Jacobians are computed lazily on first use so the
    policy is cheap to construct.
    """

    def __init__(self, x_ref: np.ndarray, u_ref: np.ndarray) -> None:
        self._x_ref = np.asarray(x_ref, dtype=float).copy()
        self._u_ref = np.asarray(u_ref, dtype=float).copy()
        self._A: np.ndarray | None = None
        self._G: np.ndarray | None = None
        self._f_ref: np.ndarray | None = None
        self._h_cache: dict[tuple[str, ...], tuple[np.ndarray, np.ndarray]] = {}

    def _ensure_dynamics(self, model: RobotModel) -> None:
        if self._A is None:
            self._A = model.jacobian_state(self._x_ref, self._u_ref)
            self._G = model.jacobian_control(self._x_ref, self._u_ref)
            self._f_ref = model.f(self._x_ref, self._u_ref)

    def f(self, model: RobotModel, state: np.ndarray, control: np.ndarray) -> np.ndarray:
        self._ensure_dynamics(model)
        return (
            self._f_ref
            + self._A @ (np.asarray(state, dtype=float) - self._x_ref)
            + self._G @ (np.asarray(control, dtype=float) - self._u_ref)
        )

    def jacobians(self, model, state, control):
        self._ensure_dynamics(model)
        return self._A, self._G

    def _ensure_measurement(
        self, suite: SensorSuite, names: Sequence[str] | None
    ) -> tuple[np.ndarray, np.ndarray]:
        key = tuple(names) if names is not None else None
        if key not in self._h_cache:
            self._h_cache[key] = (
                suite.h(self._x_ref, names),
                suite.jacobian(self._x_ref, names),
            )
        return self._h_cache[key]

    def h(self, suite, names, state):
        h_ref, C = self._ensure_measurement(suite, names)
        return h_ref + C @ (np.asarray(state, dtype=float) - self._x_ref)

    def measurement_jacobian(self, suite, names, state):
        _, C = self._ensure_measurement(suite, names)
        return C

    def f_batch(self, model, states, controls):
        self._ensure_dynamics(model)
        states = np.asarray(states, dtype=float)
        controls = np.asarray(controls, dtype=float)
        return (
            self._f_ref
            + (states - self._x_ref) @ self._A.T
            + (controls - self._u_ref) @ self._G.T
        )

    def jacobians_batch(self, model, states, controls):
        self._ensure_dynamics(model)
        batch = np.asarray(states).shape[:-1]
        return (
            np.broadcast_to(self._A, batch + self._A.shape),
            np.broadcast_to(self._G, batch + self._G.shape),
        )

    def h_batch(self, suite, names, states):
        h_ref, C = self._ensure_measurement(suite, names)
        return h_ref + (np.asarray(states, dtype=float) - self._x_ref) @ C.T

    def measurement_jacobian_batch(self, suite, names, states):
        _, C = self._ensure_measurement(suite, names)
        return np.broadcast_to(C, np.asarray(states).shape[:-1] + C.shape)
