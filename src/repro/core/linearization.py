"""Linearization policies: every-step (RoboADS) vs fixed-point (baseline).

The paper's headline capability over prior model-based work is relinearizing
the nonlinear dynamic model at every control iteration (Section IV-B,
challenge 3). The Section V-G benchmark compares against a representative
linear-system approach that linearizes once at mission start; encoding the
difference as a policy object lets both detectors share every other line of
the filter, so the comparison isolates exactly the capability the paper
claims.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

import numpy as np

from ..dynamics.base import RobotModel
from ..sensors.suite import SensorSuite

__all__ = ["LinearizationPolicy", "EveryStepLinearization", "FixedPointLinearization"]


class LinearizationPolicy(ABC):
    """Supplies the (possibly approximated) model a NUISE instance uses."""

    @abstractmethod
    def f(self, model: RobotModel, state: np.ndarray, control: np.ndarray) -> np.ndarray:
        """State propagation."""

    @abstractmethod
    def jacobians(
        self, model: RobotModel, state: np.ndarray, control: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(A, G)`` at the filter's current linearization point."""

    @abstractmethod
    def h(
        self, suite: SensorSuite, names: Sequence[str], state: np.ndarray
    ) -> np.ndarray:
        """Measurement prediction for the named sensors."""

    @abstractmethod
    def measurement_jacobian(
        self, suite: SensorSuite, names: Sequence[str], state: np.ndarray
    ) -> np.ndarray:
        """``C`` for the named sensors."""


class EveryStepLinearization(LinearizationPolicy):
    """RoboADS behaviour: exact nonlinear maps, Jacobians at every iterate."""

    def f(self, model: RobotModel, state: np.ndarray, control: np.ndarray) -> np.ndarray:
        return model.f(state, control)

    def jacobians(self, model, state, control):
        return model.jacobian_state(state, control), model.jacobian_control(state, control)

    def h(self, suite, names, state):
        return suite.h(state, names)

    def measurement_jacobian(self, suite, names, state):
        return suite.jacobian(state, names)


class FixedPointLinearization(LinearizationPolicy):
    """Section V-G baseline: affine model frozen at ``(x_ref, u_ref)``.

    The dynamic and measurement maps become their first-order Taylor
    expansions at the reference point — the "linearize only once at the
    beginning" treatment of [Yong, Zhu & Frazzoli 2015] that the paper
    benchmarks against. Jacobians are computed lazily on first use so the
    policy is cheap to construct.
    """

    def __init__(self, x_ref: np.ndarray, u_ref: np.ndarray) -> None:
        self._x_ref = np.asarray(x_ref, dtype=float).copy()
        self._u_ref = np.asarray(u_ref, dtype=float).copy()
        self._A: np.ndarray | None = None
        self._G: np.ndarray | None = None
        self._f_ref: np.ndarray | None = None
        self._h_cache: dict[tuple[str, ...], tuple[np.ndarray, np.ndarray]] = {}

    def _ensure_dynamics(self, model: RobotModel) -> None:
        if self._A is None:
            self._A = model.jacobian_state(self._x_ref, self._u_ref)
            self._G = model.jacobian_control(self._x_ref, self._u_ref)
            self._f_ref = model.f(self._x_ref, self._u_ref)

    def f(self, model: RobotModel, state: np.ndarray, control: np.ndarray) -> np.ndarray:
        self._ensure_dynamics(model)
        return (
            self._f_ref
            + self._A @ (np.asarray(state, dtype=float) - self._x_ref)
            + self._G @ (np.asarray(control, dtype=float) - self._u_ref)
        )

    def jacobians(self, model, state, control):
        self._ensure_dynamics(model)
        return self._A, self._G

    def _ensure_measurement(self, suite: SensorSuite, names: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
        key = tuple(names)
        if key not in self._h_cache:
            self._h_cache[key] = (
                suite.h(self._x_ref, names),
                suite.jacobian(self._x_ref, names),
            )
        return self._h_cache[key]

    def h(self, suite, names, state):
        h_ref, C = self._ensure_measurement(suite, names)
        return h_ref + C @ (np.asarray(state, dtype=float) - self._x_ref)

    def measurement_jacobian(self, suite, names, state):
        _, C = self._ensure_measurement(suite, names)
        return C
