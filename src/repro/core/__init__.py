"""RoboADS core: the paper's detection pipeline (Section IV).

Modules map one-to-one onto Fig 3:

* :mod:`repro.core.nuise` — the NUISE filter (Algorithm 2): per-mode
  unknown-input and state estimation with likelihoods.
* :mod:`repro.core.modes` — sensor-condition hypotheses and mode-set
  construction (single-reference by default; Section VI discussion).
* :mod:`repro.core.engine` — the multi-mode estimation engine and mode
  selector (Algorithm 1 lines 4–9).
* :mod:`repro.core.decision` — Chi-square tests with sliding windows
  (Algorithm 1 lines 10–25).
* :mod:`repro.core.detector` — :class:`RoboADS`, the monitor + engine +
  selector + decision maker composition (Algorithm 1).
* :mod:`repro.core.baseline` — the linearize-once comparison detector
  (Section V-G).
"""

from .baseline import build_linearized_once_detector
from .batch import BatchReplayResult, replay_batch
from .decision import DecisionConfig, DecisionMaker, DecisionOutcome, SlidingWindow
from .detector import DetectionReport, RoboADS
from .engine import EngineOutput, MultiModeEstimationEngine
from .linearization import EveryStepLinearization, FixedPointLinearization, LinearizationPolicy
from .modes import Mode, complete_modes, single_reference_modes
from .nuise import NuiseFilter, NuiseResult
from .report import IterationStatistics
from .response import NavigationFailover, ResponseEvent

__all__ = [
    "NuiseFilter",
    "NuiseResult",
    "Mode",
    "single_reference_modes",
    "complete_modes",
    "MultiModeEstimationEngine",
    "EngineOutput",
    "DecisionConfig",
    "DecisionMaker",
    "DecisionOutcome",
    "SlidingWindow",
    "RoboADS",
    "DetectionReport",
    "BatchReplayResult",
    "replay_batch",
    "IterationStatistics",
    "LinearizationPolicy",
    "EveryStepLinearization",
    "FixedPointLinearization",
    "build_linearized_once_detector",
    "NavigationFailover",
    "ResponseEvent",
]
