"""Typed records flowing between the engine, decision maker and evaluators.

:class:`IterationStatistics` is deliberately *decision-parameter free*: it
carries the raw test statistics and anomaly estimates of one control
iteration, so offline sweeps (Fig 7) can re-run only the decision maker over
recorded statistics and remain exactly consistent with online detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

__all__ = ["SensorStatistic", "IterationStatistics"]


@dataclass(frozen=True)
class SensorStatistic:
    """Per-testing-sensor anomaly estimate and Chi-square inputs."""

    name: str
    estimate: np.ndarray
    covariance: np.ndarray
    statistic: float
    dof: int


@dataclass(frozen=True)
class IterationStatistics:
    """Raw outputs of one multi-mode estimation iteration.

    Attributes
    ----------
    iteration:
        1-based control-iteration index.
    selected_mode:
        Name of the maximum-likelihood mode.
    mode_probabilities:
        Normalized mode probabilities ``mu_k`` keyed by mode name.
    state_estimate:
        ``x_hat_{k|k}`` from the selected mode.
    sensor_statistic, sensor_dof:
        Aggregate testing-sensor Chi-square statistic and degrees of
        freedom (Algorithm 1 line 10).
    actuator_statistic, actuator_dof:
        Aggregate actuator Chi-square statistic and degrees of freedom
        (line 11).
    sensor_stats:
        Per-testing-sensor statistics, keyed by sensor name (lines 13–18).
        Sensors serving as the selected mode's reference do not appear.
    actuator_estimate, actuator_covariance:
        ``d_hat^a_{k-1}`` and its error covariance from the selected mode.
    likelihoods:
        Raw per-mode likelihoods ``N^m_k`` keyed by mode name.
    available_sensors:
        Sensors whose readings were actually delivered this iteration
        (``None`` = full delivery, the nominal case). On degraded iterations
        the engine restricts every mode to the delivered subset, so absent
        sensors contribute neither measurement updates nor Chi-square terms
        (see ``docs/ROBUSTNESS.md``).
    degraded:
        True when at least one suite sensor was unavailable this iteration.
    """

    iteration: int
    selected_mode: str
    mode_probabilities: dict[str, float]
    state_estimate: np.ndarray
    sensor_statistic: float
    sensor_dof: int
    actuator_statistic: float
    actuator_dof: int
    sensor_stats: dict[str, SensorStatistic]
    actuator_estimate: np.ndarray
    actuator_covariance: np.ndarray
    likelihoods: dict[str, float] = field(default_factory=dict)
    available_sensors: tuple[str, ...] | None = None
    degraded: bool = False
