"""Stacked-array NUISE kernels: the mode bank and replay lattice as batches.

The serial engine advances its ``M`` NUISE filters one Python call at a
time, and :func:`~repro.core.batch.replay_batch` replays missions
back-to-back — every iteration pays ``M`` (or ``N x M``) rounds of Python
dispatch and small-matrix LAPACK calls. This module restructures both
around an explicit struct-of-arrays batch axis:

* :class:`StackedBank` stacks the whole mode bank into leading
  ``(batch, mode)`` dimensions and advances it with single calls to NumPy's
  stacked ``linalg`` kernels — one batched Cholesky/solve per algorithm
  line instead of one per mode. Modes whose reference blocks differ in size
  are padded to a shared width with exact identity rows (block-diagonal
  padding is exact in floating point: the real block's arithmetic is
  bit-identical to the unpadded computation), while the spectral
  pseudo-inverse/likelihood step runs unpadded per true reference
  dimension so eigendecompositions never see the padding.
* :func:`replay_batch_stacked` runs *all missions simultaneously*: a
  ``(mission, mode)`` lattice that shares one vectorized linearization per
  control iteration and carries the mode-probability, consistency-window
  and decision-window recursions as arrays. The sensor-anomaly testing
  block (Algorithm 2 lines 15-16) is evaluated only for each mission's
  *selected* mode — the likelihoods that drive selection never depend on
  it — which cuts a full-suite re-linearization per iteration.

Numerics: well-conditioned cells ride the batched Cholesky fast path;
ill-conditioned cells (e.g. the rank-deficient ``C2 G`` of a steering mode
at standstill) fall out per-cell into the same eigendecomposition-based
pseudo-inverse the serial filter uses (see :mod:`repro.linalg`), so the
batched bank agrees with the per-mode loop to solver round-off (the
equivalence tests pin 1e-8 over 200-step missions). Fallback counts are
surfaced per mode (:attr:`StackedBankResult.fallbacks`) and flow into
:class:`~repro.obs.telemetry.ModeBankEvent.solver_fallbacks`.

Degraded iterations (restricted availability, non-finite readings) keep
the serial per-mission path — block shapes become data-dependent there —
so fault-injected replays produce the same results as online detection.
The leading batch axes are deliberately the only structural assumption,
laying the layout groundwork for a future GPU/JAX backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

import numpy as np

from ..errors import ConfigurationError, DimensionError
from ..linalg import (
    EIG_TOL,
    _CHOL_MARGIN,
    stacked_gaussian_likelihood_pinv,
    stacked_pinv_and_pdet,
    stacked_project_psd,
    stacked_solve_psd,
    symmetrize_stacked,
    wrap_residual_stacked,
)
from .chi2 import anomaly_statistic, anomaly_statistic_stacked, chi_square_thresholds
from .nuise import NuiseFilter, NuiseResult

__all__ = ["StackedBank", "StackedBankResult", "replay_batch_stacked"]


@dataclass(frozen=True)
class _TestGroup:
    """Modes whose testing blocks share a per-slot shape.

    The reference block advances merged (padded) across the whole bank;
    testing blocks stay grouped by their per-slot sensor dimensions so the
    stacked ``d_hat^s``/``P^s`` arrays keep one shape per group.
    """

    #: ``(Mg,)`` positions of the member modes in engine bank order.
    mode_indices: np.ndarray
    #: ``(Mg, m1)`` suite indices of each mode's testing components.
    test_idx: np.ndarray
    #: ``(Mg, m1, m1)`` testing noise blocks.
    R1: np.ndarray
    #: ``(Mg, m1)`` angular-component masks of the testing stacks.
    test_wrap: np.ndarray
    #: Per-slot slices into the stacked ``d_hat^s`` (shared by the group).
    test_slices: tuple[slice, ...]
    #: ``(Mg, n_slots)`` suite *sensor* index of each testing slot.
    slot_sensor: np.ndarray

    @property
    def size(self) -> int:
        return int(self.mode_indices.shape[0])

    @property
    def test_dim(self) -> int:
        return int(self.test_idx.shape[1])


@dataclass(frozen=True)
class StackedBankResult:
    """One batched advance of the whole mode bank over ``B`` cells.

    Global arrays carry every mode (bank order) on axis 1. Reference-block
    quantities are padded to the bank's shared reference width; each mode's
    true width is ``ref_dims[m]`` (padding occupies the trailing entries and
    is exactly zero / identity). Testing-block stacks are per
    :attr:`groups` and are ``None`` when the advance deferred them
    (``testing=False``).
    """

    #: The bank's testing-shape groups (axis order of the per-group lists).
    groups: tuple[_TestGroup, ...]
    #: ``(M,)`` true reference dimension of each mode.
    ref_dims: np.ndarray
    #: ``(B, M)`` mode likelihoods ``N^m_k``.
    likelihoods: np.ndarray
    #: ``(B, M, n)`` posterior states ``x_hat^m_{k|k}``.
    states: np.ndarray
    #: ``(B, M, n, n)`` posterior covariances ``P^{x,m}_k``.
    covariances: np.ndarray
    #: ``(B, M, l)`` actuator anomaly estimates ``d_hat^a_{k-1}``.
    actuator_anomaly: np.ndarray
    #: ``(B, M, l, l)`` actuator anomaly covariances.
    actuator_covariance: np.ndarray
    #: ``(B, M)`` pseudo-inverse fallback counts (0-2 per cell).
    fallbacks: np.ndarray
    #: ``(B, M, m2p)`` post-compensation innovations (padded).
    innovation: np.ndarray
    #: ``(B, M, m2p, m2p)`` innovation covariances ``R2_tilde`` (padded).
    innovation_covariance: np.ndarray
    #: Per group: ``(B, Mg, m1)`` sensor anomaly stacks ``d_hat^s_k``.
    sensor_anomaly: tuple[np.ndarray, ...] | None
    #: Per group: ``(B, Mg, m1, m1)`` sensor anomaly covariances.
    sensor_covariance: tuple[np.ndarray, ...] | None


class StackedBank:
    """The engine's NUISE bank advanced as one ``(batch, mode)`` stack.

    Built once from the engine's per-mode filters (their full-availability
    block plans); :meth:`run` then mirrors Algorithm 2 line by line with the
    ``(batch, mode)`` axes leading every operand, using the stacked
    :mod:`repro.linalg` kernels for every factorization. The serial filters
    stay authoritative for degraded availability (restricted plans).
    """

    def __init__(self, filters: Sequence[NuiseFilter]) -> None:
        if not filters:
            raise ConfigurationError("a stacked bank needs at least one filter")
        first = filters[0]
        self._model = first._model
        self._suite = first._suite
        self._policy = first._policy
        self._Q = first._Q
        self._mode_names = tuple(f.mode.name for f in filters)
        self._filters = tuple(filters)
        self._I_n = np.eye(self._model.state_dim)
        self._build_reference_layout(filters)
        self._groups = self._build_test_groups(filters)

    @staticmethod
    def usable(filters: Sequence[NuiseFilter]) -> bool:
        """Whether every filter's full plan fits the stacked layout.

        A mode with an empty reference block (constructed with observability
        checking disabled) never runs the measurement update, so the bank
        declines and the engine keeps the serial loop.
        """
        if not filters:
            return False
        shared = {(id(f._model), id(f._suite), id(f._policy)) for f in filters}
        if len(shared) != 1:
            return False
        return all(f._full_plan.ref_names for f in filters)

    def _build_reference_layout(self, filters: Sequence[NuiseFilter]) -> None:
        """Pad every mode's reference block to the bank's widest one.

        Padding appends exact identity rows: gathered measurement rows are
        zeroed, the noise block gets a unit diagonal. Block-diagonal
        structure keeps the real block's Cholesky/LU arithmetic bit-identical
        to the unpadded computation, and :func:`stacked_chol_mask`'s
        ``diag_mask`` keeps the conditioning certificate blind to the pads.
        """
        plans = [f._full_plan for f in filters]
        for f in filters:
            if not f._full_plan.ref_names:
                raise ConfigurationError(
                    f"mode {f.mode.name!r} has an empty reference block; "
                    "the stacked bank requires every mode to measure"
                )
        M = len(plans)
        ref_dims = np.array([len(p.ref_idx) for p in plans], dtype=int)
        m2p = int(ref_dims.max())
        ref_idx = np.zeros((M, m2p), dtype=int)
        ref_mask = np.zeros((M, m2p), dtype=bool)
        ref_wrap = np.zeros((M, m2p), dtype=bool)
        R2 = np.zeros((M, m2p, m2p))
        for i, plan in enumerate(plans):
            m2 = int(ref_dims[i])
            ref_idx[i, :m2] = plan.ref_idx
            ref_mask[i, :m2] = True
            ref_wrap[i, plan.ref_wrap] = True
            R2[i, :m2, :m2] = plan.R2
            for j in range(m2, m2p):
                R2[i, j, j] = 1.0
        self._ref_dims = ref_dims
        self._ref_idx = ref_idx
        self._ref_mask = ref_mask
        self._ref_mask_col = ref_mask[..., None]
        self._ref_wrap = ref_wrap
        self._R2 = R2
        self._R2_abs_tol = np.array([p.R2_abs_tol for p in plans])
        # The spectral pinv/likelihood step runs unpadded: bucket modes by
        # their true reference dimension (padding sits in trailing slots, so
        # a leading [:m2] slice recovers the exact unpadded block).
        self._ref_subgroups = tuple(
            (np.flatnonzero(ref_dims == d), int(d)) for d in np.unique(ref_dims)
        )
        self._mode_col = np.arange(M)[:, None]

    def _build_test_groups(
        self, filters: Sequence[NuiseFilter]
    ) -> tuple[_TestGroup, ...]:
        suite = self._suite
        sensor_pos = {name: i for i, name in enumerate(suite.names)}
        buckets: dict[tuple, list[int]] = {}
        for i, f in enumerate(filters):
            plan = f._full_plan
            test_dims = tuple(suite.sensor(n).dim for n in plan.test_names)
            buckets.setdefault(test_dims, []).append(i)
        groups: list[_TestGroup] = []
        for test_dims, members in buckets.items():
            plans = [filters[i]._full_plan for i in members]
            m1 = sum(test_dims)
            slices: list[slice] = []
            offset = 0
            for dim in test_dims:
                slices.append(slice(offset, offset + dim))
                offset += dim
            test_wrap = np.zeros((len(members), m1), dtype=bool)
            for j, plan in enumerate(plans):
                test_wrap[j, plan.test_wrap] = True
            groups.append(
                _TestGroup(
                    mode_indices=np.array(members, dtype=int),
                    test_idx=(
                        np.stack([p.test_idx for p in plans])
                        if m1
                        else np.zeros((len(members), 0), dtype=int)
                    ),
                    R1=(
                        np.stack([p.R1 for p in plans])
                        if m1
                        else np.zeros((len(members), 0, 0))
                    ),
                    test_wrap=test_wrap,
                    test_slices=tuple(slices),
                    slot_sensor=np.array(
                        [[sensor_pos[n] for n in p.test_names] for p in plans],
                        dtype=int,
                    ).reshape(len(members), len(test_dims)),
                )
            )
        return tuple(groups)

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def groups(self) -> tuple[_TestGroup, ...]:
        return self._groups

    @property
    def mode_names(self) -> tuple[str, ...]:
        return self._mode_names

    @property
    def n_modes(self) -> int:
        return len(self._mode_names)

    # ------------------------------------------------------------------
    # One batched Algorithm 2 advance
    # ------------------------------------------------------------------
    def run(
        self,
        prev_states: np.ndarray,
        prev_covariances: np.ndarray,
        controls: np.ndarray,
        readings: np.ndarray,
        x_check: np.ndarray | None = None,
        A: np.ndarray | None = None,
        G: np.ndarray | None = None,
        APA: np.ndarray | None = None,
        h_check: np.ndarray | None = None,
        C_check: np.ndarray | None = None,
        testing: bool = True,
        fast_gain: bool = False,
        project_actuator_cov: bool = True,
    ) -> StackedBankResult:
        """Advance every mode for every batch cell in stacked array calls.

        ``prev_covariances`` must already be symmetrized (the engine's
        workspace and the replay lattice both hand over ``symmetrize(P)``).
        The optional keyword products let the engine's single-cell path
        reuse its shared :class:`~repro.core.linearization.IterationWorkspace`
        quantities bit-for-bit; the replay lattice leaves them ``None`` and
        one batched linearization is computed here for all missions.
        ``testing=False`` defers the sensor-anomaly block (the lattice
        evaluates it post-selection via :meth:`testing_selected`).
        ``fast_gain=True`` computes the filter gain and likelihood through
        one padded Cholesky factorization instead of the per-dimension
        eigendecomposition — same solver-round-off class as the LU solves
        (the 1e-8 replay equivalence covers it), so the offline lattice uses
        it; the engine keeps the exact spectral path online.
        ``project_actuator_cov=False`` returns the raw ``P^a`` Gram product;
        the actuator covariance never feeds back into the recursion, so the
        lattice defers its PSD projection to one post-replay pass over the
        selected cells instead of paying a per-step call.
        """
        model, suite, policy = self._model, self._suite, self._policy
        prev_states = np.asarray(prev_states, dtype=float)
        prev_covariances = np.asarray(prev_covariances, dtype=float)
        controls = np.asarray(controls, dtype=float)
        readings = np.asarray(readings, dtype=float)

        # --- Shared linearization (one batched call for all cells) -----
        if x_check is None and A is None and G is None:
            x_check, A, G = policy.f_and_jacobians_batch(
                model, prev_states, controls
            )
        if x_check is None:
            x_check = policy.f_batch(model, prev_states, controls)
        if A is None or G is None:
            A, G = policy.jacobians_batch(model, prev_states, controls)
        if APA is None:
            APA = A @ prev_covariances @ A.swapaxes(-1, -2)
        if h_check is None:
            h_check = policy.h_batch(suite, None, x_check)
        if C_check is None:
            C_check = policy.measurement_jacobian_batch(suite, None, x_check)
        P_tilde = APA + self._Q

        out = self._advance_bank(
            prev_covariances,
            readings,
            x_check,
            A,
            G,
            P_tilde,
            h_check,
            C_check,
            fast_gain=fast_gain,
            project_actuator_cov=project_actuator_cov,
        )

        sensor_anom = sensor_cov = None
        if testing:
            sensor_anom, sensor_cov = self._testing_all(
                out["state"], out["state_cov"], readings
            )

        return StackedBankResult(
            groups=self._groups,
            ref_dims=self._ref_dims,
            likelihoods=out["likelihood"],
            states=out["state"],
            covariances=out["state_cov"],
            actuator_anomaly=out["d_a"],
            actuator_covariance=out["P_a"],
            fallbacks=out["fallbacks"],
            innovation=out["innovation"],
            innovation_covariance=out["R2_tilde"],
            sensor_anomaly=sensor_anom,
            sensor_covariance=sensor_cov,
        )

    def _advance_bank(
        self,
        P_prev: np.ndarray,
        readings: np.ndarray,
        x_check: np.ndarray,
        A: np.ndarray,
        G: np.ndarray,
        P_tilde: np.ndarray,
        h_check: np.ndarray,
        C_check: np.ndarray,
        fast_gain: bool = False,
        project_actuator_cov: bool = True,
    ) -> dict[str, np.ndarray]:
        """Algorithm 2 with ``(B, M)`` cell axes leading every operand."""
        model, suite, policy = self._model, self._suite, self._policy
        B = readings.shape[0]
        M = self.n_modes
        I_n = self._I_n
        Q = self._Q
        R2 = self._R2
        mask = self._ref_mask
        mask_col = self._ref_mask_col

        # Per-mode gathers of the shared linearization (fancy indexing with
        # the (M, m2p) index grid broadcasts the batch axis in front);
        # padded slots are zeroed so they contribute exact identity rows.
        # Residuals are gathered from the full-suite difference — elementwise
        # identical to subtracting two gathered stacks, one gather cheaper.
        diff_check = readings - h_check
        z2_minus_h2 = np.where(mask, diff_check[:, self._ref_idx], 0.0)
        C2 = np.where(mask_col, C_check[:, self._ref_idx, :], 0.0)
        Pt = P_tilde[:, None]
        Gb = G[:, None]

        # --- Step 1: actuator anomaly estimation (lines 2-6) -----------
        R_star = symmetrize_stacked(C2 @ Pt @ C2.swapaxes(-1, -2) + R2)
        F = C2 @ Gb
        sol1, fb1 = stacked_solve_psd(R_star, F, diag_mask=mask, assume_symmetric=True)
        FtRi = sol1.swapaxes(-1, -2)
        normal = FtRi @ F
        M2, fb2 = stacked_solve_psd(normal, FtRi)
        fallbacks = fb1.astype(int) + fb2.astype(int)
        innovation0 = wrap_residual_stacked(z2_minus_h2, self._ref_wrap)
        d_a = (M2 @ innovation0[..., None])[..., 0]
        P_a = M2 @ R_star @ M2.swapaxes(-1, -2)
        if project_actuator_cov:
            P_a = stacked_project_psd(P_a)

        # --- Step 2: compensated state prediction (lines 7-10) ---------
        x_pred = x_check[:, None] + (Gb @ d_a[..., None])[..., 0]
        GM2 = Gb @ M2
        K = I_n - GM2 @ C2
        A_bar = K @ A[:, None]
        GM2R2 = GM2 @ R2
        Q_bar = K @ Q @ K.swapaxes(-1, -2) + GM2R2 @ GM2.swapaxes(-1, -2)
        P_pred = stacked_project_psd(
            A_bar @ P_prev[:, None] @ A_bar.swapaxes(-1, -2) + Q_bar
        )
        S = -GM2R2

        # --- Step 3: state estimation (lines 11-14) --------------------
        # One full-suite re-linearization at every cell's x_pred, then
        # per-mode row gathers — same per-sensor maps the serial filter
        # evaluates, batched over the whole (B, M) lattice.
        flat_pred = x_pred.reshape(B * M, -1)
        h_pred = policy.h_batch(suite, None, flat_pred).reshape(B, M, -1)
        C_pred = policy.measurement_jacobian_batch(suite, None, flat_pred).reshape(
            B, M, h_pred.shape[-1], -1
        )
        diff_pred = readings[:, None, :] - h_pred
        mode_col = self._mode_col
        innovation = wrap_residual_stacked(
            np.where(mask, diff_pred[:, mode_col, self._ref_idx], 0.0),
            self._ref_wrap,
        )
        C2p = np.where(mask_col, C_pred[:, mode_col, self._ref_idx, :], 0.0)
        CS = C2p @ S
        PCt = P_pred @ C2p.swapaxes(-1, -2)
        if fast_gain:
            # Lattice path: reassociated products (C2p @ (P C2p') instead of
            # (C2p P) @ C2p', and the cross term's transpose instead of its
            # re-multiplication) — same values to round-off, four fewer
            # matmul launches per step. The engine path below keeps the
            # association the serial filter uses, bit-for-bit.
            R2_core = C2p @ PCt
        else:
            R2_core = C2p @ P_pred @ C2p.swapaxes(-1, -2)
        R2_tilde = symmetrize_stacked(R2_core + R2 + CS + CS.swapaxes(-1, -2))
        gain_rhs = PCt + S
        L, likelihood = self._gain_and_likelihood(
            R2_tilde, gain_rhs, innovation, fast_gain
        )
        x_new = model.normalize_state_batch(
            x_pred + (L @ innovation[..., None])[..., 0]
        )
        I_LC = I_n - L @ C2p
        cross = I_LC @ S @ L.swapaxes(-1, -2)
        if fast_gain:
            cross_t = cross.swapaxes(-1, -2)
        else:
            cross_t = L @ S.swapaxes(-1, -2) @ I_LC.swapaxes(-1, -2)
        P_new = stacked_project_psd(
            I_LC @ P_pred @ I_LC.swapaxes(-1, -2)
            + L @ R2 @ L.swapaxes(-1, -2)
            - cross
            - cross_t
        )

        return {
            "likelihood": likelihood,
            "state": x_new,
            "state_cov": P_new,
            "d_a": d_a,
            "P_a": P_a,
            "innovation": innovation,
            "R2_tilde": R2_tilde,
            "fallbacks": fallbacks,
        }

    def _gain_and_likelihood(
        self,
        R2_tilde: np.ndarray,
        gain_rhs: np.ndarray,
        innovation: np.ndarray,
        fast_gain: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Filter gain ``L`` and mode likelihood (Algorithm 2 lines 11, 20).

        Exact path (engine, ``fast_gain=False``): the spectral pseudo-inverse
        / pseudo-determinant / likelihood run unpadded per true reference
        dimension — eigendecompositions are the one step where identity
        padding would perturb (and miscount) the spectrum.

        Fast path (``fast_gain=True``): one whole-lattice Cholesky
        factorization certifies every cell, one LU solve computes gain and
        quadratic form together, and the pseudo-determinant comes from the
        factor diagonal. Padding is exact (block-diagonal); the chol-vs-eigh
        solver difference is the same round-off class the replay equivalence
        tests pin at 1e-8. If any cell is indefinite (LAPACK raises on the
        whole batch) or any certified pivot dips into the conditioning or
        truncation band, the entire step takes the fused spectral path —
        that path is valid for every cell, and rank-deficient lattices
        (standstill iterations) degrade the whole batch together, so
        per-cell mixing would only pay gather costs to save nothing.
        """
        if not fast_gain:
            return self._gain_spectral(R2_tilde, gain_rhs, innovation)

        try:
            lower = np.linalg.cholesky(R2_tilde)
        except np.linalg.LinAlgError:
            return self._gain_spectral_fast(R2_tilde, gain_rhs, innovation)
        mask = self._ref_mask
        diag = np.diagonal(lower, axis1=-2, axis2=-1)
        d_max = np.where(mask, diag, -np.inf).max(axis=-1)
        d_min = np.where(mask, diag, np.inf).min(axis=-1)
        safe = np.where(d_max > 0.0, d_max, 1.0)
        ok = (
            np.isfinite(d_max)
            & (d_max > 0.0)
            & ((d_min / safe) ** 2 > _CHOL_MARGIN * EIG_TOL)
            & (d_min**2 > self._R2_abs_tol)
        )
        if not ok.all():
            return self._gain_spectral_fast(R2_tilde, gain_rhs, innovation)
        # Gain and quadratic form share one solve: rhs = [gain_rhs^T | r].
        rhs = np.concatenate(
            [gain_rhs.swapaxes(-1, -2), innovation[..., None]], axis=-1
        )
        sol = np.linalg.solve(R2_tilde, rhs)
        L = sol[..., :-1].swapaxes(-1, -2)
        quad = (innovation * sol[..., -1]).sum(axis=-1)
        pdet = np.where(mask, diag, 1.0).prod(axis=-1) ** 2
        rank = self._ref_dims
        norm = (2.0 * np.pi) ** (rank / 2.0) * np.sqrt(
            np.maximum(pdet, np.finfo(float).tiny)
        )
        with np.errstate(over="ignore", under="ignore"):
            likelihood = np.exp(-0.5 * quad) / norm
        return L, likelihood

    def _gain_spectral(
        self, R2_tilde: np.ndarray, gain_rhs: np.ndarray, innovation: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact spectral gain/likelihood, batched per reference subgroup."""
        B, M = innovation.shape[:2]
        L = np.zeros_like(gain_rhs)
        likelihood = np.empty((B, M))
        for pos, m2 in self._ref_subgroups:
            R2t_pinv, R2t_pdet, R2t_rank = stacked_pinv_and_pdet(
                R2_tilde[:, pos, :m2, :m2],
                abs_tol=self._R2_abs_tol[pos],
                assume_symmetric=True,
            )
            L[:, pos, :, :m2] = gain_rhs[:, pos, :, :m2] @ R2t_pinv
            likelihood[:, pos] = stacked_gaussian_likelihood_pinv(
                innovation[:, pos, :m2], R2t_pinv, R2t_pdet, R2t_rank
            )
        return L, likelihood

    def _gain_spectral_fast(
        self, R2_tilde: np.ndarray, gain_rhs: np.ndarray, innovation: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Spectral gain/likelihood fused in the eigenbasis (lattice only).

        Same truncation semantics as :meth:`_gain_spectral` (the
        :func:`stacked_pinv_and_pdet` cutoff against each mode's noise
        floor), but the gain and the likelihood's quadratic form contract
        against the eigenvectors directly instead of materializing the
        pseudo-inverse — fewer kernel launches on the replay lattice's
        standstill steps. Agrees with the exact path to solver round-off.
        """
        B, M = innovation.shape[:2]
        L = np.zeros_like(gain_rhs)
        likelihood = np.empty((B, M))
        tiny = np.finfo(float).tiny
        for pos, m2 in self._ref_subgroups:
            if m2 == 0:
                likelihood[:, pos] = 1.0
                continue
            eigvals, eigvecs = np.linalg.eigh(R2_tilde[:, pos, :m2, :m2])
            abs_vals = np.abs(eigvals)
            scale = abs_vals.max(axis=-1)
            cutoff = np.maximum(EIG_TOL * scale, self._R2_abs_tol[pos])
            keep = (abs_vals > cutoff[..., None]) & (scale[..., None] > 0.0)
            inv_vals = np.where(keep, 1.0 / np.where(keep, eigvals, 1.0), 0.0)
            grV = gain_rhs[:, pos, :, :m2] @ eigvecs
            L[:, pos, :, :m2] = (grV * inv_vals[..., None, :]) @ eigvecs.swapaxes(
                -1, -2
            )
            w = (innovation[:, pos, None, :m2] @ eigvecs)[..., 0, :]
            quad = (inv_vals * w * w).sum(axis=-1)
            rank = keep.sum(axis=-1)
            pdet = np.where(rank > 0, np.where(keep, eigvals, 1.0).prod(axis=-1), 1.0)
            norm = (2.0 * np.pi) ** (rank / 2.0) * np.sqrt(np.maximum(pdet, tiny))
            with np.errstate(over="ignore", under="ignore"):
                lik = np.exp(-0.5 * quad) / norm
            likelihood[:, pos] = np.where(rank == 0, 1.0, lik)
        return L, likelihood

    # ------------------------------------------------------------------
    # Testing block (Algorithm 2 lines 15-16)
    # ------------------------------------------------------------------
    def _testing_all(
        self, x_new: np.ndarray, P_new: np.ndarray, readings: np.ndarray
    ) -> tuple[tuple[np.ndarray, ...], tuple[np.ndarray, ...]]:
        """Sensor-anomaly estimates for every ``(cell, mode)`` pair."""
        suite, policy = self._suite, self._policy
        B, M, n = x_new.shape
        flat_new = x_new.reshape(B * M, n)
        h_new = policy.h_batch(suite, None, flat_new).reshape(B, M, -1)
        C_new = policy.measurement_jacobian_batch(suite, None, flat_new).reshape(
            B, M, h_new.shape[-1], n
        )
        sensor_anom: list[np.ndarray] = []
        sensor_cov: list[np.ndarray] = []
        for g in self._groups:
            if not g.test_dim:
                sensor_anom.append(np.zeros((B, g.size, 0)))
                sensor_cov.append(np.zeros((B, g.size, 0, 0)))
                continue
            idx = g.mode_indices
            z1 = readings[:, g.test_idx]
            h1 = np.take_along_axis(h_new[:, idx], g.test_idx[None], axis=2)
            C1 = np.take_along_axis(
                C_new[:, idx], g.test_idx[None, :, :, None], axis=2
            )
            d_s = wrap_residual_stacked(z1 - h1, g.test_wrap)
            P_s = stacked_project_psd(
                C1 @ P_new[:, idx] @ C1.swapaxes(-1, -2) + g.R1
            )
            sensor_anom.append(d_s)
            sensor_cov.append(P_s)
        return tuple(sensor_anom), tuple(sensor_cov)

    def testing_selected(
        self,
        states: np.ndarray,
        covariances: np.ndarray,
        readings: np.ndarray,
        modes: np.ndarray,
    ) -> Iterator[tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Testing block for chosen ``(cell, mode)`` pairs only.

        ``states``/``covariances``/``readings`` are the selected-mode
        posterior per cell (``(C, n)``, ``(C, n, n)``, ``(C, z)``) and
        ``modes`` the selected bank index per cell. Yields
        ``(group_index, rows, jpos, d_s, P_s)`` per testing group with
        members among the selections — ``rows`` indexes the input cells,
        ``jpos`` each row's position inside the group.
        """
        suite, policy = self._suite, self._policy
        h_new = policy.h_batch(suite, None, states)
        C_new = policy.measurement_jacobian_batch(suite, None, states)
        group_of, pos_in_group = self._group_maps()
        sel_groups = group_of[modes]
        for gi, g in enumerate(self._groups):
            rows = np.flatnonzero(sel_groups == gi)
            if not rows.size:
                continue
            jpos = pos_in_group[modes[rows]]
            if not g.test_dim:
                yield gi, rows, jpos, np.zeros((rows.size, 0)), np.zeros(
                    (rows.size, 0, 0)
                )
                continue
            idx = g.test_idx[jpos]
            z1 = np.take_along_axis(readings[rows], idx, axis=1)
            h1 = np.take_along_axis(h_new[rows], idx, axis=1)
            C1 = np.take_along_axis(C_new[rows], idx[..., None], axis=1)
            d_s = wrap_residual_stacked(z1 - h1, g.test_wrap[jpos])
            P_s = stacked_project_psd(
                C1 @ covariances[rows] @ C1.swapaxes(-1, -2) + g.R1[jpos]
            )
            yield gi, rows, jpos, d_s, P_s

    def _group_maps(self) -> tuple[np.ndarray, np.ndarray]:
        maps = getattr(self, "_group_maps_cache", None)
        if maps is None:
            group_of = np.zeros(self.n_modes, dtype=int)
            pos_in_group = np.zeros(self.n_modes, dtype=int)
            for gi, g in enumerate(self._groups):
                group_of[g.mode_indices] = gi
                pos_in_group[g.mode_indices] = np.arange(g.size)
            maps = (group_of, pos_in_group)
            self._group_maps_cache = maps
        return maps

    # ------------------------------------------------------------------
    # Single-cell view (the engine's nominal iteration)
    # ------------------------------------------------------------------
    def results_for_cell(
        self, result: StackedBankResult, b: int = 0
    ) -> dict[str, NuiseResult]:
        """Materialize one batch cell's bank advance as per-mode results.

        The engine's nominal iteration consumes these exactly like the
        serial loop's outputs (selection, statistics, telemetry). Requires
        an advance that ran with ``testing=True``.
        """
        if result.sensor_anomaly is None:
            raise ConfigurationError(
                "this bank advance deferred the testing block; run with "
                "testing=True to materialize per-mode results"
            )
        group_of, pos_in_group = self._group_maps()
        out: dict[str, NuiseResult] = {}
        for mode_idx, name in enumerate(self._mode_names):
            plan = self._filters[mode_idx]._full_plan
            gi = int(group_of[mode_idx])
            j = int(pos_in_group[mode_idx])
            m2 = int(result.ref_dims[mode_idx])
            out[name] = NuiseResult(
                state=result.states[b, mode_idx],
                state_covariance=result.covariances[b, mode_idx],
                actuator_anomaly=result.actuator_anomaly[b, mode_idx],
                actuator_covariance=result.actuator_covariance[b, mode_idx],
                sensor_anomaly=result.sensor_anomaly[gi][b, j],
                sensor_covariance=result.sensor_covariance[gi][b, j],
                likelihood=float(result.likelihoods[b, mode_idx]),
                innovation=result.innovation[b, mode_idx, :m2],
                innovation_covariance=result.innovation_covariance[
                    b, mode_idx, :m2, :m2
                ],
                reference_used=plan.ref_names,
                testing_used=plan.test_names,
                solver_fallbacks=int(result.fallbacks[b, mode_idx]),
            )
        return out


# ----------------------------------------------------------------------
# Simultaneous mission replay: the (mission, mode) lattice
# ----------------------------------------------------------------------
def _window_met(
    values: np.ndarray, pushed: np.ndarray, window: int, criteria: int
) -> np.ndarray:
    """``criteria``-of-``window`` ring-buffer decisions, batched over steps.

    ``values`` and ``pushed`` are ``(rows, T)``: at step ``k`` each row
    pushes ``values[:, k]`` into its ring buffer iff ``pushed[:, k]`` (a
    skipped step holds the buffer unchanged). Returns the post-push buffer
    test — at least ``criteria`` True among the last ``window`` pushes — at
    every step: exactly the serial decision maker's deque state, computed
    with two cumulative sums instead of a step loop. Before ``window``
    pushes have occurred the count runs over every push so far, matching a
    zero-initialized ring.
    """
    n_rows, T = pushed.shape
    if T == 0 or n_rows == 0:
        return np.zeros((n_rows, T), dtype=bool)
    j = np.cumsum(pushed, axis=1)
    seq = np.zeros((n_rows, T + 1), dtype=np.int64)
    rows, cols = np.nonzero(pushed)
    seq[rows, j[rows, cols]] = values[rows, cols]
    counts = np.cumsum(seq, axis=1)
    head = np.take_along_axis(counts, j, axis=1)
    tail = np.take_along_axis(counts, np.maximum(j - window, 0), axis=1)
    return (head - tail) >= criteria


def replay_batch_stacked(detector, traces: Sequence[Any]):
    """Replay every trace simultaneously through one stacked lattice.

    The array-native fast path behind
    :func:`repro.core.batch.replay_batch(..., keep_reports=False)`: instead
    of running missions back-to-back, all ``N`` missions advance together —
    iteration ``k`` of every still-active mission shares a single
    vectorized linearization and one :meth:`StackedBank.run` (on the
    Cholesky ``fast_gain`` path) over the ``(mission, mode)`` lattice.
    Only what feeds back into the filter recursion stays inside the step
    loop: the bank advance and the consistency-window mode selection.
    Everything downstream of the recursion — the selected-mode testing
    block, every chi-square statistic (one fused padded batch over all
    iterations' cells), and the c-of-w decision windows (two cumulative
    sums per channel, :func:`_window_met`) — runs as vectorized
    post-replay passes over the stored ``(N, T)`` lattice outputs.
    Missions shorter than the longest drop out of the active set (their
    output rows keep the documented padding); degraded iterations
    (restricted or non-finite readings) run the serial per-mission filter
    path for exact parity with online detection.

    Returns a :class:`~repro.core.batch.BatchReplayResult` with
    ``reports=None``; per-iteration results agree with the serial replay to
    solver round-off (the equivalence tests pin 1e-8).
    """
    from .batch import BatchReplayResult, _controls_and_readings
    from .engine import _LOG_FLOOR

    if not traces:
        raise ConfigurationError("replay_batch needs at least one trace")
    engine = detector.engine
    bank = engine.stacked_bank
    if bank is None:
        raise ConfigurationError(
            "this detector's mode bank cannot be stacked (see StackedBank.usable)"
        )
    model, suite, policy = engine._model, engine._suite, engine._policy
    filters = [engine._filters[m.name] for m in engine._modes]
    mode_names = bank.mode_names
    M = len(mode_names)
    sensor_names = tuple(suite.names)
    p_sensors = len(sensor_names)
    n = model.state_dim
    l_dim = model.control_dim
    z_dim = suite.total_dim
    cfg = detector.decision_config

    pairs = [_controls_and_readings(t) for t in traces]
    N = len(pairs)
    lengths = np.array([len(c) for c, _, _ in pairs], dtype=int)
    T = int(lengths.max()) if N else 0

    controls_arr = np.zeros((N, T, l_dim))
    readings_arr = np.zeros((N, T, z_dim))
    delivered = np.ones((N, T, p_sensors), dtype=bool)
    for i, (controls, readings, availability) in enumerate(pairs):
        if len(controls) != len(readings):
            raise DimensionError(
                f"controls ({len(controls)}) and readings ({len(readings)}) "
                "must have equal length"
            )
        if availability is not None and len(availability) != len(controls):
            raise DimensionError(
                f"availability ({len(availability)}) must match controls "
                f"({len(controls)})"
            )
        if not len(controls):
            continue
        cu = np.asarray(list(controls), dtype=float)
        if cu.ndim != 2 or cu.shape[1] != l_dim:
            raise DimensionError(
                f"trace {i}: controls must have shape (steps, {l_dim})"
            )
        zs = np.asarray(list(readings), dtype=float)
        if zs.ndim != 2 or zs.shape[1] != z_dim:
            raise DimensionError(
                f"trace {i}: stacked readings must have shape (steps, {z_dim})"
            )
        if not np.all(np.isfinite(cu)):
            raise DimensionError(f"trace {i}: controls contain non-finite values")
        controls_arr[i, : len(controls)] = cu
        readings_arr[i, : len(readings)] = zs
        if availability is not None:
            for k, avail in enumerate(availability):
                if avail is None:
                    continue
                present = set(avail)
                unknown = present - set(sensor_names)
                if unknown:
                    raise ConfigurationError(
                        f"availability mask names unknown sensors: {sorted(unknown)}"
                    )
                delivered[i, k] = [name in present for name in sensor_names]

    # Non-finite readings exclude their sensor block and are neutralized,
    # exactly as RoboADS.step does online.
    finite = np.isfinite(readings_arr)
    for s, name in enumerate(sensor_names):
        sl = suite.slice_of(name)
        delivered[:, :, s] &= finite[:, :, sl].all(axis=2)
    readings_clean = np.where(finite, readings_arr, 0.0)

    # Per-mode testing membership (which sensors a mode's selected stats
    # cover) and chi-square threshold tables by dof — both loop-invariant.
    mode_in_stats = np.zeros((M, p_sensors), dtype=bool)
    for m, f in enumerate(filters):
        for name in f._full_plan.test_names:
            mode_in_stats[m, sensor_names.index(name)] = True
    thr_table_s = chi_square_thresholds(cfg.sensor_alpha, np.arange(z_dim + 1))
    thr_table_a = chi_square_thresholds(cfg.actuator_alpha, np.arange(l_dim + 1))

    # Lattice state: the shared estimate and the consistency ring
    # (zeros-initialized slots are exactly an unfilled deque's absence).
    # Mode probabilities (Algorithm 1 line 6) influence nothing the stacked
    # result reports — selection runs on the consistency window — so the
    # lattice skips the mu recursion the online engine maintains.
    x = np.tile(engine._x0, (N, 1))
    P = symmetrize_stacked(np.tile(engine._P0, (N, 1, 1)))
    W = engine._window
    ring = np.zeros((N, W, M))
    rows_all = np.arange(N)
    ws_, cs_ = cfg.sensor_window, cfg.sensor_criteria
    wa_, ca_ = cfg.actuator_window, cfg.actuator_criteria

    selected_out = np.full((N, T), -1, dtype=int)
    state_out = np.full((N, T, n), np.nan)
    actuator_out = np.full((N, T, l_dim), np.nan)

    # Per-step scratch consumed by the post-replay passes: posterior and
    # actuator covariances, the degraded-path statistics (computed in-loop
    # on the serial path, where block shapes are data-dependent), and the
    # degraded-iteration mask.
    P_hist = np.zeros((N, T, n, n))
    act_cov_hist = np.zeros((N, T, l_dim, l_dim))
    s_stat_arr = np.zeros((N, T))
    s_dof_arr = np.zeros((N, T), dtype=int)
    ps_stat_arr = np.zeros((N, T, p_sensors))
    ps_dof_arr = np.zeros((N, T, p_sensors), dtype=int)
    in_stats_arr = np.zeros((N, T, p_sensors), dtype=bool)
    deg_arr = np.zeros((N, T), dtype=bool)

    act_mask = np.arange(T)[None, :] < lengths[:, None]
    uniform = act_mask.all(axis=0) & delivered.all(axis=2).all(axis=0)

    for k in range(T):
        if uniform[k]:
            # Every mission active with full delivery: whole-lattice step
            # with no row bookkeeping (the overwhelmingly common case).
            bank_res = bank.run(
                x,
                P,
                controls_arr[:, k],
                readings_clean[:, k],
                testing=False,
                fast_gain=True,
                project_actuator_cov=False,
            )
            lik_a = bank_res.likelihoods
            with np.errstate(divide="ignore"):
                log_lik = np.log(np.where(lik_a > 0.0, lik_a, 1.0))
            ring[:, k % W, :] = np.where(
                lik_a > 0.0, np.maximum(log_lik, _LOG_FLOOR), _LOG_FLOOR
            )
            sel = ring.sum(axis=1).argmax(axis=1)
            x = bank_res.states[rows_all, sel]
            P = bank_res.covariances[rows_all, sel]
            selected_out[:, k] = sel
            state_out[:, k] = x
            P_hist[:, k] = P
            actuator_out[:, k] = bank_res.actuator_anomaly[rows_all, sel]
            act_cov_hist[:, k] = bank_res.actuator_covariance[rows_all, sel]
            continue

        active = k < lengths
        a = np.flatnonzero(active)
        if not a.size:
            break
        step_delivered = delivered[:, k]
        full_delivery = step_delivered.all(axis=1)
        nominal = active & full_delivery
        degraded_rows = active & ~full_delivery
        nom_idx = np.flatnonzero(nominal)
        deg_idx = np.flatnonzero(degraded_rows)
        deg_arr[deg_idx, k] = True

        bank_res = None
        if nom_idx.size:
            bank_res = bank.run(
                x[nom_idx],
                P[nom_idx],
                controls_arr[nom_idx, k],
                readings_clean[nom_idx, k],
                testing=False,
                fast_gain=True,
                project_actuator_cov=False,
            )

        if deg_idx.size:
            lik = np.zeros((N, M))
            updated = np.zeros((N, M), dtype=bool)
            states_all = np.zeros((N, M, n))
            covs_all = np.zeros((N, M, n, n))
            act_all = np.zeros((N, M, l_dim))
            act_cov_all = np.zeros((N, M, l_dim, l_dim))
            if bank_res is not None:
                lik[nom_idx] = bank_res.likelihoods
                updated[nom_idx] = True
                states_all[nom_idx] = bank_res.states
                covs_all[nom_idx] = bank_res.covariances
                act_all[nom_idx] = bank_res.actuator_anomaly
                act_cov_all[nom_idx] = bank_res.actuator_covariance
            deg_results: dict[int, list[NuiseResult]] = {}
            for i in deg_idx:
                avail_t = tuple(
                    name for name, d in zip(sensor_names, step_delivered[i]) if d
                )
                workspace = policy.workspace(
                    model, suite, x[i], controls_arr[i, k], covariance=P[i]
                )
                row = [
                    f.step(
                        workspace.control,
                        x[i],
                        P[i],
                        readings_clean[i, k],
                        workspace=workspace,
                        available=avail_t,
                    )
                    for f in filters
                ]
                deg_results[i] = row
                lik[i] = [r.likelihood for r in row]
                updated[i] = [r.measurement_updated for r in row]
                states_all[i] = np.stack([r.state for r in row])
                covs_all[i] = np.stack([r.state_covariance for r in row])
                act_all[i] = np.stack([r.actuator_anomaly for r in row])
                act_cov_all[i] = np.stack([r.actuator_covariance for r in row])
            lik_a = lik[a]
            updated_a = updated[a]
            states_a = states_all[a]
            covs_a = covs_all[a]
            act_a = act_all[a]
            act_cov_a = act_cov_all[a]
        else:
            # All-nominal iteration (the common case): the bank's stacked
            # outputs are already row-aligned with the active set.
            deg_results = {}
            lik_a = bank_res.likelihoods
            updated_a = None
            states_a = bank_res.states
            covs_a = bank_res.covariances
            act_a = bank_res.actuator_anomaly
            act_cov_a = bank_res.actuator_covariance

        # --- Consistency ring and selection ----------------------------
        with np.errstate(divide="ignore"):
            log_lik = np.log(np.where(lik_a > 0.0, lik_a, 1.0))
        contrib = np.where(lik_a > 0.0, np.maximum(log_lik, _LOG_FLOOR), _LOG_FLOOR)
        if updated_a is not None:
            contrib = np.where(updated_a, contrib, 0.0)
        ring[a, k % W, :] = contrib
        scores = ring[a].sum(axis=1)
        sel = scores.argmax(axis=1)
        rows = np.arange(a.size)
        x[a] = states_a[rows, sel]
        P[a] = covs_a[rows, sel]
        selected_out[a, k] = sel
        state_out[a, k] = x[a]
        P_hist[a, k] = P[a]
        actuator_out[a, k] = act_a[rows, sel]
        act_cov_hist[a, k] = act_cov_a[rows, sel]

        # Degraded rows' sensor statistics come from the serial results and
        # stay in-loop (their testing block shapes are data-dependent); the
        # post-replay pass covers every nominal iteration.
        for pos_in_a in np.flatnonzero(degraded_rows[a]):
            i = a[pos_in_a]
            result = deg_results[i][sel[pos_in_a]]
            stat, dof = anomaly_statistic(
                result.sensor_anomaly, result.sensor_covariance
            )
            s_stat_arr[i, k] = stat
            s_dof_arr[i, k] = dof
            mode_filter = filters[sel[pos_in_a]]
            for name, sl in mode_filter.testing_slices(result.testing_used).items():
                stat_t, dof_t = anomaly_statistic(
                    result.sensor_anomaly[sl], result.sensor_covariance[sl, sl]
                )
                s_idx = sensor_names.index(name)
                ps_stat_arr[i, k, s_idx] = stat_t
                ps_dof_arr[i, k, s_idx] = dof_t
                in_stats_arr[i, k, s_idx] = True

    # --- Post-replay statistics: fused chi-square batches ---------------
    # Every chi-square cell of the whole replay — each active iteration's
    # actuator vector plus each nominal iteration's selected-mode aggregate
    # and per-slot sensor stacks — fuses into one
    # :func:`anomaly_statistic_stacked` call per distinct cell width
    # (exact-size batches: a handful of widths cover every cell, and tight
    # blocks keep the batched factorizations off the padded worst case).
    # The testing block linearizes all nominal cells at once. The deferred
    # actuator-covariance projection lands here too: one stacked pass over
    # the lattice-path cells (degraded iterations stored serial,
    # already-projected covariances).
    a_stat_arr = np.zeros((N, T))
    a_dof_arr = np.zeros((N, T), dtype=int)
    ci, ck = np.nonzero(act_mask & ~deg_arr)
    if ci.size:
        act_cov_hist[ci, ck] = stacked_project_psd(act_cov_hist[ci, ck])
    ai, ak = np.nonzero(act_mask)
    seg_est = [actuator_out[ai, ak]]
    seg_cov = [act_cov_hist[ai, ak]]
    seg_sink: list[tuple[str, np.ndarray, np.ndarray, Any]] = [
        ("actuator", ai, ak, None)
    ]

    if ci.size:
        sel_c = selected_out[ci, ck]
        in_stats_arr[ci, ck] = mode_in_stats[sel_c]
        for gi, rel_rows, jpos, d_s, P_s in bank.testing_selected(
            state_out[ci, ck],
            P_hist[ci, ck],
            readings_clean[ci, ck],
            sel_c,
        ):
            g = bank.groups[gi]
            if not g.test_dim:
                continue
            gr, gk = ci[rel_rows], ck[rel_rows]
            seg_est.append(d_s)
            seg_cov.append(P_s)
            seg_sink.append(("sensor", gr, gk, None))
            for t, sl in enumerate(g.test_slices):
                seg_est.append(d_s[:, sl])
                seg_cov.append(P_s[:, sl, sl])
                seg_sink.append(("slot", gr, gk, g.slot_sensor[jpos, t]))

    by_dim: dict[int, list[int]] = {}
    for j, e in enumerate(seg_est):
        by_dim.setdefault(e.shape[1], []).append(j)
    for d, seg_ids in by_dim.items():
        est_d = np.concatenate([seg_est[j] for j in seg_ids], axis=0)
        cov_d = np.concatenate([seg_cov[j] for j in seg_ids], axis=0)
        stat_f, dof_f = anomaly_statistic_stacked(
            est_d, cov_d, np.full(est_d.shape[0], d, dtype=int)
        )
        off = 0
        for j in seg_ids:
            kind, rr, kk, s_idx = seg_sink[j]
            m = seg_est[j].shape[0]
            seg_s = stat_f[off : off + m]
            seg_d = dof_f[off : off + m]
            if kind == "actuator":
                a_stat_arr[rr, kk] = seg_s
                a_dof_arr[rr, kk] = seg_d
            elif kind == "sensor":
                s_stat_arr[rr, kk] = seg_s
                s_dof_arr[rr, kk] = seg_d
            else:
                ps_stat_arr[rr, kk, s_idx] = seg_s
                ps_dof_arr[rr, kk, s_idx] = seg_d
            off += m

    # --- Decision windows (Section IV-D, post-replay) -------------------
    # Joint-sensor and actuator channels: one ring-buffer pass each. A
    # degraded iteration whose statistic has no degrees of freedom holds
    # the window (no push), exactly like the serial decision maker.
    pos_s = (s_dof_arr > 0) & (s_stat_arr > thr_table_s[s_dof_arr])
    push_s = act_mask & ~(deg_arr & (s_dof_arr == 0))
    met_s = _window_met(pos_s, push_s, ws_, cs_)

    pos_a = (a_dof_arr > 0) & (a_stat_arr > thr_table_a[a_dof_arr])
    push_a = act_mask & ~(deg_arr & (a_dof_arr == 0))
    alarm_out = _window_met(pos_a, push_a, wa_, ca_) & act_mask

    # Per-sensor windows exist from a sensor's first appearance in the
    # selected mode's testing stats; once created, an iteration without the
    # sensor pushes a negative — unless the reading never arrived (degraded
    # hold). ``created_prev`` is "seen strictly before this iteration".
    seen = np.cumsum(in_stats_arr, axis=1) > 0
    created_prev = np.zeros_like(seen)
    created_prev[:, 1:] = seen[:, :-1]
    push_true = in_stats_arr & act_mask[:, :, None]
    hold = deg_arr[:, :, None] & ~delivered
    push_false = created_prev & ~in_stats_arr & ~hold & act_mask[:, :, None]
    pos_ps = (ps_dof_arr > 0) & (ps_stat_arr > thr_table_s[ps_dof_arr])
    met_ps = _window_met(
        (pos_ps & push_true).transpose(0, 2, 1).reshape(N * p_sensors, T),
        (push_true | push_false).transpose(0, 2, 1).reshape(N * p_sensors, T),
        ws_,
        cs_,
    ).reshape(N, p_sensors, T).transpose(0, 2, 1)
    flagged_out = met_s[:, :, None] & in_stats_arr & met_ps

    sensor_stat_out = np.where(act_mask, s_stat_arr, np.nan)
    actuator_stat_out = np.where(act_mask, a_stat_arr, np.nan)

    return BatchReplayResult(
        mode_names=mode_names,
        sensor_names=sensor_names,
        lengths=lengths,
        selected_mode=selected_out,
        state_estimate=state_out,
        actuator_estimate=actuator_out,
        sensor_statistic=sensor_stat_out,
        actuator_statistic=actuator_stat_out,
        flagged=flagged_out,
        actuator_alarm=alarm_out,
        reports=None,
    )
