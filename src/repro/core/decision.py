"""Decision maker: Chi-square tests behind sliding windows (Section IV-D).

The decision maker is deliberately decoupled from the estimation engine: it
consumes the raw :class:`~repro.core.report.IterationStatistics` and applies
only decision parameters (confidence level ``alpha``, window size ``w``,
criteria ``c``). This is what makes the Fig 7 parameter sweeps exact offline
replays.

Defaults follow the paper's tuned configuration (Section V-F): sensor tests
at ``alpha = 0.005`` with ``c/w = 2/2``; actuator tests at ``alpha = 0.05``
with ``c/w = 3/6``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..errors import ConfigurationError, SnapshotCompatibilityError
from ..obs.telemetry import NULL_TELEMETRY, DecisionEvent, Telemetry
from .chi2 import chi_square_threshold
from .report import IterationStatistics

__all__ = ["SlidingWindow", "DecisionConfig", "DecisionOutcome", "DecisionMaker"]


class SlidingWindow:
    """c-of-w window: met when >= *criteria* of the last *window* pushes are True."""

    def __init__(self, window: int, criteria: int) -> None:
        if window < 1:
            raise ConfigurationError("window size must be at least 1")
        if not 1 <= criteria <= window:
            raise ConfigurationError("criteria must be in [1, window]")
        self._window = int(window)
        self._criteria = int(criteria)
        self._buffer: deque[bool] = deque(maxlen=self._window)

    @property
    def window(self) -> int:
        """Window length *w* of the c-of-w confirmation rule."""
        return self._window

    @property
    def criteria(self) -> int:
        """Positive count *c* required inside the window to confirm."""
        return self._criteria

    def push(self, positive: bool) -> bool:
        """Record one test result; return whether the condition is met."""
        self._buffer.append(bool(positive))
        return sum(self._buffer) >= self._criteria

    @property
    def met(self) -> bool:
        """Window condition over the current buffer, without pushing.

        Used to *hold* a window across degraded iterations where the test
        could not run (sensor reading never delivered): the buffer keeps its
        history instead of absorbing a fabricated negative.
        """
        return sum(self._buffer) >= self._criteria

    @property
    def positives(self) -> int:
        """Number of positive results currently inside the window."""
        return sum(self._buffer)

    @property
    def filled(self) -> int:
        """Number of results currently buffered (< window during warm-up)."""
        return len(self._buffer)

    @property
    def occupancy(self) -> tuple[int, int, int, int]:
        """``(positives, filled, window, criteria)`` — the telemetry view.

        How close the c-of-w condition is to firing: met when
        ``positives >= criteria``.
        """
        return (self.positives, self.filled, self._window, self._criteria)

    def reset(self) -> None:
        """Clear the buffered results (fresh mission)."""
        self._buffer.clear()

    # ------------------------------------------------------------------
    # Checkpoint/restore hooks (repro.serve.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple[bool, ...]:
        """The buffered results, oldest first — everything :meth:`push` reads."""
        return tuple(self._buffer)

    def restore_state(self, values: tuple[bool, ...]) -> None:
        """Replace the buffer with *values* (a prior :meth:`snapshot_state`).

        Raises :class:`~repro.errors.SnapshotCompatibilityError` when the
        saved buffer could not have come from a window of this geometry.
        """
        if len(values) > self._window:
            raise SnapshotCompatibilityError(
                f"snapshot buffers {len(values)} results but this window holds "
                f"at most {self._window}"
            )
        self._buffer.clear()
        self._buffer.extend(bool(v) for v in values)


@dataclass(frozen=True)
class DecisionConfig:
    """Decision parameters (paper Section V-F notation: alpha, w, c)."""

    sensor_alpha: float = 0.005
    sensor_window: int = 2
    sensor_criteria: int = 2
    actuator_alpha: float = 0.05
    actuator_window: int = 6
    actuator_criteria: int = 3

    def __post_init__(self) -> None:
        for alpha in (self.sensor_alpha, self.actuator_alpha):
            if not 0.0 < alpha < 1.0:
                raise ConfigurationError("alpha must be in (0, 1)")
        if not 1 <= self.sensor_criteria <= self.sensor_window:
            raise ConfigurationError("sensor criteria must be in [1, window]")
        if not 1 <= self.actuator_criteria <= self.actuator_window:
            raise ConfigurationError("actuator criteria must be in [1, window]")


@dataclass(frozen=True)
class DecisionOutcome:
    """Confirmed alarms for one control iteration.

    Attributes
    ----------
    sensor_positive, actuator_positive:
        Instantaneous Chi-square results this iteration (pre-window).
    sensor_alarm:
        Aggregate sensor misbehavior confirmed (window condition met).
    flagged_sensors:
        The confirmed misbehaving sensing workflows — the detector's sensor
        condition output (empty set = condition S0).
    actuator_alarm:
        Actuator misbehavior confirmed.
    """

    sensor_positive: bool
    actuator_positive: bool
    sensor_alarm: bool
    flagged_sensors: frozenset[str]
    actuator_alarm: bool


class DecisionMaker:
    """Applies thresholds and sliding windows to raw iteration statistics.

    Per-sensor confirmation follows Algorithm 1 lines 12–18: when the
    aggregate sensor window condition is met, each testing sensor's own
    Chi-square stream (also windowed, for stability against single-iteration
    flickers) determines whether that sensor is confirmed misbehaving.
    Actuator confirmation checks only the aggregate statistic (line 20–25;
    the paper's technical report notes no per-actuator test is performed).
    """

    def __init__(
        self,
        config: DecisionConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self._config = config or DecisionConfig()
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        cfg = self._config
        self._sensor_window = SlidingWindow(cfg.sensor_window, cfg.sensor_criteria)
        self._actuator_window = SlidingWindow(cfg.actuator_window, cfg.actuator_criteria)
        self._per_sensor_windows: dict[str, SlidingWindow] = {}

    @property
    def config(self) -> DecisionConfig:
        """The decision parameters this maker applies."""
        return self._config

    @property
    def telemetry(self) -> Telemetry:
        """The attached telemetry sink (``NULL_TELEMETRY`` by default)."""
        return self._telemetry

    @telemetry.setter
    def telemetry(self, sink: Telemetry | None) -> None:
        self._telemetry = sink if sink is not None else NULL_TELEMETRY

    def reset(self) -> None:
        """Clear every sliding window for a fresh mission."""
        self._sensor_window.reset()
        self._actuator_window.reset()
        for window in self._per_sensor_windows.values():
            window.reset()

    # ------------------------------------------------------------------
    # Checkpoint/restore hooks (repro.serve.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Every c-of-w window buffer, keyed exactly as :meth:`restore_state` expects.

        Per-sensor windows keep their insertion order (the order the sensors
        were first seen in), so a restored maker iterates them identically.
        """
        return {
            "sensor_window": self._sensor_window.snapshot_state(),
            "actuator_window": self._actuator_window.snapshot_state(),
            "per_sensor": {
                name: window.snapshot_state()
                for name, window in self._per_sensor_windows.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        """Apply a prior :meth:`snapshot_state`, replacing all window buffers.

        All-or-nothing: incompatible buffers raise
        :class:`~repro.errors.SnapshotCompatibilityError` before any window
        is touched.
        """
        cfg = self._config
        for key, window in (
            ("sensor_window", cfg.sensor_window),
            ("actuator_window", cfg.actuator_window),
        ):
            if len(state[key]) > window:
                raise SnapshotCompatibilityError(
                    f"snapshot {key} buffers {len(state[key])} results but this "
                    f"config's window holds at most {window}"
                )
        for name, values in state["per_sensor"].items():
            if len(values) > cfg.sensor_window:
                raise SnapshotCompatibilityError(
                    f"snapshot per-sensor window {name!r} buffers {len(values)} "
                    f"results but this config's window holds at most {cfg.sensor_window}"
                )
        self._sensor_window.restore_state(state["sensor_window"])
        self._actuator_window.restore_state(state["actuator_window"])
        self._per_sensor_windows = {}
        for name, values in state["per_sensor"].items():
            self._sensor_window_for(name).restore_state(values)

    def _sensor_window_for(self, name: str) -> SlidingWindow:
        if name not in self._per_sensor_windows:
            cfg = self._config
            self._per_sensor_windows[name] = SlidingWindow(cfg.sensor_window, cfg.sensor_criteria)
        return self._per_sensor_windows[name]

    def step(self, stats: IterationStatistics) -> DecisionOutcome:
        """One decision iteration over the engine's raw statistics.

        Degraded iterations (``stats.degraded``) distinguish "test ran and
        was negative" from "test could not run": when a statistic carries no
        degrees of freedom because the measurements behind it were never
        delivered, the corresponding window is *held* — no push, so a
        dropout burst neither dilutes an in-progress confirmation nor
        manufactures silent negatives. On nominal iterations the behavior is
        unchanged (dof 0 pushes a negative, exactly as before).
        """
        cfg = self._config

        sensor_threshold: float | None = None
        sensor_positive = False
        if stats.sensor_dof > 0:
            sensor_threshold = chi_square_threshold(cfg.sensor_alpha, stats.sensor_dof)
            sensor_positive = stats.sensor_statistic > sensor_threshold
        if stats.degraded and stats.sensor_dof == 0:
            sensor_alarm = self._sensor_window.met
        else:
            sensor_alarm = self._sensor_window.push(sensor_positive)

        # Per-sensor streams advance every iteration so their windows carry
        # history; sensors absent from this iteration's testing set because
        # they serve as the selected mode's reference push a negative, while
        # sensors absent because their reading was never delivered hold.
        available = stats.available_sensors or ()
        per_sensor_met: dict[str, bool] = {}
        per_sensor_thresholds: dict[str, float | None] = {}
        for name, sensor_stat in stats.sensor_stats.items():
            positive = False
            threshold: float | None = None
            if sensor_stat.dof > 0:
                threshold = chi_square_threshold(cfg.sensor_alpha, sensor_stat.dof)
                positive = sensor_stat.statistic > threshold
            per_sensor_thresholds[name] = threshold
            per_sensor_met[name] = self._sensor_window_for(name).push(positive)
        for name in list(self._per_sensor_windows):
            if name not in stats.sensor_stats:
                if stats.degraded and name not in available:
                    continue  # reading never arrived: hold the window
                self._per_sensor_windows[name].push(False)

        flagged: frozenset[str] = frozenset()
        if sensor_alarm:
            flagged = frozenset(name for name, met in per_sensor_met.items() if met)

        actuator_threshold: float | None = None
        actuator_positive = False
        if stats.actuator_dof > 0:
            actuator_threshold = chi_square_threshold(cfg.actuator_alpha, stats.actuator_dof)
            actuator_positive = stats.actuator_statistic > actuator_threshold
        if stats.degraded and stats.actuator_dof == 0:
            actuator_alarm = self._actuator_window.met
        else:
            actuator_alarm = self._actuator_window.push(actuator_positive)

        outcome = DecisionOutcome(
            sensor_positive=sensor_positive,
            actuator_positive=actuator_positive,
            sensor_alarm=sensor_alarm and bool(flagged),
            flagged_sensors=flagged,
            actuator_alarm=actuator_alarm,
        )
        if self._telemetry.enabled:
            self._telemetry.emit(
                DecisionEvent(
                    iteration=stats.iteration,
                    sensor_statistic=float(stats.sensor_statistic),
                    sensor_threshold=sensor_threshold,
                    sensor_dof=stats.sensor_dof,
                    sensor_positive=sensor_positive,
                    sensor_alarm=outcome.sensor_alarm,
                    actuator_statistic=float(stats.actuator_statistic),
                    actuator_threshold=actuator_threshold,
                    actuator_dof=stats.actuator_dof,
                    actuator_positive=actuator_positive,
                    actuator_alarm=actuator_alarm,
                    flagged_sensors=tuple(sorted(flagged)),
                    sensor_window=self._sensor_window.occupancy,
                    actuator_window=self._actuator_window.occupancy,
                    per_sensor={
                        name: {
                            "statistic": float(stat.statistic),
                            "threshold": per_sensor_thresholds[name],
                            "dof": stat.dof,
                            "window": self._per_sensor_windows[name].occupancy,
                        }
                        for name, stat in stats.sensor_stats.items()
                    },
                )
            )
        return outcome
