"""Batched offline replay: many recorded missions through one detector.

Forensic sweeps and parameter studies replay whole fleets of recorded
``(u_{k-1}, z_k)`` logs — Monte-Carlo trials of the Table II scenarios, or a
vehicle fleet's day of bus traffic. Looping :meth:`RoboADS.replay` per trace
and then picking results out of per-iteration report objects leaves the
sweep code dominated by Python attribute chasing. :func:`replay_batch` runs
the traces back-to-back on a single detector (one filter bank, one set of
preallocated workspaces) and returns the quantities every sweep wants as
stacked, padded NumPy arrays, so downstream reductions (confusion counts,
delay scans, threshold sweeps) are vectorized array passes.

The replay itself is exactly online detection — the detector is
deterministic given its inputs, and it is reset between traces — so the
stacked outputs match what :meth:`RoboADS.step` produced (or would have
produced) during the original missions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..errors import ConfigurationError, DimensionError
from .detector import DetectionReport, RoboADS
from .stacked import replay_batch_stacked

__all__ = ["BatchReplayResult", "replay_batch"]


@dataclass(frozen=True)
class BatchReplayResult:
    """Stacked outputs of replaying ``N`` traces through one detector.

    Traces may have different lengths; all per-iteration arrays are padded to
    the longest trace (``max_length``). Integer arrays pad with ``-1``, float
    arrays with ``NaN``, boolean arrays with ``False``; ``lengths`` gives each
    trace's true number of iterations.
    """

    #: Mode names in the detector's bank order; ``selected_mode`` indexes this.
    mode_names: tuple[str, ...]
    #: Suite sensor names; the last axis of ``flagged`` follows this order.
    sensor_names: tuple[str, ...]
    #: ``(N,)`` true length (iterations) of each trace.
    lengths: np.ndarray
    #: ``(N, T)`` selected mode index per iteration (``-1`` = padding).
    selected_mode: np.ndarray
    #: ``(N, T, n)`` selected-mode state estimate (NaN padded).
    state_estimate: np.ndarray
    #: ``(N, T, l)`` actuator anomaly estimate ``d_hat^a`` (NaN padded).
    actuator_estimate: np.ndarray
    #: ``(N, T)`` joint sensor chi-square statistic (NaN padded).
    sensor_statistic: np.ndarray
    #: ``(N, T)`` actuator chi-square statistic (NaN padded).
    actuator_statistic: np.ndarray
    #: ``(N, T, p)`` confirmed per-sensor alarms, suite order.
    flagged: np.ndarray
    #: ``(N, T)`` confirmed actuator alarms.
    actuator_alarm: np.ndarray
    #: Per-trace report lists (``None`` when replayed with ``keep_reports=False``).
    reports: tuple[tuple[DetectionReport, ...], ...] | None

    @property
    def n_traces(self) -> int:
        return int(self.lengths.shape[0])

    @property
    def max_length(self) -> int:
        return int(self.selected_mode.shape[1])

    def mode_name_at(self, trace: int, step: int) -> str | None:
        """Selected mode name at (*trace*, *step*), None in the padding."""
        idx = int(self.selected_mode[trace, step])
        return None if idx < 0 else self.mode_names[idx]

    def flagged_sensors_at(self, trace: int, step: int) -> frozenset[str]:
        """Confirmed misbehaving sensors at (*trace*, *step*)."""
        mask = self.flagged[trace, step]
        return frozenset(name for name, hit in zip(self.sensor_names, mask) if hit)

    def trace_reports(self, trace: int) -> tuple[DetectionReport, ...]:
        """The retained report list of one trace."""
        if self.reports is None:
            raise ConfigurationError(
                "reports were not retained; replay with keep_reports=True"
            )
        return self.reports[trace]


def _controls_and_readings(
    trace: Any,
) -> tuple[Sequence[np.ndarray], Sequence[np.ndarray], Sequence[Any] | None]:
    """Accept a SimulationTrace-like object or a raw (controls, readings) pair.

    Traces recorded under fault injection also carry per-iteration delivery
    masks (``availability``); those replay through the detector's degraded
    path so offline results match the online run.
    """
    if hasattr(trace, "planned_controls") and hasattr(trace, "readings"):
        availability = getattr(trace, "availability", None)
        if availability is not None and all(a is None for a in availability):
            availability = None
        return trace.planned_controls, trace.readings, availability
    try:
        controls, readings = trace
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            "each trace must be a SimulationTrace or a (controls, readings) pair"
        ) from exc
    return controls, readings, None


def replay_batch(
    detector: RoboADS,
    traces: Sequence[Any],
    keep_reports: bool = True,
    stacked: bool | None = None,
) -> BatchReplayResult:
    """Replay every trace through *detector* and stack the outputs.

    Parameters
    ----------
    detector:
        The detector to replay with; it is reset before each trace, so one
        instance (one filter bank) serves the whole batch.
    traces:
        :class:`repro.sim.trace.SimulationTrace` objects (their recorded
        planned controls and stacked readings are used) or raw
        ``(controls, readings)`` pairs.
    keep_reports:
        Also retain the full per-iteration :class:`DetectionReport` lists
        (``result.reports``). Disable for large sweeps that only need the
        stacked arrays.
    stacked:
        Replay all missions simultaneously through the stacked
        ``(mission, mode)`` lattice
        (:func:`repro.core.stacked.replay_batch_stacked`) instead of
        back-to-back. Default (``None``): engage automatically whenever the
        lattice can serve the request — ``keep_reports=False``, telemetry
        disabled, and the detector's bank supports the stacked layout.
        ``True`` forces it (raising if report objects or telemetry events
        were requested); ``False`` pins the serial path. Lattice results
        agree with the serial path to solver round-off, not bit-for-bit.
    """
    if not traces:
        raise ConfigurationError("replay_batch needs at least one trace")
    telemetry_on = detector.telemetry.enabled
    bank_ready = detector.engine.stacked_bank is not None
    if stacked:
        if keep_reports:
            raise ConfigurationError(
                "stacked replay does not retain report objects; "
                "pass keep_reports=False (or stacked=False)"
            )
        if telemetry_on:
            raise ConfigurationError(
                "stacked replay emits no telemetry events; detach the sink "
                "(or pass stacked=False)"
            )
        if not bank_ready:
            raise ConfigurationError(
                "this detector's mode bank cannot be stacked; pass stacked=False"
            )
    use_lattice = (
        stacked
        if stacked is not None
        else (not keep_reports and not telemetry_on and bank_ready)
    )
    if use_lattice:
        return replay_batch_stacked(detector, traces)
    pairs = [_controls_and_readings(t) for t in traces]
    for controls, readings, _ in pairs:
        if len(controls) != len(readings):
            raise DimensionError(
                f"controls ({len(controls)}) and readings ({len(readings)}) "
                "must have equal length"
            )

    mode_names = tuple(m.name for m in detector.engine.modes)
    mode_index = {name: i for i, name in enumerate(mode_names)}
    sensor_names = tuple(detector.suite.names)
    n_states = detector.model.state_dim
    n_controls = detector.model.control_dim

    all_reports: list[list[DetectionReport]] = [
        detector.replay(controls, readings, reset=True, availability=availability)
        for controls, readings, availability in pairs
    ]

    lengths = np.array([len(reports) for reports in all_reports], dtype=int)
    n_traces = len(all_reports)
    t_max = int(lengths.max()) if n_traces else 0

    selected = np.full((n_traces, t_max), -1, dtype=int)
    state = np.full((n_traces, t_max, n_states), np.nan)
    actuator = np.full((n_traces, t_max, n_controls), np.nan)
    sensor_stat = np.full((n_traces, t_max), np.nan)
    actuator_stat = np.full((n_traces, t_max), np.nan)
    flagged = np.zeros((n_traces, t_max, len(sensor_names)), dtype=bool)
    alarm = np.zeros((n_traces, t_max), dtype=bool)

    for i, reports in enumerate(all_reports):
        for k, report in enumerate(reports):
            stats = report.statistics
            selected[i, k] = mode_index[stats.selected_mode]
            state[i, k] = stats.state_estimate
            actuator[i, k] = stats.actuator_estimate
            sensor_stat[i, k] = stats.sensor_statistic
            actuator_stat[i, k] = stats.actuator_statistic
            for name in report.flagged_sensors:
                flagged[i, k, sensor_names.index(name)] = True
            alarm[i, k] = report.actuator_alarm

    return BatchReplayResult(
        mode_names=mode_names,
        sensor_names=sensor_names,
        lengths=lengths,
        selected_mode=selected,
        state_estimate=state,
        actuator_estimate=actuator,
        sensor_statistic=sensor_stat,
        actuator_statistic=actuator_stat,
        flagged=flagged,
        actuator_alarm=alarm,
        reports=tuple(tuple(r) for r in all_reports) if keep_reports else None,
    )
