"""Sensor-condition modes (paper Section IV-B and Table III).

A *mode* is one hypothesis about the sensor condition: a partition of the
suite into *reference* sensors (assumed clean, used for estimation) and
*testing* sensors (potentially corrupted, cross-validated against the
estimate). The engine runs one NUISE instance per mode.

Mode-set strategies (Section VI, "Mode set selection"):

* :func:`single_reference_modes` — the paper's choice: one mode per sensor
  with that sensor as the sole reference, so the mode count grows linearly
  with the sensor count. The per-testing-sensor Chi-square tests inside the
  selected mode still identify every subset of corrupted testing sensors, so
  all ``2^(p-1)`` conditions of Table III remain distinguishable.
* :func:`complete_modes` — all ``2^p - 1`` nonempty reference subsets
  (excluding only the all-corrupted condition), for designers who trade
  computation for redundant fusion; used by the ablation experiment.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError
from ..sensors.suite import SensorSuite

__all__ = ["Mode", "single_reference_modes", "complete_modes"]


@dataclass(frozen=True)
class Mode:
    """One sensor-condition hypothesis.

    Attributes
    ----------
    name:
        Display name (e.g. ``"ref:ips"``).
    reference:
        Names of sensors hypothesized clean (estimation inputs, ``z_2``).
    testing:
        Names of sensors hypothesized potentially corrupted (``z_1``).
    """

    name: str
    reference: tuple[str, ...]
    testing: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.reference:
            raise ConfigurationError("a mode needs at least one reference sensor")
        overlap = set(self.reference) & set(self.testing)
        if overlap:
            raise ConfigurationError(f"sensors cannot be both reference and testing: {sorted(overlap)}")

    @classmethod
    def for_suite(cls, suite: SensorSuite, reference: Sequence[str], name: str | None = None) -> "Mode":
        """Build a mode over *suite* with the given reference set.

        All remaining suite sensors become testing sensors; suite ordering is
        preserved for deterministic stacking.
        """
        ref_set = set(reference)
        unknown = ref_set - set(suite.names)
        if unknown:
            raise ConfigurationError(f"unknown reference sensors: {sorted(unknown)}")
        ref = tuple(s for s in suite.names if s in ref_set)
        test = tuple(s for s in suite.names if s not in ref_set)
        return cls(name=name or "ref:" + "+".join(ref), reference=ref, testing=test)


def single_reference_modes(suite: SensorSuite) -> list[Mode]:
    """One mode per sensor, with that sensor as the sole reference."""
    return [Mode.for_suite(suite, (name,)) for name in suite.names]


def complete_modes(suite: SensorSuite, max_corrupted: int | None = None) -> list[Mode]:
    """All modes with a nonempty reference set.

    ``max_corrupted`` optionally caps the testing-set size (hypotheses with
    more simultaneously-corrupted sensors than the cap are dropped).
    """
    names = list(suite.names)
    modes: list[Mode] = []
    for r in range(1, len(names) + 1):
        for ref in itertools.combinations(names, r):
            n_testing = len(names) - len(ref)
            if max_corrupted is not None and n_testing > max_corrupted:
                continue
            modes.append(Mode.for_suite(suite, ref))
    return modes
