"""Chi-square hypothesis testing helpers (paper Section IV-D).

Anomaly-vector estimates are normalized by their error covariances; under
the no-misbehavior hypothesis the squared Mahalanobis norm is Chi-square
distributed with the vector's (effective) dimension as degrees of freedom.
Thresholds are cached since the decision maker queries the same
``(alpha, dof)`` pairs every iteration.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy import stats

from ..errors import ConfigurationError
from ..linalg import (
    EIG_TOL,
    _CHOL_MARGIN,
    chol_psd,
    chol_solve,
    pinv_and_pdet,
    stacked_chol_mask,
    symmetrize_stacked,
)

__all__ = [
    "chi_square_threshold",
    "chi_square_thresholds",
    "anomaly_statistic",
    "anomaly_statistic_batch",
    "anomaly_statistic_cells",
    "anomaly_statistic_stacked",
]


@lru_cache(maxsize=512)
def chi_square_threshold(alpha: float, dof: int) -> float:
    """Critical value at confidence level *alpha* with *dof* degrees of freedom.

    ``alpha`` is the tail probability: the test fires when the statistic
    exceeds the ``1 - alpha`` quantile.
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError("alpha must be in (0, 1)")
    if dof < 1:
        raise ConfigurationError("degrees of freedom must be at least 1")
    return float(stats.chi2.ppf(1.0 - alpha, dof))


def anomaly_statistic(estimate: np.ndarray, covariance: np.ndarray) -> tuple[float, int]:
    """Normalized test statistic and effective degrees of freedom.

    Uses the pseudo-inverse so singular covariance directions (components
    the mode cannot estimate) contribute neither statistic nor degrees of
    freedom.
    """
    estimate = np.asarray(estimate, dtype=float)
    if estimate.size == 0:
        return 0.0, 0
    # Well-conditioned PD covariance (the common case every iteration): full
    # rank by definition, quadratic form via the Cholesky factor. Singular or
    # near-truncation covariances keep the eigendecomposition semantics.
    factor = chol_psd(covariance)
    if factor is not None:
        stat = float(estimate @ chol_solve(factor, estimate))
        return stat, estimate.shape[0]
    pinv, _, rank = pinv_and_pdet(covariance)
    stat = float(estimate @ pinv @ estimate)
    return stat, max(rank, 0)


def chi_square_thresholds(alpha: float, dofs: np.ndarray) -> np.ndarray:
    """Vectorized :func:`chi_square_threshold` lookup over a dof array.

    Entries with ``dof < 1`` get ``+inf`` (the corresponding test can never
    fire, matching the decision maker's dof-0 short-circuit). Distinct dof
    values in a replay lattice number at most the stacked measurement
    dimension, so the per-value scalar lookups hit the lru cache.
    """
    dofs = np.asarray(dofs)
    out = np.full(dofs.shape, np.inf)
    for dof in np.unique(dofs):
        if dof >= 1:
            out[dofs == dof] = chi_square_threshold(alpha, int(dof))
    return out


def anomaly_statistic_batch(
    estimates: np.ndarray, covariances: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`anomaly_statistic` over a batch: ``(C, d), (C, d, d) -> (C,), (C,)``.

    Well-conditioned PD cells take one batched solve; singular cells keep the
    per-cell pseudo-inverse semantics (rank-limited degrees of freedom).
    """
    estimates = np.asarray(estimates, dtype=float)
    count, dim = estimates.shape
    stats = np.zeros(count)
    dofs = np.zeros(count, dtype=int)
    if dim == 0 or count == 0:
        return stats, dofs
    sym = symmetrize_stacked(covariances)
    _, ok = stacked_chol_mask(sym)
    if ok.any():
        sol = np.linalg.solve(sym[ok], estimates[ok][..., None])[..., 0]
        stats[ok] = (estimates[ok] * sol).sum(axis=-1)
        dofs[ok] = dim
    for i in np.nonzero(~ok)[0]:
        stats[i], dofs[i] = anomaly_statistic(estimates[i], sym[i])
    return stats, dofs


def anomaly_statistic_cells(
    estimates: np.ndarray, covariances: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Bit-identical :func:`anomaly_statistic` over homogeneous cells.

    ``estimates`` is ``(C, d)`` and ``covariances`` ``(C, d, d)``; returns
    ``(statistics, dofs)`` of shape ``(C,)``. Unlike
    :func:`anomaly_statistic_batch` — whose batched quadratic form
    ``(e * solve(S, e)).sum()`` re-associates the float reduction — every
    cell here reproduces the serial helper's arithmetic exactly: one
    batched Cholesky amortizes the factorization overhead, the
    :func:`~repro.linalg.chol_psd` conditioning certificate is evaluated
    per cell on the batched factor, and accepted cells run the identical
    ``estimate @ chol_solve(factor, estimate)`` (LAPACK ``dpotrs``)
    contraction. A mixed batch (the batched Cholesky raises) or a rejected
    cell falls back to the serial helper wholesale, so the factor fed to
    the solve always comes from the same code path the serial detector
    would have used. This is what lets the fused streaming engine
    (:mod:`repro.serve.fused`) keep snapshots byte-equal to serial
    sessions.
    """
    estimates = np.asarray(estimates, dtype=float)
    count, dim = estimates.shape
    stats_out = np.zeros(count)
    dofs = np.zeros(count, dtype=int)
    if count == 0 or dim == 0:
        return stats_out, dofs
    sym = symmetrize_stacked(covariances)
    try:
        lower = np.linalg.cholesky(sym)
    except np.linalg.LinAlgError:
        lower = None
    if lower is None:
        ok = np.zeros(count, dtype=bool)
    else:
        diag = np.diagonal(lower, axis1=-2, axis2=-1)
        d_max = diag.max(axis=-1)
        d_min = diag.min(axis=-1)
        safe = np.where(d_max > 0.0, d_max, 1.0)
        ok = (
            np.isfinite(d_max)
            & (d_max > 0.0)
            & ((d_min / safe) ** 2 > _CHOL_MARGIN * EIG_TOL)
        )
    for i in range(count):
        if ok[i]:
            stats_out[i] = float(
                estimates[i] @ chol_solve((sym[i], lower[i]), estimates[i])
            )
            dofs[i] = dim
        else:
            stats_out[i], dofs[i] = anomaly_statistic(estimates[i], sym[i])
    return stats_out, dofs


def anomaly_statistic_stacked(
    estimates: np.ndarray, covariances: np.ndarray, dims: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`anomaly_statistic` over a padded heterogeneous batch.

    ``estimates`` is ``(C, d_max)`` with each row zero-padded past its true
    dimension ``dims[i]``; ``covariances`` is ``(C, d_max, d_max)`` with each
    cell's real block in the leading principal corner and exact identity
    padding outside it. One batched certificate + solve covers every
    well-conditioned cell regardless of its true dimension: identity padding
    is inert under Cholesky/LU in the real block, the padded quadratic-form
    terms are exactly ``0.0``, and the conditioning certificate is masked to
    the real diagonal entries so the padding cannot tilt the fallback
    decision. Cells that fail the certificate (and ``dims == 0`` cells)
    recover the serial per-cell semantics on their unpadded slices.

    Expects exactly symmetric covariances (e.g. the output of a PSD
    projection); they are passed to the certificate unsymmetrized.
    """
    estimates = np.asarray(estimates, dtype=float)
    count, d_max = estimates.shape
    stats = np.zeros(count)
    dofs = np.zeros(count, dtype=int)
    if d_max == 0 or count == 0:
        return stats, dofs
    dims = np.asarray(dims)
    mask = np.arange(d_max) < dims[:, None]
    _, ok = stacked_chol_mask(covariances, diag_mask=mask, assume_symmetric=True)
    ok &= dims > 0
    if ok.any():
        sol = np.linalg.solve(covariances[ok], estimates[ok][..., None])[..., 0]
        stats[ok] = (estimates[ok] * sol).sum(axis=-1)
        dofs[ok] = dims[ok]
    for i in np.nonzero(~ok & (dims > 0))[0]:
        d = int(dims[i])
        stats[i], dofs[i] = anomaly_statistic(
            estimates[i, :d], covariances[i, :d, :d]
        )
    return stats, dofs
