"""Chi-square hypothesis testing helpers (paper Section IV-D).

Anomaly-vector estimates are normalized by their error covariances; under
the no-misbehavior hypothesis the squared Mahalanobis norm is Chi-square
distributed with the vector's (effective) dimension as degrees of freedom.
Thresholds are cached since the decision maker queries the same
``(alpha, dof)`` pairs every iteration.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy import stats

from ..errors import ConfigurationError
from ..linalg import chol_psd, chol_solve, pinv_and_pdet

__all__ = ["chi_square_threshold", "anomaly_statistic"]


@lru_cache(maxsize=512)
def chi_square_threshold(alpha: float, dof: int) -> float:
    """Critical value at confidence level *alpha* with *dof* degrees of freedom.

    ``alpha`` is the tail probability: the test fires when the statistic
    exceeds the ``1 - alpha`` quantile.
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError("alpha must be in (0, 1)")
    if dof < 1:
        raise ConfigurationError("degrees of freedom must be at least 1")
    return float(stats.chi2.ppf(1.0 - alpha, dof))


def anomaly_statistic(estimate: np.ndarray, covariance: np.ndarray) -> tuple[float, int]:
    """Normalized test statistic and effective degrees of freedom.

    Uses the pseudo-inverse so singular covariance directions (components
    the mode cannot estimate) contribute neither statistic nor degrees of
    freedom.
    """
    estimate = np.asarray(estimate, dtype=float)
    if estimate.size == 0:
        return 0.0, 0
    # Well-conditioned PD covariance (the common case every iteration): full
    # rank by definition, quadratic form via the Cholesky factor. Singular or
    # near-truncation covariances keep the eigendecomposition semantics.
    factor = chol_psd(covariance)
    if factor is not None:
        stat = float(estimate @ chol_solve(factor, estimate))
        return stat, estimate.shape[0]
    pinv, _, rank = pinv_and_pdet(covariance)
    stat = float(estimate @ pinv @ estimate)
    return stat, max(rank, 0)
