"""NUISE: nonlinear unknown input and state estimation (paper Algorithm 2).

One NUISE instance serves one mode. Per control iteration it consumes the
planned command ``u_{k-1}``, the shared previous estimate
``(x_hat_{k-1|k-1}, P^x_{k-1})`` and the stacked reading ``z_k`` split into
testing (``z_1``) and reference (``z_2``) blocks, and produces:

1. **Actuator anomaly estimate** ``d_hat^a_{k-1}`` — weighted least squares
   on the pre-compensation innovation (Algorithm 2 lines 2–6). Requires
   ``C_2 G`` full column rank; rank-deficient directions (e.g. steering at
   standstill) fall back to the minimum-norm estimate through the
   pseudo-inverse.
2. **Compensated state prediction** ``x_hat_{k|k-1} = f(x, u + d_hat^a)``
   with the inflated covariance of lines 7–10.
3. **State estimate** ``x_hat_{k|k}`` via the minimum-variance gain that
   accounts for the correlation between the compensated prediction error and
   the measurement noise (lines 11–14).
4. **Sensor anomaly estimate** ``d_hat^s_k = z_1 - h_1(x_hat_{k|k})`` with
   covariance ``C_1 P^x_k C_1^T + R_1`` (lines 15–16).
5. **Mode likelihood** ``N_k`` — Gaussian density of the post-compensation
   innovation under its (possibly singular) covariance, using the
   pseudo-inverse and pseudo-determinant (lines 17–20).

Sign convention note
--------------------
The printed Algorithm 2 carries ``+C2 G M2 R2 + R2 M2^T G^T C2^T`` cross
terms in lines 11–14 but ``-`` cross terms in line 18. Deriving the filter
from scratch: the compensated prediction error is

.. math::
    e_{k|k-1} = \\bar A e_{k-1} + (I - G M_2 C_2)\\zeta - G M_2 \\xi_2,

so its cross-covariance with the measurement noise is
``S = E[e_{k|k-1} xi_2^T] = -G M_2 R_2``, and the innovation covariance is
``C_2 P C_2^T + R_2 + C_2 S + S^T C_2^T`` — i.e. with *minus* signs, exactly
line 18. We therefore use ``S = -G M_2 R_2`` consistently in the gain and
covariance update; the ``+`` signs in the printed lines 11–14 are
typographical. The self-consistency is what makes ``N_k``'s covariance the
true innovation covariance (verified by the filter-consistency tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..dynamics.base import RobotModel
from ..dynamics.noise import validate_covariance
from ..errors import ConfigurationError, ObservabilityError
from ..linalg import (
    EIG_TOL,
    chol_psd,
    chol_solve,
    gaussian_likelihood_pinv,
    pinv_and_pdet,
    project_psd,
    pseudo_inverse,
    symmetrize,
)
from ..sensors.suite import SensorSuite
from .linearization import EveryStepLinearization, IterationWorkspace, LinearizationPolicy
from .modes import Mode

__all__ = ["NuiseFilter", "NuiseResult"]

#: Condition threshold above which ``(C2 G)`` is considered column-rank
#: deficient at construction-time observability checking.
_RANK_TOL = 1e-8


def _wrap_inplace(residual: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Wrap the angular components (at *idx*) of a freshly-built residual.

    Numerically identical to :func:`repro.linalg.wrap_residual` but skips its
    per-call mask coercion/validation; the filter precomputes the integer
    index set once and the residual is always a fresh array safe to mutate.
    """
    if idx.size:
        wrapped = np.mod(residual[idx] + np.pi, 2.0 * np.pi) - np.pi
        wrapped[wrapped == -np.pi] = np.pi
        residual[idx] = wrapped
    return residual


@dataclass(frozen=True)
class NuiseResult:
    """Outputs of one NUISE iteration (Algorithm 2's output line).

    ``reference_used``/``testing_used`` name the sensors that actually fed
    this iteration — the mode's full blocks in nominal operation, a subset on
    degraded iterations (sensor dropout restricts the stacks to what was
    delivered). ``measurement_updated`` is False when the entire reference
    block was unavailable: the filter then propagated the dynamics open-loop
    and the likelihood carries no evidence (the engine holds the mode's
    probability instead of updating it).
    """

    state: np.ndarray
    state_covariance: np.ndarray
    actuator_anomaly: np.ndarray
    actuator_covariance: np.ndarray
    sensor_anomaly: np.ndarray
    sensor_covariance: np.ndarray
    likelihood: float
    innovation: np.ndarray
    innovation_covariance: np.ndarray
    reference_used: tuple[str, ...] = ()
    testing_used: tuple[str, ...] = ()
    measurement_updated: bool = True
    #: How many of this iteration's unknown-input solves (the ``R*`` solve
    #: and the normal-equations solve, so 0-2) left the Cholesky fast path
    #: for the pseudo-inverse fallback — e.g. the rank-deficient ``C2 G`` of
    #: a steering mode at standstill.
    solver_fallbacks: int = 0


@dataclass(frozen=True)
class _BlockPlan:
    """Precomputed reference/testing block layout for one availability set.

    The filter's constructor builds the full-availability plan once; degraded
    iterations (missing sensors) get restricted plans built on demand and
    memoized per availability subset, so repeated dropout patterns pay the
    restriction cost once.
    """

    ref_names: tuple[str, ...]
    test_names: tuple[str, ...]
    ref_idx: np.ndarray
    test_idx: np.ndarray
    R2: np.ndarray
    R1: np.ndarray
    ref_wrap: np.ndarray
    test_wrap: np.ndarray
    R2_abs_tol: float
    testing_slices: dict[str, slice]


class NuiseFilter:
    """One mode's nonlinear unknown-input and state estimator.

    Parameters
    ----------
    model:
        Robot kinematic model (provides ``f``, ``A``, ``G``).
    suite:
        Full sensor suite; the mode picks reference/testing blocks from it.
    mode:
        The sensor-condition hypothesis this instance estimates under.
    process_noise:
        Process-noise covariance ``Q``.
    policy:
        Linearization policy; every-step (default) reproduces RoboADS, a
        fixed-point policy reproduces the Section V-G baseline.
    check_observability:
        Verify at construction that the reference block can support
        unknown-input estimation (``C2 G`` full column rank at a nominal
        operating point); raise :class:`ObservabilityError` otherwise.
    nominal_state, nominal_control:
        Operating point for the construction-time observability check.
    """

    def __init__(
        self,
        model: RobotModel,
        suite: SensorSuite,
        mode: Mode,
        process_noise,
        policy: LinearizationPolicy | None = None,
        check_observability: bool = True,
        nominal_state: np.ndarray | None = None,
        nominal_control: np.ndarray | None = None,
    ) -> None:
        if suite.state_dim != model.state_dim:
            raise ConfigurationError("sensor suite state_dim must match the model")
        unknown = (set(mode.reference) | set(mode.testing)) - set(suite.names)
        if unknown:
            raise ConfigurationError(f"mode references unknown sensors: {sorted(unknown)}")
        self._model = model
        self._suite = suite
        self._mode = mode
        self._Q = validate_covariance(process_noise, model.state_dim, "process noise")
        self._policy = policy or EveryStepLinearization()

        self._ref_names = tuple(mode.reference)
        self._test_names = tuple(mode.testing)
        self._ref_idx = suite.indices_of(self._ref_names)
        self._test_idx = suite.indices_of(self._test_names)
        self._R2 = suite.covariance(self._ref_names)
        self._R1 = (
            suite.covariance(self._test_names)
            if self._test_names
            else np.zeros((0, 0))
        )
        self._ref_angular = suite.angular_mask(self._ref_names)
        self._test_angular = (
            suite.angular_mask(self._test_names) if self._test_names else np.zeros(0, dtype=bool)
        )
        self._ref_wrap = np.flatnonzero(self._ref_angular)
        self._test_wrap = np.flatnonzero(self._test_angular)
        # Absolute spectral floor for the innovation covariance: eigenvalues
        # below EIG_TOL times the measurement-noise scale are round-off, not
        # information. Without it, a reference block whose C2 G is square
        # invertible (the unknown-input estimate consumes *every* innovation
        # direction, R2_tilde == 0 up to round-off) would pseudo-invert pure
        # noise — a chaotic gain instead of the correct L = 0.
        self._R2_abs_tol = (
            EIG_TOL * float(np.abs(self._R2).max()) if self._R2.size else 0.0
        )
        self._I_n = np.eye(model.state_dim)
        # Built once: rebuilt-per-call construction showed up in the engine's
        # statistics hot path.
        self._testing_slices: dict[str, slice] = {}
        offset = 0
        for name in self._test_names:
            dim = suite.sensor(name).dim
            self._testing_slices[name] = slice(offset, offset + dim)
            offset += dim
        # Full-availability block plan (the nominal iteration reads exactly
        # these arrays); restricted plans for degraded iterations are built
        # lazily in _plan_for and memoized per availability subset.
        self._full_plan = _BlockPlan(
            ref_names=self._ref_names,
            test_names=self._test_names,
            ref_idx=self._ref_idx,
            test_idx=self._test_idx,
            R2=self._R2,
            R1=self._R1,
            ref_wrap=self._ref_wrap,
            test_wrap=self._test_wrap,
            R2_abs_tol=self._R2_abs_tol,
            testing_slices=self._testing_slices,
        )
        self._plans: dict[tuple[tuple[str, ...], tuple[str, ...]], _BlockPlan] = {}

        if check_observability:
            x0 = (
                np.asarray(nominal_state, dtype=float)
                if nominal_state is not None
                else model.zero_state()
            )
            u0 = (
                np.asarray(nominal_control, dtype=float)
                if nominal_control is not None
                else self._nominal_control_guess()
            )
            self._check_observability(x0, u0)

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def mode(self) -> Mode:
        return self._mode

    @property
    def reference_names(self) -> tuple[str, ...]:
        return self._ref_names

    @property
    def testing_names(self) -> tuple[str, ...]:
        return self._test_names

    def testing_slices(self, names: Sequence[str] | None = None) -> dict[str, slice]:
        """Slice of each testing sensor inside the stacked ``d_hat^s``.

        With *names* (the testing sensors actually used on a degraded
        iteration — see :attr:`NuiseResult.testing_used`) the slices describe
        the restricted stack instead of the full one.
        """
        if names is None or tuple(names) == self._test_names:
            return dict(self._testing_slices)
        slices: dict[str, slice] = {}
        offset = 0
        for name in names:
            dim = self._suite.sensor(name).dim
            slices[name] = slice(offset, offset + dim)
            offset += dim
        return slices

    def _plan_for(self, available: Sequence[str]) -> _BlockPlan:
        """Block plan restricted to the *available* sensors.

        The restriction preserves suite ordering inside each block, so a plan
        with every block sensor present is the full plan (same arrays, same
        math, bit for bit).
        """
        present = set(available)
        ref = tuple(n for n in self._ref_names if n in present)
        test = tuple(n for n in self._test_names if n in present)
        if ref == self._ref_names and test == self._test_names:
            return self._full_plan
        key = (ref, test)
        plan = self._plans.get(key)
        if plan is not None:
            return plan
        suite = self._suite
        R2 = suite.covariance(ref) if ref else np.zeros((0, 0))
        R1 = suite.covariance(test) if test else np.zeros((0, 0))
        ref_angular = suite.angular_mask(ref) if ref else np.zeros(0, dtype=bool)
        test_angular = suite.angular_mask(test) if test else np.zeros(0, dtype=bool)
        slices: dict[str, slice] = {}
        offset = 0
        for name in test:
            dim = suite.sensor(name).dim
            slices[name] = slice(offset, offset + dim)
            offset += dim
        plan = _BlockPlan(
            ref_names=ref,
            test_names=test,
            ref_idx=suite.indices_of(ref) if ref else np.zeros(0, dtype=int),
            test_idx=suite.indices_of(test) if test else np.zeros(0, dtype=int),
            R2=R2,
            R1=R1,
            ref_wrap=np.flatnonzero(ref_angular),
            test_wrap=np.flatnonzero(test_angular),
            R2_abs_tol=EIG_TOL * float(np.abs(R2).max()) if R2.size else 0.0,
            testing_slices=slices,
        )
        self._plans[key] = plan
        return plan

    def _nominal_control_guess(self) -> np.ndarray:
        # A zero control makes many models' G degenerate (a parked car
        # cannot reveal steering anomalies); probe at a small forward motion
        # instead.
        return np.full(self._model.control_dim, 0.1)

    def _check_observability(self, x0: np.ndarray, u0: np.ndarray) -> None:
        A, G = self._policy.jacobians(self._model, x0, u0)
        C2 = self._policy.measurement_jacobian(self._suite, self._ref_names, self._model.f(x0, u0))
        F = C2 @ G
        if F.shape[0] < F.shape[1] or np.linalg.matrix_rank(F, tol=_RANK_TOL) < F.shape[1]:
            raise ObservabilityError(
                f"mode {self._mode.name!r}: reference sensors {self._ref_names} cannot "
                f"estimate the {F.shape[1]}-dimensional actuator anomaly (rank(C2 G) "
                f"= {np.linalg.matrix_rank(F, tol=_RANK_TOL)}); group additional sensors "
                "into the reference set (see Section VI of the paper)"
            )

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------
    def split_reading(self, stacked: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(z_1 testing, z_2 reference)`` blocks of a stacked reading."""
        stacked = np.asarray(stacked, dtype=float)
        z1 = stacked[self._test_idx] if len(self._test_idx) else np.zeros(0)
        z2 = stacked[self._ref_idx]
        return z1, z2

    def step(
        self,
        control: np.ndarray,
        prev_state: np.ndarray,
        prev_covariance: np.ndarray,
        stacked_reading: np.ndarray,
        workspace: IterationWorkspace | None = None,
        available: Sequence[str] | None = None,
    ) -> NuiseResult:
        """One NUISE iteration (Algorithm 2).

        When the engine supplies a shared *workspace* (built from the same
        previous estimate/control handed to every mode), the dynamics
        propagation, process Jacobians, ``A P A^T`` and the reference block's
        measurement model at the shared predicted point come from it instead
        of being recomputed per mode. A standalone call builds a private
        workspace, so the two entry points run identical math.

        *available* names the sensors whose readings were actually delivered
        this iteration (None = all). Absent sensors are removed from both the
        reference and testing stacks; when the entire reference block is
        absent the filter propagates open-loop and reports a held result
        (``measurement_updated=False``).
        """
        model, suite, policy = self._model, self._suite, self._policy
        if workspace is None:
            workspace = IterationWorkspace(
                policy, model, suite, prev_state, control, prev_covariance
            )
        plan = self._full_plan if available is None else self._plan_for(available)
        if not plan.ref_names:
            return self._degraded_hold(workspace, prev_covariance, stacked_reading, plan)
        P_prev = workspace.covariance
        stacked = np.asarray(stacked_reading, dtype=float)
        z1 = stacked[plan.test_idx] if plan.test_names else np.zeros(0)
        z2 = stacked[plan.ref_idx]

        A, G = workspace.jacobians()
        Q = self._Q
        R2 = plan.R2

        # --- Step 1: actuator anomaly estimation (lines 2-6) -----------
        x_check = workspace.propagate()
        h2_check, C2 = workspace.measurement(plan.ref_names)
        if P_prev is None:
            # Caller-supplied workspace without a shared covariance.
            P_prev = symmetrize(np.asarray(prev_covariance, dtype=float))
            P_tilde = A @ P_prev @ A.T + Q
        else:
            P_tilde = workspace.propagated_prior() + Q
        R_star = symmetrize(C2 @ P_tilde @ C2.T + R2)
        F = C2 @ G
        solver_fallbacks = 0
        factor = chol_psd(R_star)
        if factor is None:
            solver_fallbacks += 1
            FtRi = (pseudo_inverse(R_star) @ F).T
        else:
            FtRi = chol_solve(factor, F).T
        # (F' R*^-1 F)^dagger handles rank-deficient C2 G (unexcitable input
        # directions get the minimum-norm zero estimate instead of a crash);
        # the Cholesky fast path applies when C2 G is well excited, with the
        # pseudo-inverse fallback otherwise (counted in solver_fallbacks).
        normal = FtRi @ F
        factor = chol_psd(normal)
        if factor is None:
            solver_fallbacks += 1
            M2 = pseudo_inverse(normal) @ FtRi
        else:
            M2 = chol_solve(factor, FtRi)
        innovation0 = _wrap_inplace(z2 - h2_check, plan.ref_wrap)
        d_a = M2 @ innovation0
        P_a = project_psd(M2 @ R_star @ M2.T)

        # --- Step 2: compensated state prediction (lines 7-10) ---------
        # The paper writes f(x, u + d_a); we inject the compensation through
        # the linearized channel G instead. The two agree to first order —
        # the order at which d_a itself was estimated — but the linear form
        # is stable when a noisy anomaly estimate lands outside f's
        # linearization region (e.g. a 1-rad steering "anomaly" pushed
        # through tan(delta) overshoots its own linear estimate and drives a
        # divergent compensate/correct limit cycle on Ackermann platforms).
        x_pred = x_check + G @ d_a
        I_n = self._I_n
        GM2 = G @ M2
        K = I_n - GM2 @ C2
        A_bar = K @ A
        Q_bar = K @ Q @ K.T + GM2 @ R2 @ GM2.T
        P_pred = project_psd(A_bar @ P_prev @ A_bar.T + Q_bar)

        # Cross-covariance between the compensated prediction error and the
        # reference measurement noise (see module docstring): S = -G M2 R2.
        S = -GM2 @ R2

        # --- Step 3: state estimation (lines 11-14) --------------------
        C2p = policy.measurement_jacobian(suite, plan.ref_names, x_pred)
        innovation = _wrap_inplace(z2 - policy.h(suite, plan.ref_names, x_pred), plan.ref_wrap)
        CS = C2p @ S
        R2_tilde = symmetrize(C2p @ P_pred @ C2p.T + R2 + CS + CS.T)
        gain_rhs = P_pred @ C2p.T + S
        # The post-compensation innovation covariance is structurally
        # singular whenever C2 G excites any input direction (the
        # unknown-input estimate consumes rank(C2 G) directions — hence the
        # paper's pseudo-determinant), so no Cholesky attempt is made here;
        # one eigendecomposition serves both the gain and the likelihood.
        R2t_pinv, R2t_pdet, R2t_rank = pinv_and_pdet(R2_tilde, abs_tol=plan.R2_abs_tol)
        L = gain_rhs @ R2t_pinv
        x_new = model.normalize_state(x_pred + L @ innovation)
        I_LC = I_n - L @ C2p
        P_new = (
            I_LC @ P_pred @ I_LC.T
            + L @ R2 @ L.T
            - I_LC @ S @ L.T
            - L @ S.T @ I_LC.T
        )
        P_new = project_psd(P_new)

        # --- Step 4: sensor anomaly estimation (lines 15-16) -----------
        if plan.test_names:
            C1 = policy.measurement_jacobian(suite, plan.test_names, x_new)
            d_s = _wrap_inplace(z1 - policy.h(suite, plan.test_names, x_new), plan.test_wrap)
            P_s = project_psd(C1 @ P_new @ C1.T + plan.R1)
        else:
            d_s = np.zeros(0)
            P_s = np.zeros((0, 0))

        # --- Likelihood (lines 17-20) -----------------------------------
        # Reuses the gain computation's decomposition; pseudo-determinant
        # semantics are preserved for the singular directions.
        likelihood = gaussian_likelihood_pinv(innovation, R2t_pinv, R2t_pdet, R2t_rank)

        return NuiseResult(
            state=x_new,
            state_covariance=P_new,
            actuator_anomaly=d_a,
            actuator_covariance=P_a,
            sensor_anomaly=d_s,
            sensor_covariance=P_s,
            likelihood=likelihood,
            innovation=innovation,
            innovation_covariance=R2_tilde,
            reference_used=plan.ref_names,
            testing_used=plan.test_names,
            solver_fallbacks=solver_fallbacks,
        )

    def _degraded_hold(
        self,
        workspace: IterationWorkspace,
        prev_covariance: np.ndarray,
        stacked_reading: np.ndarray,
        plan: _BlockPlan,
    ) -> NuiseResult:
        """Open-loop propagation when the mode's reference block is absent.

        Without a single reference reading there is no innovation: the state
        prediction stands uncorrected, the actuator anomaly is unobservable
        (zero estimate with zero covariance, so its Chi-square term carries
        zero degrees of freedom and the decision maker skips it), and the
        likelihood is evidence-free — the engine holds this mode's
        probability rather than updating it.
        """
        model, suite, policy = self._model, self._suite, self._policy
        P_prev = workspace.covariance
        A, _ = workspace.jacobians()
        x_check = workspace.propagate()
        if P_prev is None:
            P_prev = symmetrize(np.asarray(prev_covariance, dtype=float))
            P_tilde = A @ P_prev @ A.T + self._Q
        else:
            P_tilde = workspace.propagated_prior() + self._Q
        x_new = model.normalize_state(x_check)
        P_new = project_psd(P_tilde)
        n_controls = model.control_dim
        if plan.test_names:
            stacked = np.asarray(stacked_reading, dtype=float)
            z1 = stacked[plan.test_idx]
            C1 = policy.measurement_jacobian(suite, plan.test_names, x_new)
            d_s = _wrap_inplace(z1 - policy.h(suite, plan.test_names, x_new), plan.test_wrap)
            P_s = project_psd(C1 @ P_new @ C1.T + plan.R1)
        else:
            d_s = np.zeros(0)
            P_s = np.zeros((0, 0))
        return NuiseResult(
            state=x_new,
            state_covariance=P_new,
            actuator_anomaly=np.zeros(n_controls),
            actuator_covariance=np.zeros((n_controls, n_controls)),
            sensor_anomaly=d_s,
            sensor_covariance=P_s,
            likelihood=1.0,
            innovation=np.zeros(0),
            innovation_covariance=np.zeros((0, 0)),
            reference_used=(),
            testing_used=plan.test_names,
            measurement_updated=False,
        )
