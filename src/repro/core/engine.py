"""Multi-mode estimation engine and mode selector (Algorithm 1, lines 4–9).

The engine maintains a bank of NUISE filters (one per mode) plus the shared
state estimate all modes start each iteration from — Algorithm 1 feeds every
mode the previous *selected* estimate ``x_hat_{k-1|k-1}``. Mode
probabilities follow the recursive update ``mu^m_k = max(N^m_k mu^m_{k-1},
epsilon)`` with per-iteration normalization; the probability floor
``epsilon`` keeps defeated modes revivable, which is what lets the selector
recover when an attack stops (Table II scenario #10's LiDAR recovery).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Sequence

import numpy as np

from ..dynamics.base import RobotModel
from ..errors import ConfigurationError, SnapshotCompatibilityError
from ..obs.telemetry import (
    NULL_TELEMETRY,
    AvailabilityEvent,
    ModeBankEvent,
    Telemetry,
)
from ..sensors.suite import SensorSuite
from .chi2 import anomaly_statistic
from .linearization import EveryStepLinearization, LinearizationPolicy
from .modes import Mode, single_reference_modes
from .nuise import NuiseFilter, NuiseResult
from .report import IterationStatistics, SensorStatistic
from .stacked import StackedBank

__all__ = ["MultiModeEstimationEngine", "EngineOutput"]

#: Probability floor for defeated modes (paper Algorithm 1 line 6's epsilon).
#: Kept far below any live probability: a floor that is too high can erase
#: the margin between a freshly-defeated mode and a consistently-good one at
#: the very iteration an attack lands, letting the compromised mode keep the
#: shared estimate (and hijack it toward the corrupted readings).
DEFAULT_EPSILON = 1e-12

#: Length (in control iterations) of the finite-memory consistency window
#: used for mode selection. See ``MultiModeEstimationEngine`` notes.
DEFAULT_CONSISTENCY_WINDOW = 40

#: Log-likelihood floor per step inside the consistency window (exp(-300)
#: underflows to 0.0; one such step must be able to outweigh a full window
#: of good steps, but not leave the mode unrevivable).
_LOG_FLOOR = -300.0


@dataclass(frozen=True)
class EngineOutput:
    """Everything one engine iteration produced.

    ``available`` names the sensors whose readings were delivered this
    iteration; ``None`` is the nominal full-delivery case (including an
    explicit mask that happens to cover the whole suite, which the engine
    normalizes back to ``None`` so the nominal path stays bit-identical).
    """

    iteration: int
    results: dict[str, NuiseResult]
    probabilities: dict[str, float]
    likelihoods: dict[str, float]
    selected_mode: str
    selected: NuiseResult
    available: tuple[str, ...] | None = None


class MultiModeEstimationEngine:
    """Bank of per-mode NUISE filters plus the maximum-likelihood selector.

    Selection note
    --------------
    Algorithm 1 selects the mode maximizing the recursive probability
    ``mu^m_k = max(N^m_k mu^m_{k-1}, epsilon)``. With exact arithmetic the
    product encodes the full consistency history; the floor, however,
    *erases* that history for every non-dominant mode (all crushed to
    ``epsilon``), so at the instant the long-dominant mode's reference is
    attacked, the floored probabilities cannot distinguish a consistently
    clean runner-up from a corrupted-but-self-consistent one (a constant
    odometry bias is launderable into a fake actuator anomaly, keeping its
    own-reference likelihood high). We therefore select on a *finite-window
    log-likelihood sum* — floor-free Bayesian evidence with bounded memory:
    it preserves the revivability the paper's floor buys (old evidence ages
    out of the window) while keeping enough history to reject the
    self-consistent impostor. The recursive ``mu`` is still maintained and
    reported, matching the paper's outputs.
    """

    def __init__(
        self,
        model: RobotModel,
        suite: SensorSuite,
        process_noise,
        modes: Sequence[Mode] | None = None,
        initial_state: np.ndarray | None = None,
        initial_covariance: np.ndarray | float = 1e-4,
        policy: LinearizationPolicy | None = None,
        epsilon: float = DEFAULT_EPSILON,
        consistency_window: int = DEFAULT_CONSISTENCY_WINDOW,
        check_observability: bool = True,
        nominal_state: np.ndarray | None = None,
        nominal_control: np.ndarray | None = None,
        telemetry: Telemetry | None = None,
        stacked_bank: bool = True,
    ) -> None:
        if modes is None:
            modes = single_reference_modes(suite)
        if not modes:
            raise ConfigurationError("the engine needs at least one mode")
        names = [m.name for m in modes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate mode names: {names}")
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError("epsilon must be in (0, 1)")
        if consistency_window < 1:
            raise ConfigurationError("consistency window must be at least 1")
        self._window = int(consistency_window)
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._model = model
        self._suite = suite
        self._modes = list(modes)
        self._epsilon = float(epsilon)
        # One shared policy instance: the per-iteration workspace built from
        # it (see step) must be the same object the filters linearize with.
        self._policy = policy or EveryStepLinearization()
        self._filters = {
            m.name: NuiseFilter(
                model,
                suite,
                m,
                process_noise,
                policy=self._policy,
                check_observability=check_observability,
                nominal_state=nominal_state,
                nominal_control=nominal_control,
            )
            for m in modes
        }
        self._x0 = (
            model.normalize_state(np.asarray(initial_state, dtype=float))
            if initial_state is not None
            else model.zero_state()
        )
        if np.isscalar(initial_covariance):
            self._P0 = float(initial_covariance) * np.eye(model.state_dim)
        else:
            self._P0 = np.asarray(initial_covariance, dtype=float)
        # Stacked mode bank: nominal (full-delivery) iterations advance every
        # mode with single batched linalg calls instead of the per-mode
        # Python loop. Degraded iterations keep the serial loop (their block
        # shapes are data-dependent). ``stacked_bank=False`` pins the serial
        # loop everywhere — the equivalence tests' reference path.
        ordered_filters = [self._filters[m.name] for m in self._modes]
        self._bank = (
            StackedBank(ordered_filters)
            if stacked_bank and StackedBank.usable(ordered_filters)
            else None
        )
        self.reset()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def modes(self) -> list[Mode]:
        """The hypothesis bank (copy): one :class:`Mode` per candidate set."""
        return list(self._modes)

    @property
    def state_estimate(self) -> np.ndarray:
        """Latest selected-mode posterior state x̂_k (copy)."""
        return self._x.copy()

    @property
    def state_covariance(self) -> np.ndarray:
        """Latest selected-mode posterior covariance P^x_k (copy)."""
        return self._P.copy()

    @property
    def probabilities(self) -> dict[str, float]:
        """Current recursive mode probabilities μ^m_k (Eq. 30), by mode name."""
        return dict(self._mu)

    @property
    def stacked_bank(self) -> StackedBank | None:
        """The batched mode bank (``None`` when the bank layout is unusable
        or the engine was built with ``stacked_bank=False``)."""
        return self._bank

    @property
    def telemetry(self) -> Telemetry:
        """The attached telemetry sink (``NULL_TELEMETRY`` by default)."""
        return self._telemetry

    @telemetry.setter
    def telemetry(self, sink: Telemetry | None) -> None:
        self._telemetry = sink if sink is not None else NULL_TELEMETRY

    def reset(self, initial_state: np.ndarray | None = None) -> None:
        """Restore the shared estimate and uniform mode probabilities."""
        if initial_state is not None:
            self._x = self._model.normalize_state(np.asarray(initial_state, dtype=float))
        else:
            self._x = self._x0.copy()
        self._P = self._P0.copy()
        uniform = 1.0 / len(self._modes)
        self._mu = {m.name: uniform for m in self._modes}
        self._log_history: dict[str, deque[float]] = {
            m.name: deque(maxlen=self._window) for m in self._modes
        }
        self._iteration = 0

    # ------------------------------------------------------------------
    # Checkpoint/restore hooks (repro.serve.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Every mutable quantity one engine iteration reads or writes.

        The shared estimate ``(x̂, P)``, the recursive mode probabilities,
        the finite-window log-likelihood history driving selection, and the
        iteration counter — restoring these into an identically-configured
        engine resumes the recursion bit-for-bit. Mode order is preserved
        (probability normalization sums in mode order, so a reordered dict
        would not be bit-identical).
        """
        return {
            "iteration": self._iteration,
            "state": self._x.copy(),
            "covariance": self._P.copy(),
            "probabilities": dict(self._mu),
            "log_history": {
                name: tuple(hist) for name, hist in self._log_history.items()
            },
            "consistency_window": self._window,
        }

    def restore_state(self, state: dict) -> None:
        """Apply a prior :meth:`snapshot_state` to this engine.

        All-or-nothing: a snapshot naming a different mode bank, consistency
        window or state dimension raises
        :class:`~repro.errors.SnapshotCompatibilityError` with the engine
        untouched.
        """
        names = tuple(m.name for m in self._modes)
        if tuple(state["probabilities"]) != names or tuple(state["log_history"]) != names:
            raise SnapshotCompatibilityError(
                f"snapshot carries modes {tuple(state['probabilities'])} but this "
                f"engine's bank is {names}"
            )
        if int(state["consistency_window"]) != self._window:
            raise SnapshotCompatibilityError(
                f"snapshot used a consistency window of {state['consistency_window']} "
                f"but this engine is configured with {self._window}"
            )
        x = np.asarray(state["state"], dtype=float)
        n = self._model.state_dim
        if x.shape != (n,):
            raise SnapshotCompatibilityError(
                f"snapshot state has shape {x.shape}, this model expects ({n},)"
            )
        P = np.asarray(state["covariance"], dtype=float)
        if P.shape != (n, n):
            raise SnapshotCompatibilityError(
                f"snapshot covariance has shape {P.shape}, this model expects ({n}, {n})"
            )
        for name in names:
            if len(state["log_history"][name]) > self._window:
                raise SnapshotCompatibilityError(
                    f"snapshot log history for mode {name!r} holds "
                    f"{len(state['log_history'][name])} entries, window is {self._window}"
                )
        self._x = x.copy()
        self._P = P.copy()
        self._mu = {name: float(state["probabilities"][name]) for name in names}
        self._log_history = {
            name: deque(
                (float(v) for v in state["log_history"][name]), maxlen=self._window
            )
            for name in names
        }
        self._iteration = int(state["iteration"])

    # ------------------------------------------------------------------
    # One iteration
    # ------------------------------------------------------------------
    def step(
        self,
        control: np.ndarray,
        stacked_reading: np.ndarray,
        available: Sequence[str] | None = None,
    ) -> EngineOutput:
        """Run every mode, update probabilities, select and commit.

        Algorithm 1 hands every mode the same previous selected estimate, so
        the linearization products around ``(x_hat_{k-1|k-1}, u_{k-1})`` are
        computed once in a shared workspace and reused by all M filters.

        *available* restricts the iteration to the sensors actually
        delivered (``None`` = all). Modes whose entire reference block is
        absent run open-loop and report ``measurement_updated=False``; their
        probability is held (no likelihood multiply, zero log-evidence in
        the consistency window) rather than updated on no evidence.

        An enabled telemetry sink receives per-stage wall-clock durations
        (``linearize`` / ``mode_bank`` / ``select``) and one
        :class:`~repro.obs.telemetry.ModeBankEvent` per iteration (plus an
        :class:`~repro.obs.telemetry.AvailabilityEvent` on degraded ones).
        With the default ``NullTelemetry`` none of that work happens — the
        nominal path stays bit-identical.
        """
        self._iteration += 1
        telemetry = self._telemetry
        timed = telemetry.enabled
        stacked_reading = np.asarray(stacked_reading, dtype=float)
        if available is not None:
            present = set(available)
            unknown = present - set(self._suite.names)
            if unknown:
                raise ConfigurationError(
                    f"availability mask names unknown sensors: {sorted(unknown)}"
                )
            available = tuple(n for n in self._suite.names if n in present)
            if available == tuple(self._suite.names):
                available = None  # full delivery: take the nominal path
        if timed:
            t0 = perf_counter()
        workspace = self._policy.workspace(
            self._model, self._suite, self._x, control, covariance=self._P
        )
        if timed:
            # Force the lazily-computed shared products now so "linearize"
            # captures their cost instead of the first mode's step. Same
            # functions at the same inputs — memoized, bit-identical.
            workspace.propagate()
            workspace.jacobians()
            telemetry.record_duration("linearize", perf_counter() - t0)
            t0 = perf_counter()
        if available is None and self._bank is not None:
            # Nominal iteration: the whole bank advances in stacked array
            # calls, reusing the shared workspace products bit-for-bit.
            x_check = workspace.propagate()
            A, G = workspace.jacobians()
            h_check, C_check = workspace.measurement(self._suite.names)
            bank_result = self._bank.run(
                self._x[None],
                workspace.covariance[None],
                workspace.control[None],
                stacked_reading[None],
                x_check=x_check[None],
                A=A[None],
                G=G[None],
                APA=workspace.propagated_prior()[None],
                h_check=h_check[None],
                C_check=C_check[None],
            )
            results = self._bank.results_for_cell(bank_result, 0)
            likelihoods = {name: r.likelihood for name, r in results.items()}
        else:
            results = {}
            likelihoods = {}
            for mode in self._modes:
                result = self._filters[mode.name].step(
                    workspace.control,
                    self._x,
                    self._P,
                    stacked_reading,
                    workspace=workspace,
                    available=available,
                )
                results[mode.name] = result
                likelihoods[mode.name] = result.likelihood
        if timed:
            telemetry.record_duration("mode_bank", perf_counter() - t0)
            t0 = perf_counter()

        # Recursive probability update, normalization, then floor
        # (Algorithm 1 line 6; reported, not used for selection — see class
        # docstring). A held mode (no reference evidence this iteration)
        # keeps its prior probability through the normalization. The floor
        # applies to the *normalized* distribution — flooring the raw
        # likelihood-weighted terms would let a large total (Gaussian
        # densities routinely exceed 1) push a defeated mode below the
        # documented eps/(m*eps + 1) bound after division.
        weighted = {
            name: (likelihoods[name] * self._mu[name])
            if results[name].measurement_updated
            else self._mu[name]
            for name in self._mu
        }
        total = sum(weighted.values())
        if total > 0.0 and np.isfinite(total):
            mu = {name: value / total for name, value in weighted.items()}
        else:
            # No mode retained any evidence (all-zero likelihoods): keep the
            # prior rather than dividing by zero; the floor below revives it.
            mu = dict(self._mu)
        if any(value < self._epsilon for value in mu.values()):
            floored = {name: max(value, self._epsilon) for name, value in mu.items()}
            floor_total = sum(floored.values())
            mu = {name: value / floor_total for name, value in floored.items()}
        self._mu = mu

        # Finite-window consistency scores drive selection. Held modes
        # contribute zero log-evidence for the iteration (not a penalty, not
        # a reward) so the window keeps aging at the same rate for everyone.
        for name, value in likelihoods.items():
            if not results[name].measurement_updated:
                self._log_history[name].append(0.0)
                continue
            log_n = np.log(value) if value > 0.0 else _LOG_FLOOR
            self._log_history[name].append(max(float(log_n), _LOG_FLOOR))
        scores = {name: sum(hist) for name, hist in self._log_history.items()}
        selected_name = max(scores, key=lambda name: scores[name])
        selected = results[selected_name]
        self._x = selected.state.copy()
        self._P = selected.state_covariance.copy()
        if timed:
            telemetry.record_duration("select", perf_counter() - t0)
            if available is not None:
                telemetry.emit(
                    AvailabilityEvent(
                        iteration=self._iteration,
                        available=available,
                        missing=tuple(
                            n for n in self._suite.names if n not in available
                        ),
                    )
                )
            telemetry.emit(
                ModeBankEvent(
                    iteration=self._iteration,
                    probabilities=dict(self._mu),
                    likelihoods={n: float(v) for n, v in likelihoods.items()},
                    consistency_scores={n: float(s) for n, s in scores.items()},
                    selected_mode=selected_name,
                    actuator_estimates={
                        n: r.actuator_anomaly.tolist() for n, r in results.items()
                    },
                    sensor_estimates={
                        n: r.sensor_anomaly.tolist() for n, r in results.items()
                    },
                    held_modes=tuple(
                        n for n, r in results.items() if not r.measurement_updated
                    ),
                    solver_fallbacks={
                        n: int(r.solver_fallbacks) for n, r in results.items()
                    },
                )
            )

        return EngineOutput(
            iteration=self._iteration,
            results=results,
            probabilities=dict(self._mu),
            likelihoods=likelihoods,
            selected_mode=selected_name,
            selected=selected,
            available=available,
        )

    # ------------------------------------------------------------------
    # Statistics extraction
    # ------------------------------------------------------------------
    def statistics(self, output: EngineOutput) -> IterationStatistics:
        """Raw per-iteration test statistics from the selected mode."""
        selected = output.selected
        mode_filter = self._filters[output.selected_mode]

        sensor_stat, sensor_dof = anomaly_statistic(
            selected.sensor_anomaly, selected.sensor_covariance
        )
        actuator_stat, actuator_dof = anomaly_statistic(
            selected.actuator_anomaly, selected.actuator_covariance
        )

        per_sensor: dict[str, SensorStatistic] = {}
        for name, sl in mode_filter.testing_slices(selected.testing_used).items():
            estimate = selected.sensor_anomaly[sl]
            covariance = selected.sensor_covariance[sl, sl]
            stat, dof = anomaly_statistic(estimate, covariance)
            per_sensor[name] = SensorStatistic(
                name=name,
                estimate=estimate.copy(),
                covariance=covariance.copy(),
                statistic=stat,
                dof=dof,
            )

        return IterationStatistics(
            iteration=output.iteration,
            selected_mode=output.selected_mode,
            mode_probabilities=dict(output.probabilities),
            state_estimate=selected.state.copy(),
            sensor_statistic=sensor_stat,
            sensor_dof=sensor_dof,
            actuator_statistic=actuator_stat,
            actuator_dof=actuator_dof,
            sensor_stats=per_sensor,
            actuator_estimate=selected.actuator_anomaly.copy(),
            actuator_covariance=selected.actuator_covariance.copy(),
            likelihoods=dict(output.likelihoods),
            available_sensors=output.available,
            degraded=output.available is not None,
        )
