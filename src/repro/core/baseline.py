"""Linearize-once baseline detector (paper Section V-G).

The paper benchmarks RoboADS against a representative linear-system approach
([20], Yong, Zhu & Frazzoli 2015) that "is linearized only once at the
beginning": the same multi-mode unknown-input estimation structure, but the
dynamic and measurement models are frozen to their first-order expansions at
the mission's initial state and control. As the robot turns away from the
initial heading the frozen model misdescribes the motion, estimation errors
grow, and the detector false-alarms — the paper measures 61.68% FPR.

Implemented by composing :class:`~repro.core.detector.RoboADS` with a
:class:`~repro.core.linearization.FixedPointLinearization` policy so that
*only* the linearization behaviour differs from the real detector.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..dynamics.base import RobotModel
from ..sensors.suite import SensorSuite
from .decision import DecisionConfig
from .detector import RoboADS
from .linearization import FixedPointLinearization
from .modes import Mode

__all__ = ["build_linearized_once_detector"]


def build_linearized_once_detector(
    model: RobotModel,
    suite: SensorSuite,
    process_noise,
    initial_state: np.ndarray,
    reference_control: np.ndarray | None = None,
    modes: Sequence[Mode] | None = None,
    decision: DecisionConfig | None = None,
    initial_covariance: np.ndarray | float = 1e-4,
) -> RoboADS:
    """A RoboADS-shaped detector whose model is linearized once at start.

    Parameters
    ----------
    reference_control:
        Operating-point control for the one-time linearization; defaults to
        a small straight-line cruise (a stationary linearization point would
        make the control Jacobian degenerate for most robots, handing the
        baseline an unfairly *worse* start than the published comparison).
    """
    initial_state = np.asarray(initial_state, dtype=float)
    if reference_control is None:
        reference_control = np.full(model.control_dim, 0.1)
    policy = FixedPointLinearization(initial_state, np.asarray(reference_control, dtype=float))
    return RoboADS(
        model,
        suite,
        process_noise,
        initial_state=initial_state,
        modes=modes,
        decision=decision,
        initial_covariance=initial_covariance,
        policy=policy,
        nominal_control=reference_control,
    )
