"""RoboADS: the composed anomaly detector (paper Algorithm 1, Fig 3).

Per control iteration the detector's monitor receives the planned command
``u_{k-1}`` and the stacked reading ``z_k``; the multi-mode engine estimates
states and anomaly vectors under every sensor-condition hypothesis; the mode
selector commits the maximum-likelihood mode; and the decision maker turns
the selected mode's statistics into confirmed alarms.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Sequence

import numpy as np

from ..dynamics.base import RobotModel
from ..errors import DimensionError
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from ..sensors.suite import SensorSuite
from .decision import DecisionConfig, DecisionMaker, DecisionOutcome
from .engine import EngineOutput, MultiModeEstimationEngine
from .linearization import LinearizationPolicy
from .modes import Mode
from .report import IterationStatistics

__all__ = ["RoboADS", "DetectionReport"]


@dataclass(frozen=True)
class DetectionReport:
    """Everything RoboADS reports for one control iteration."""

    iteration: int
    time: float
    statistics: IterationStatistics
    outcome: DecisionOutcome

    # ------------------------------------------------------------------
    # Convenience accessors (what most callers want)
    # ------------------------------------------------------------------
    @property
    def selected_mode(self) -> str:
        return self.statistics.selected_mode

    @property
    def state_estimate(self) -> np.ndarray:
        return self.statistics.state_estimate

    @property
    def flagged_sensors(self) -> frozenset[str]:
        """Confirmed misbehaving sensing workflows (empty = condition S0)."""
        return self.outcome.flagged_sensors

    @property
    def actuator_alarm(self) -> bool:
        return self.outcome.actuator_alarm

    @property
    def actuator_anomaly(self) -> np.ndarray:
        """``d_hat^a_{k-1}`` estimate from the selected mode."""
        return self.statistics.actuator_estimate

    def sensor_anomaly(self, sensor: str) -> np.ndarray | None:
        """``d_hat^s_k`` estimate for one testing sensor (None if reference)."""
        stat = self.statistics.sensor_stats.get(sensor)
        return None if stat is None else stat.estimate


class RoboADS:
    """The robot anomaly detection system.

    Parameters
    ----------
    model, suite, process_noise:
        The robot's dynamic model — the same knowledge any control/planning
        stack already maintains (Section III-A).
    initial_state:
        ``x_hat_{0|0}``; in the paper's missions the robot's known start
        pose.
    modes:
        Sensor-condition hypotheses; defaults to single-reference modes.
    decision:
        Decision parameters (``alpha``, ``w``, ``c``).
    policy:
        Linearization policy — every-step by default; a fixed-point policy
        turns this detector into the Section V-G baseline.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` sink shared by the
        engine, decision maker and this monitor. Defaults to the no-op
        ``NULL_TELEMETRY`` (zero hot-path overhead); attach a
        :class:`~repro.obs.telemetry.RecordingTelemetry` — here or later via
        :meth:`attach_telemetry` — to capture per-iteration events and
        per-stage timings (``docs/OBSERVABILITY.md``).
    """

    def __init__(
        self,
        model: RobotModel,
        suite: SensorSuite,
        process_noise,
        initial_state: np.ndarray,
        modes: Sequence[Mode] | None = None,
        decision: DecisionConfig | None = None,
        initial_covariance: np.ndarray | float = 1e-4,
        policy: LinearizationPolicy | None = None,
        epsilon: float = 1e-12,
        check_observability: bool = True,
        nominal_control: np.ndarray | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self._model = model
        self._suite = suite
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._engine = MultiModeEstimationEngine(
            model,
            suite,
            process_noise,
            modes=modes,
            initial_state=initial_state,
            initial_covariance=initial_covariance,
            policy=policy,
            epsilon=epsilon,
            check_observability=check_observability,
            nominal_state=np.asarray(initial_state, dtype=float),
            nominal_control=nominal_control,
            telemetry=self._telemetry,
        )
        self._decision_config = decision or DecisionConfig()
        self._decision = DecisionMaker(self._decision_config, telemetry=self._telemetry)
        self._iteration = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def model(self) -> RobotModel:
        return self._model

    @property
    def suite(self) -> SensorSuite:
        return self._suite

    @property
    def engine(self) -> MultiModeEstimationEngine:
        return self._engine

    @property
    def decision_config(self) -> DecisionConfig:
        return self._decision_config

    @property
    def state_estimate(self) -> np.ndarray:
        return self._engine.state_estimate

    @property
    def mode_probabilities(self) -> dict[str, float]:
        return self._engine.probabilities

    @property
    def telemetry(self) -> Telemetry:
        """The attached telemetry sink (``NULL_TELEMETRY`` by default)."""
        return self._telemetry

    def attach_telemetry(self, telemetry: Telemetry | None) -> None:
        """Attach (or with ``None``, detach) a telemetry sink everywhere.

        Swaps the sink on the monitor, the estimation engine and the
        decision maker in one call, so a detector built by a rig factory can
        be instrumented after the fact without reconstructing it.
        """
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._engine.telemetry = self._telemetry
        self._decision.telemetry = self._telemetry

    def reset(self, initial_state: np.ndarray | None = None) -> None:
        """Restore the detector for a fresh mission."""
        self._engine.reset(initial_state)
        self._decision.reset()
        self._iteration = 0

    # ------------------------------------------------------------------
    # Checkpoint/restore hooks (repro.serve.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """All mutable detector state: engine recursion + decision windows.

        The NUISE filters themselves are stateless between iterations (the
        engine feeds them the shared previous estimate every step), so the
        engine's recursion variables plus the decision maker's c-of-w window
        buffers are the complete resumable state. Restoring this dict into an
        identically-configured detector continues the mission bit-for-bit —
        the contract :mod:`repro.serve` builds sessions on.
        """
        return {
            "iteration": self._iteration,
            "engine": self._engine.snapshot_state(),
            "decision": self._decision.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Apply a prior :meth:`snapshot_state` to this detector.

        All-or-nothing: an incompatible snapshot (mode bank, window
        geometry, state dimension) raises
        :class:`~repro.errors.SnapshotCompatibilityError` and the detector
        rolls back to the state it held before the call.
        """
        backup = self.snapshot_state()
        try:
            self._engine.restore_state(state["engine"])
            self._decision.restore_state(state["decision"])
            self._iteration = int(state["iteration"])
        except Exception:
            # The backup came from this very detector, so re-applying it
            # cannot fail — the caller observes an untouched detector.
            self._engine.restore_state(backup["engine"])
            self._decision.restore_state(backup["decision"])
            self._iteration = backup["iteration"]
            raise

    # ------------------------------------------------------------------
    # One control iteration
    # ------------------------------------------------------------------
    def step(
        self,
        planned_control: np.ndarray,
        stacked_reading: np.ndarray,
        available: Sequence[str] | None = None,
    ) -> DetectionReport:
        """Consume ``(u_{k-1}, z_k)`` and report this iteration's verdict.

        *available* names the sensors whose readings were actually delivered
        this iteration (``None`` = all, the nominal case). Any nominally
        available sensor whose stacked block contains a non-finite value
        (NaN/Inf payload corruption) is excluded from the effective
        availability automatically — corrupted packets must degrade the
        iteration, never poison the Chi-square statistics.
        """
        planned_control = self._model.validate_control(np.asarray(planned_control, dtype=float))
        stacked_reading = np.asarray(stacked_reading, dtype=float)
        if stacked_reading.shape != (self._suite.total_dim,):
            raise DimensionError(
                f"stacked reading must have shape ({self._suite.total_dim},), "
                f"got {stacked_reading.shape}"
            )
        if not np.all(np.isfinite(stacked_reading)):
            present = set(self._suite.names) if available is None else set(available)
            for name in tuple(present):
                if not np.all(np.isfinite(stacked_reading[self._suite.slice_of(name)])):
                    present.discard(name)
            available = tuple(n for n in self._suite.names if n in present)
            # Neutralize the poisoned entries: the engine never reads excluded
            # blocks, but NaN would still propagate through full-stack slicing.
            stacked_reading = np.where(np.isfinite(stacked_reading), stacked_reading, 0.0)
        self._iteration += 1
        output: EngineOutput = self._engine.step(
            planned_control, stacked_reading, available=available
        )
        timed = self._telemetry.enabled
        if timed:
            t0 = perf_counter()
        stats = self._engine.statistics(output)
        outcome = self._decision.step(stats)
        if timed:
            self._telemetry.record_duration("decide", perf_counter() - t0)
        return DetectionReport(
            iteration=self._iteration,
            time=self._iteration * self._model.dt,
            statistics=stats,
            outcome=outcome,
        )

    def replay(
        self,
        controls: Sequence[np.ndarray],
        readings: Sequence[np.ndarray],
        reset: bool = True,
        availability: Sequence[Sequence[str] | None] | None = None,
    ) -> list[DetectionReport]:
        """Run the detector over a recorded ``(u_{k-1}, z_k)`` log.

        The offline analogue of online operation — forensics teams replay a
        vehicle's logged bus traffic after an incident. Produces exactly the
        reports online detection would have (the detector is deterministic
        given its inputs). *availability* optionally carries the recorded
        per-iteration delivery masks (``None`` entries = full delivery), so
        replays of fault-degraded missions match their online runs.
        """
        if len(controls) != len(readings):
            raise DimensionError(
                f"controls ({len(controls)}) and readings ({len(readings)}) "
                "must have equal length"
            )
        if availability is not None and len(availability) != len(controls):
            raise DimensionError(
                f"availability ({len(availability)}) must match controls ({len(controls)})"
            )
        if reset:
            self.reset()
        if availability is None:
            return [self.step(u, z) for u, z in zip(controls, readings)]
        return [
            self.step(u, z, available=a)
            for u, z, a in zip(controls, readings, availability)
        ]
