"""Response module: act on confirmed misbehaviors (paper future work).

The paper's conclusion names "designing computationally efficient response
algorithms" as future work. This module implements the natural first
response for the paper's architecture: **navigation failover** — when
RoboADS confirms that the sensor the planner navigates by is misbehaving,
switch navigation to a clean pose-capable sensor (or to the detector's own
state estimate), and switch back once the sensor is confirmed clean again.

The responder is deliberately conservative and hysteretic: failover
triggers only on a *confirmed* alarm (post sliding-window), and recovery to
the preferred sensor requires a clean streak, so a flickering detection
cannot thrash the navigation source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from .detector import DetectionReport

__all__ = ["NavigationFailover", "ResponseEvent"]


@dataclass(frozen=True)
class ResponseEvent:
    """One navigation-source change."""

    iteration: int
    time: float
    source: str
    reason: str


class NavigationFailover:
    """Chooses the pose source the planner should navigate by.

    Parameters
    ----------
    preference:
        Pose-capable sensors in descending order of preference; the first
        un-flagged one wins. The paper's Khepera would use
        ``("ips", "wheel_encoder")``.
    allow_estimate:
        When *every* listed sensor is flagged, fall back to the detector's
        own state estimate (``"<estimate>"``) instead of a flagged sensor.
    recovery_streak:
        Number of consecutive iterations a preferred sensor must be
        un-flagged before navigation switches back to it.
    """

    ESTIMATE = "<estimate>"

    def __init__(
        self,
        preference: Sequence[str],
        allow_estimate: bool = True,
        recovery_streak: int = 20,
    ) -> None:
        if not preference:
            raise ConfigurationError("failover needs at least one preferred sensor")
        if recovery_streak < 1:
            raise ConfigurationError("recovery_streak must be at least 1")
        self._preference = tuple(preference)
        self._allow_estimate = bool(allow_estimate)
        self._recovery_streak = int(recovery_streak)
        self._current = self._preference[0]
        self._clean_streaks = {name: 0 for name in self._preference}
        self._events: list[ResponseEvent] = []

    @property
    def current_source(self) -> str:
        return self._current

    @property
    def events(self) -> list[ResponseEvent]:
        return list(self._events)

    def reset(self) -> None:
        self._current = self._preference[0]
        self._clean_streaks = {name: 0 for name in self._preference}
        self._events = []

    def update(self, report: DetectionReport) -> str:
        """Consume one detection report; return the navigation source to use."""
        flagged = report.flagged_sensors
        for name in self._preference:
            if name in flagged:
                self._clean_streaks[name] = 0
            else:
                self._clean_streaks[name] += 1

        desired = self._select(flagged)
        if desired != self._current:
            reason = (
                f"{self._current} flagged"
                if self._current in flagged or self._current == self.ESTIMATE
                else f"recovered to preferred source"
            )
            self._current = desired
            self._events.append(
                ResponseEvent(
                    iteration=report.iteration,
                    time=report.time,
                    source=desired,
                    reason=reason,
                )
            )
        return self._current

    def _select(self, flagged: frozenset[str]) -> str:
        for name in self._preference:
            if name in flagged:
                continue
            if name == self._current:
                return name
            # Switching *to* a sensor (recovery or failover target) requires
            # a clean streak so flickering alarms cannot thrash the source.
            if self._clean_streaks[name] >= self._recovery_streak:
                return name
            if self._current in flagged or self._current == self.ESTIMATE:
                # Emergency: current source is bad — take the best clean one
                # immediately rather than waiting out the streak.
                return name
        if self._allow_estimate:
            return self.ESTIMATE
        return self._current

    def navigation_pose(
        self, readings: dict[str, np.ndarray], report: DetectionReport
    ) -> np.ndarray:
        """The pose the planner should navigate by this iteration."""
        source = self.update(report)
        if source == self.ESTIMATE:
            return np.asarray(report.state_estimate[:3], dtype=float)
        return np.asarray(readings[source][:3], dtype=float)
