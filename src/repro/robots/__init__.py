"""Robot prototypes: the paper's two evaluation platforms, ready-made.

:func:`~repro.robots.khepera.khepera_rig` reproduces Section V-A's Khepera
III (differential drive; wheel encoder + LiDAR + IPS) and
:func:`~repro.robots.tamiya.tamiya_rig` Section V-D's Tamiya RC car
(bicycle model; LiDAR + IPS + IMU). A :class:`~repro.robots.rig.RobotRig`
bundles everything one evaluation run needs: model, sensors, mission,
platform/controller/detector factories.
"""

from .khepera import khepera_rig
from .rig import RobotRig
from .tamiya import tamiya_rig

__all__ = ["RobotRig", "khepera_rig", "tamiya_rig"]
