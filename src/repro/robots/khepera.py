"""The Khepera III prototype (paper Section V-A, Fig 5).

A differential-drive robot in a Vicon-instrumented room, carrying three
sensing workflows — wheel encoder (odometry pose), LiDAR (wall distances +
heading) and IPS (Vicon pose) — and one actuation workflow (the wheel pair).
The mission steers from a start pose to a goal across the room, around a box
obstacle, tracking an RRT* path with PID control on real-time IPS data.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..actuators.differential import SPEED_UNIT_M_PER_S, WheelPairActuator
from ..core.decision import DecisionConfig
from ..core.detector import RoboADS
from ..core.linearization import LinearizationPolicy
from ..core.modes import Mode
from ..dynamics.differential_drive import DifferentialDriveModel
from ..errors import ConfigurationError
from ..planning.mission import Mission
from ..planning.path import Path
from ..planning.tracking import DifferentialDriveTracker
from ..sensors.lidar import RayCastLidar, WallDistanceSensor
from ..sensors.pose_sensors import IPS, OdometryPoseSensor
from ..sensors.suite import SensorSuite
from ..sim.platform import RobotPlatform
from ..sim.workflows import (
    ActuationWorkflow,
    FeatureSensingWorkflow,
    LidarRawWorkflow,
    OdometryWorkflow,
    SensingWorkflow,
)
from ..world.map import WorldMap
from ..world.presets import paper_arena
from .rig import RobotRig

__all__ = ["khepera_rig", "KHEPERA_WHEEL_BASE", "SPEED_UNIT_M_PER_S"]

#: Khepera III axle length in metres.
KHEPERA_WHEEL_BASE = 0.0888

#: Default per-step process noise standard deviations (x, y, theta) — floor
#: vibration, wheel slip and ground unevenness over one 50 ms iteration.
DEFAULT_PROCESS_SIGMAS = (0.0005, 0.0005, 0.0015)


def khepera_rig(
    world: WorldMap | None = None,
    mission: Mission | None = None,
    dt: float = 0.05,
    lidar_mode: str = "feature",
    odometry_mode: str = "feature",
    process_sigmas: Sequence[float] = DEFAULT_PROCESS_SIGMAS,
    cruise_speed: float = 0.18,
) -> RobotRig:
    """Assemble the Khepera prototype.

    Parameters
    ----------
    lidar_mode:
        ``"feature"`` simulates the LiDAR at the measurement-model level;
        ``"raw"`` ray-casts full scans and runs the scan feature extractor
        (the staged physical pipeline).
    odometry_mode:
        ``"feature"`` draws the wheel-encoder pose from the stationary
        measurement model; ``"raw"`` integrates executed wheel speeds with
        tick noise (drifting — used by the ablation experiment).
    """
    if lidar_mode not in ("feature", "raw"):
        raise ConfigurationError("lidar_mode must be 'feature' or 'raw'")
    if odometry_mode not in ("feature", "raw"):
        raise ConfigurationError("odometry_mode must be 'feature' or 'raw'")

    world = world or paper_arena()
    mission = mission or Mission(
        world=world,
        start_pose=(0.4, 0.4, np.pi / 4.0),
        goal=(2.5, 2.5),
        duration=20.0,
    )

    model = DifferentialDriveModel(wheel_base=KHEPERA_WHEEL_BASE, dt=dt)
    ips = IPS()
    wheel_encoder = OdometryPoseSensor()
    if lidar_mode == "raw":
        # The scan feature extractor's output noise is a little heavier than
        # the feature-level model (association jitter, heading estimation);
        # the detector's assumed R reflects the calibrated pipeline noise.
        lidar = WallDistanceSensor(world, sigma_distance=0.007, sigma_theta=0.015)
    else:
        lidar = WallDistanceSensor(world)
    suite = SensorSuite([ips, wheel_encoder, lidar])
    process_noise = np.diag(np.square(np.asarray(process_sigmas, dtype=float)))
    initial_state = np.array(mission.start_pose, dtype=float)

    def make_platform() -> RobotPlatform:
        workflows: dict[str, SensingWorkflow] = {"ips": FeatureSensingWorkflow(ips)}
        if odometry_mode == "feature":
            workflows["wheel_encoder"] = FeatureSensingWorkflow(wheel_encoder)
        else:
            workflows["wheel_encoder"] = OdometryWorkflow(wheel_encoder, model)
        if lidar_mode == "feature":
            workflows["lidar"] = FeatureSensingWorkflow(lidar)
        else:
            workflows["lidar"] = LidarRawWorkflow(lidar, RayCastLidar(world))
        return RobotPlatform(
            model=model,
            suite=suite,
            workflows=workflows,
            actuation=ActuationWorkflow(WheelPairActuator()),
            process_noise=process_noise,
            initial_state=initial_state,
        )

    def make_controller(path: Path) -> DifferentialDriveTracker:
        return DifferentialDriveTracker(model, path, cruise_speed=cruise_speed)

    def make_detector(
        decision: DecisionConfig | None = None,
        modes: Sequence[Mode] | None = None,
        policy: LinearizationPolicy | None = None,
    ) -> RoboADS:
        return RoboADS(
            model,
            suite,
            process_noise,
            initial_state=initial_state,
            modes=modes,
            decision=decision,
            policy=policy,
            nominal_control=np.array([0.1, 0.12]),
        )

    return RobotRig(
        name="khepera",
        model=model,
        suite=suite,
        process_noise=process_noise,
        mission=mission,
        nav_sensor="ips",
        make_platform=make_platform,
        make_controller=make_controller,
        make_detector=make_detector,
    )
