"""Robot rig: a reusable bundle of everything one evaluation run needs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.decision import DecisionConfig
from ..core.detector import RoboADS
from ..core.linearization import LinearizationPolicy
from ..core.modes import Mode
from ..dynamics.base import RobotModel
from ..planning.mission import Mission
from ..planning.path import Path
from ..sensors.suite import SensorSuite
from ..sim.platform import RobotPlatform

__all__ = ["RobotRig"]


@dataclass
class RobotRig:
    """A robot prototype plus its evaluation mission.

    Factories return *fresh* objects so Monte-Carlo trials never share
    state (workflow integrators, PID memory, detector windows).

    Attributes
    ----------
    name:
        Display name (e.g. ``"khepera"``).
    model, suite, process_noise:
        The dynamic model the platform simulates and the detector uses.
    mission:
        The point-to-point mission evaluated on.
    nav_sensor:
        The sensor whose readings the planner navigates by (the paper's
        missions use the IPS).
    make_platform, make_controller, make_detector:
        Per-run factories.
    """

    name: str
    model: RobotModel
    suite: SensorSuite
    process_noise: np.ndarray
    mission: Mission
    nav_sensor: str
    make_platform: Callable[[], RobotPlatform]
    make_controller: Callable[[Path], object]
    make_detector: Callable[..., RoboADS]
    _path_cache: dict[int, Path] = field(default_factory=dict, repr=False)

    def plan_path(self, seed: int = 0) -> Path:
        """Plan (and cache) the mission path for a given planner seed.

        Monte-Carlo trials share the planned path — as in the paper, where
        every trial runs the same mission — while noise and attacks use the
        per-trial generator.
        """
        if seed not in self._path_cache:
            rng = np.random.default_rng(seed)
            self._path_cache[seed] = self.mission.plan(rng)
        return self._path_cache[seed]

    def detector(
        self,
        decision: DecisionConfig | None = None,
        modes: Sequence[Mode] | None = None,
        policy: LinearizationPolicy | None = None,
    ) -> RoboADS:
        """Fresh detector with optional overrides."""
        return self.make_detector(decision=decision, modes=modes, policy=policy)
