"""The Tamiya RC car prototype (paper Section V-D, Fig 8).

An Ackermann-steered car with a distinct dynamic model (kinematic bicycle)
and a different sensor mix — LiDAR, IPS and an IMU whose workflow outputs
inertial-navigation pose — demonstrating that the same detector construction
generalizes across robots (the paper's Section V-D claim).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..actuators.ackermann import AckermannActuator
from ..core.decision import DecisionConfig
from ..core.detector import RoboADS
from ..core.linearization import LinearizationPolicy
from ..core.modes import Mode
from ..dynamics.bicycle import BicycleModel
from ..errors import ConfigurationError
from ..planning.mission import Mission
from ..planning.path import Path
from ..planning.tracking import BicycleTracker
from ..sensors.lidar import RayCastLidar, WallDistanceSensor
from ..sensors.pose_sensors import IPS, InertialNavSensor
from ..sensors.suite import SensorSuite
from ..sim.platform import RobotPlatform
from ..sim.workflows import ActuationWorkflow, FeatureSensingWorkflow, LidarRawWorkflow, SensingWorkflow
from ..world.map import WorldMap
from ..world.presets import corridor_arena
from .rig import RobotRig

__all__ = ["tamiya_rig", "TAMIYA_WHEELBASE"]

#: Tamiya TT-02 wheelbase in metres.
TAMIYA_WHEELBASE = 0.257

DEFAULT_PROCESS_SIGMAS = (0.001, 0.001, 0.002)


def tamiya_rig(
    world: WorldMap | None = None,
    mission: Mission | None = None,
    dt: float = 0.1,
    lidar_mode: str = "feature",
    process_sigmas: Sequence[float] = DEFAULT_PROCESS_SIGMAS,
    cruise_speed: float = 0.5,
) -> RobotRig:
    """Assemble the Tamiya prototype (see :func:`khepera_rig` for options)."""
    if lidar_mode not in ("feature", "raw"):
        raise ConfigurationError("lidar_mode must be 'feature' or 'raw'")

    world = world or corridor_arena()
    mission = mission or Mission(
        world=world,
        start_pose=(0.5, 0.5, 0.0),
        goal=(5.4, 1.5),
        duration=20.0,
    )

    model = BicycleModel(wheelbase=TAMIYA_WHEELBASE, dt=dt)
    ips = IPS()
    imu = InertialNavSensor()
    lidar = WallDistanceSensor(world)
    suite = SensorSuite([ips, imu, lidar])
    process_noise = np.diag(np.square(np.asarray(process_sigmas, dtype=float)))
    initial_state = np.array(mission.start_pose, dtype=float)

    def make_platform() -> RobotPlatform:
        workflows: dict[str, SensingWorkflow] = {
            "ips": FeatureSensingWorkflow(ips),
            "imu": FeatureSensingWorkflow(imu),
        }
        if lidar_mode == "feature":
            workflows["lidar"] = FeatureSensingWorkflow(lidar)
        else:
            workflows["lidar"] = LidarRawWorkflow(lidar, RayCastLidar(world))
        return RobotPlatform(
            model=model,
            suite=suite,
            workflows=workflows,
            actuation=ActuationWorkflow(AckermannActuator(max_steer=model.max_steer)),
            process_noise=process_noise,
            initial_state=initial_state,
        )

    def make_controller(path: Path) -> BicycleTracker:
        return BicycleTracker(model, path, cruise_speed=cruise_speed)

    def make_detector(
        decision: DecisionConfig | None = None,
        modes: Sequence[Mode] | None = None,
        policy: LinearizationPolicy | None = None,
    ) -> RoboADS:
        return RoboADS(
            model,
            suite,
            process_noise,
            initial_state=initial_state,
            modes=modes,
            decision=decision,
            policy=policy,
            # A moving, slightly steering operating point: the unknown-input
            # matrix C2 G only has full column rank when the car moves.
            nominal_control=np.array([cruise_speed, 0.1]),
        )

    return RobotRig(
        name="tamiya",
        model=model,
        suite=suite,
        process_noise=process_noise,
        mission=mission,
        nav_sensor="ips",
        make_platform=make_platform,
        make_controller=make_controller,
        make_detector=make_detector,
    )
