"""Mission specification: map, start pose, goal and duration.

A mission bundles everything the planner needs before the robot moves
(Section V-A: "Before the mission starts, the robot receives map information
and a target location").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..world.map import WorldMap
from .path import Path
from .rrt_star import RRTStar, RRTStarConfig

__all__ = ["Mission"]


@dataclass
class Mission:
    """A point-to-point motion-planning mission.

    Attributes
    ----------
    world:
        The arena map (walls + obstacles).
    start_pose:
        Initial robot pose ``(x, y, theta)``.
    goal:
        Target position ``(x, y)``.
    duration:
        Mission length in seconds the simulation runs for.
    planner_config:
        RRT* tunables.
    """

    world: WorldMap
    start_pose: tuple[float, float, float]
    goal: tuple[float, float]
    duration: float = 20.0
    planner_config: RRTStarConfig = field(default_factory=RRTStarConfig)

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise ConfigurationError("mission duration must be positive")
        if not self.world.point_free(self.start_pose[:2], self.planner_config.robot_margin):
            raise ConfigurationError("mission start pose is not in free space")
        if not self.world.point_free(self.goal, self.planner_config.robot_margin):
            raise ConfigurationError("mission goal is not in free space")

    def plan(self, rng: np.random.Generator) -> Path:
        """Run RRT* from the start position to the goal."""
        planner = RRTStar(self.world, self.planner_config)
        return planner.plan(self.start_pose[:2], self.goal, rng)

    def n_steps(self, dt: float) -> int:
        """Number of control iterations the mission spans at period *dt*."""
        if dt <= 0.0:
            raise ConfigurationError("dt must be positive")
        return int(round(self.duration / dt))
