"""Path-tracking controllers.

A :class:`TrackingController` turns the *navigation pose* (the planner's
real-time position source — the IPS readings in the paper's mission, which
means a spoofed IPS genuinely steers the robot off course) into a body twist
``(v, omega)`` toward a look-ahead point, using PID on the heading error and
a speed profile that slows into the goal. Robot-specific subclasses convert
the twist to the platform's command vector.
"""

from __future__ import annotations

import numpy as np

from ..dynamics.bicycle import BicycleModel
from ..dynamics.differential_drive import DifferentialDriveModel
from ..errors import ConfigurationError
from ..linalg import wrap_angle
from .path import Path
from .pid import PID

__all__ = ["TrackingController", "DifferentialDriveTracker", "BicycleTracker"]


class TrackingController:
    """Look-ahead PID path tracker producing body twists.

    Parameters
    ----------
    path:
        The planned path to follow.
    cruise_speed:
        Nominal forward speed in m/s.
    lookahead:
        Look-ahead distance along the path in metres.
    heading_pid:
        PID on heading error producing the yaw rate; defaults to a tuned
        P-dominant controller with a modest yaw-rate saturation.
    goal_tolerance:
        Distance at which the mission counts as reached and the commanded
        twist drops to zero.
    loop:
        Patrol mode: on reaching the goal, restart tracking from the path
        start instead of stopping (the path should end near where it
        begins). Used for long-horizon soak runs and patrol missions.
    """

    def __init__(
        self,
        path: Path,
        cruise_speed: float = 0.15,
        lookahead: float = 0.25,
        heading_pid: PID | None = None,
        goal_tolerance: float = 0.05,
        slowdown_radius: float = 0.3,
        loop: bool = False,
    ) -> None:
        if cruise_speed <= 0.0:
            raise ConfigurationError("cruise_speed must be positive")
        if lookahead <= 0.0:
            raise ConfigurationError("lookahead must be positive")
        self._path = path
        self._speed = float(cruise_speed)
        self._lookahead = float(lookahead)
        self._pid = heading_pid or PID(kp=2.5, ki=0.1, kd=0.05, output_limit=2.0)
        self._goal_tol = float(goal_tolerance)
        self._slowdown = float(slowdown_radius)
        self._loop = bool(loop)
        self._s_hint = 0.0
        self._reached = False
        self._laps = 0

    @property
    def path(self) -> Path:
        return self._path

    @property
    def goal_reached(self) -> bool:
        return self._reached

    @property
    def laps(self) -> int:
        """Completed circuits (patrol mode only)."""
        return self._laps

    def reset(self) -> None:
        self._pid.reset()
        self._s_hint = 0.0
        self._reached = False
        self._laps = 0

    def twist(self, pose: np.ndarray, dt: float) -> tuple[float, float]:
        """Body twist ``(v, omega)`` for the current navigation *pose*."""
        pose = np.asarray(pose, dtype=float)
        position = pose[:2]
        heading = float(pose[2])

        goal_dist = float(np.linalg.norm(position - self._path.goal))
        # Patrol mode restarts the circuit only once the *end* of the path is
        # being tracked (goal proximity alone would re-trigger every lap on
        # closed circuits whose start equals their goal).
        near_path_end = self._s_hint > 0.8 * self._path.length
        if goal_dist <= self._goal_tol and (not self._loop or near_path_end):
            if self._loop:
                self._laps += 1
                self._s_hint = 0.0
            else:
                self._reached = True
        if self._reached:
            return 0.0, 0.0

        target, s_proj = self._path.lookahead(position, self._lookahead, self._s_hint)
        self._s_hint = s_proj
        to_target = target - position
        desired_heading = float(np.arctan2(to_target[1], to_target[0]))
        heading_error = wrap_angle(desired_heading - heading)
        omega = self._pid.step(heading_error, dt)

        # Slow down into the goal and through sharp heading corrections.
        speed = self._speed
        if goal_dist < self._slowdown:
            speed *= max(goal_dist / self._slowdown, 0.2)
        if abs(heading_error) > np.pi / 3.0:
            speed *= 0.3
        return speed, float(omega)


class DifferentialDriveTracker(TrackingController):
    """Tracker emitting left/right wheel speeds for a differential drive."""

    def __init__(self, model: DifferentialDriveModel, path: Path, **kwargs) -> None:
        super().__init__(path, **kwargs)
        self._model = model

    def command(self, pose: np.ndarray, dt: float) -> np.ndarray:
        """Planned control command ``(v_l, v_r)`` in m/s."""
        v, omega = self.twist(pose, dt)
        return self._model.wheel_speeds(v, omega)


class BicycleTracker(TrackingController):
    """Tracker emitting ``(v, delta)`` for an Ackermann-steered car."""

    def __init__(self, model: BicycleModel, path: Path, **kwargs) -> None:
        kwargs.setdefault("cruise_speed", 0.4)
        kwargs.setdefault("lookahead", 0.45)
        super().__init__(path, **kwargs)
        self._model = model

    def command(self, pose: np.ndarray, dt: float) -> np.ndarray:
        """Planned control command ``(v, delta)``.

        The yaw-rate demand converts through the bicycle relation
        ``omega = (v / L) tan(delta)``; steering saturates at the model's
        servo limit.
        """
        v, omega = self.twist(pose, dt)
        if v <= 1e-6:
            return np.array([0.0, 0.0])
        delta = float(np.arctan(omega * self._model.wheelbase / v))
        delta = float(np.clip(delta, -self._model.max_steer, self._model.max_steer))
        return np.array([v, delta])
