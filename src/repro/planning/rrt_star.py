"""Optimal rapidly-exploring random trees (RRT*), Karaman & Frazzoli 2011.

The paper's mission planner (Section V-A step 2) computes a collision-free
path with RRT*. This is a standard geometric RRT* on the 2-D workspace:
uniform free-space sampling with goal bias, steering with a bounded step,
near-neighbour rewiring with the ``gamma (log n / n)^(1/2)`` radius, and an
optional shortcut-smoothing pass on the extracted path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import PlanningError
from ..world.geometry import Segment
from ..world.map import WorldMap
from .path import Path

__all__ = ["RRTStarConfig", "RRTStar"]


@dataclass(frozen=True)
class RRTStarConfig:
    """Tunables for the RRT* planner."""

    max_iterations: int = 2000
    step_size: float = 0.3
    goal_bias: float = 0.1
    goal_tolerance: float = 0.15
    neighbor_gamma: float = 1.5
    robot_margin: float = 0.08
    smooth_iterations: int = 60


class RRTStar:
    """Geometric RRT* planner over a :class:`~repro.world.map.WorldMap`."""

    def __init__(self, world: WorldMap, config: RRTStarConfig | None = None) -> None:
        self._world = world
        self._config = config or RRTStarConfig()

    @property
    def config(self) -> RRTStarConfig:
        return self._config

    def plan(
        self,
        start: Sequence[float],
        goal: Sequence[float],
        rng: np.random.Generator,
    ) -> Path:
        """Plan a collision-free path from *start* to *goal*.

        Raises :class:`~repro.errors.PlanningError` when no path is found
        within the iteration budget.
        """
        cfg = self._config
        start = np.asarray(start, dtype=float)
        goal = np.asarray(goal, dtype=float)
        margin = cfg.robot_margin
        if not self._world.point_free(start, margin):
            raise PlanningError(f"start {start} is not in free space")
        if not self._world.point_free(goal, margin):
            raise PlanningError(f"goal {goal} is not in free space")

        nodes = [start]
        parents = [-1]
        costs = [0.0]
        goal_nodes: list[int] = []

        for iteration in range(cfg.max_iterations):
            if rng.uniform() < cfg.goal_bias:
                sample = goal.copy()
            else:
                sample = self._world.sample_free(rng, margin)

            nearest_idx = self._nearest(nodes, sample)
            new_point = self._steer(nodes[nearest_idx], sample, cfg.step_size)
            if not self._world.point_free(new_point, margin):
                continue
            if not self._edge_free(nodes[nearest_idx], new_point, margin):
                continue

            # Choose the best parent among near neighbours.
            radius = self._near_radius(len(nodes))
            near = self._near(nodes, new_point, radius)
            best_parent = nearest_idx
            best_cost = costs[nearest_idx] + self._dist(nodes[nearest_idx], new_point)
            for idx in near:
                candidate = costs[idx] + self._dist(nodes[idx], new_point)
                if candidate < best_cost and self._edge_free(nodes[idx], new_point, margin):
                    best_parent, best_cost = idx, candidate

            nodes.append(new_point)
            parents.append(best_parent)
            costs.append(best_cost)
            new_idx = len(nodes) - 1

            # Rewire neighbours through the new node where cheaper.
            for idx in near:
                candidate = best_cost + self._dist(new_point, nodes[idx])
                if candidate < costs[idx] and self._edge_free(new_point, nodes[idx], margin):
                    parents[idx] = new_idx
                    costs[idx] = candidate

            if self._dist(new_point, goal) <= cfg.goal_tolerance and self._edge_free(
                new_point, goal, margin
            ):
                goal_nodes.append(new_idx)

        if not goal_nodes:
            raise PlanningError(
                f"RRT* found no path after {cfg.max_iterations} iterations"
            )

        best_goal = min(goal_nodes, key=lambda i: costs[i] + self._dist(nodes[i], goal))
        waypoints = self._extract(nodes, parents, best_goal)
        waypoints.append(goal)
        waypoints = self._smooth(waypoints, rng, margin)
        return Path(waypoints)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _dist(a: np.ndarray, b: np.ndarray) -> float:
        return float(np.linalg.norm(np.asarray(a) - np.asarray(b)))

    @staticmethod
    def _nearest(nodes: list[np.ndarray], point: np.ndarray) -> int:
        arr = np.asarray(nodes)
        return int(np.argmin(np.linalg.norm(arr - point, axis=1)))

    def _near(self, nodes: list[np.ndarray], point: np.ndarray, radius: float) -> list[int]:
        arr = np.asarray(nodes)
        dists = np.linalg.norm(arr - point, axis=1)
        return [int(i) for i in np.nonzero(dists <= radius)[0]]

    def _near_radius(self, n_nodes: int) -> float:
        cfg = self._config
        n = max(n_nodes, 2)
        return min(cfg.neighbor_gamma * np.sqrt(np.log(n) / n), cfg.step_size * 3.0)

    @staticmethod
    def _steer(from_point: np.ndarray, to_point: np.ndarray, step: float) -> np.ndarray:
        delta = to_point - from_point
        dist = float(np.linalg.norm(delta))
        if dist <= step:
            return to_point.copy()
        return from_point + (step / dist) * delta

    def _edge_free(self, a: np.ndarray, b: np.ndarray, margin: float) -> bool:
        return self._world.segment_free(Segment(tuple(a), tuple(b)), margin)

    @staticmethod
    def _extract(nodes: list[np.ndarray], parents: list[int], leaf: int) -> list[np.ndarray]:
        order = []
        idx = leaf
        while idx != -1:
            order.append(nodes[idx])
            idx = parents[idx]
        order.reverse()
        return order

    def _smooth(
        self, waypoints: list[np.ndarray], rng: np.random.Generator, margin: float
    ) -> list[np.ndarray]:
        """Shortcut smoothing: repeatedly replace sub-chains with free segments."""
        pts = list(waypoints)
        for _ in range(self._config.smooth_iterations):
            if len(pts) <= 2:
                break
            i = int(rng.integers(0, len(pts) - 2))
            j = int(rng.integers(i + 2, len(pts)))
            if self._edge_free(pts[i], pts[j], margin):
                pts = pts[: i + 1] + pts[j:]
        return pts
