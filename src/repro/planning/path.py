"""Polyline paths with arc-length parameterization.

The RRT* planner outputs a waypoint polyline; the tracking controller needs
arc-length queries (point at distance *s*, nearest point, look-ahead point).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["Path"]


class Path:
    """An ordered polyline through 2-D waypoints."""

    def __init__(self, waypoints: Iterable[Sequence[float]]) -> None:
        pts = np.asarray(list(waypoints), dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2 or pts.shape[0] < 2:
            raise ConfigurationError("a path needs at least two 2-D waypoints")
        self._points = pts
        deltas = np.diff(pts, axis=0)
        seg_lengths = np.linalg.norm(deltas, axis=1)
        self._cumulative = np.concatenate([[0.0], np.cumsum(seg_lengths)])

    @property
    def waypoints(self) -> np.ndarray:
        return self._points.copy()

    @property
    def length(self) -> float:
        """Total arc length."""
        return float(self._cumulative[-1])

    @property
    def start(self) -> np.ndarray:
        return self._points[0].copy()

    @property
    def goal(self) -> np.ndarray:
        return self._points[-1].copy()

    def point_at(self, s: float) -> np.ndarray:
        """Point at arc length *s* (clamped to ``[0, length]``)."""
        s = float(np.clip(s, 0.0, self.length))
        idx = int(np.searchsorted(self._cumulative, s, side="right")) - 1
        idx = min(idx, len(self._points) - 2)
        seg_len = self._cumulative[idx + 1] - self._cumulative[idx]
        if seg_len <= 0.0:
            return self._points[idx].copy()
        frac = (s - self._cumulative[idx]) / seg_len
        return (1.0 - frac) * self._points[idx] + frac * self._points[idx + 1]

    def heading_at(self, s: float) -> float:
        """Tangent direction at arc length *s*."""
        s = float(np.clip(s, 0.0, self.length))
        idx = int(np.searchsorted(self._cumulative, s, side="right")) - 1
        idx = min(max(idx, 0), len(self._points) - 2)
        delta = self._points[idx + 1] - self._points[idx]
        return float(np.arctan2(delta[1], delta[0]))

    def project(self, point: Sequence[float], s_hint: float | None = None, window: float = 1.0) -> float:
        """Arc length of the nearest path point to *point*.

        With *s_hint* the search is restricted to ``[s_hint - window/4,
        s_hint + window]`` so tracking does not jump across path
        self-proximity (e.g. S-curves around an obstacle).
        """
        point = np.asarray(point, dtype=float)
        lo, hi = 0.0, self.length
        if s_hint is not None:
            lo = max(0.0, s_hint - window / 4.0)
            hi = min(self.length, s_hint + window)
        best_s, best_d = lo, np.inf
        for idx in range(len(self._points) - 1):
            s0, s1 = self._cumulative[idx], self._cumulative[idx + 1]
            if s1 < lo or s0 > hi:
                continue
            a, b = self._points[idx], self._points[idx + 1]
            ab = b - a
            denom = float(ab @ ab)
            t = 0.0 if denom <= 0.0 else float(np.clip((point - a) @ ab / denom, 0.0, 1.0))
            candidate = a + t * ab
            s = s0 + t * (s1 - s0)
            if not lo <= s <= hi:
                s = float(np.clip(s, lo, hi))
                candidate = self.point_at(s)
            d = float(np.linalg.norm(point - candidate))
            if d < best_d:
                best_s, best_d = s, d
        return float(best_s)

    def lookahead(self, point: Sequence[float], lookahead: float, s_hint: float | None = None) -> tuple[np.ndarray, float]:
        """Look-ahead target: path point *lookahead* metres past the projection.

        Returns ``(target_point, s_projection)``.
        """
        s = self.project(point, s_hint)
        return self.point_at(s + lookahead), s

    def cross_track_error(self, point: Sequence[float], s_hint: float | None = None) -> float:
        """Distance from *point* to its path projection."""
        s = self.project(point, s_hint)
        return float(np.linalg.norm(np.asarray(point, dtype=float) - self.point_at(s)))
