"""Discrete PID controller with output saturation and anti-windup.

The paper's Section V-A step 3: "the robot executes PID closed-loop control
to track the planned path".
"""

from __future__ import annotations

from ..errors import ConfigurationError

__all__ = ["PID"]


class PID:
    """Textbook PID with clamping anti-windup.

    Parameters
    ----------
    kp, ki, kd:
        Proportional / integral / derivative gains.
    output_limit:
        Symmetric saturation on the output; integral accumulation is frozen
        while the output saturates (clamping anti-windup). ``None`` disables
        saturation.
    """

    def __init__(
        self,
        kp: float,
        ki: float = 0.0,
        kd: float = 0.0,
        output_limit: float | None = None,
    ) -> None:
        if output_limit is not None and output_limit <= 0.0:
            raise ConfigurationError("output_limit must be positive")
        self.kp = float(kp)
        self.ki = float(ki)
        self.kd = float(kd)
        self._limit = output_limit
        self._integral = 0.0
        self._prev_error: float | None = None

    def reset(self) -> None:
        """Clear the integral state and derivative history."""
        self._integral = 0.0
        self._prev_error = None

    @property
    def integral(self) -> float:
        return self._integral

    def step(self, error: float, dt: float) -> float:
        """One control update for *error* over period *dt* seconds."""
        if dt <= 0.0:
            raise ConfigurationError("dt must be positive")
        derivative = 0.0
        if self._prev_error is not None:
            derivative = (error - self._prev_error) / dt
        self._prev_error = error

        candidate_integral = self._integral + error * dt
        output = self.kp * error + self.ki * candidate_integral + self.kd * derivative

        if self._limit is None:
            self._integral = candidate_integral
            return output

        saturated = max(-self._limit, min(self._limit, output))
        # Clamping anti-windup: only integrate when not pushing further into
        # saturation.
        if output == saturated or (output > saturated) != (error > 0.0):
            self._integral = candidate_integral
        return saturated
