"""Mission planning and path tracking (the paper's Section V-A mission).

The evaluation mission is: receive a map and goal, plan a collision-free
path with RRT*, then track it with PID closed-loop control using real-time
positioning. This package implements all three pieces.
"""

from .mission import Mission
from .path import Path
from .pid import PID
from .rrt_star import RRTStar, RRTStarConfig
from .tracking import BicycleTracker, DifferentialDriveTracker, TrackingController

__all__ = [
    "Path",
    "RRTStar",
    "RRTStarConfig",
    "PID",
    "TrackingController",
    "DifferentialDriveTracker",
    "BicycleTracker",
    "Mission",
]
